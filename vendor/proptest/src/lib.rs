//! Offline stand-in for the parts of the `proptest` 1.x API this workspace
//! uses. The build container has no network access, so the real crate
//! cannot be fetched.
//!
//! Supported surface: the [`Strategy`] trait with `prop_map`/`boxed`,
//! range/tuple/[`Just`] strategies, [`collection::vec`], [`option::of`],
//! `any::<T>()`, the `prop_oneof!` union, and the `proptest!` test macro
//! with `#![proptest_config(..)]`, `prop_assert*!` and `prop_assume!`.
//!
//! Differences from the real crate: cases are generated from a fixed
//! deterministic seed (derived from the test name), and failing cases are
//! **not shrunk** — the panic simply reports the assertion. That is enough
//! for regression-style property suites; it is not a fuzzing replacement.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always produces a clone of the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Type-erased strategy (see [`Strategy::boxed`]).
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Uniform choice between several strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from pre-boxed alternatives. Panics if empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    let off = (rng.next_u64() as i128).rem_euclid(span);
                    (self.start as i128 + off) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128) - (lo as i128) + 1;
                    let off = (rng.next_u64() as i128).rem_euclid(span);
                    (lo as i128 + off) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Generate an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(elem, len_range)`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>` (`None` 25% of the time, like the
    /// real crate's default weighting of 1:3).
    pub struct OptionStrategy<S>(S);

    /// `proptest::option::of(inner)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod test_runner {
    /// Per-test configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic generator driving all strategies (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded from the test name so every property gets its own
        /// reproducible stream.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..n` (n > 0).
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0);
            self.next_u64() % n
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Union of strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skip the current case when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) $( #[test] fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let __config = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..__config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    (move || $body)();
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_domain() {
        let mut rng = crate::test_runner::TestRng::deterministic("t");
        let s = (0i64..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && (0..20).contains(&v));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut rng = crate::test_runner::TestRng::deterministic("arms");
        let s = prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_smoke(v in crate::collection::vec((0i64..5, any::<bool>()), 1..4)) {
            prop_assume!(!v.is_empty());
            prop_assert!(v.len() < 4);
            for (x, _) in v {
                prop_assert!((0..5).contains(&x), "x = {}", x);
            }
        }
    }
}
