//! Offline stand-in for the parts of the `criterion` 0.5 API this
//! workspace uses. The build container has no network access, so the real
//! crate cannot be fetched.
//!
//! Benchmarks run `sample_size` timed samples of the measured routine and
//! print the per-iteration mean and min to stdout — no statistical
//! analysis, no HTML reports. Good enough to eyeball relative numbers and
//! to keep the bench targets compiling in CI.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; only a hint here.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Reported throughput unit; accepted and ignored.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: &str, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

/// Runs one benchmark's measured routine.
pub struct Bencher {
    samples: usize,
    /// Mean and min per-sample wall time, filled by `iter*`.
    recorded: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            recorded: Vec::new(),
        }
    }

    /// Time `routine` for the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.recorded.push(t0.elapsed());
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.recorded.push(t0.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.recorded.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        let total: Duration = self.recorded.iter().sum();
        let mean = total / self.recorded.len() as u32;
        let min = self.recorded.iter().min().expect("non-empty");
        println!(
            "{label:<40} mean {:>12.3?}   min {:>12.3?}   ({} samples)",
            mean,
            min,
            self.recorded.len()
        );
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted and ignored.
    pub fn throughput(&mut self, _t: Throughput) {}

    /// Run one parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.criterion.sample_size);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(name);
        self
    }

    /// Open a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// Bundle benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke(c: &mut Criterion) {
        c.bench_function("smoke/add", |b| b.iter(|| black_box(1u64) + 1));
        let mut g = c.benchmark_group("smoke/group");
        g.throughput(Throughput::Elements(1));
        g.bench_with_input(BenchmarkId::new("sq", 3), &3u64, |b, &x| {
            b.iter_batched(|| x, |v| v * v, BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group! {
        name = unit;
        config = Criterion::default().sample_size(3);
        targets = smoke
    }

    #[test]
    fn group_runs() {
        unit();
    }
}
