//! Offline stand-in for the parts of the `rand` 0.8 API this workspace
//! uses: [`rngs::SmallRng`], [`Rng::gen_range`], [`Rng::gen_bool`] and
//! [`SeedableRng::seed_from_u64`].
//!
//! The build container has no network access, so the real crate cannot be
//! fetched. This shim is deterministic (xoshiro256++ seeded via
//! splitmix64, the same construction the real `SmallRng` uses on 64-bit
//! targets) and implements uniform integer sampling by widening to `i128`,
//! which is plenty for test-data generation.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open (`lo..hi`) or inclusive (`lo..=hi`)
    /// integer range. Panics on an empty range, like the real crate.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 high bits give a uniform float in [0, 1).
        let f = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        f < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seeding interface; only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128) - (self.start as i128);
                let offset = (rng.next_u64() as i128).rem_euclid(span);
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128) - (lo as i128) + 1;
                let offset = (rng.next_u64() as i128).rem_euclid(span);
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let f = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + f * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            SmallRng {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: i64 = a.gen_range(-5..7);
            assert_eq!(x, b.gen_range(-5..7));
            assert!((-5..7).contains(&x));
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let x: usize = rng.gen_range(0..=2);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((300..700).contains(&hits), "p=0.5 gave {hits}/1000");
    }
}
