//! In-tree developer tooling. One subcommand today:
//!
//! ```text
//! cargo run -p xtask -- tidy
//! ```
//!
//! walks the workspace's Rust sources and enforces the six repo-specific
//! lints (see [`lints`]). Exit code 0 means clean; 1 means diagnostics were
//! printed (one `path:line: [lint] message` per finding); 2 means usage or
//! I/O trouble.

mod lints;
mod source;

use std::path::{Path, PathBuf};

/// Directories (relative to the workspace root) whose `.rs` files tidy
/// scans. `vendor/` is third-party, `target/` is build output, and
/// `xtask/fixtures/` holds files that *intentionally* trip lints.
const ROOTS: &[&str] = &["crates", "src", "tests", "examples", "xtask/src"];
const SKIP_DIRS: &[&str] = &["target", "fixtures", "vendor", ".git"];

fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            collect(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn tidy(root: &Path) -> std::io::Result<i32> {
    let mut paths = Vec::new();
    for r in ROOTS {
        let dir = root.join(r);
        if dir.is_dir() {
            collect(&dir, &mut paths)?;
        }
    }
    paths.sort();

    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        // Files under a `tests/` directory are integration tests in their
        // entirety; benches and examples are live code.
        let force_test = rel.starts_with("tests/") || rel.contains("/tests/");
        let text = std::fs::read_to_string(&path)?;
        files.push(source::analyze(rel, &text, force_test));
    }

    let diags = lints::run(&files, lints::CODEC_RULES);
    for d in &diags {
        eprintln!("{d}");
    }
    if diags.is_empty() {
        eprintln!("tidy: {} files clean", files.len());
        Ok(0)
    } else {
        eprintln!(
            "tidy: {} error(s); silence intentional sites with `// tidy:allow(<lint>): <reason>`",
            diags.len()
        );
        Ok(1)
    }
}

fn main() {
    // xtask lives one level below the workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."));
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("tidy") => match tidy(&root) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("tidy: i/o error: {e}");
                2
            }
        },
        _ => {
            eprintln!("usage: cargo run -p xtask -- tidy");
            2
        }
    };
    std::process::exit(code);
}
