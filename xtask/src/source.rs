//! Line-level source model for the tidy lints.
//!
//! tidy is deliberately *not* a compiler plugin: like rust-lang/rust's
//! `src/tools/tidy` it works on lines of text, so it builds in a second,
//! runs offline, and survives syntax the toolchain of the day cannot parse
//! yet. The price is a small amount of honest heuristics, all of which live
//! here:
//!
//! * comment and string-literal **stripping** (so a doc comment mentioning
//!   `unwrap()` or a lint's own token table never trips a lint),
//! * `#[cfg(test)]` / `#[test]` scope tracking by brace depth (lints gate
//!   on *non-test* code),
//! * `impl Drop for` scope tracking (panic sites inside `Drop` abort the
//!   process during unwind and get their own rule),
//! * `// tidy:allow(<lint>): <reason>` escape hatches — trailing on the
//!   offending line or standalone in the comment block directly above it
//!   (attributes may intervene); the reason is mandatory.

/// One analyzed source line.
#[derive(Debug)]
pub struct Line {
    /// The raw text (comments intact) — used to parse `tidy:allow`.
    pub raw: String,
    /// The code portion: line/block comments removed, string and char
    /// literal *contents* blanked (the quotes remain so tokens cannot
    /// merge across a removed literal).
    pub code: String,
    /// Inside a `#[cfg(test)]` item, a `#[test]` fn, or a test-only file.
    pub in_test: bool,
    /// Inside an `impl ... Drop for ...` block.
    pub in_drop: bool,
    /// Lints explicitly allowed on this line (name → reason given).
    pub allows: Vec<(String, String)>,
    /// A `tidy:allow` on this line was malformed (missing reason or bad
    /// syntax); the driver reports these so a typo cannot silently grant
    /// an exemption.
    pub malformed_allow: bool,
}

impl Line {
    /// Whether `lint` is explicitly allowed on this line.
    pub fn allows(&self, lint: &str) -> bool {
        self.allows.iter().any(|(l, _)| l == lint)
    }
}

/// One analyzed file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated — the unit every
    /// lint's scoping rules are written against, and what diagnostics print.
    pub rel: String,
    pub lines: Vec<Line>,
}

/// Strip comments and literal contents from a whole file, producing one
/// `code` string per line. A tiny state machine; raw strings (`r#".."#`),
/// nested block comments, and escapes are handled, which covers everything
/// the tree actually contains.
fn strip(text: &str) -> Vec<String> {
    #[derive(PartialEq)]
    enum St {
        Code,
        Str,
        RawStr(usize),
        Char,
        Block(usize),
    }
    let mut st = St::Code;
    let mut out = Vec::new();
    for line in text.lines() {
        let b: Vec<char> = line.chars().collect();
        let mut code = String::with_capacity(b.len());
        let mut i = 0;
        while i < b.len() {
            let c = b[i];
            match st {
                St::Code => {
                    if c == '/' && b.get(i + 1) == Some(&'/') {
                        break; // line comment: rest of the line is gone
                    } else if c == '/' && b.get(i + 1) == Some(&'*') {
                        st = St::Block(1);
                        code.push(' ');
                        i += 2;
                        continue;
                    } else if c == '"' {
                        st = St::Str;
                        code.push('"');
                    } else if c == 'r' && matches!(b.get(i + 1), Some('"') | Some('#')) {
                        // Possible raw string: r"..." or r#"..."#
                        let mut hashes = 0;
                        let mut j = i + 1;
                        while b.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if b.get(j) == Some(&'"') {
                            st = St::RawStr(hashes);
                            code.push('"');
                            i = j + 1;
                            continue;
                        }
                        code.push(c);
                    } else if c == '\'' {
                        // Char literal vs lifetime: a lifetime is 'ident not
                        // followed by a closing quote.
                        let is_lifetime =
                            b.get(i + 1).is_some_and(|n| n.is_alphabetic() || *n == '_')
                                && b.get(i + 2) != Some(&'\'');
                        if is_lifetime {
                            code.push(c);
                        } else {
                            st = St::Char;
                            code.push('\'');
                        }
                    } else {
                        code.push(c);
                    }
                }
                St::Str => {
                    if c == '\\' {
                        i += 2;
                        continue;
                    }
                    if c == '"' {
                        st = St::Code;
                        code.push('"');
                    }
                }
                St::RawStr(h) => {
                    if c == '"' {
                        let mut j = i + 1;
                        let mut seen = 0;
                        while seen < h && b.get(j) == Some(&'#') {
                            seen += 1;
                            j += 1;
                        }
                        if seen == h {
                            st = St::Code;
                            code.push('"');
                            i = j;
                            continue;
                        }
                    }
                }
                St::Char => {
                    if c == '\\' {
                        i += 2;
                        continue;
                    }
                    if c == '\'' {
                        st = St::Code;
                        code.push('\'');
                    }
                }
                St::Block(d) => {
                    if c == '*' && b.get(i + 1) == Some(&'/') {
                        st = if d == 1 { St::Code } else { St::Block(d - 1) };
                        i += 2;
                        continue;
                    }
                    if c == '/' && b.get(i + 1) == Some(&'*') {
                        st = St::Block(d + 1);
                        i += 2;
                        continue;
                    }
                }
            }
            i += 1;
        }
        // Unterminated string/char at end of line cannot continue in valid
        // rust (only raw strings and block comments span lines).
        if st == St::Str || st == St::Char {
            st = St::Code;
        }
        out.push(code);
    }
    out
}

/// Parse every `tidy:allow(<lint>): <reason>` occurrence on a raw line;
/// both the lint name and a non-empty reason are mandatory.
///
/// A mention without `(` right after, or with a `<placeholder>` name, is
/// prose *about* the syntax (docs, error messages) and is skipped rather
/// than flagged — an attempted-but-broken allow always has `(realname`.
fn parse_allows(raw: &str) -> (Vec<(String, String)>, bool) {
    let mut allows = Vec::new();
    let mut malformed = false;
    let mut rest = raw;
    while let Some(at) = rest.find("tidy:allow") {
        rest = &rest[at + "tidy:allow".len()..];
        if !rest.starts_with('(') || rest.starts_with("(<") {
            continue;
        }
        let ok = (|| {
            let inner = rest.strip_prefix('(')?;
            let close = inner.find(')')?;
            let name = inner[..close].trim();
            if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
                return None;
            }
            let after = inner[close + 1..].strip_prefix(':')?;
            let reason = after.trim();
            if reason.is_empty() {
                return None;
            }
            Some((name.to_string(), reason.to_string()))
        })();
        match ok {
            Some(pair) => allows.push(pair),
            None => malformed = true,
        }
    }
    (allows, malformed)
}

/// Analyze one file's text into a [`SourceFile`].
///
/// `force_test` marks every line as test code (used for files under a
/// `tests/` directory, which are integration tests in their entirety).
pub fn analyze(rel: String, text: &str, force_test: bool) -> SourceFile {
    let codes = strip(text);
    let raws: Vec<&str> = text.lines().collect();

    // Scope tracking: each `{` pushes (is_test, is_drop) inherited from the
    // enclosing scope plus any pending attribute/header seen since the last
    // brace at this depth.
    let mut scopes: Vec<(bool, bool)> = Vec::new();
    let mut pending_test = false;
    let mut pending_drop = false;
    let mut lines = Vec::with_capacity(codes.len());

    for (idx, code) in codes.iter().enumerate() {
        let raw = raws.get(idx).copied().unwrap_or("");
        let (mut allows, malformed) = parse_allows(raw);
        // A standalone allow-comment exempts the next code line. Comments
        // wrap, and attributes (`#[allow(...)]`) may sit between comment and
        // code, so walk the whole contiguous comment/attribute block above.
        if !raw.trim_start().starts_with("//") {
            let mut j = idx;
            while j > 0 {
                j -= 1;
                let prev_raw = raws[j].trim_start();
                if prev_raw.starts_with("//") {
                    let (prev_allows, _) = parse_allows(prev_raw);
                    allows.extend(prev_allows);
                } else if !codes[j].trim_start().starts_with("#[") {
                    break;
                }
            }
        }

        let inherited_test = scopes.iter().any(|s| s.0);
        let inherited_drop = scopes.iter().any(|s| s.1);

        if code.contains("#[cfg(test)]") || code.contains("#[test]") {
            pending_test = true;
        }
        // `impl ... Drop for ...` header (possibly with generics between).
        if code.trim_start().starts_with("impl") && code.contains("Drop for") {
            pending_drop = true;
        }

        // The line belongs to a test/drop scope if the enclosing scope is
        // one, or if it is itself part of the pending item's header.
        let in_test = force_test || inherited_test || pending_test;
        let in_drop = inherited_drop || pending_drop;

        for c in code.chars() {
            match c {
                '{' => {
                    scopes.push((
                        pending_test || scopes.iter().any(|s| s.0),
                        pending_drop || scopes.iter().any(|s| s.1),
                    ));
                    pending_test = false;
                    pending_drop = false;
                }
                '}' => {
                    scopes.pop();
                }
                // An item ending without a body (`#[cfg(test)] use x;`)
                // consumes the pending attribute. Statement semicolons
                // inside bodies are harmless: pending is only ever set by
                // attribute/header lines immediately preceding an item.
                ';' => {
                    pending_test = false;
                    pending_drop = false;
                }
                _ => {}
            }
        }

        lines.push(Line {
            raw: raw.to_string(),
            code: code.clone(),
            in_test,
            in_drop,
            allows,
            malformed_allow: malformed,
        });
    }

    SourceFile { rel, lines }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(text: &str) -> SourceFile {
        analyze("x.rs".into(), text, false)
    }

    #[test]
    fn strips_comments_and_literals() {
        let f = file("let x = \"unwrap()\"; // .unwrap() here\nlet y = 1; /* panic! */ z();");
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(!f.lines[1].code.contains("panic"));
        assert!(f.lines[1].code.contains("z()"));
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let f = file("let s = r#\"DefaultHasher \"quoted\"\"#; f::<'a>(s);");
        assert!(!f.lines[0].code.contains("DefaultHasher"));
        assert!(f.lines[0].code.contains("f::<'a>"));
    }

    #[test]
    fn cfg_test_scope_covers_module_body() {
        let f = file(
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn live2() {}",
        );
        assert!(!f.lines[0].in_test);
        assert!(f.lines[3].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn drop_impl_scope() {
        let f =
            file("impl<T> Drop for Guard<T> {\n    fn drop(&mut self) { x(); }\n}\nfn after() {}");
        assert!(f.lines[1].in_drop);
        assert!(!f.lines[3].in_drop);
    }

    #[test]
    fn allow_trailing_and_standalone() {
        let f = file("x.unwrap(); // tidy:allow(no-panic-paths): length checked above\n// tidy:allow(no-raw-spawn): bench client threads\nthread::spawn(f);");
        assert!(f.lines[0].allows("no-panic-paths"));
        assert!(f.lines[2].allows("no-raw-spawn"));
        assert!(!f.lines[2].allows("no-panic-paths"));
    }

    #[test]
    fn allow_reaches_through_comment_block_and_attributes() {
        let f = file(
            "// tidy:allow(no-raw-spawn): reasons often wrap onto a second\n\
             // comment line, and an attribute may sit in between\n\
             #[allow(clippy::disallowed_methods)]\n\
             thread::spawn(f);\n\
             thread::spawn(g);",
        );
        assert!(f.lines[3].allows("no-raw-spawn"));
        // The block exempts only the first code line after it.
        assert!(!f.lines[4].allows("no-raw-spawn"));
    }

    #[test]
    fn malformed_allow_is_flagged() {
        let f = file("x.unwrap(); // tidy:allow(no-panic-paths)\n");
        assert!(f.lines[0].malformed_allow);
        assert!(!f.lines[0].allows("no-panic-paths"));
    }
}
