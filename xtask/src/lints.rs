//! The six tidy lints.
//!
//! Each lint reports [`Diagnostic`]s against the [`SourceFile`] model; all
//! of them honour `// tidy:allow(<lint>): <reason>` on the offending line
//! (or in the comment block above it). See `xtask/fixtures/<lint>/` for one
//! file that must trigger each lint and one that must pass — those fixtures
//! run as unit tests here, so a lint that silently stops matching fails CI.

use crate::source::{Line, SourceFile};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub rel: String,
    /// 1-based line number.
    pub line: usize,
    /// Lint name (what a `tidy:allow` must name).
    pub lint: &'static str,
    pub msg: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.rel, self.line, self.lint, self.msg
        )
    }
}

/// A `codec-exhaustive` rule: every variant of `enum_name` (defined in the
/// file whose rel path ends with `def_suffix`) must appear as
/// `Enum::Variant` in the file ending with `match_suffix`.
pub struct EnumMatchRule {
    pub enum_name: &'static str,
    pub def_suffix: &'static str,
    pub match_suffix: &'static str,
}

/// The tree's codec rules: the durability codec must name every `Value`
/// variant and every WAL record variant, so adding a variant without
/// teaching the codec is caught before it becomes silent tag drift on disk.
pub const CODEC_RULES: &[EnumMatchRule] = &[
    EnumMatchRule {
        enum_name: "Value",
        def_suffix: "crates/types/src/value.rs",
        match_suffix: "crates/durability/src/codec.rs",
    },
    EnumMatchRule {
        enum_name: "WalRecord",
        def_suffix: "crates/durability/src/wal.rs",
        match_suffix: "crates/durability/src/codec.rs",
    },
];

/// Crates whose non-test code must be panic-free: recovery must degrade to
/// `Err`, and the cache/executor run under RAII guards whose cleanup a
/// panic would skip or poison.
const NO_PANIC_CRATES: &[&str] = &[
    "crates/durability/src/",
    "crates/cache/src/",
    "crates/exec/src/",
    // The SQL front end parses untrusted wire input; the server holds
    // per-connection sessions that must outlive any one bad request.
    "crates/sql/src/",
    "crates/server/src/",
];

/// The one file allowed to touch raw threads: the persistent worker pool
/// (workers are spawned exactly once there, joined on drop). Even the
/// morsel scheduler in `parallel.rs` may not spawn — phases borrow pool
/// workers through `WorkerPool::run_phase`.
const SPAWN_HOME: &str = "crates/exec/src/pool.rs";

fn diag(out: &mut Vec<Diagnostic>, f: &SourceFile, idx: usize, lint: &'static str, msg: String) {
    out.push(Diagnostic {
        rel: f.rel.clone(),
        line: idx + 1,
        lint,
        msg,
    });
}

/// Skip test code and lines carrying an explicit allow.
fn live(line: &Line, lint: &str) -> bool {
    !line.in_test && !line.allows(lint)
}

// ------------------------------------------------------------ no-std-hasher

/// Forbid `DefaultHasher`/`RandomState` outside test code: both are seeded
/// or unspecified per process/toolchain, and fingerprint + shard routing
/// must be identical across processes for warm restart (use
/// `hashstash_types::StableHasher`, `Value::key64` or
/// `ShapeKey::stable_hash` instead).
fn no_std_hasher(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    const LINT: &str = "no-std-hasher";
    for (i, line) in f.lines.iter().enumerate() {
        if !live(line, LINT) {
            continue;
        }
        for tok in ["DefaultHasher", "RandomState"] {
            if line.code.contains(tok) {
                diag(
                    out,
                    f,
                    i,
                    LINT,
                    format!(
                        "{tok} is process-seeded / version-dependent; route hashing through \
                         the pinned FNV-1a (StableHasher, Value::key64, ShapeKey::stable_hash)"
                    ),
                );
            }
        }
    }
}

// ----------------------------------------------------------- no-panic-paths

/// Forbid `unwrap()`/`expect()`/`panic!` in the durability, cache and exec
/// crates' non-test code, and inside *any* `Drop` impl anywhere (a panic
/// in `Drop` during unwind aborts the process). Intentional sites carry
/// `// tidy:allow(no-panic-paths): <why it cannot fire>`.
fn no_panic_paths(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    const LINT: &str = "no-panic-paths";
    let gated_crate = NO_PANIC_CRATES.iter().any(|p| f.rel.starts_with(p));
    for (i, line) in f.lines.iter().enumerate() {
        if !live(line, LINT) {
            continue;
        }
        if !gated_crate && !line.in_drop {
            continue;
        }
        for tok in [".unwrap()", ".expect(", "panic!"] {
            if line.code.contains(tok) {
                let place = if line.in_drop {
                    "inside a Drop impl (a panic during unwind aborts)"
                } else {
                    "in a panic-free crate (recovery and guards must degrade to Err)"
                };
                diag(out, f, i, LINT, format!("{tok} {place}"));
            }
        }
    }
}

// ------------------------------------------------------------- no-raw-spawn

/// All engine threads live in the persistent worker pool; raw
/// `std::thread::{spawn,scope}` anywhere else bypasses the worker-count
/// knob, the cost model's dispatch pricing, pool shutdown-join on drop,
/// and the determinism battery.
fn no_raw_spawn(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    const LINT: &str = "no-raw-spawn";
    if f.rel == SPAWN_HOME {
        return;
    }
    for (i, line) in f.lines.iter().enumerate() {
        if !live(line, LINT) {
            continue;
        }
        for tok in ["thread::spawn", "thread::scope"] {
            if line.code.contains(tok) {
                diag(
                    out,
                    f,
                    i,
                    LINT,
                    format!("{tok} outside {SPAWN_HOME}; use the worker pool"),
                );
            }
        }
    }
}

// ------------------------------------------------------ no-value-in-kernels

/// The columnar kernel module: selection vectors and monomorphized key /
/// range kernels only. A live `Value` token there means per-row boxed
/// scalars crept back into a hot loop — predicate lowering (which
/// legitimately inspects boxed bounds) belongs in `exec.rs`, which hands
/// down `RangeKernel`s.
const KERNEL_HOME: &str = "crates/exec/src/vector.rs";

/// Whether `code` contains `Value` as a whole identifier (not as a prefix
/// or suffix of a longer one, so `KeyValue`/`Values` don't count).
fn has_value_token(code: &str) -> bool {
    let bytes = code.as_bytes();
    let ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut from = 0;
    while let Some(at) = code[from..].find("Value") {
        let at = from + at;
        let end = at + "Value".len();
        if (at == 0 || !ident(bytes[at - 1])) && (end == code.len() || !ident(bytes[end])) {
            return true;
        }
        from = end;
    }
    false
}

/// Keep the kernel module scalar-free: typed slices and `key64_*`
/// primitives only, so the per-batch loops never allocate per row.
fn no_value_in_kernels(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    const LINT: &str = "no-value-in-kernels";
    if f.rel != KERNEL_HOME {
        return;
    }
    for (i, line) in f.lines.iter().enumerate() {
        if !live(line, LINT) {
            continue;
        }
        if has_value_token(&line.code) {
            diag(
                out,
                f,
                i,
                LINT,
                "boxed scalar `Value` in the kernel module; kernels run over typed \
                 slices — lower the predicate in exec.rs and hand down a RangeKernel"
                    .to_string(),
            );
        }
    }
}

// ---------------------------------------------------------- lock-discipline

/// If `code` declares a struct field, return its name. Heuristic: an
/// optionally-`pub` identifier directly followed by `:` (not `::`).
fn field_name(code: &str) -> Option<&str> {
    let mut t = code.trim_start();
    if let Some(after) = t.strip_prefix("pub") {
        // Only strip `pub` when it is a keyword (followed by whitespace or
        // a visibility paren), not an ident prefix as in `pubx: …`.
        if after.starts_with(|c: char| c.is_whitespace() || c == '(') {
            let after = after.trim_start();
            t = match after.strip_prefix('(') {
                Some(vis) => vis.split_once(')')?.1.trim_start(),
                None => after,
            };
        }
    }
    let end = t
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .unwrap_or(t.len());
    if end == 0 || t.as_bytes()[0].is_ascii_digit() {
        return None;
    }
    let (name, rest) = t.split_at(end);
    if matches!(
        name,
        "fn" | "let" | "use" | "type" | "impl" | "const" | "static" | "return" | "match" | "if"
    ) {
        return None;
    }
    let rest = rest.trim_start();
    if rest.starts_with(':') && !rest.starts_with("::") {
        Some(name)
    } else {
        None
    }
}

/// Parse `lock-order: <level> (<description>)` out of a raw comment line.
/// Returns `Some(Ok(level))`, `Some(Err(()))` for a malformed annotation,
/// `None` when the line has no annotation at all.
fn parse_lock_order(raw: &str) -> Option<Result<u32, ()>> {
    let at = raw.find("lock-order:")?;
    let rest = raw[at + "lock-order:".len()..].trim_start();
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    if digits.is_empty() {
        return Some(Err(()));
    }
    Some(digits.parse::<u32>().map_err(|_| ()))
}

/// Every `Mutex`/`RwLock` field must declare its place in the global lock
/// order via `// lock-order: <level> (<name>)` on its own line or in the
/// comment block above. tidy builds the declared order across the tree and rejects
/// missing annotations and level collisions, so the ordering the runtime
/// `analysis` tracker asserts is always written down next to the lock.
fn lock_discipline(
    f: &SourceFile,
    out: &mut Vec<Diagnostic>,
    declared: &mut Vec<(String, usize, String, u32)>,
) {
    const LINT: &str = "lock-discipline";
    for (i, line) in f.lines.iter().enumerate() {
        if !live(line, LINT) {
            continue;
        }
        if !(line.code.contains("Mutex<") || line.code.contains("RwLock<")) {
            continue;
        }
        let Some(name) = field_name(&line.code) else {
            continue; // not a field declaration (local, return type, …)
        };
        // The annotation may trail the field or live anywhere in the
        // contiguous comment block above it (annotations wrap, and doc
        // comments or attributes may share the block).
        let ann = parse_lock_order(&line.raw).or_else(|| {
            let mut j = i;
            while j > 0 {
                j -= 1;
                let prev = &f.lines[j];
                if prev.raw.trim_start().starts_with("//") {
                    if let Some(found) = parse_lock_order(&prev.raw) {
                        return Some(found);
                    }
                } else if !prev.code.trim_start().starts_with("#[") {
                    return None;
                }
            }
            None
        });
        match ann {
            None => diag(
                out,
                f,
                i,
                LINT,
                format!(
                    "lock field `{name}` has no `// lock-order: <level> (<name>)` annotation; \
                     see the lock-order table in README `Correctness tooling`"
                ),
            ),
            Some(Err(())) => diag(
                out,
                f,
                i,
                LINT,
                format!("malformed lock-order annotation on field `{name}` (want `lock-order: <level> (<name>)`)"),
            ),
            Some(Ok(level)) => declared.push((f.rel.clone(), i + 1, name.to_string(), level)),
        }
    }
}

/// Cross-file half of `lock-discipline`: the declared levels must form a
/// total order — two distinct lock fields on the same level would make the
/// order ambiguous exactly where it matters.
fn lock_discipline_finish(declared: &[(String, usize, String, u32)], out: &mut Vec<Diagnostic>) {
    for (i, (rel, line, name, level)) in declared.iter().enumerate() {
        for (rel2, line2, name2, level2) in &declared[i + 1..] {
            if level == level2 {
                out.push(Diagnostic {
                    rel: rel.clone(),
                    line: *line,
                    lint: "lock-discipline",
                    msg: format!(
                        "lock-order level {level} declared for both `{name}` and `{name2}` \
                         ({rel2}:{line2}); every lock class needs its own level"
                    ),
                });
            }
        }
    }
}

// --------------------------------------------------------- codec-exhaustive

/// Extract the variant names of `pub enum <name>` from a file.
fn enum_variants(f: &SourceFile, name: &str) -> Option<(usize, Vec<String>)> {
    let header_a = format!("pub enum {name} ");
    let header_b = format!("pub enum {name}{{");
    let start = f.lines.iter().position(|l| {
        let c = l.code.trim_start();
        c.starts_with(&header_a) || c.starts_with(&header_b)
    })?;
    let mut depth = 0usize;
    let mut opened = false;
    let mut variants = Vec::new();
    for line in &f.lines[start..] {
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
        if opened && depth == 1 {
            let t = line.code.trim_start();
            let end = t
                .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                .unwrap_or(t.len());
            if end > 0 && t.as_bytes()[0].is_ascii_uppercase() {
                variants.push(t[..end].to_string());
            }
        }
        if opened && depth == 0 {
            break;
        }
    }
    Some((start + 1, variants))
}

/// Every persisted enum's variants must be named in the codec: a variant
/// added to `Value` or `WalRecord` without a codec arm becomes a silent
/// decode failure (or an `unknown tag`) on the next restart.
fn codec_exhaustive(files: &[SourceFile], rules: &[EnumMatchRule], out: &mut Vec<Diagnostic>) {
    const LINT: &str = "codec-exhaustive";
    for rule in rules {
        let Some(def) = files.iter().find(|f| f.rel.ends_with(rule.def_suffix)) else {
            out.push(Diagnostic {
                rel: rule.def_suffix.to_string(),
                line: 1,
                lint: LINT,
                msg: format!("definition file for enum {} not found", rule.enum_name),
            });
            continue;
        };
        let Some((def_line, variants)) = enum_variants(def, rule.enum_name) else {
            out.push(Diagnostic {
                rel: def.rel.clone(),
                line: 1,
                lint: LINT,
                msg: format!("pub enum {} not found", rule.enum_name),
            });
            continue;
        };
        let Some(codec) = files.iter().find(|f| f.rel.ends_with(rule.match_suffix)) else {
            out.push(Diagnostic {
                rel: rule.match_suffix.to_string(),
                line: 1,
                lint: LINT,
                msg: format!("codec file for enum {} not found", rule.enum_name),
            });
            continue;
        };
        let codec_code: String = codec
            .lines
            .iter()
            .map(|l| l.code.as_str())
            .collect::<Vec<_>>()
            .join("\n");
        for v in variants {
            let qualified = format!("{}::{v}", rule.enum_name);
            if !codec_code.contains(&qualified) {
                out.push(Diagnostic {
                    rel: def.rel.clone(),
                    line: def_line,
                    lint: LINT,
                    msg: format!(
                        "variant {qualified} has no arm in {}; encode/decode it (and bump the \
                         format) before it reaches disk",
                        codec.rel
                    ),
                });
            }
        }
    }
}

// ------------------------------------------------------------------ driver

/// Run every lint over the analyzed files. `rules` parameterizes
/// `codec-exhaustive` so the fixture tests can point it at fixture enums.
pub fn run(files: &[SourceFile], rules: &[EnumMatchRule]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut locks = Vec::new();
    for f in files {
        for (i, line) in f.lines.iter().enumerate() {
            // Test code may quote broken allows as data; live code may not.
            if line.malformed_allow && !line.in_test {
                diag(
                    &mut out,
                    f,
                    i,
                    "tidy",
                    "malformed tidy:allow — want `tidy:allow(<lint>): <reason>`".to_string(),
                );
            }
        }
        no_std_hasher(f, &mut out);
        no_panic_paths(f, &mut out);
        no_raw_spawn(f, &mut out);
        no_value_in_kernels(f, &mut out);
        lock_discipline(f, &mut out, &mut locks);
    }
    lock_discipline_finish(&locks, &mut out);
    codec_exhaustive(files, rules, &mut out);
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::analyze;
    use std::path::Path;

    /// Analyze a fixture file under a synthetic rel path that puts it in
    /// the lint's scope (fixtures are *not* scanned by the real tidy walk).
    fn fixture(lint: &str, which: &str, rel: &str) -> SourceFile {
        let path = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("fixtures")
            .join(lint)
            .join(which);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("fixture {} missing: {e}", path.display()));
        analyze(rel.to_string(), &text, false)
    }

    fn run_one(lint: &'static str, which: &str, rel: &str) -> Vec<Diagnostic> {
        let f = fixture(lint, which, rel);
        let rules: &[EnumMatchRule] = if lint == "codec-exhaustive" {
            &[
                EnumMatchRule {
                    enum_name: "Value",
                    def_suffix: "fixture.rs",
                    match_suffix: "fixture.rs",
                },
                EnumMatchRule {
                    enum_name: "WalRecord",
                    def_suffix: "fixture.rs",
                    match_suffix: "fixture.rs",
                },
            ]
        } else {
            &[]
        };
        run(std::slice::from_ref(&f), rules)
            .into_iter()
            .filter(|d| d.lint == lint)
            .collect()
    }

    /// Each lint must fire on its trigger fixture and stay silent on its
    /// pass fixture — a lint that rots fails here, not in review.
    #[test]
    fn every_lint_has_a_firing_trigger_and_a_clean_pass() {
        let cases: &[(&'static str, &str)] = &[
            ("no-std-hasher", "crates/opt/src/fixture.rs"),
            ("no-panic-paths", "crates/cache/src/fixture.rs"),
            ("no-raw-spawn", "crates/opt/src/fixture.rs"),
            ("no-value-in-kernels", "crates/exec/src/vector.rs"),
            ("lock-discipline", "crates/core/src/fixture.rs"),
            ("codec-exhaustive", "crates/durability/src/fixture.rs"),
        ];
        for (lint, rel) in cases {
            let fired = run_one(lint, "trigger.rs", rel);
            assert!(
                !fired.is_empty(),
                "[{lint}] trigger.rs produced no diagnostics"
            );
            let clean = run_one(lint, "pass.rs", rel);
            assert!(
                clean.is_empty(),
                "[{lint}] pass.rs produced diagnostics: {clean:?}"
            );
        }
    }

    #[test]
    fn panic_paths_gate_drop_impls_everywhere() {
        // Outside the panic-free crates, unwrap is fine in ordinary code…
        let ok = analyze(
            "crates/opt/src/f.rs".into(),
            "fn f() { x.unwrap(); }",
            false,
        );
        assert!(run(std::slice::from_ref(&ok), &[])
            .iter()
            .all(|d| d.lint != "no-panic-paths"));
        // …but not inside a Drop impl.
        let bad = analyze(
            "crates/opt/src/f.rs".into(),
            "impl Drop for G {\n    fn drop(&mut self) { self.x.unwrap(); }\n}",
            false,
        );
        assert!(run(std::slice::from_ref(&bad), &[])
            .iter()
            .any(|d| d.lint == "no-panic-paths"));
    }

    #[test]
    fn spawn_home_is_exempt() {
        let f = analyze(
            "crates/exec/src/pool.rs".into(),
            "fn workers() { std::thread::Builder::new(); std::thread::scope(|s| {}); }",
            false,
        );
        assert!(run(std::slice::from_ref(&f), &[])
            .iter()
            .all(|d| d.lint != "no-raw-spawn"));
    }

    #[test]
    fn duplicate_lock_levels_are_rejected() {
        let a = analyze(
            "crates/a/src/a.rs".into(),
            "struct A {\n    // lock-order: 7 (a)\n    m: Mutex<u8>,\n}",
            false,
        );
        let b = analyze(
            "crates/b/src/b.rs".into(),
            "struct B {\n    // lock-order: 7 (b)\n    n: Mutex<u8>,\n}",
            false,
        );
        let out = run(&[a, b], &[]);
        assert!(out
            .iter()
            .any(|d| d.lint == "lock-discipline" && d.msg.contains("level 7")));
    }
}
