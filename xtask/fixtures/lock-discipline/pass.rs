//! Must pass `lock-discipline`: every lock field declares its level, on
//! the line above or trailing, and non-field uses of Mutex (locals, return
//! types) need no annotation. NOT compiled — read as text by xtask tests.

use std::sync::{Mutex, RwLock};

pub struct Registry {
    // lock-order: 110 (fixture registry entries)
    pub entries: Mutex<Vec<u64>>,
    pub index: RwLock<Vec<usize>>, // lock-order: 120 (fixture registry index)
}

pub fn local_locks_are_not_fields() -> Mutex<u8> {
    let scratch: Mutex<u8> = Mutex::new(0);
    scratch
}
