//! Must trip `lock-discipline`: one Mutex field with no lock-order
//! annotation and one with a malformed annotation. NOT compiled — read as
//! text by xtask's fixture tests.

use std::sync::{Mutex, RwLock};

pub struct Registry {
    pub entries: Mutex<Vec<u64>>,
    // lock-order: high
    pub index: RwLock<Vec<usize>>,
}
