//! Must trip `no-raw-spawn` (checked under a rel path that is not the
//! worker pool): raw spawn and scope in live code — scoped per-phase
//! threads are exactly the pattern the pool retired. NOT compiled — read
//! as text by xtask's fixture tests.

pub fn fan_out(jobs: Vec<Box<dyn FnOnce() + Send>>) {
    let handles: Vec<_> = jobs.into_iter().map(std::thread::spawn).collect();
    for h in handles {
        let _ = h.join();
    }
}

pub fn scoped(xs: &mut [u64]) {
    std::thread::scope(|s| {
        for x in xs.iter_mut() {
            s.spawn(move || *x += 1);
        }
    });
}
