//! Must pass `no-raw-spawn`: live code submits phases to the persistent
//! worker pool (the one module allowed to spawn), a bench client carries
//! an explicit allow, tests spawn freely. NOT compiled — read as text by
//! xtask's fixture tests.

pub fn fan_out(xs: &mut [u64]) {
    hashstash_exec::parallel::run_morsels(4, xs.len(), |r| r.len());
}

pub fn bench_clients(n: usize) {
    for _ in 0..n {
        // tidy:allow(no-raw-spawn): bench client threads model external sessions, not engine work
        std::thread::spawn(|| {});
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_spawn() {
        std::thread::spawn(|| {}).join().ok();
    }
}
