//! Must trip `no-std-hasher`: a live (non-test) use of the process-seeded
//! std hasher. NOT compiled — read as text by xtask's fixture tests.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

pub fn route(key: u64, shards: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % shards as u64) as usize
}
