//! Must pass `no-std-hasher`: std hashers only inside test code, live code
//! on the pinned FNV-1a. NOT compiled — read as text by xtask's tests.

pub fn route(key: u64, shards: usize) -> usize {
    (hashstash_types::fnv1a(&key.to_le_bytes()) % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{BuildHasher, RandomState};

    #[test]
    fn test_only_std_hashers_are_fine() {
        let _ = DefaultHasher::new();
        let _ = RandomState::new().build_hasher();
    }
}
