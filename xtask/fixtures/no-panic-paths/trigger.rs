//! Must trip `no-panic-paths` (checked under a panic-free crate's rel
//! path): a live unwrap, a live expect, a panic!, and an unwrap inside a
//! Drop impl. NOT compiled — read as text by xtask's fixture tests.

pub fn recover(bytes: &[u8]) -> u32 {
    let head: [u8; 4] = bytes[..4].try_into().unwrap();
    u32::from_le_bytes(head)
}

pub fn lookup(map: &std::collections::HashMap<u32, u32>, k: u32) -> u32 {
    *map.get(&k).expect("entry exists")
}

pub fn must(cond: bool) {
    if !cond {
        panic!("invariant violated");
    }
}

pub struct Flusher;

impl Drop for Flusher {
    fn drop(&mut self) {
        std::fs::write("state", b"x").unwrap();
    }
}
