//! Must pass `no-panic-paths`: fallible code returns Err, Drop is
//! best-effort, the one intentional unwrap carries a tidy:allow with a
//! reason, and test code may panic freely. NOT compiled — read as text.

pub fn recover(bytes: &[u8]) -> Result<u32, String> {
    let head: [u8; 4] = bytes
        .get(..4)
        .and_then(|s| s.try_into().ok())
        .ok_or_else(|| "truncated header".to_string())?;
    Ok(u32::from_le_bytes(head))
}

pub fn checked(bytes: &[u8]) -> u32 {
    debug_assert!(bytes.len() >= 4);
    // tidy:allow(no-panic-paths): length checked by the caller's framing loop
    u32::from_le_bytes(bytes[..4].try_into().unwrap())
}

pub struct Flusher;

impl Drop for Flusher {
    fn drop(&mut self) {
        // Best effort: a failed flush on drop must not abort the process.
        let _ = std::fs::write("state", b"x");
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        super::recover(&[1, 0, 0, 0]).unwrap();
    }
}
