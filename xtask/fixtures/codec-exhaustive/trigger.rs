//! Must trip `codec-exhaustive`: the enums gain variants (`Bool`,
//! `Checkpoint`) that the codec section below never names. The fixture
//! test points both the def and match halves of the rule at this file.
//! NOT compiled — read as text by xtask's fixture tests.

pub enum Value {
    Int(i64),
    Float(f64),
    Str(String),
    Date(i32),
    Bool(bool),
}

pub enum WalRecord {
    TableLoad(String),
    Checkpoint(u64),
}

pub fn encode(v: &Value, r: &WalRecord) -> u8 {
    let a = match v {
        Value::Int(_) => 1,
        Value::Float(_) => 2,
        Value::Str(_) => 3,
        Value::Date(_) => 4,
        _ => 0,
    };
    let b = match r {
        WalRecord::TableLoad(_) => 1,
        _ => 0,
    };
    a ^ b
}
