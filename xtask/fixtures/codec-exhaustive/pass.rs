//! Must pass `codec-exhaustive`: every variant of both persisted enums is
//! named in the codec section. NOT compiled — read as text by xtask tests.

pub enum Value {
    Int(i64),
    Float(f64),
    Str(String),
    Date(i32),
}

pub enum WalRecord {
    TableLoad(String),
}

pub fn encode(v: &Value, r: &WalRecord) -> u8 {
    let a = match v {
        Value::Int(_) => 1,
        Value::Float(_) => 2,
        Value::Str(_) => 3,
        Value::Date(_) => 4,
    };
    let b = match r {
        WalRecord::TableLoad(_) => 1,
    };
    a ^ b
}
