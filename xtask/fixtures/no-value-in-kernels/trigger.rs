//! Must trip `no-value-in-kernels` (checked under the kernel module's rel
//! path): boxed scalars in live kernel code — exactly the per-row
//! allocation the selection-vector paths exist to avoid. NOT compiled —
//! read as text by xtask's fixture tests.

pub fn key_of(col: &Column, rid: usize) -> u64 {
    // A per-row boxed scalar in the hot loop: the whole point of the
    // kernel module is to never do this.
    let v: Value = col.get(rid);
    v.key64()
}

pub fn matches(col: &Column, rid: usize, bound: &hashstash_types::Value) -> bool {
    col.cmp_row(rid, bound).is_some()
}
