//! Must pass `no-value-in-kernels`: kernels read typed slices and the
//! `key64_*` primitives; longer identifiers containing the token are not
//! the boxed scalar; tests may materialize scalars freely; an explicit
//! allow documents an intentional exception. NOT compiled — read as text
//! by xtask's fixture tests.

pub fn key_of(ints: &[i64], rid: usize) -> u64 {
    key64_int(ints[rid])
}

// `Value` inside a longer identifier is a different type entirely.
pub struct KeyValuePair {
    pub key: u64,
    pub payload: u64,
}

pub fn documented_exception(rid: usize) -> u64 {
    // tidy:allow(no-value-in-kernels): error path only, never in the per-batch loop
    Value::Int(rid as i64).key64()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_box_scalars() {
        let v = hashstash_types::Value::Int(7);
        assert_eq!(v, v.clone());
    }
}
