//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`) — the frame checksum of
//! the WAL and snapshot formats.
//!
//! Self-contained table-driven implementation: the build container is
//! offline, so no external checksum crate. The golden test below pins the
//! standard check value (`crc32(b"123456789") == 0xCBF43926`), which also
//! pins the on-disk format across toolchain upgrades.

/// 256-entry lookup table, computed at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_and_sensitivity() {
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
        assert_ne!(crc32(b"abc"), crc32(b"abc\0"));
    }
}
