//! The durability manager: ties WAL segments and snapshots into one
//! recoverable data directory.
//!
//! # Directory layout
//!
//! ```text
//! data_dir/
//!   wal-000000.log    # records since the last snapshot (or since boot)
//!   snap-000001.snap  # written by flush(); seq ties it to its WAL
//!   wal-000001.log    # records since snap-000001
//! ```
//!
//! Sequence numbers pair a snapshot with the WAL segment that continues
//! it: `flush()` writes `snap-(N+1)`, starts `wal-(N+1)`, then deletes
//! older files. A crash *between* those steps only leaves extra files;
//! recovery is written to tolerate every intermediate state.
//!
//! # Recovery sequence
//!
//! 1. Pick the newest snapshot that validates (magic + whole-body CRC).
//!    Invalid or half-written snapshots are skipped, not fatal.
//! 2. Seed the catalog and the persisted cache entries from it.
//! 3. Replay every WAL segment with `seq >= snapshot seq` in order,
//!    re-registering logged tables. Torn tails are truncated (prefix-of-
//!    history semantics); because records are idempotent re-executable
//!    facts, replaying a segment that predates the snapshot is harmless —
//!    which is what makes the crash-between-steps states above safe.
//! 4. Append further records to the newest segment (truncated to its
//!    valid prefix).
//!
//! The *cache* half of a snapshot is rehydrated by the engine, not here:
//! entries are re-published through the cache's normal admission path so
//! budget accounting, shard routing and `stats == audit()` hold.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

use hashstash_storage::{Catalog, Table};

use crate::snapshot::{read_snapshot, write_snapshot, PersistedEntry};
use crate::wal::{FsyncPolicy, Wal, WalRecord};

/// Configuration of a durable data directory.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// The data directory (created if absent).
    pub dir: PathBuf,
    /// When WAL appends reach the disk.
    pub fsync: FsyncPolicy,
    /// Minimum [`crate::snapshot::benefit_score`] a cache entry must clear
    /// to be persisted by a snapshot. `0.0` (default) persists everything
    /// available.
    pub persist_min_benefit: f64,
}

impl DurabilityConfig {
    /// Default configuration over `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::default(),
            persist_min_benefit: 0.0,
        }
    }
}

/// What recovery reconstructed from the data directory.
#[derive(Debug)]
pub struct Recovered {
    /// The catalog: snapshot tables plus WAL-replayed loads. Empty on
    /// first boot.
    pub catalog: Catalog,
    /// Persisted cache entries awaiting rehydration.
    pub entries: Vec<PersistedEntry>,
    /// Whether a valid snapshot seeded the state.
    pub snapshot_used: bool,
    /// WAL records replayed across all segments.
    pub wal_records: usize,
    /// Whether any WAL tail was torn (and truncated).
    pub torn_wal: bool,
}

struct WalState {
    seq: u64,
    wal: Wal,
}

/// An open durable data directory: appendable WAL + snapshot rotation.
pub struct Durability {
    dir: PathBuf,
    fsync: FsyncPolicy,
    persist_min_benefit: f64,
    // lock-order: 40 (WAL append/rotate state; no cache lock is taken under it)
    state: Mutex<WalState>,
}

impl std::fmt::Debug for Durability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Durability")
            .field("dir", &self.dir)
            .field("fsync", &self.fsync)
            .field("persist_min_benefit", &self.persist_min_benefit)
            .finish_non_exhaustive()
    }
}

fn wal_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:06}.log"))
}

fn snap_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snap-{seq:06}.snap"))
}

/// Parse `prefix-NNNNNN.ext` into its sequence number.
fn seq_of(name: &str, prefix: &str, ext: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(ext)?
        .parse::<u64>()
        .ok()
}

fn list_seqs(dir: &Path, prefix: &str, ext: &str) -> std::io::Result<Vec<u64>> {
    let mut seqs = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(name) = entry.file_name().to_str() {
            if let Some(seq) = seq_of(name, prefix, ext) {
                seqs.push(seq);
            }
        }
    }
    seqs.sort_unstable();
    Ok(seqs)
}

impl Durability {
    /// Open (or initialize) a data directory and recover its state.
    pub fn open(cfg: DurabilityConfig) -> std::io::Result<(Durability, Recovered)> {
        fs::create_dir_all(&cfg.dir)?;

        // 1–2. Newest valid snapshot seeds catalog + cache entries.
        let mut catalog = Catalog::new();
        let mut entries = Vec::new();
        let mut snapshot_used = false;
        let mut snap_seq: Option<u64> = None;
        for seq in list_seqs(&cfg.dir, "snap-", ".snap")?.into_iter().rev() {
            match read_snapshot(&snap_path(&cfg.dir, seq)) {
                Ok(snap) => {
                    catalog = snap.catalog;
                    entries = snap.entries;
                    snapshot_used = true;
                    snap_seq = Some(seq);
                    break;
                }
                Err(_) => continue, // half-written or bit-rotted: skip
            }
        }

        // 3. Replay WAL segments from the snapshot's seq on, in order.
        let wal_seqs = list_seqs(&cfg.dir, "wal-", ".log")?;
        let replay_from = snap_seq.unwrap_or(0);
        let mut wal_records = 0;
        let mut torn_wal = false;
        let mut last: Option<(u64, u64)> = None; // (seq, valid_len)
        for &seq in wal_seqs.iter().filter(|&&s| s >= replay_from) {
            let replay = Wal::replay(&wal_path(&cfg.dir, seq))?;
            torn_wal |= replay.torn;
            wal_records += replay.records.len();
            for record in replay.records {
                match record {
                    WalRecord::TableLoad(table) => catalog.register(table),
                }
            }
            last = Some((seq, replay.valid_len));
        }

        // 4. Continue appending to the newest segment (tail truncated), or
        //    start the directory's first segment.
        let (seq, wal) = match last {
            Some((seq, valid_len)) if valid_len > 0 => (
                seq,
                Wal::open_append(&wal_path(&cfg.dir, seq), cfg.fsync, valid_len)?,
            ),
            Some((seq, _)) => {
                // Magic itself was damaged: recreate the segment.
                (seq, Wal::create(&wal_path(&cfg.dir, seq), cfg.fsync)?)
            }
            None => {
                let seq = snap_seq.unwrap_or(0);
                (seq, Wal::create(&wal_path(&cfg.dir, seq), cfg.fsync)?)
            }
        };

        Ok((
            Durability {
                dir: cfg.dir,
                fsync: cfg.fsync,
                persist_min_benefit: cfg.persist_min_benefit,
                state: Mutex::new(WalState { seq, wal }),
            },
            Recovered {
                catalog,
                entries,
                snapshot_used,
                wal_records,
                torn_wal,
            },
        ))
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The fsync policy in effect.
    pub fn fsync_policy(&self) -> FsyncPolicy {
        self.fsync
    }

    /// The snapshot persistence bar.
    pub fn persist_min_benefit(&self) -> f64 {
        self.persist_min_benefit
    }

    /// Log a base-table registration.
    pub fn log_table_load(&self, table: &Table) -> std::io::Result<()> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.wal.append(&WalRecord::TableLoad(table.clone()))
    }

    /// Force all appended records to stable storage (clean-exit path).
    pub fn sync(&self) -> std::io::Result<()> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.wal.sync()
    }

    /// Write a snapshot of `catalog` + `entries`, rotate to a fresh WAL
    /// segment, and delete superseded files.
    ///
    /// The caller is responsible for having filtered `entries` by the
    /// persistence bar (engine-side, where the scores live). Crash safety:
    /// the snapshot is installed atomically *before* the old segment is
    /// deleted, so every intermediate crash state recovers to either the
    /// old or the new snapshot — never to nothing.
    pub fn flush_snapshot(
        &self,
        catalog: &Catalog,
        entries: &[PersistedEntry],
    ) -> std::io::Result<()> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        // Make sure everything the WAL holds is on disk before the
        // snapshot claims to supersede it.
        state.wal.sync()?;
        let new_seq = state.seq + 1;
        write_snapshot(
            &snap_path(&self.dir, new_seq),
            catalog,
            entries,
            self.fsync != FsyncPolicy::None,
        )?;
        let wal = Wal::create(&wal_path(&self.dir, new_seq), self.fsync)?;
        let old_seq = state.seq;
        state.seq = new_seq;
        state.wal = wal;
        drop(state);
        // Best-effort cleanup of superseded files.
        for seq in list_seqs(&self.dir, "wal-", ".log").unwrap_or_default() {
            if seq <= old_seq {
                let _ = fs::remove_file(wal_path(&self.dir, seq));
            }
        }
        for seq in list_seqs(&self.dir, "snap-", ".snap").unwrap_or_default() {
            if seq <= old_seq {
                let _ = fs::remove_file(snap_path(&self.dir, seq));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hashstash_storage::TableBuilder;
    use hashstash_types::{DataType, Value};

    fn tiny(name: &str, rows: i64) -> Table {
        let mut b = TableBuilder::new(name, vec![("x", DataType::Int)]);
        for i in 0..rows {
            b.push_row(vec![Value::Int(i)]);
        }
        b.finish()
    }

    fn fresh_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hsdur-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn boot_log_recover() {
        let dir = fresh_dir("boot");
        {
            let (d, rec) = Durability::open(DurabilityConfig::new(&dir)).unwrap();
            assert!(rec.catalog.is_empty());
            assert!(!rec.snapshot_used);
            d.log_table_load(&tiny("a", 3)).unwrap();
            d.log_table_load(&tiny("b", 2)).unwrap();
            d.sync().unwrap();
        }
        let (_d, rec) = Durability::open(DurabilityConfig::new(&dir)).unwrap();
        assert_eq!(rec.catalog.len(), 2);
        assert_eq!(rec.catalog.get("a").unwrap().row_count(), 3);
        assert_eq!(rec.wal_records, 2);
        assert!(!rec.torn_wal);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_rotation_and_recovery() {
        let dir = fresh_dir("rotate");
        {
            let (d, _rec) = Durability::open(DurabilityConfig::new(&dir)).unwrap();
            d.log_table_load(&tiny("a", 3)).unwrap();
            let mut cat = Catalog::new();
            cat.register(tiny("a", 3));
            d.flush_snapshot(&cat, &[]).unwrap();
            // Post-snapshot load lands in the new segment.
            d.log_table_load(&tiny("b", 1)).unwrap();
            d.sync().unwrap();
        }
        // Old seq-0 segment was deleted; snap-1 + wal-1 remain.
        assert!(!wal_path(&dir, 0).exists());
        assert!(snap_path(&dir, 1).exists());
        let (_d, rec) = Durability::open(DurabilityConfig::new(&dir)).unwrap();
        assert!(rec.snapshot_used);
        assert_eq!(rec.catalog.len(), 2);
        assert_eq!(rec.wal_records, 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_wal() {
        let dir = fresh_dir("fallback");
        {
            let (d, _rec) = Durability::open(DurabilityConfig::new(&dir)).unwrap();
            d.log_table_load(&tiny("a", 3)).unwrap();
            let mut cat = Catalog::new();
            cat.register(tiny("a", 3));
            d.flush_snapshot(&cat, &[]).unwrap();
            d.log_table_load(&tiny("b", 1)).unwrap();
            d.sync().unwrap();
        }
        // Damage the snapshot; the WAL segments still recover table b, and
        // a (from the snapshot) is lost only because its wal-0 was
        // garbage-collected — recovery itself must not fail.
        let snap = snap_path(&dir, 1);
        let mut bytes = fs::read(&snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&snap, &bytes).unwrap();
        let (_d, rec) = Durability::open(DurabilityConfig::new(&dir)).unwrap();
        assert!(!rec.snapshot_used);
        assert_eq!(rec.catalog.len(), 1);
        assert!(rec.catalog.get("b").is_ok());
        fs::remove_dir_all(&dir).ok();
    }
}
