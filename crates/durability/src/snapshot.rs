//! Snapshots: the full catalog plus a benefit-scored subset of the reuse
//! caches, in one atomically-installed file.
//!
//! # On-disk format
//!
//! ```text
//! [magic "HSSNAP01"][body][crc32(body): u32 LE]
//! ```
//!
//! The body is: catalog table count + tables, then cache-entry count +
//! entries. Each entry carries its lineage fingerprint, schema, use count,
//! byte footprint, the benefit score it was admitted with, and the payload
//! (a cached hash table with exact physical layout, or materialized
//! temp-table rows).
//!
//! # Atomicity
//!
//! A snapshot is written to `<name>.tmp` and `rename`d into place, so a
//! crash mid-write never damages an existing snapshot; validation (magic +
//! whole-body CRC) rejects a half-written or bit-rotted file, and recovery
//! falls back to the next older valid snapshot or to WAL-only replay.
//!
//! # Persistence bar
//!
//! Mirroring the cache's benefit-scored *admission*, the snapshot writer
//! persists only entries whose benefit-per-byte clears a configurable bar:
//! the score is `use_count / KiB` ([`benefit_score`]) — an entry that was
//! never reused since publish scores 0 and is dropped by any bar > 0. The
//! default bar of `0.0` persists every available entry (score ≥ bar).

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

use hashstash_types::{Row, Schema};

use hashstash_cache::{MaterializedRows, StoredHt};
use hashstash_plan::HtFingerprint;
use hashstash_storage::{Catalog, Table};

use crate::codec::{
    decode_fingerprint, decode_rows, decode_schema, decode_stored_ht, decode_table,
    encode_fingerprint, encode_rows, encode_schema, encode_stored_ht, encode_table, Reader, Writer,
};
use crate::crc::crc32;

/// Magic bytes opening every snapshot file.
pub const SNAP_MAGIC: &[u8; 8] = b"HSSNAP01";

/// Benefit-per-byte score of one cache entry: checkouts per KiB of
/// footprint. The snapshot writer persists entries whose score clears the
/// configured bar; the score is also stored with the entry, so tooling can
/// inspect why an entry was kept.
pub fn benefit_score(use_count: u64, bytes: usize) -> f64 {
    use_count as f64 * 1024.0 / bytes.max(1) as f64
}

/// One persisted cache entry.
#[derive(Debug, Clone)]
pub struct PersistedEntry {
    /// Lineage of the entry (rehydration re-publishes under it).
    pub fingerprint: HtFingerprint,
    /// Payload schema.
    pub schema: Schema,
    /// Checkout count at snapshot time.
    pub use_count: u64,
    /// Logical footprint in bytes at snapshot time.
    pub bytes: u64,
    /// The [`benefit_score`] the entry was admitted with.
    pub score: f64,
    /// The payload itself.
    pub payload: PersistedPayload,
}

/// A persisted payload: one of the two reuse-cache kinds.
#[derive(Debug, Clone)]
pub enum PersistedPayload {
    /// A cached hash table (join build / aggregate / shared-group), with
    /// its exact physical layout.
    Ht(StoredHt),
    /// Materialized temp-table rows (the materialization baseline's cache).
    Temp(Vec<Row>),
}

/// A decoded snapshot.
#[derive(Debug)]
pub struct Snapshot {
    /// The full catalog at snapshot time.
    pub catalog: Catalog,
    /// The persisted cache subset.
    pub entries: Vec<PersistedEntry>,
}

/// Write a snapshot atomically (`path.tmp` + rename). When `sync` is set
/// the file is fsynced before the rename — pair with the WAL's policy.
pub fn write_snapshot(
    path: &Path,
    catalog: &Catalog,
    entries: &[PersistedEntry],
    sync: bool,
) -> std::io::Result<()> {
    let mut w = Writer::new();
    let names = catalog.table_names();
    w.put_count(names.len());
    for name in names {
        // table_names and get read the same map, but degrade to an I/O
        // error rather than panic if that ever stops holding.
        let table = catalog
            .get(name)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        encode_table(&mut w, &table);
    }
    w.put_count(entries.len());
    for e in entries {
        match &e.payload {
            PersistedPayload::Ht(ht) => {
                w.put_u8(0);
                encode_fingerprint(&mut w, &e.fingerprint);
                encode_schema(&mut w, &e.schema);
                w.put_u64(e.use_count);
                w.put_u64(e.bytes);
                w.put_f64(e.score);
                encode_stored_ht(&mut w, ht);
            }
            PersistedPayload::Temp(rows) => {
                w.put_u8(1);
                encode_fingerprint(&mut w, &e.fingerprint);
                encode_schema(&mut w, &e.schema);
                w.put_u64(e.use_count);
                w.put_u64(e.bytes);
                w.put_f64(e.score);
                let mat = MaterializedRows::new(rows.clone());
                encode_rows(&mut w, &mat);
            }
        }
    }
    let body = w.into_inner();

    let tmp = path.with_extension("snap.tmp");
    {
        let mut f = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(SNAP_MAGIC)?;
        f.write_all(&body)?;
        f.write_all(&crc32(&body).to_le_bytes())?;
        if sync {
            f.sync_all()?;
        }
    }
    fs::rename(&tmp, path)?;
    if sync {
        // Make the rename itself durable.
        if let Some(dir) = path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
    }
    Ok(())
}

/// Read and validate a snapshot. `Err` carries the reason the file was
/// rejected (bad magic, CRC mismatch, decode failure); recovery treats any
/// `Err` as "this snapshot does not exist" and falls back.
pub fn read_snapshot(path: &Path) -> Result<Snapshot, String> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| format!("cannot read snapshot: {e}"))?;
    if bytes.len() < SNAP_MAGIC.len() + 4 || &bytes[..SNAP_MAGIC.len()] != SNAP_MAGIC {
        return Err("bad snapshot magic".to_string());
    }
    let body = &bytes[SNAP_MAGIC.len()..bytes.len() - 4];
    // tidy:allow(no-panic-paths): slice is exactly 4 bytes, length checked above
    let stored_crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
    if crc32(body) != stored_crc {
        return Err("snapshot CRC mismatch".to_string());
    }

    let mut r = Reader::new(body);
    let n_tables = r.get_count(1)?;
    let mut catalog = Catalog::new();
    for _ in 0..n_tables {
        let table: Table = decode_table(&mut r)?;
        catalog.register(table);
    }
    let n_entries = r.get_count(1)?;
    let mut entries = Vec::with_capacity(n_entries);
    for _ in 0..n_entries {
        let kind = r.get_u8()?;
        let fingerprint = decode_fingerprint(&mut r)?;
        let schema = decode_schema(&mut r)?;
        let use_count = r.get_u64()?;
        let bytes = r.get_u64()?;
        let score = r.get_f64()?;
        let payload = match kind {
            0 => PersistedPayload::Ht(decode_stored_ht(&mut r)?),
            1 => PersistedPayload::Temp(decode_rows(&mut r)?),
            k => return Err(format!("unknown snapshot entry kind {k}")),
        };
        entries.push(PersistedEntry {
            fingerprint,
            schema,
            use_count,
            bytes,
            score,
            payload,
        });
    }
    if !r.is_exhausted() {
        return Err(format!(
            "{} trailing bytes after snapshot body",
            r.remaining()
        ));
    }
    Ok(Snapshot { catalog, entries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hashstash_cache::TaggedRow;
    use hashstash_hashtable::ExtendibleHashTable;
    use hashstash_plan::{HtKind, Region};
    use hashstash_storage::TableBuilder;
    use hashstash_types::{DataType, Value};
    use std::path::PathBuf;
    use std::sync::Arc;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hssnap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample() -> (Catalog, Vec<PersistedEntry>) {
        let mut cat = Catalog::new();
        let mut b = TableBuilder::new("t", vec![("x", DataType::Int)]);
        b.push_row(vec![Value::Int(7)]);
        cat.register(b.finish());

        let mut ht = ExtendibleHashTable::new(8);
        ht.insert(1, TaggedRow::untagged(Row::new(vec![Value::Int(1)])));
        let fp = HtFingerprint {
            kind: HtKind::JoinBuild,
            tables: std::iter::once(Arc::from("t")).collect(),
            edges: vec![],
            region: Region::all(),
            key_attrs: vec![Arc::from("t.x")],
            payload_attrs: vec![Arc::from("t.x")],
            aggregates: vec![],
            tagged: false,
        };
        let entries = vec![PersistedEntry {
            fingerprint: fp,
            schema: Schema::new(vec![hashstash_types::Field::new("t.x", DataType::Int)]),
            use_count: 3,
            bytes: 64,
            score: benefit_score(3, 64),
            payload: PersistedPayload::Ht(StoredHt::Join(ht)),
        }];
        (cat, entries)
    }

    #[test]
    fn snapshot_roundtrip() {
        let path = tmp("roundtrip.snap");
        let (cat, entries) = sample();
        write_snapshot(&path, &cat, &entries, false).unwrap();
        let snap = read_snapshot(&path).unwrap();
        assert_eq!(snap.catalog.len(), 1);
        assert_eq!(snap.catalog.get("t").unwrap().row_count(), 1);
        assert_eq!(snap.entries.len(), 1);
        assert_eq!(snap.entries[0].use_count, 3);
        assert!(snap.entries[0]
            .fingerprint
            .same_lineage(&entries[0].fingerprint));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_snapshot_rejected() {
        let path = tmp("corrupt.snap");
        let (cat, entries) = sample();
        write_snapshot(&path, &cat, &entries, false).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_snapshot(&path).is_err());
        // Truncation is also caught by the CRC.
        std::fs::write(&path, &bytes[..mid]).unwrap();
        assert!(read_snapshot(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn benefit_score_scales() {
        assert_eq!(benefit_score(0, 1024), 0.0);
        assert_eq!(benefit_score(2, 1024), 2.0);
        assert!(benefit_score(1, 10 << 20) < benefit_score(1, 1024));
    }
}
