//! Durability for HashStash: write-ahead logging, benefit-scored
//! snapshots, and warm restart of the reuse cache.
//!
//! The paper's premise is that reuse pays off because hash tables built
//! for one query answer later ones. That benefit normally dies with the
//! process; this crate keeps it across restarts:
//!
//! - [`wal`] — append-only segment files logging re-executable facts
//!   (base-table loads) with CRC-framed records and a configurable
//!   [`FsyncPolicy`].
//! - [`snapshot`] — atomically-installed files holding the full catalog
//!   plus the subset of cached hash tables / temp tables whose
//!   benefit-per-byte ([`benefit_score`]) clears a persistence bar.
//! - [`manager`] — [`Durability::open`] recovers a data directory
//!   (newest valid snapshot + WAL replay, torn tails truncated) and hands
//!   the persisted cache entries to the engine for *rehydration* through
//!   the cache's normal admission path.
//! - [`codec`] — stable little-endian (de)serialization of the types
//!   involved; every decoder degrades to an error on corrupt input.
//! - [`crc`] — the self-contained CRC-32 both formats frame with.
//!
//! The engine-facing lifecycle (who calls what, the crash-vs-clean-exit
//! contract) is documented on `hashstash_core`'s `EngineBuilder::data_dir`
//! and `Database::flush`.

pub mod codec;
pub mod crc;
pub mod manager;
pub mod snapshot;
pub mod wal;

pub use manager::{Durability, DurabilityConfig, Recovered};
pub use snapshot::{
    benefit_score, read_snapshot, write_snapshot, PersistedEntry, PersistedPayload, Snapshot,
    SNAP_MAGIC,
};
pub use wal::{FsyncPolicy, Replay, Wal, WalRecord, INTERVAL_RECORDS, WAL_MAGIC};
