//! The write-ahead log: append-only segment files with CRC-framed records.
//!
//! # On-disk format
//!
//! A segment file (`wal-NNNNNN.log`) starts with the 8-byte magic
//! `HSWAL001` followed by a sequence of records, each framed as
//!
//! ```text
//! [payload_len: u32 LE][crc32(payload): u32 LE][payload]
//! ```
//!
//! where `payload[0]` is the record kind and the rest is the kind-specific
//! body ([`crate::codec`]). The log records *re-executable facts* — catalog
//! DDL and base-table loads — not page deltas: replay re-registers each
//! table, which deterministically rebuilds its secondary indexes.
//!
//! # Torn tails
//!
//! A crash can leave a half-written record at the end of the last segment.
//! Replay stops at the first frame whose length field runs past the file
//! or whose CRC mismatches, and reports the length of the valid prefix;
//! recovery truncates the file there and continues with a *prefix of
//! history* — a torn tail is expected damage, never fatal. A frame whose
//! CRC passes but whose payload fails to decode indicates real corruption
//! beyond a torn write and is treated the same way (stop, truncate).
//!
//! # Fsync policy
//!
//! [`FsyncPolicy`] trades durability for append latency: `Always` syncs
//! after every record (no committed record is ever lost), `Interval` syncs
//! every [`INTERVAL_RECORDS`] records (bounded loss window), `None` leaves
//! syncing to the OS (crash may lose recent records; a *clean* shutdown
//! still syncs on [`Wal::sync`] via `Database::flush`).

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use hashstash_storage::Table;

use crate::codec::{decode_wal_record, encode_wal_record};
use crate::crc::crc32;

/// Magic bytes opening every WAL segment.
pub const WAL_MAGIC: &[u8; 8] = b"HSWAL001";

/// Records between syncs under [`FsyncPolicy::Interval`].
pub const INTERVAL_RECORDS: u64 = 16;

/// When appends reach the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Never fsync on append; the OS flushes when it pleases. Fastest, and
    /// what a clean shutdown (which syncs explicitly) needs anyway.
    None,
    /// Fsync every [`INTERVAL_RECORDS`] appends: bounded loss window.
    #[default]
    Interval,
    /// Fsync after every append: no committed record is ever lost.
    Always,
}

impl FsyncPolicy {
    /// Stable name, recorded in bench JSON and parsed by
    /// [`FsyncPolicy::parse`].
    pub fn name(self) -> &'static str {
        match self {
            FsyncPolicy::None => "none",
            FsyncPolicy::Interval => "interval",
            FsyncPolicy::Always => "always",
        }
    }

    /// Parse `none|interval|always` (the bench/CI knob).
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "none" => Some(FsyncPolicy::None),
            "interval" => Some(FsyncPolicy::Interval),
            "always" => Some(FsyncPolicy::Always),
            _ => None,
        }
    }
}

/// One logged fact.
///
/// The kind tags and encode/decode match arms live in [`crate::codec`]
/// (`encode_wal_record` / `decode_wal_record`) so the `codec-exhaustive`
/// tidy lint can verify every variant has an arm there.
#[derive(Debug, Clone)]
pub enum WalRecord {
    /// A base table was registered in the catalog (DDL + load in one:
    /// tables are immutable once registered).
    TableLoad(Table),
}

/// The result of replaying one segment.
#[derive(Debug)]
pub struct Replay {
    /// Records of the valid prefix, in append order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (magic included). The segment is
    /// truncated to this length before further appends.
    pub valid_len: u64,
    /// Whether anything (torn tail or trailing corruption) was cut off.
    pub torn: bool,
}

/// An open, appendable WAL segment.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    appends_since_sync: u64,
}

impl Wal {
    /// Create a fresh segment (truncates any existing file) and write the
    /// magic header. The header is synced immediately unless the policy is
    /// [`FsyncPolicy::None`].
    pub fn create(path: &Path, policy: FsyncPolicy) -> std::io::Result<Wal> {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        file.write_all(WAL_MAGIC)?;
        if policy != FsyncPolicy::None {
            file.sync_all()?;
        }
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            policy,
            appends_since_sync: 0,
        })
    }

    /// Open an existing segment for appending after replay: the file is
    /// truncated to `valid_len` (dropping any torn tail) and appends
    /// continue from there.
    pub fn open_append(path: &Path, policy: FsyncPolicy, valid_len: u64) -> std::io::Result<Wal> {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(valid_len)?;
        let mut file = file;
        use std::io::Seek;
        file.seek(std::io::SeekFrom::End(0))?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            policy,
            appends_since_sync: 0,
        })
    }

    /// The segment's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one record, framed and checksummed, honouring the fsync
    /// policy.
    pub fn append(&mut self, record: &WalRecord) -> std::io::Result<()> {
        let payload = encode_wal_record(record);
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        self.appends_since_sync += 1;
        match self.policy {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::Interval if self.appends_since_sync >= INTERVAL_RECORDS => self.sync()?,
            _ => {}
        }
        Ok(())
    }

    /// Force everything appended so far to stable storage.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_all()?;
        self.appends_since_sync = 0;
        Ok(())
    }

    /// Replay a segment: decode the valid prefix, report where it ends.
    ///
    /// Returns `Ok` with an empty record list (and `torn = true`) even for
    /// a file whose magic is damaged — recovery then starts from the
    /// snapshot alone. Only real I/O errors surface as `Err`.
    pub fn replay(path: &Path) -> std::io::Result<Replay> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
            return Ok(Replay {
                records: Vec::new(),
                valid_len: 0,
                torn: true,
            });
        }
        let mut records = Vec::new();
        let mut pos = WAL_MAGIC.len();
        loop {
            if bytes.len() - pos < 8 {
                break; // clean end (0 left) or torn length/crc header
            }
            // tidy:allow(no-panic-paths): 8 remaining bytes checked above
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            // tidy:allow(no-panic-paths): 8 remaining bytes checked above
            let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
            let body_start = pos + 8;
            if bytes.len() - body_start < len {
                break; // torn payload
            }
            let payload = &bytes[body_start..body_start + len];
            if crc32(payload) != crc {
                break; // torn or bit-rotted payload
            }
            match decode_wal_record(payload) {
                Ok(rec) => records.push(rec),
                Err(_) => break, // CRC-passing garbage: stop at the prefix
            }
            pos = body_start + len;
        }
        Ok(Replay {
            torn: pos != bytes.len(),
            valid_len: pos as u64,
            records,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hashstash_storage::TableBuilder;
    use hashstash_types::{DataType, Value};

    fn tiny(name: &str, rows: i64) -> Table {
        let mut b = TableBuilder::new(name, vec![("x", DataType::Int)]);
        for i in 0..rows {
            b.push_row(vec![Value::Int(i)]);
        }
        b.finish()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hswal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn append_and_replay() {
        let path = tmp("basic.log");
        let mut wal = Wal::create(&path, FsyncPolicy::None).unwrap();
        wal.append(&WalRecord::TableLoad(tiny("a", 3))).unwrap();
        wal.append(&WalRecord::TableLoad(tiny("b", 5))).unwrap();
        wal.sync().unwrap();
        let replay = Wal::replay(&path).unwrap();
        assert!(!replay.torn);
        assert_eq!(replay.records.len(), 2);
        let WalRecord::TableLoad(t) = &replay.records[1];
        assert_eq!(t.name(), "b");
        assert_eq!(t.row_count(), 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_truncates_to_prefix() {
        let path = tmp("torn.log");
        let mut wal = Wal::create(&path, FsyncPolicy::None).unwrap();
        wal.append(&WalRecord::TableLoad(tiny("a", 3))).unwrap();
        wal.append(&WalRecord::TableLoad(tiny("b", 5))).unwrap();
        wal.sync().unwrap();
        let full = std::fs::metadata(&path).unwrap().len();
        // Chop 3 bytes off the final record.
        std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(full - 3)
            .unwrap();
        let replay = Wal::replay(&path).unwrap();
        assert!(replay.torn);
        assert_eq!(replay.records.len(), 1);
        assert!(replay.valid_len < full - 3);
        // Appending after open_append continues from the valid prefix.
        let mut wal = Wal::open_append(&path, FsyncPolicy::None, replay.valid_len).unwrap();
        wal.append(&WalRecord::TableLoad(tiny("c", 1))).unwrap();
        wal.sync().unwrap();
        let replay = Wal::replay(&path).unwrap();
        assert!(!replay.torn);
        assert_eq!(replay.records.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fsync_policy_parse_roundtrip() {
        for p in [
            FsyncPolicy::None,
            FsyncPolicy::Interval,
            FsyncPolicy::Always,
        ] {
            assert_eq!(FsyncPolicy::parse(p.name()), Some(p));
        }
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
    }
}
