//! Stable byte-level codecs for everything the durability layer persists.
//!
//! All integers are little-endian; collections are a `u32` count followed
//! by the elements; strings are UTF-8 bytes behind a `u32` length. The
//! format carries no self-description — framing, versioning and checksums
//! are the WAL's and snapshot's job ([`crate::wal`], [`crate::snapshot`]).
//! Decoders validate counts against the remaining input, so a corrupt
//! (CRC-passing but logically damaged) frame degrades into a decode error,
//! never a huge allocation or a panic.
//!
//! Hash tables round-trip through
//! [`ExtendibleHashTable::layout`](hashstash_hashtable::ExtendibleHashTable::layout)
//! / `from_layout`, preserving the *physical* layout — directory, lazy-split
//! depths, arena order and chain links — so a rehydrated table is
//! `layout_eq` to the original and answers probes in the same order.

use std::collections::BTreeSet;
use std::ops::Bound;
use std::sync::Arc;

use hashstash_types::{DataType, Field, QidSet, Row, Schema, Value};

use hashstash_cache::{AggAccum, AggPayload, MaterializedRows, StoredHt, TaggedRow};
use hashstash_hashtable::ExtendibleHashTable;
use hashstash_plan::{
    AggExpr, AggFunc, HtFingerprint, HtKind, Interval, JoinEdge, PredBox, Region,
};
use hashstash_storage::{Column, Table};

use crate::wal::WalRecord;

/// Decode failure: a human-readable description of the first inconsistency.
pub type DecodeResult<T> = std::result::Result<T, String>;

// ---------------------------------------------------------------- writer

/// Append-only byte sink (a thin `Vec<u8>` wrapper).
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_inner(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// A `u32`-length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// A collection count (`u32`).
    pub fn put_count(&mut self, n: usize) {
        self.put_u32(n as u32);
    }
}

// ---------------------------------------------------------------- reader

/// Cursor over an encoded byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the cursor consumed the whole input.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> DecodeResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(format!(
                "truncated input: need {n} bytes, have {}",
                self.remaining()
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn get_u8(&mut self) -> DecodeResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u32(&mut self) -> DecodeResult<u32> {
        // tidy:allow(no-panic-paths): take(4) guarantees exactly 4 bytes
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn get_u64(&mut self) -> DecodeResult<u64> {
        // tidy:allow(no-panic-paths): take(8) guarantees exactly 8 bytes
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_i64(&mut self) -> DecodeResult<i64> {
        // tidy:allow(no-panic-paths): take(8) guarantees exactly 8 bytes
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_i32(&mut self) -> DecodeResult<i32> {
        // tidy:allow(no-panic-paths): take(4) guarantees exactly 4 bytes
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn get_f64(&mut self) -> DecodeResult<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    pub fn get_str(&mut self) -> DecodeResult<String> {
        let n = self.get_u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| format!("invalid UTF-8 string: {e}"))
    }

    /// A collection count, validated against the remaining input: each
    /// element occupies at least `min_elem_bytes`, so a corrupt count can
    /// never provoke an over-allocation.
    pub fn get_count(&mut self, min_elem_bytes: usize) -> DecodeResult<usize> {
        let n = self.get_u32()? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(format!(
                "corrupt count {n}: exceeds remaining {} bytes",
                self.remaining()
            ));
        }
        Ok(n)
    }
}

// ---------------------------------------------------------------- scalars

fn dtype_tag(d: DataType) -> u8 {
    match d {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Str => 2,
        DataType::Date => 3,
    }
}

fn dtype_of(tag: u8) -> DecodeResult<DataType> {
    Ok(match tag {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Str,
        3 => DataType::Date,
        t => return Err(format!("unknown data-type tag {t}")),
    })
}

/// Encode one scalar value.
pub fn encode_value(w: &mut Writer, v: &Value) {
    match v {
        Value::Int(x) => {
            w.put_u8(0);
            w.put_i64(*x);
        }
        Value::Float(f) => {
            w.put_u8(1);
            w.put_f64(f.0);
        }
        Value::Str(s) => {
            w.put_u8(2);
            w.put_str(s);
        }
        Value::Date(d) => {
            w.put_u8(3);
            w.put_i32(*d);
        }
    }
}

/// Decode one scalar value.
pub fn decode_value(r: &mut Reader<'_>) -> DecodeResult<Value> {
    Ok(match r.get_u8()? {
        0 => Value::Int(r.get_i64()?),
        1 => Value::float(r.get_f64()?),
        2 => Value::str(&r.get_str()?),
        3 => Value::Date(r.get_i32()?),
        t => return Err(format!("unknown value tag {t}")),
    })
}

/// Encode a row as its value vector.
pub fn encode_row(w: &mut Writer, row: &Row) {
    w.put_count(row.len());
    for v in row.values() {
        encode_value(w, v);
    }
}

/// Decode a row.
pub fn decode_row(r: &mut Reader<'_>) -> DecodeResult<Row> {
    let n = r.get_count(1)?;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(decode_value(r)?);
    }
    Ok(Row::new(values))
}

/// Encode a schema (field names and types).
pub fn encode_schema(w: &mut Writer, s: &Schema) {
    w.put_count(s.len());
    for f in s.fields() {
        w.put_str(&f.name);
        w.put_u8(dtype_tag(f.dtype));
    }
}

/// Decode a schema.
pub fn decode_schema(r: &mut Reader<'_>) -> DecodeResult<Schema> {
    let n = r.get_count(5)?;
    let mut fields = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.get_str()?;
        let dtype = dtype_of(r.get_u8()?)?;
        fields.push(Field::new(name, dtype));
    }
    Ok(Schema::new(fields))
}

// ---------------------------------------------------------------- regions

fn encode_bound(w: &mut Writer, b: &Bound<Value>) {
    match b {
        Bound::Unbounded => w.put_u8(0),
        Bound::Included(v) => {
            w.put_u8(1);
            encode_value(w, v);
        }
        Bound::Excluded(v) => {
            w.put_u8(2);
            encode_value(w, v);
        }
    }
}

fn decode_bound(r: &mut Reader<'_>) -> DecodeResult<Bound<Value>> {
    Ok(match r.get_u8()? {
        0 => Bound::Unbounded,
        1 => Bound::Included(decode_value(r)?),
        2 => Bound::Excluded(decode_value(r)?),
        t => return Err(format!("unknown bound tag {t}")),
    })
}

fn encode_interval(w: &mut Writer, iv: &Interval) {
    encode_bound(w, iv.lo());
    encode_bound(w, iv.hi());
}

fn decode_interval(r: &mut Reader<'_>) -> DecodeResult<Interval> {
    let lo = decode_bound(r)?;
    let hi = decode_bound(r)?;
    Ok(Interval::new(lo, hi))
}

fn encode_predbox(w: &mut Writer, b: &PredBox) {
    let constrained: Vec<_> = b.constrained().collect();
    w.put_count(constrained.len());
    for (attr, iv) in constrained {
        w.put_str(attr);
        encode_interval(w, iv);
    }
}

fn decode_predbox(r: &mut Reader<'_>) -> DecodeResult<PredBox> {
    let n = r.get_count(6)?;
    let mut b = PredBox::all();
    for _ in 0..n {
        let attr = r.get_str()?;
        let iv = decode_interval(r)?;
        b.constrain(attr.as_str(), iv);
    }
    Ok(b)
}

/// Encode a predicate region as its disjoint boxes.
pub fn encode_region(w: &mut Writer, region: &Region) {
    w.put_count(region.boxes().len());
    for b in region.boxes() {
        encode_predbox(w, b);
    }
}

/// Decode a region. The boxes are re-unioned, so the result is *set-equal*
/// to the original (the representation may re-coalesce) — which is exactly
/// the equivalence lineage matching and publish dedup use.
pub fn decode_region(r: &mut Reader<'_>) -> DecodeResult<Region> {
    let n = r.get_count(4)?;
    let mut region = Region::empty();
    for _ in 0..n {
        region = region.union(&Region::from_box(decode_predbox(r)?));
    }
    Ok(region)
}

// ---------------------------------------------------------------- lineage

fn kind_tag(k: HtKind) -> u8 {
    match k {
        HtKind::JoinBuild => 0,
        HtKind::Aggregate => 1,
        HtKind::SharedGroup => 2,
    }
}

fn kind_of(tag: u8) -> DecodeResult<HtKind> {
    Ok(match tag {
        0 => HtKind::JoinBuild,
        1 => HtKind::Aggregate,
        2 => HtKind::SharedGroup,
        t => return Err(format!("unknown ht-kind tag {t}")),
    })
}

fn func_tag(f: AggFunc) -> u8 {
    match f {
        AggFunc::Sum => 0,
        AggFunc::Count => 1,
        AggFunc::Min => 2,
        AggFunc::Max => 3,
        AggFunc::Avg => 4,
    }
}

fn func_of(tag: u8) -> DecodeResult<AggFunc> {
    Ok(match tag {
        0 => AggFunc::Sum,
        1 => AggFunc::Count,
        2 => AggFunc::Min,
        3 => AggFunc::Max,
        4 => AggFunc::Avg,
        t => return Err(format!("unknown agg-func tag {t}")),
    })
}

fn encode_attrs(w: &mut Writer, attrs: &[Arc<str>]) {
    w.put_count(attrs.len());
    for a in attrs {
        w.put_str(a);
    }
}

fn decode_attrs(r: &mut Reader<'_>) -> DecodeResult<Vec<Arc<str>>> {
    let n = r.get_count(4)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(Arc::from(r.get_str()?.as_str()));
    }
    Ok(out)
}

/// Encode a hash-table fingerprint (the full lineage).
pub fn encode_fingerprint(w: &mut Writer, fp: &HtFingerprint) {
    w.put_u8(kind_tag(fp.kind));
    w.put_count(fp.tables.len());
    for t in &fp.tables {
        w.put_str(t);
    }
    w.put_count(fp.edges.len());
    for e in &fp.edges {
        w.put_str(&e.left_table);
        w.put_str(&e.left_col);
        w.put_str(&e.right_table);
        w.put_str(&e.right_col);
    }
    encode_region(w, &fp.region);
    encode_attrs(w, &fp.key_attrs);
    encode_attrs(w, &fp.payload_attrs);
    w.put_count(fp.aggregates.len());
    for a in &fp.aggregates {
        w.put_u8(func_tag(a.func));
        w.put_str(&a.attr);
    }
    w.put_u8(fp.tagged as u8);
}

/// Decode a fingerprint.
pub fn decode_fingerprint(r: &mut Reader<'_>) -> DecodeResult<HtFingerprint> {
    let kind = kind_of(r.get_u8()?)?;
    let n_tables = r.get_count(4)?;
    let mut tables = BTreeSet::new();
    for _ in 0..n_tables {
        tables.insert(Arc::from(r.get_str()?.as_str()));
    }
    let n_edges = r.get_count(16)?;
    let mut edges = Vec::with_capacity(n_edges);
    for _ in 0..n_edges {
        let lt = r.get_str()?;
        let lc = r.get_str()?;
        let rt = r.get_str()?;
        let rc = r.get_str()?;
        edges.push(JoinEdge::new(&lt, &lc, &rt, &rc));
    }
    let region = decode_region(r)?;
    let key_attrs = decode_attrs(r)?;
    let payload_attrs = decode_attrs(r)?;
    let n_aggs = r.get_count(5)?;
    let mut aggregates = Vec::with_capacity(n_aggs);
    for _ in 0..n_aggs {
        let func = func_of(r.get_u8()?)?;
        let attr = r.get_str()?;
        aggregates.push(AggExpr::new(func, attr.as_str()));
    }
    let tagged = r.get_u8()? != 0;
    Ok(HtFingerprint {
        kind,
        tables,
        edges,
        region,
        key_attrs,
        payload_attrs,
        aggregates,
        tagged,
    }
    .normalized())
}

// ---------------------------------------------------------------- payloads

fn encode_tagged_row(w: &mut Writer, t: &TaggedRow) {
    encode_row(w, &t.row);
    w.put_u64(t.tag.0);
}

fn decode_tagged_row(r: &mut Reader<'_>) -> DecodeResult<TaggedRow> {
    let row = decode_row(r)?;
    let tag = QidSet(r.get_u64()?);
    Ok(TaggedRow { row, tag })
}

fn encode_accum(w: &mut Writer, a: &AggAccum) {
    match a {
        AggAccum::Sum(s) => {
            w.put_u8(0);
            w.put_f64(*s);
        }
        AggAccum::Count(c) => {
            w.put_u8(1);
            w.put_i64(*c);
        }
        AggAccum::Min(m) | AggAccum::Max(m) => {
            w.put_u8(if matches!(a, AggAccum::Min(_)) { 2 } else { 3 });
            match m {
                Some(v) => {
                    w.put_u8(1);
                    encode_value(w, v);
                }
                None => w.put_u8(0),
            }
        }
        AggAccum::Avg { sum, count } => {
            w.put_u8(4);
            w.put_f64(*sum);
            w.put_i64(*count);
        }
    }
}

fn decode_accum(r: &mut Reader<'_>) -> DecodeResult<AggAccum> {
    Ok(match r.get_u8()? {
        0 => AggAccum::Sum(r.get_f64()?),
        1 => AggAccum::Count(r.get_i64()?),
        tag @ (2 | 3) => {
            let present = r.get_u8()? != 0;
            let v = if present {
                Some(decode_value(r)?)
            } else {
                None
            };
            if tag == 2 {
                AggAccum::Min(v)
            } else {
                AggAccum::Max(v)
            }
        }
        4 => {
            let sum = r.get_f64()?;
            let count = r.get_i64()?;
            AggAccum::Avg { sum, count }
        }
        t => return Err(format!("unknown accumulator tag {t}")),
    })
}

fn encode_agg_payload(w: &mut Writer, p: &AggPayload) {
    encode_row(w, &p.group);
    w.put_count(p.accums.len());
    for a in &p.accums {
        encode_accum(w, a);
    }
}

fn decode_agg_payload(r: &mut Reader<'_>) -> DecodeResult<AggPayload> {
    let group = decode_row(r)?;
    let n = r.get_count(2)?;
    let mut accums = Vec::with_capacity(n);
    for _ in 0..n {
        accums.push(decode_accum(r)?);
    }
    Ok(AggPayload { group, accums })
}

fn encode_ht<V>(w: &mut Writer, ht: &ExtendibleHashTable<V>, enc: impl Fn(&mut Writer, &V)) {
    let l = ht.layout();
    w.put_u64(l.tuple_width as u64);
    w.put_u8(l.global_depth);
    w.put_u64(l.resizes as u64);
    w.put_u64(l.distinct_keys as u64);
    w.put_count(l.directory.len());
    for &head in l.directory {
        w.put_u32(head);
    }
    for &d in l.depth {
        w.put_u8(d);
    }
    w.put_count(ht.len());
    for (key, next, v) in ht.arena_entries() {
        w.put_u64(key);
        w.put_u32(next);
        enc(w, v);
    }
}

fn decode_ht<V>(
    r: &mut Reader<'_>,
    dec: impl Fn(&mut Reader<'_>) -> DecodeResult<V>,
) -> DecodeResult<ExtendibleHashTable<V>> {
    let tuple_width = r.get_u64()? as usize;
    let global_depth = r.get_u8()?;
    let resizes = r.get_u64()? as usize;
    let distinct_keys = r.get_u64()? as usize;
    let n_dir = r.get_count(4)?;
    let mut directory = Vec::with_capacity(n_dir);
    for _ in 0..n_dir {
        directory.push(r.get_u32()?);
    }
    let mut depth = Vec::with_capacity(n_dir);
    for _ in 0..n_dir {
        depth.push(r.get_u8()?);
    }
    let n_arena = r.get_count(12)?;
    let mut arena = Vec::with_capacity(n_arena);
    for _ in 0..n_arena {
        let key = r.get_u64()?;
        let next = r.get_u32()?;
        arena.push((key, next, dec(r)?));
    }
    ExtendibleHashTable::from_layout(
        tuple_width,
        global_depth,
        resizes,
        distinct_keys,
        directory,
        depth,
        arena,
    )
    .ok_or_else(|| "inconsistent hash-table layout".to_string())
}

/// Encode a cached hash table, physical layout included.
pub fn encode_stored_ht(w: &mut Writer, ht: &StoredHt) {
    match ht {
        StoredHt::Join(t) => {
            w.put_u8(0);
            encode_ht(w, t, encode_tagged_row);
        }
        StoredHt::Agg(t) => {
            w.put_u8(1);
            encode_ht(w, t, encode_agg_payload);
        }
        StoredHt::SharedGroup(t) => {
            w.put_u8(2);
            encode_ht(w, t, encode_tagged_row);
        }
    }
}

/// Decode a cached hash table.
pub fn decode_stored_ht(r: &mut Reader<'_>) -> DecodeResult<StoredHt> {
    Ok(match r.get_u8()? {
        0 => StoredHt::Join(decode_ht(r, decode_tagged_row)?),
        1 => StoredHt::Agg(decode_ht(r, decode_agg_payload)?),
        2 => StoredHt::SharedGroup(decode_ht(r, decode_tagged_row)?),
        t => return Err(format!("unknown stored-ht tag {t}")),
    })
}

/// Encode materialized temp-table rows.
pub fn encode_rows(w: &mut Writer, rows: &MaterializedRows) {
    w.put_count(rows.rows().len());
    for row in rows.rows() {
        encode_row(w, row);
    }
}

/// Decode materialized temp-table rows (footprint is recomputed).
pub fn decode_rows(r: &mut Reader<'_>) -> DecodeResult<Vec<Row>> {
    let n = r.get_count(4)?;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        rows.push(decode_row(r)?);
    }
    Ok(rows)
}

// ---------------------------------------------------------------- storage

fn encode_column(w: &mut Writer, c: &Column) {
    match c {
        Column::Int(v) => {
            w.put_u8(0);
            w.put_count(v.len());
            for &x in v {
                w.put_i64(x);
            }
        }
        Column::Float(v) => {
            w.put_u8(1);
            w.put_count(v.len());
            for &x in v {
                w.put_f64(x);
            }
        }
        Column::Date(v) => {
            w.put_u8(2);
            w.put_count(v.len());
            for &x in v {
                w.put_i32(x);
            }
        }
        Column::Str { dict, codes } => {
            w.put_u8(3);
            w.put_count(dict.len());
            for s in dict {
                w.put_str(s);
            }
            w.put_count(codes.len());
            for &c in codes {
                w.put_u32(c);
            }
        }
    }
}

fn decode_column(r: &mut Reader<'_>) -> DecodeResult<Column> {
    Ok(match r.get_u8()? {
        0 => {
            let n = r.get_count(8)?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.get_i64()?);
            }
            Column::Int(v)
        }
        1 => {
            let n = r.get_count(8)?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.get_f64()?);
            }
            Column::Float(v)
        }
        2 => {
            let n = r.get_count(4)?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.get_i32()?);
            }
            Column::Date(v)
        }
        3 => {
            let n_dict = r.get_count(4)?;
            let mut dict: Vec<Arc<str>> = Vec::with_capacity(n_dict);
            for _ in 0..n_dict {
                dict.push(Arc::from(r.get_str()?.as_str()));
            }
            let n_codes = r.get_count(4)?;
            let mut codes = Vec::with_capacity(n_codes);
            for _ in 0..n_codes {
                let code = r.get_u32()?;
                if code as usize >= dict.len().max(1) {
                    return Err(format!(
                        "dictionary code {code} out of range ({} entries)",
                        dict.len()
                    ));
                }
                codes.push(code);
            }
            Column::Str { dict, codes }
        }
        t => return Err(format!("unknown column tag {t}")),
    })
}

/// Encode a base table: name, schema, columns, indexed column positions.
pub fn encode_table(w: &mut Writer, t: &Table) {
    w.put_str(t.name());
    encode_schema(w, t.schema());
    w.put_count(t.schema().len());
    for i in 0..t.schema().len() {
        encode_column(w, t.column(i));
    }
    let indexed = t.indexed_columns();
    w.put_count(indexed.len());
    for col in indexed {
        w.put_u64(col as u64);
    }
}

/// Decode a base table, rebuilding its secondary indexes.
pub fn decode_table(r: &mut Reader<'_>) -> DecodeResult<Table> {
    let name = r.get_str()?;
    let schema = decode_schema(r)?;
    let n_cols = r.get_count(5)?;
    let mut columns = Vec::with_capacity(n_cols);
    for _ in 0..n_cols {
        columns.push(decode_column(r)?);
    }
    let n_idx = r.get_count(8)?;
    let mut indexed = Vec::with_capacity(n_idx);
    for _ in 0..n_idx {
        indexed.push(r.get_u64()? as usize);
    }
    Table::from_parts(name, schema, columns, &indexed).map_err(|e| e.to_string())
}

// ------------------------------------------------------------- wal records

/// Record-kind tags. New kinds get the next integer; tags are never reused.
const KIND_TABLE_LOAD: u8 = 1;

/// Encode one WAL record as `[kind: u8][kind-specific body]`.
///
/// Lives here (not in [`crate::wal`]) so every persisted enum's match arms
/// are in one file the `codec-exhaustive` tidy lint can check: adding a
/// [`WalRecord`] variant without extending this match fails tidy before it
/// can become a silent decode failure on restart.
pub fn encode_wal_record(record: &WalRecord) -> Vec<u8> {
    let mut w = Writer::new();
    match record {
        WalRecord::TableLoad(t) => {
            w.put_u8(KIND_TABLE_LOAD);
            encode_table(&mut w, t);
        }
    }
    w.into_inner()
}

/// Decode one WAL record payload (the inverse of [`encode_wal_record`]).
pub fn decode_wal_record(payload: &[u8]) -> DecodeResult<WalRecord> {
    let mut r = Reader::new(payload);
    match r.get_u8()? {
        KIND_TABLE_LOAD => {
            let t = decode_table(&mut r)?;
            Ok(WalRecord::TableLoad(t))
        }
        k => Err(format!("unknown WAL record kind {k}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hashstash_storage::TableBuilder;

    fn roundtrip<T>(
        value: &T,
        enc: impl Fn(&mut Writer, &T),
        dec: impl Fn(&mut Reader<'_>) -> DecodeResult<T>,
    ) -> T {
        let mut w = Writer::new();
        enc(&mut w, value);
        let bytes = w.into_inner();
        let mut r = Reader::new(&bytes);
        let out = dec(&mut r).expect("roundtrip decodes");
        assert!(r.is_exhausted(), "decoder consumed the whole encoding");
        out
    }

    #[test]
    fn value_roundtrip() {
        for v in [
            Value::Int(-42),
            Value::float(2.5),
            Value::float(f64::NAN),
            Value::str("Brand#12"),
            Value::Date(12345),
        ] {
            assert_eq!(roundtrip(&v, encode_value, decode_value), v);
        }
    }

    #[test]
    fn row_and_schema_roundtrip() {
        let row = Row::new(vec![Value::Int(1), Value::str("x"), Value::float(0.5)]);
        assert_eq!(roundtrip(&row, encode_row, decode_row), row);
        let schema = Schema::new(vec![
            Field::new("a.x", DataType::Int),
            Field::new("a.y", DataType::Str),
        ]);
        assert_eq!(roundtrip(&schema, encode_schema, decode_schema), schema);
    }

    #[test]
    fn region_roundtrip_is_set_equal() {
        let b1 = PredBox::all().with("t.a", Interval::closed(Value::Int(0), Value::Int(9)));
        let b2 = PredBox::all().with("t.a", Interval::closed(Value::Int(20), Value::Int(29)));
        let region = Region::from_box(b1).union(&Region::from_box(b2));
        let out = roundtrip(&region, encode_region, decode_region);
        assert!(out.set_eq(&region));
    }

    fn sample_fingerprint() -> HtFingerprint {
        HtFingerprint {
            kind: HtKind::JoinBuild,
            tables: ["orders", "customer"]
                .iter()
                .map(|s| Arc::from(*s))
                .collect(),
            edges: vec![JoinEdge::new(
                "orders",
                "orders.o_custkey",
                "customer",
                "customer.c_custkey",
            )],
            region: Region::from_box(PredBox::all().with(
                "customer.c_age",
                Interval::closed(Value::Int(20), Value::Int(30)),
            )),
            key_attrs: vec![Arc::from("customer.c_custkey")],
            payload_attrs: vec![Arc::from("customer.c_custkey"), Arc::from("customer.c_age")],
            aggregates: vec![],
            tagged: false,
        }
        .normalized()
    }

    #[test]
    fn fingerprint_roundtrip_same_lineage() {
        let fp = sample_fingerprint();
        let out = roundtrip(&fp, encode_fingerprint, decode_fingerprint);
        assert!(out.same_lineage(&fp));
        assert_eq!(out.tables, fp.tables);
        assert_eq!(out.edges, fp.edges);
    }

    #[test]
    fn stored_ht_roundtrip_layout_eq() {
        let mut ht = ExtendibleHashTable::new(16);
        for i in 0..64u64 {
            ht.insert(
                i % 7,
                TaggedRow::untagged(Row::new(vec![Value::Int(i as i64), Value::str("p")])),
            );
        }
        let stored = StoredHt::Join(ht);
        let out = roundtrip(&stored, encode_stored_ht, decode_stored_ht);
        match (&stored, &out) {
            (StoredHt::Join(a), StoredHt::Join(b)) => assert!(a.layout_eq(b)),
            _ => panic!("kind preserved"),
        }
        assert_eq!(out.logical_bytes(), stored.logical_bytes());
    }

    #[test]
    fn agg_ht_roundtrip() {
        let mut ht = ExtendibleHashTable::new(24);
        for i in 0..20u64 {
            let group = Row::new(vec![Value::Int((i % 4) as i64)]);
            ht.upsert(
                i % 4,
                || AggPayload {
                    group: group.clone(),
                    accums: vec![AggAccum::Sum(0.0), AggAccum::Avg { sum: 0.0, count: 0 }],
                },
                |p| {
                    p.accums[0].update(&Value::Int(i as i64));
                    p.accums[1].update(&Value::Int(i as i64));
                },
            );
        }
        let stored = StoredHt::Agg(ht);
        let out = roundtrip(&stored, encode_stored_ht, decode_stored_ht);
        match (&stored, &out) {
            (StoredHt::Agg(a), StoredHt::Agg(b)) => assert!(a.layout_eq(b)),
            _ => panic!("kind preserved"),
        }
    }

    #[test]
    fn table_roundtrip_with_indexes() {
        let mut b = TableBuilder::new(
            "t",
            vec![
                ("id", DataType::Int),
                ("d", DataType::Date),
                ("s", DataType::Str),
                ("f", DataType::Float),
            ],
        );
        for i in 0..10 {
            b.push_row(vec![
                Value::Int(i),
                Value::Date(100 + i as i32),
                Value::str(if i % 2 == 0 { "even" } else { "odd" }),
                Value::float(i as f64 / 2.0),
            ]);
        }
        let t = b.finish_with_indexes(&["d"]).unwrap();
        let out = roundtrip(&t, encode_table, decode_table);
        assert_eq!(out.name(), t.name());
        assert_eq!(out.row_count(), t.row_count());
        assert_eq!(out.indexed_columns(), t.indexed_columns());
        for i in 0..t.row_count() {
            assert_eq!(out.row(i), t.row(i));
        }
    }

    #[test]
    fn corrupt_input_degrades_to_error() {
        let mut w = Writer::new();
        encode_fingerprint(&mut w, &sample_fingerprint());
        let bytes = w.into_inner();
        // Truncations must error, never panic or over-allocate.
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(decode_fingerprint(&mut r).is_err(), "cut at {cut}");
        }
        // A wild count must be rejected by the remaining-bytes check.
        let mut evil = Writer::new();
        evil.put_u32(u32::MAX);
        let evil = evil.into_inner();
        assert!(decode_rows(&mut Reader::new(&evil)).is_err());
    }
}
