//! The query-batch interface: DP-based merging into reuse-aware shared
//! plans (paper §4.2).
//!
//! Merge configurations are built incrementally: starting from the first
//! query, every subsequent query is either merged into one of the existing
//! shared groups (only legal when the join graphs are identical) or kept as
//! a separate single-query plan. At every level the configuration with the
//! minimal estimated total runtime survives; evaluated group costs are
//! memoized (paper Figure 6).

use std::collections::HashMap;
use std::sync::Arc;

use hashstash_types::{HsError, Result};

use hashstash_cache::HtManager;
use hashstash_exec::shared::{
    SharedGroupSpec, SharedJoinStep, SharedOutput, SharedPlanSpec, SharedReuse,
};
use hashstash_plan::{HtFingerprint, HtKind, PredBox, QuerySpec, Region};
use hashstash_storage::Catalog;

use crate::cost::CostModel;
use crate::matching::Matcher;
use crate::optimizer::{Optimizer, OptimizerConfig};
use crate::stats::DbStats;

/// One unit of a batch plan.
#[derive(Debug)]
pub enum BatchUnit {
    /// Execute the query alone through the single-query interface.
    Single {
        /// Index into the batch.
        index: usize,
        /// Estimated cost.
        est_cost_ns: f64,
    },
    /// Execute several queries through one reuse-aware shared plan.
    Shared {
        /// Indices into the batch, in slot order.
        indices: Vec<usize>,
        /// The executable shared plan.
        spec: SharedPlanSpec,
        /// Estimated cost.
        est_cost_ns: f64,
    },
}

/// The planned batch.
#[derive(Debug)]
pub struct BatchPlan {
    pub units: Vec<BatchUnit>,
    pub est_cost_ns: f64,
}

/// Plan a batch of queries into single plans and reuse-aware shared plans.
///
/// `allow_sharing = false` degrades to one single-query unit per query
/// (the paper's "single-query plan" batch modes).
pub fn plan_batch(
    queries: &[QuerySpec],
    catalog: &Catalog,
    stats: &DbStats,
    cost: &CostModel,
    config: OptimizerConfig,
    htm: &HtManager,
    allow_sharing: bool,
) -> Result<BatchPlan> {
    if queries.is_empty() {
        return Ok(BatchPlan {
            units: vec![],
            est_cost_ns: 0.0,
        });
    }
    if queries.len() > hashstash_types::QidSet::CAPACITY {
        return Err(HsError::PlanError(format!(
            "batch of {} queries exceeds the {}-query tag capacity",
            queries.len(),
            hashstash_types::QidSet::CAPACITY
        )));
    }
    let policy = config.policy.clone();
    let optimizer = Optimizer::new(catalog, stats, cost, config);
    let mut single_cost: Vec<f64> = Vec::with_capacity(queries.len());
    for q in queries.iter() {
        single_cost.push(optimizer.optimize(q, htm)?.est_cost_ns);
    }

    // Incremental DP over merge configurations (paper Figure 6): groups of
    // query indices; singletons may later become shared groups.
    let mut groups: Vec<Vec<usize>> = vec![vec![0]];
    if allow_sharing {
        let mut group_cost_memo: HashMap<Vec<usize>, f64> = HashMap::new();
        let mut eval_group = |g: &Vec<usize>, htm: &HtManager| -> f64 {
            if g.len() == 1 {
                return single_cost[g[0]];
            }
            if let Some(&c) = group_cost_memo.get(g) {
                return c;
            }
            let qs: Vec<&QuerySpec> = g.iter().map(|&i| &queries[i]).collect();
            let c = estimate_shared_cost(&qs, stats, cost, htm);
            group_cost_memo.insert(g.clone(), c);
            c
        };
        for i in 1..queries.len() {
            // Option A: keep query i separate.
            let mut best_groups = groups.clone();
            best_groups.push(vec![i]);
            let mut best_cost: f64 = best_groups.iter().map(|g| eval_group(g, htm)).sum();
            // Option B: merge query i into each mergeable existing group.
            for gi in 0..groups.len() {
                let mergeable = groups[gi]
                    .iter()
                    .all(|&j| queries[j].same_join_graph(&queries[i]));
                if !mergeable {
                    continue;
                }
                let mut candidate = groups.clone();
                candidate[gi].push(i);
                let total: f64 = candidate.iter().map(|g| eval_group(g, htm)).sum();
                if total < best_cost {
                    best_cost = total;
                    best_groups = candidate;
                }
            }
            groups = best_groups;
        }
    } else {
        groups = (0..queries.len()).map(|i| vec![i]).collect();
    }

    // Materialize units.
    let mut units = Vec::new();
    let mut total = 0.0;
    for g in groups {
        if g.len() == 1 {
            let c = single_cost[g[0]];
            total += c;
            units.push(BatchUnit::Single {
                index: g[0],
                est_cost_ns: c,
            });
        } else {
            let qs: Vec<QuerySpec> = g.iter().map(|&i| queries[i].clone()).collect();
            let refs: Vec<&QuerySpec> = qs.iter().collect();
            let c = estimate_shared_cost(&refs, stats, cost, htm);
            let spec = derive_shared_spec(&qs, catalog, stats, htm, policy.as_ref())?;
            total += c;
            units.push(BatchUnit::Shared {
                indices: g,
                spec,
                est_cost_ns: c,
            });
        }
    }
    Ok(BatchPlan {
        units,
        est_cost_ns: total,
    })
}

/// Union of the queries' predicate regions.
fn union_region(queries: &[&QuerySpec]) -> Region {
    queries
        .iter()
        .fold(Region::empty(), |acc, q| acc.union(&q.region()))
}

/// Estimated runtime of one shared plan over a group of queries.
fn estimate_shared_cost(
    queries: &[&QuerySpec],
    stats: &DbStats,
    cost: &CostModel,
    htm: &HtManager,
) -> f64 {
    let q0 = queries[0];
    let union = union_region(queries);
    let (driver, others) = split_driver(q0, stats);

    // Driver scan over the union region.
    let driver_rows = stats.filtered_rows(&driver, &union);
    let mut total = cost
        .scan(stats.table_rows(&driver) as f64)
        .min(cost.index_scan(driver_rows));

    // Build (or retag) one tagged table per non-driver table.
    let matcher = Matcher;
    for t in &others {
        let table_region = project_region(&union, t);
        let build_rows = stats.filtered_rows(t, &table_region);
        // Probe volume: the pipeline stream (approximated by driver rows).
        let fresh = cost.rhj_fresh(build_rows.max(1.0), 24.0, driver_rows);
        // A tagged candidate lets us pay re-tag instead of build.
        let request = tagged_join_fingerprint(q0, t, &table_region);
        let request_box = q0.predicates.project_table(t);
        let candidates = matcher.find_matches(htm, &request, &request_box, stats);
        let reuse = candidates
            .iter()
            .map(|m| {
                cost.retag(m.candidate.entries as f64)
                    + cost.rhj_fresh(build_rows * (1.0 - m.contr), 24.0, driver_rows)
            })
            .fold(f64::INFINITY, f64::min);
        total += fresh.min(reuse);
    }

    // Grouping phase: one insert per joined row; aggregation per query.
    let joined = stats.join_rows(q0.tables.iter().map(|t| t.as_ref()), &q0.joins, &union);
    total += cost.rha_fresh(joined, joined, 48.0) * 0.5; // grouping inserts
    for q in queries {
        let rows_q = stats.join_rows(q.tables.iter().map(|t| t.as_ref()), &q.joins, &q.region());
        let groups = stats.distinct_combinations(&q.group_by, rows_q.max(1.0));
        total += cost.rha_fresh(rows_q, groups, 48.0) * 0.5 + cost.output(groups);
    }
    total
}

/// Pick the driver (largest) table; the rest become build sides.
fn split_driver(q: &QuerySpec, stats: &DbStats) -> (Arc<str>, Vec<Arc<str>>) {
    let driver = q
        .tables
        .iter()
        .max_by_key(|t| stats.table_rows(t))
        .expect("query has tables")
        .clone();
    let others = q.tables.iter().filter(|t| **t != driver).cloned().collect();
    (driver, others)
}

fn project_region(region: &Region, table: &str) -> Region {
    let mut out = Region::empty();
    for b in region.boxes() {
        out = out.union(&Region::from_box(b.project_table(table)));
    }
    out
}

fn tagged_join_fingerprint(q: &QuerySpec, table: &Arc<str>, region: &Region) -> HtFingerprint {
    HtFingerprint {
        kind: HtKind::JoinBuild,
        tables: std::iter::once(table.clone()).collect(),
        edges: vec![],
        region: region.clone(),
        key_attrs: q
            .joins
            .iter()
            .find_map(|e| e.col_of(table))
            .map(|c| vec![c.clone()])
            .unwrap_or_default(),
        payload_attrs: shared_required_attrs(std::slice::from_ref(q), table),
        aggregates: vec![],
        tagged: true,
    }
}

/// Attributes a shared build side must carry for a set of queries: join
/// keys, predicate attributes (for re-tagging) and group/agg inputs.
fn shared_required_attrs(queries: &[QuerySpec], table: &str) -> Vec<Arc<str>> {
    let prefix = format!("{table}.");
    let mut out: Vec<Arc<str>> = Vec::new();
    let add = |a: &Arc<str>, out: &mut Vec<Arc<str>>| {
        if a.starts_with(&prefix) && !out.contains(a) {
            out.push(a.clone());
        }
    };
    for q in queries {
        for e in &q.joins {
            if let Some(c) = e.col_of(table) {
                if !out.contains(c) {
                    out.push(c.clone());
                }
            }
        }
        for (a, _) in q.predicates.constrained() {
            add(a, &mut out);
        }
        for g in &q.group_by {
            add(g, &mut out);
        }
        for agg in &q.aggregates {
            add(&agg.attr, &mut out);
        }
        for p in &q.projection {
            add(p, &mut out);
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Derive an executable [`SharedPlanSpec`] for a mergeable group, making
/// reuse decisions against the current cache state. The policy filters
/// reuse candidates and gates which tagged tables are admitted (published)
/// into the cache.
pub fn derive_shared_spec(
    queries: &[QuerySpec],
    catalog: &Catalog,
    stats: &DbStats,
    htm: &HtManager,
    policy: &dyn crate::policy::ReusePolicy,
) -> Result<SharedPlanSpec> {
    let q0 = &queries[0];
    let (driver, _) = split_driver(q0, stats);
    let union = union_region(queries.iter().collect::<Vec<_>>().as_slice());
    let matcher = Matcher;

    // BFS join order from the driver.
    let mut covered: Vec<Arc<str>> = vec![driver.clone()];
    let mut steps: Vec<SharedJoinStep> = Vec::new();
    let mut remaining: Vec<Arc<str>> = q0
        .tables
        .iter()
        .filter(|t| **t != driver)
        .cloned()
        .collect();
    while !remaining.is_empty() {
        let mut advanced = false;
        for (ri, t) in remaining.iter().enumerate() {
            let edge = q0.joins.iter().find(|e| {
                (e.left_table == *t && covered.contains(&e.right_table))
                    || (e.right_table == *t && covered.contains(&e.left_table))
            });
            let Some(edge) = edge else { continue };
            let (probe_attr, build_key) = if edge.left_table == *t {
                (edge.right_col.clone(), edge.left_col.clone())
            } else {
                (edge.left_col.clone(), edge.right_col.clone())
            };
            let payload = shared_required_attrs(queries, t);
            let table_region = project_region(&union, t);
            let request = HtFingerprint {
                kind: HtKind::JoinBuild,
                tables: std::iter::once(t.clone()).collect(),
                edges: vec![],
                region: table_region.clone(),
                key_attrs: vec![build_key.clone()],
                payload_attrs: payload.clone(),
                aggregates: vec![],
                tagged: true,
            };
            let request_box = boxes_union_box(queries, t);
            let m = if policy.wants_candidates() {
                policy.candidates(
                    &request,
                    matcher.find_matches(htm, &request, &request_box, stats),
                )
            } else {
                Vec::new()
            };
            let m = m.into_iter().max_by(|a, b| {
                a.contr
                    .partial_cmp(&b.contr)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let reuse = m.map(|m| SharedReuse {
                id: m.candidate.id,
                case: m.case,
                delta_region: m.delta_region,
                request_region: table_region.clone(),
                cached_region: m.candidate.fingerprint.region.clone(),
            });
            steps.push(SharedJoinStep {
                table: t.clone(),
                probe_attr,
                build_key,
                payload,
                reuse: reuse.clone(),
                publish: (policy.admit(&request) && reuse.is_none()).then(|| request.clone()),
            });
            covered.push(t.clone());
            remaining.remove(ri);
            advanced = true;
            break;
        }
        if !advanced {
            return Err(HsError::PlanError(
                "shared plan: join graph is not connected from the driver".into(),
            ));
        }
    }

    // Shared grouping phases: one per distinct group-by list.
    let mut group_specs: Vec<SharedGroupSpec> = Vec::new();
    let mut outputs: Vec<SharedOutput> = Vec::new();
    for q in queries {
        if q.is_aggregate() {
            let gi = match group_specs.iter().position(|g| g.group_by == q.group_by) {
                Some(gi) => gi,
                None => {
                    // Stored attrs: everything any sharing query needs.
                    let sharing: Vec<QuerySpec> = queries
                        .iter()
                        .filter(|p| p.group_by == q.group_by && p.is_aggregate())
                        .cloned()
                        .collect();
                    let mut stored: Vec<Arc<str>> = q.group_by.clone();
                    for s in &sharing {
                        for a in &s.aggregates {
                            if !stored.contains(&a.attr) {
                                stored.push(a.attr.clone());
                            }
                        }
                        for (a, _) in s.predicates.constrained() {
                            if !stored.contains(a) {
                                stored.push(a.clone());
                            }
                        }
                    }
                    stored.sort();
                    stored.dedup();
                    let request = HtFingerprint {
                        kind: HtKind::SharedGroup,
                        tables: q0.tables.clone(),
                        edges: {
                            let mut e = q0.joins.clone();
                            e.sort();
                            e
                        },
                        region: union.clone(),
                        key_attrs: q.group_by.clone(),
                        payload_attrs: stored.clone(),
                        aggregates: vec![],
                        tagged: true,
                    };
                    let request_box = whole_union_box(queries);
                    let m = if policy.wants_candidates() {
                        policy.candidates(
                            &request,
                            matcher.find_matches(htm, &request, &request_box, stats),
                        )
                    } else {
                        Vec::new()
                    };
                    let m = m
                        .into_iter()
                        .filter(|m| !m.needs_post_group)
                        .max_by(|a, b| {
                            a.contr
                                .partial_cmp(&b.contr)
                                .unwrap_or(std::cmp::Ordering::Equal)
                        });
                    let reuse = m.map(|m| SharedReuse {
                        id: m.candidate.id,
                        case: m.case,
                        delta_region: m.delta_region,
                        request_region: union.clone(),
                        cached_region: m.candidate.fingerprint.region.clone(),
                    });
                    group_specs.push(SharedGroupSpec {
                        group_by: q.group_by.clone(),
                        stored_attrs: stored,
                        reuse: reuse.clone(),
                        publish: (policy.admit(&request) && reuse.is_none()).then_some(request),
                    });
                    group_specs.len() - 1
                }
            };
            outputs.push(SharedOutput::Aggregate {
                group_spec: gi,
                aggs: q.aggregates.clone(),
            });
        } else {
            let attrs = if q.projection.is_empty() {
                shared_required_attrs(std::slice::from_ref(q), &driver)
            } else {
                q.projection.clone()
            };
            outputs.push(SharedOutput::Projection(attrs));
        }
    }

    let driver_attrs = shared_required_attrs(queries, &driver);
    let _ = catalog;
    Ok(SharedPlanSpec {
        queries: queries.to_vec(),
        driver,
        driver_attrs,
        steps,
        group_specs,
        outputs,
    })
}

/// The smallest single box covering the union of the queries' predicates on
/// one table (used as a representative post-filter box for matching).
fn boxes_union_box(queries: &[QuerySpec], table: &str) -> PredBox {
    let mut out = PredBox::all();
    // Conservative: intersect nothing — matching only uses this for
    // post-filter attr coverage, and re-tagging supersedes post-filters in
    // shared plans. Keep the attrs visible.
    for q in queries {
        if let Some((a, iv)) = q.predicates.project_table(table).constrained().next() {
            out.constrain(a.clone(), iv.clone());
        }
    }
    out
}

fn whole_union_box(queries: &[QuerySpec]) -> PredBox {
    queries
        .first()
        .map(|q| q.predicates.clone())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hashstash_cache::GcConfig;
    use hashstash_exec::shared::execute_shared;
    use hashstash_exec::{ExecContext, TempTableCache};
    use hashstash_plan::{AggExpr, AggFunc, Interval, QueryBuilder};
    use hashstash_storage::tpch::{generate, TpchConfig};
    use hashstash_types::Value;

    fn setup() -> (Catalog, DbStats, CostModel) {
        let cat = generate(TpchConfig::new(0.002, 31));
        let stats = DbStats::from_catalog(&cat);
        (cat, stats, CostModel::synthetic())
    }

    fn mk(id: u32, lo: i64, hi: i64) -> QuerySpec {
        QueryBuilder::new(id)
            .join(
                "customer",
                "customer.c_custkey",
                "orders",
                "orders.o_custkey",
            )
            .filter(
                "customer.c_age",
                Interval::closed(Value::Int(lo), Value::Int(hi)),
            )
            .group_by("customer.c_age")
            .agg(AggExpr::new(AggFunc::Count, "orders.o_orderkey"))
            .build()
            .unwrap()
    }

    #[test]
    fn batch_merges_same_join_graph() {
        let (cat, stats, cost) = setup();
        let htm = HtManager::new(GcConfig::default());
        let queries = vec![mk(1, 20, 40), mk(2, 30, 50), mk(3, 35, 60), mk(4, 50, 70)];
        let plan = plan_batch(
            &queries,
            &cat,
            &stats,
            &cost,
            OptimizerConfig::default(),
            &htm,
            true,
        )
        .unwrap();
        // All four share a join graph — expect at least one shared unit.
        assert!(plan
            .units
            .iter()
            .any(|u| matches!(u, BatchUnit::Shared { .. })));
        let covered: usize = plan
            .units
            .iter()
            .map(|u| match u {
                BatchUnit::Single { .. } => 1,
                BatchUnit::Shared { indices, .. } => indices.len(),
            })
            .sum();
        assert_eq!(covered, 4, "every query appears exactly once");
    }

    #[test]
    fn batch_keeps_different_join_graphs_apart() {
        let (cat, stats, cost) = setup();
        let htm = HtManager::new(GcConfig::default());
        let other = QueryBuilder::new(9)
            .join("part", "part.p_partkey", "lineitem", "lineitem.l_partkey")
            .filter(
                "part.p_size",
                Interval::closed(Value::Int(1), Value::Int(10)),
            )
            .group_by("part.p_brand")
            .agg(AggExpr::new(AggFunc::Sum, "lineitem.l_quantity"))
            .build()
            .unwrap();
        let queries = vec![mk(1, 20, 40), other, mk(3, 30, 50)];
        let plan = plan_batch(
            &queries,
            &cat,
            &stats,
            &cost,
            OptimizerConfig::default(),
            &htm,
            true,
        )
        .unwrap();
        for u in &plan.units {
            if let BatchUnit::Shared { indices, .. } = u {
                assert!(
                    !indices.contains(&1),
                    "the part–lineitem query must not merge with customer–orders"
                );
            }
        }
    }

    #[test]
    fn derived_shared_spec_executes_correctly() {
        let (cat, stats, _cost) = setup();
        let htm = HtManager::new(GcConfig::default());
        let queries = vec![mk(1, 20, 40), mk(2, 30, 60)];
        let spec = derive_shared_spec(&queries, &cat, &stats, &htm, &crate::policy::CostBasedReuse)
            .unwrap();
        let temps = TempTableCache::unbounded();
        let mut ctx = ExecContext::new(&cat, &htm, &temps);
        let results = execute_shared(&spec, &mut ctx).unwrap();
        assert_eq!(results.len(), 2);
        // Cross-check one query against the single-query path.
        let cost = CostModel::synthetic();
        let opt = Optimizer::new(
            &cat,
            &stats,
            &cost,
            OptimizerConfig::with_policy(std::sync::Arc::new(crate::policy::NoReuse)),
        );
        let htm2 = HtManager::new(GcConfig::default());
        let oq = opt.optimize(&queries[0], &htm2).unwrap();
        let temps2 = TempTableCache::unbounded();
        let mut ctx2 = ExecContext::new(&cat, &htm2, &temps2);
        let (_, mut expect) = hashstash_exec::execute(&oq.plan, &mut ctx2).unwrap();
        expect.sort();
        let mut got = results[0].rows.clone();
        got.sort();
        assert_eq!(got.len(), expect.len());
        for (a, b) in got.iter().zip(&expect) {
            assert_eq!(a.get(0), b.get(0));
        }
    }

    #[test]
    fn oversized_batch_rejected() {
        let (cat, stats, cost) = setup();
        let htm = HtManager::new(GcConfig::default());
        let queries: Vec<QuerySpec> = (0..65).map(|i| mk(i, 20, 40)).collect();
        assert!(plan_batch(
            &queries,
            &cat,
            &stats,
            &cost,
            OptimizerConfig::default(),
            &htm,
            true
        )
        .is_err());
    }

    #[test]
    fn empty_batch_is_empty_plan() {
        let (cat, stats, cost) = setup();
        let htm = HtManager::new(GcConfig::default());
        let plan = plan_batch(
            &[],
            &cat,
            &stats,
            &cost,
            OptimizerConfig::default(),
            &htm,
            true,
        )
        .unwrap();
        assert!(plan.units.is_empty());
        assert_eq!(plan.est_cost_ns, 0.0);
    }
}
