//! Single-query reuse-aware plan enumeration (paper §3, Algorithm 1).
//!
//! The optimizer performs a memoized top-down partitioning search over the
//! join graph. For every partition `(G_l, G_r)` and both build orientations
//! it enumerates the candidate hash tables for the build side (plus a fresh
//! table), rewrites the sub-plan for the applicable reuse case — eliminating
//! it entirely for exact/subsuming reuse, or replacing it with a delta
//! sub-plan over `R \ C` for partial/overlapping reuse — and costs every
//! alternative with the reuse-aware cost models. SPJA queries add an
//! aggregation enumeration on top (paper §3.1, "Complex Queries").
//!
//! Benefit-oriented optimizations (§3.4) are controlled by
//! [`OptimizerConfig`]: the `AVG → SUM,COUNT` rewrite, storing selection
//! attributes in join payloads for future post-filtering, and a join-order
//! preference for hash tables with more future reuse potential.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use hashstash_types::{HsError, Result};

use hashstash_cache::HtManager;
use hashstash_exec::plan::{OutputAgg, PhysicalPlan, ReuseSpec, ScanSpec};
use hashstash_plan::{
    AggExpr, AggFunc, HtFingerprint, HtKind, JoinGraph, PredBox, QuerySpec, Region,
};
use hashstash_storage::Catalog;

use crate::cost::{CandidateShape, CostModel};
use crate::matching::{MatchRewrite, Matcher};
use crate::policy::{CostBasedReuse, ReusePolicy};
use crate::stats::DbStats;

/// Optimizer knobs.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Reuse decision policy consulted at every pipeline breaker (which
    /// candidates to consider, what to admit into the cache, and whether
    /// reuse is greedily preferred). See [`crate::policy`].
    pub policy: Arc<dyn ReusePolicy>,
    /// Benefit-oriented: rewrite `AVG` to `SUM`+`COUNT` (paper §3.4).
    pub avg_rewrite: bool,
    /// Benefit-oriented: store selection attributes in join payloads so
    /// future queries can post-filter (paper §3.4).
    pub additional_attributes: bool,
    /// Benefit-oriented: within `benefit_epsilon` of the best cost, prefer
    /// the plan that builds hash tables with more future reuse potential.
    pub benefit_join_order: bool,
    /// Relative cost slack for the benefit preference.
    pub benefit_epsilon: f64,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            policy: Arc::new(CostBasedReuse),
            avg_rewrite: true,
            additional_attributes: true,
            benefit_join_order: true,
            benefit_epsilon: 0.1,
        }
    }
}

impl OptimizerConfig {
    /// Default knobs under the given reuse policy.
    pub fn with_policy(policy: Arc<dyn ReusePolicy>) -> Self {
        OptimizerConfig {
            policy,
            ..OptimizerConfig::default()
        }
    }
}

/// Estimated cost of one enumerated sub-plan group (paper Fig. 10 feeds on
/// these).
#[derive(Debug, Clone)]
pub struct SubPlanCost {
    /// Human label, e.g. `CO` for the {customer, orders} partition.
    pub label: String,
    /// Estimated cost in nanoseconds.
    pub est_cost_ns: f64,
    /// Whether the chosen sub-plan reuses a cached table.
    pub reused: bool,
}

/// The optimizer's result for one query.
#[derive(Debug, Clone)]
pub struct OptimizedQuery {
    /// Executable plan.
    pub plan: PhysicalPlan,
    /// Estimated total cost (ns).
    pub est_cost_ns: f64,
    /// Best estimated cost per enumerated connected sub-graph.
    pub subplans: Vec<SubPlanCost>,
}

/// Memo entry of the reuse-free delta-pipeline cache: `(plan, cost, rows)`.
type FreshPlanEntry = (PhysicalPlan, f64, f64);

#[derive(Debug, Clone)]
struct PlanInfo {
    plan: PhysicalPlan,
    cost: f64,
    rows: f64,
    reused: bool,
    /// Future-benefit score for the §3.4 join-order preference.
    benefit: f64,
}

/// The reuse-aware optimizer.
pub struct Optimizer<'a> {
    catalog: &'a Catalog,
    stats: &'a DbStats,
    cost: &'a CostModel,
    config: OptimizerConfig,
    matcher: Matcher,
    /// Per-optimize memo for reuse-free delta pipelines, keyed by
    /// `(mask, predicate, needed attrs)`. Delta plans are enumerated once
    /// per candidate otherwise — quadratic in cache size without this.
    fresh_memo: std::cell::RefCell<HashMap<(u64, String, String), FreshPlanEntry>>,
}

impl<'a> Optimizer<'a> {
    /// Construct an optimizer over the given catalog, statistics and cost
    /// model.
    pub fn new(
        catalog: &'a Catalog,
        stats: &'a DbStats,
        cost: &'a CostModel,
        config: OptimizerConfig,
    ) -> Self {
        Optimizer {
            catalog,
            stats,
            cost,
            config,
            matcher: Matcher,
            fresh_memo: std::cell::RefCell::new(HashMap::new()),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &OptimizerConfig {
        &self.config
    }

    /// Optimize a query into a reuse-aware physical plan.
    pub fn optimize(&self, q: &QuerySpec, htm: &HtManager) -> Result<OptimizedQuery> {
        let graph = JoinGraph::of_query(q);
        let mut memo: HashMap<u64, PlanInfo> = HashMap::new();
        self.fresh_memo.borrow_mut().clear();
        let full = graph.all();
        let join_info = self.best_plan(q, &graph, full, htm, &mut memo)?;
        let mut subplans = self.collect_subplans(&graph, &memo);

        let (plan, cost) = if q.is_aggregate() {
            let (plan, cost, reused) = self.plan_aggregate(q, &graph, join_info, htm)?;
            subplans.push(SubPlanCost {
                label: "AGG".to_string(),
                est_cost_ns: cost,
                reused,
            });
            (plan, cost)
        } else {
            let mut cost = join_info.cost;
            let plan = if q.projection.is_empty() {
                join_info.plan
            } else {
                cost += self.cost.output(join_info.rows);
                PhysicalPlan::Project {
                    input: Box::new(join_info.plan),
                    attrs: q.projection.clone(),
                }
            };
            (plan, cost)
        };

        Ok(OptimizedQuery {
            plan,
            est_cost_ns: cost,
            subplans,
        })
    }

    /// Enumerate the best plan per connected sub-graph (already memoized
    /// during optimization) for estimator-accuracy experiments.
    fn collect_subplans(
        &self,
        graph: &JoinGraph,
        memo: &HashMap<u64, PlanInfo>,
    ) -> Vec<SubPlanCost> {
        let mut out: Vec<SubPlanCost> = memo
            .iter()
            .filter(|(mask, _)| mask.count_ones() >= 2)
            .map(|(mask, info)| SubPlanCost {
                label: mask_label(graph, *mask),
                est_cost_ns: info.cost,
                reused: info.reused,
            })
            .collect();
        out.sort_by(|a, b| a.label.cmp(&b.label));
        out
    }

    // -----------------------------------------------------------------
    // Join enumeration (Algorithm 1)
    // -----------------------------------------------------------------

    fn best_plan(
        &self,
        q: &QuerySpec,
        graph: &JoinGraph,
        mask: u64,
        htm: &HtManager,
        memo: &mut HashMap<u64, PlanInfo>,
    ) -> Result<PlanInfo> {
        if let Some(hit) = memo.get(&mask) {
            return Ok(hit.clone());
        }
        let info = if mask.count_ones() == 1 {
            self.scan_plan(q, graph, mask)?
        } else {
            let mut best: Option<PlanInfo> = None;
            for (l, r) in graph.connected_partitions(mask) {
                for (probe_mask, build_mask) in [(l, r), (r, l)] {
                    let options = self.join_options(q, graph, probe_mask, build_mask, htm, memo)?;
                    for opt in options {
                        best = Some(self.pick(best.take(), opt));
                    }
                }
            }
            best.ok_or_else(|| {
                HsError::PlanError(format!("no connected partition for mask {mask:#b}"))
            })?
        };
        memo.insert(mask, info.clone());
        Ok(info)
    }

    /// Choose between the incumbent and a challenger according to the
    /// strategy and the benefit-oriented join-order preference.
    fn pick(&self, incumbent: Option<PlanInfo>, challenger: PlanInfo) -> PlanInfo {
        let Some(inc) = incumbent else {
            return challenger;
        };
        if self.config.policy.prefer_reuse() {
            // Prefer any reusing plan over a non-reusing one.
            match (inc.reused, challenger.reused) {
                (true, false) => return inc,
                (false, true) => return challenger,
                _ => {}
            }
        }
        if self.config.benefit_join_order {
            let eps = self.config.benefit_epsilon;
            let close =
                (inc.cost - challenger.cost).abs() <= eps * inc.cost.min(challenger.cost).max(1.0);
            if close && challenger.benefit != inc.benefit {
                return if challenger.benefit > inc.benefit {
                    challenger
                } else {
                    inc
                };
            }
        }
        if challenger.cost < inc.cost {
            challenger
        } else {
            inc
        }
    }

    fn scan_plan(&self, q: &QuerySpec, graph: &JoinGraph, mask: u64) -> Result<PlanInfo> {
        let table = graph
            .tables_of_mask(mask)
            .into_iter()
            .next()
            .ok_or_else(|| HsError::PlanError("empty scan mask".into()))?;
        let pred = q.predicates.project_table(&table);
        let region = Region::from_box(pred.clone());
        let rows = self.stats.filtered_rows(&table, &region);
        let projection = self.required_attrs(q, &table);
        // Index access when any constrained attribute is indexed.
        let table_ref = self.catalog.get(&table)?;
        let indexed = pred.constrained().any(|(attr, _)| {
            attr.split('.')
                .nth(1)
                .is_some_and(|col| table_ref.index_on(col).is_some())
        });
        let scan_cost = if indexed {
            self.cost
                .index_scan(rows)
                .min(self.cost.scan(self.stats.table_rows(&table) as f64))
        } else {
            self.cost.scan(self.stats.table_rows(&table) as f64)
        };
        Ok(PlanInfo {
            plan: PhysicalPlan::Scan(ScanSpec {
                table: table.clone(),
                region,
                projection,
            }),
            cost: scan_cost,
            rows,
            reused: false,
            benefit: 0.0,
        })
    }

    /// All alternatives for joining `probe_mask` with a hash table over
    /// `build_mask`: one fresh build plus every matched reuse.
    #[allow(clippy::too_many_arguments)]
    fn join_options(
        &self,
        q: &QuerySpec,
        graph: &JoinGraph,
        probe_mask: u64,
        build_mask: u64,
        htm: &HtManager,
        memo: &mut HashMap<u64, PlanInfo>,
    ) -> Result<Vec<PlanInfo>> {
        let cross = graph.cross_edges(probe_mask, build_mask);
        let edge = cross
            .first()
            .ok_or_else(|| HsError::PlanError("partition without cross edge".into()))?;
        let build_tables = graph.tables_of_mask(build_mask);
        let (probe_key, build_key) = if build_tables.contains(&edge.left_table) {
            (edge.right_col.clone(), edge.left_col.clone())
        } else {
            (edge.left_col.clone(), edge.right_col.clone())
        };

        let probe_info = self.best_plan(q, graph, probe_mask, htm, memo)?;
        let out_rows = self.stats.join_rows(
            graph
                .tables_of_mask(probe_mask | build_mask)
                .iter()
                .map(|t| t.as_ref()),
            &graph.edges_within_mask(probe_mask | build_mask),
            &q.region(),
        );

        // Request fingerprint describing what a build-side table looks like.
        let request_box = restrict_box(&q.predicates, &build_tables);
        let request_fp = self.build_fingerprint(q, graph, build_mask, &build_key, &request_box);
        let build_rows = self.stats.join_rows(
            build_tables.iter().map(|t| t.as_ref()),
            &graph.edges_within_mask(build_mask),
            &request_fp.region,
        );
        let payload_width = self.payload_width(&request_fp.payload_attrs);

        let mut options = Vec::new();

        // --- Fresh build (always an option; AlwaysShare falls back to it
        // when no candidate matches) ---------------------------------------
        {
            let build_info = self.best_plan(q, graph, build_mask, htm, memo)?;
            let join_cost =
                self.cost
                    .rhj_fresh(build_info.rows.max(1.0), payload_width, probe_info.rows);
            let cost = probe_info.cost + build_info.cost + join_cost + self.cost.output(out_rows);
            // Benefit-scored admission: the policy sees what a future exact
            // reuse of this build would save per byte of cache footprint.
            let score = self
                .cost
                .admission_score_join(build_info.rows.max(1.0), payload_width);
            options.push(PlanInfo {
                plan: PhysicalPlan::HashJoin {
                    probe: Box::new(probe_info.plan.clone()),
                    build: Some(Box::new(build_info.plan.clone())),
                    probe_key: probe_key.clone(),
                    build_key: build_key.clone(),
                    reuse: None,
                    publish: self
                        .config
                        .policy
                        .admit_scored(&request_fp, &score)
                        .then(|| request_fp.clone()),
                },
                cost,
                rows: out_rows,
                reused: probe_info.reused || build_info.reused,
                benefit: probe_info.benefit + build_info.benefit + build_info.rows,
            });
        }

        // --- Reuse candidates --------------------------------------------
        let matches = if self.config.policy.wants_candidates() {
            self.config.policy.candidates(
                &request_fp,
                self.matcher
                    .find_matches(htm, &request_fp, &request_box, self.stats),
            )
        } else {
            Vec::new()
        };
        for m in matches {
            let opt = self.reuse_join_option(
                q,
                graph,
                build_mask,
                &probe_info,
                &probe_key,
                &build_key,
                &request_fp,
                build_rows,
                out_rows,
                &m,
            )?;
            options.push(opt);
        }
        Ok(options)
    }

    #[allow(clippy::too_many_arguments)]
    fn reuse_join_option(
        &self,
        q: &QuerySpec,
        graph: &JoinGraph,
        build_mask: u64,
        probe_info: &PlanInfo,
        probe_key: &Arc<str>,
        build_key: &Arc<str>,
        request_fp: &HtFingerprint,
        build_rows: f64,
        out_rows: f64,
        m: &MatchRewrite,
    ) -> Result<PlanInfo> {
        let shape = CandidateShape {
            entries: m.candidate.entries as f64,
            bytes: m.candidate.bytes as f64,
            tuple_width: m.candidate.tuple_width as f64,
            contr: m.contr,
            overh: m.overh,
        };
        let mut cost = probe_info.cost
            + self
                .cost
                .rhj_reuse(&shape, build_rows, probe_info.rows, out_rows)
            + self.cost.output(out_rows);
        let build = if m.case.needs_delta() {
            let (delta_plan, delta_cost) =
                self.delta_plan(q, graph, build_mask, &m.delta_region, &m.candidate.schema)?;
            cost += delta_cost;
            delta_plan.map(Box::new)
        } else {
            None
        };
        Ok(PlanInfo {
            plan: PhysicalPlan::HashJoin {
                probe: Box::new(probe_info.plan.clone()),
                build,
                probe_key: probe_key.clone(),
                build_key: build_key.clone(),
                reuse: Some(ReuseSpec {
                    id: m.candidate.id,
                    case: m.case,
                    post_filter: m.post_filter.clone(),
                    request_region: request_fp.region.clone(),
                    cached_region: m.candidate.fingerprint.region.clone(),
                    schema: m.candidate.schema.clone(),
                }),
                publish: None,
            },
            cost,
            rows: out_rows,
            reused: true,
            benefit: probe_info.benefit + m.candidate.entries as f64,
        })
    }

    /// Delta sub-plan producing the rows of `delta_region` over the build
    /// sub-graph, projected onto the cached table's schema order. One fresh
    /// (reuse-free) pipeline per disjoint box, concatenated by a union.
    fn delta_plan(
        &self,
        q: &QuerySpec,
        graph: &JoinGraph,
        mask: u64,
        delta_region: &Region,
        cached_schema: &hashstash_types::Schema,
    ) -> Result<(Option<PhysicalPlan>, f64)> {
        if delta_region.is_empty() {
            return Ok((None, 0.0));
        }
        let attrs: Vec<Arc<str>> = cached_schema
            .fields()
            .iter()
            .map(|f| Arc::from(f.name.as_str()))
            .collect();
        let mut inputs = Vec::new();
        let mut total_cost = 0.0;
        for b in delta_region.boxes() {
            let (plan, cost, _) = self.fresh_plan(q, graph, mask, b, &attrs)?;
            total_cost += cost;
            inputs.push(PhysicalPlan::Project {
                input: Box::new(plan),
                attrs: attrs.clone(),
            });
        }
        let plan = if inputs.len() == 1 {
            inputs.pop().expect("one input")
        } else {
            PhysicalPlan::Union { inputs }
        };
        Ok((Some(plan), total_cost))
    }

    /// A reuse-free pipeline over `mask` under the predicate `pred`, keeping
    /// at least `needed_attrs` (plus internal join keys) in flight.
    /// Returns `(plan, cost, rows)`.
    fn fresh_plan(
        &self,
        q: &QuerySpec,
        graph: &JoinGraph,
        mask: u64,
        pred: &PredBox,
        needed_attrs: &[Arc<str>],
    ) -> Result<(PhysicalPlan, f64, f64)> {
        let key = (
            mask,
            pred.to_string(),
            needed_attrs
                .iter()
                .map(|a| a.as_ref())
                .collect::<Vec<_>>()
                .join(","),
        );
        if let Some(hit) = self.fresh_memo.borrow().get(&key) {
            return Ok(hit.clone());
        }
        let out = self.fresh_plan_uncached(q, graph, mask, pred, needed_attrs)?;
        self.fresh_memo.borrow_mut().insert(key, out.clone());
        Ok(out)
    }

    fn fresh_plan_uncached(
        &self,
        q: &QuerySpec,
        graph: &JoinGraph,
        mask: u64,
        pred: &PredBox,
        needed_attrs: &[Arc<str>],
    ) -> Result<(PhysicalPlan, f64, f64)> {
        if mask.count_ones() == 1 {
            let table = graph
                .tables_of_mask(mask)
                .into_iter()
                .next()
                .expect("non-empty mask");
            let table_pred = pred.project_table(&table);
            let region = Region::from_box(table_pred.clone());
            let rows = self.stats.filtered_rows(&table, &region);
            // Projection: needed attrs of this table plus its join keys.
            let mut projection: Vec<Arc<str>> = needed_attrs
                .iter()
                .filter(|a| a.starts_with(&format!("{table}.")))
                .cloned()
                .collect();
            for e in &q.joins {
                if let Some(col) = e.col_of(&table) {
                    if !projection.contains(col) {
                        projection.push(col.clone());
                    }
                }
            }
            projection.sort();
            projection.dedup();
            let table_ref = self.catalog.get(&table)?;
            let indexed = table_pred.constrained().any(|(attr, _)| {
                attr.split('.')
                    .nth(1)
                    .is_some_and(|col| table_ref.index_on(col).is_some())
            });
            let cost = if indexed {
                self.cost
                    .index_scan(rows)
                    .min(self.cost.scan(self.stats.table_rows(&table) as f64))
            } else {
                self.cost.scan(self.stats.table_rows(&table) as f64)
            };
            return Ok((
                PhysicalPlan::Scan(ScanSpec {
                    table,
                    region,
                    projection,
                }),
                cost,
                rows,
            ));
        }
        // Multi-table: pick the cheapest connected partition, always
        // building over the right side (reuse-free, so orientation matters
        // only for cost).
        let mut best: Option<(PhysicalPlan, f64, f64)> = None;
        for (l, r) in graph.connected_partitions(mask) {
            for (probe_mask, build_mask) in [(l, r), (r, l)] {
                let cross = graph.cross_edges(probe_mask, build_mask);
                let Some(edge) = cross.first() else { continue };
                let build_tables = graph.tables_of_mask(build_mask);
                let (probe_key, build_key) = if build_tables.contains(&edge.left_table) {
                    (edge.right_col.clone(), edge.left_col.clone())
                } else {
                    (edge.left_col.clone(), edge.right_col.clone())
                };
                let (pp, pc, pr) = self.fresh_plan(q, graph, probe_mask, pred, needed_attrs)?;
                let (bp, bc, br) = self.fresh_plan(q, graph, build_mask, pred, needed_attrs)?;
                let region = Region::from_box(pred.clone());
                let rows = self.stats.join_rows(
                    graph.tables_of_mask(mask).iter().map(|t| t.as_ref()),
                    &graph.edges_within_mask(mask),
                    &region,
                );
                let width = 16.0;
                let cost = pc + bc + self.cost.rhj_fresh(br.max(1.0), width, pr);
                if best.as_ref().is_none_or(|(_, c, _)| cost < *c) {
                    best = Some((
                        PhysicalPlan::HashJoin {
                            probe: Box::new(pp),
                            build: Some(Box::new(bp)),
                            probe_key,
                            build_key,
                            reuse: None,
                            publish: None,
                        },
                        cost,
                        rows,
                    ));
                }
            }
        }
        best.ok_or_else(|| HsError::PlanError("no fresh plan for mask".into()))
    }

    // -----------------------------------------------------------------
    // Aggregation (SPJA root)
    // -----------------------------------------------------------------

    fn plan_aggregate(
        &self,
        q: &QuerySpec,
        graph: &JoinGraph,
        join_info: PlanInfo,
        htm: &HtManager,
    ) -> Result<(PhysicalPlan, f64, bool)> {
        let storage_aggs = self.storage_aggs(q);
        let output_aggs = map_output_aggs(&q.aggregates, &storage_aggs, self.config.avg_rewrite)?;
        let request_box = q.predicates.clone();
        let request_fp = HtFingerprint {
            kind: HtKind::Aggregate,
            tables: q.tables.clone(),
            edges: {
                let mut e = q.joins.clone();
                e.sort();
                e
            },
            region: q.region(),
            key_attrs: q.group_by.clone(),
            payload_attrs: q.group_by.clone(),
            aggregates: storage_aggs.clone(),
            tagged: false,
        };
        let groups = self
            .stats
            .distinct_combinations(&q.group_by, join_info.rows.max(1.0));
        let state_width = (q.group_by.len() * 8 + storage_aggs.len() * 8) as f64;

        // --- Fresh aggregation -------------------------------------------
        let fresh_cost = join_info.cost
            + self.cost.rha_fresh(join_info.rows, groups, state_width)
            + self.cost.output(groups);
        // Benefit-scored admission (see join_options): cycles a future
        // exact reuse of the grouped table would save, per byte kept.
        let agg_score = self
            .cost
            .admission_score_agg(join_info.rows, groups, state_width);
        let fresh = PlanInfo {
            plan: PhysicalPlan::HashAggregate {
                input: Some(Box::new(join_info.plan.clone())),
                group_by: q.group_by.clone(),
                aggs: storage_aggs.clone(),
                output_aggs: output_aggs.clone(),
                reuse: None,
                publish: self
                    .config
                    .policy
                    .admit_scored(&request_fp, &agg_score)
                    .then(|| request_fp.clone()),
                post_group_by: None,
            },
            cost: fresh_cost,
            rows: groups,
            reused: join_info.reused,
            benefit: join_info.benefit + groups,
        };
        let mut best = fresh;

        // --- Reuse candidates ---------------------------------------------
        let matches = if self.config.policy.wants_candidates() {
            self.config.policy.candidates(
                &request_fp,
                self.matcher
                    .find_matches(htm, &request_fp, &request_box, self.stats),
            )
        } else {
            Vec::new()
        };
        for m in matches {
            if let Some(opt) = self.reuse_agg_option(q, graph, &request_fp, groups, &m)? {
                best = self.pick(Some(best), opt);
            }
        }
        let reused = matches_reuse(&best.plan);
        Ok((best.plan, best.cost, reused))
    }

    fn reuse_agg_option(
        &self,
        q: &QuerySpec,
        graph: &JoinGraph,
        request_fp: &HtFingerprint,
        groups: f64,
        m: &MatchRewrite,
    ) -> Result<Option<PlanInfo>> {
        // Output mapping against the *cached* table's stored aggregates.
        let stored_aggs = m.candidate.fingerprint.aggregates.clone();
        let Ok(output_aggs) = map_output_aggs(&q.aggregates, &stored_aggs, self.config.avg_rewrite)
        else {
            return Ok(None); // cached table lacks a needed accumulator
        };
        let shape = CandidateShape {
            entries: m.candidate.entries as f64,
            bytes: m.candidate.bytes as f64,
            tuple_width: m.candidate.tuple_width as f64,
            contr: m.contr,
            overh: m.overh,
        };
        // Input rows that must still be folded in (delta only).
        let full_mask = graph.all();
        // The delta pipeline must feed the *cached* table's grouping keys
        // and aggregate inputs, which may be wider than the query's own
        // (post-group reuse folds delta rows into the finer-grained table).
        let mut extra_needed: Vec<Arc<str>> = m.candidate.fingerprint.key_attrs.clone();
        for a in &stored_aggs {
            if !extra_needed.contains(&a.attr) {
                extra_needed.push(a.attr.clone());
            }
        }
        // Every needed attribute must come from a table the query joins.
        let resolvable = extra_needed
            .iter()
            .all(|attr| attr.split('.').next().is_some_and(|t| q.tables.contains(t)));
        if !resolvable {
            return Ok(None);
        }
        let mut cost;
        let input = if m.case.needs_delta() {
            let (delta_plan, delta_cost) =
                self.delta_join_input(q, graph, full_mask, &m.delta_region, &extra_needed)?;
            let delta_rows = m
                .delta_region
                .boxes()
                .iter()
                .map(|b| {
                    self.stats.join_rows(
                        q.tables.iter().map(|t| t.as_ref()),
                        &q.joins,
                        &Region::from_box(b.clone()),
                    )
                })
                .sum::<f64>();
            cost = delta_cost + self.cost.rha_reuse(&shape, delta_rows, groups);
            delta_plan.map(Box::new)
        } else {
            cost = self.cost.rha_reuse(&shape, 0.0, groups);
            None
        };
        cost += self.cost.output(groups);
        let plan = PhysicalPlan::HashAggregate {
            input,
            group_by: m.candidate.fingerprint.key_attrs.clone(),
            aggs: stored_aggs,
            output_aggs,
            reuse: Some(ReuseSpec {
                id: m.candidate.id,
                case: m.case,
                post_filter: m.post_filter.clone(),
                request_region: request_fp.region.clone(),
                cached_region: m.candidate.fingerprint.region.clone(),
                schema: m.candidate.schema.clone(),
            }),
            publish: None,
            post_group_by: m.needs_post_group.then(|| q.group_by.clone()),
        };
        Ok(Some(PlanInfo {
            plan,
            cost,
            rows: groups,
            reused: true,
            benefit: m.candidate.entries as f64,
        }))
    }

    /// Delta input for a partially reused aggregate: the join pipeline over
    /// the whole query graph restricted to each delta box.
    fn delta_join_input(
        &self,
        q: &QuerySpec,
        graph: &JoinGraph,
        mask: u64,
        delta_region: &Region,
        extra_needed: &[Arc<str>],
    ) -> Result<(Option<PhysicalPlan>, f64)> {
        if delta_region.is_empty() {
            return Ok((None, 0.0));
        }
        // Attributes the aggregation needs from the pipeline.
        let mut needed: Vec<Arc<str>> = q.group_by.clone();
        for a in self.storage_aggs(q) {
            if !needed.contains(&a.attr) {
                needed.push(a.attr.clone());
            }
        }
        for a in extra_needed {
            if !needed.contains(a) {
                needed.push(a.clone());
            }
        }
        let mut inputs = Vec::new();
        let mut total = 0.0;
        for b in delta_region.boxes() {
            let (plan, cost, _) = self.fresh_plan(q, graph, mask, b, &needed)?;
            total += cost;
            inputs.push(plan);
        }
        // Normalize schemas across boxes via projection onto needed attrs +
        // join keys (fresh_plan keeps those); project to the needed list so
        // the union is well-formed.
        let mut proj = needed.clone();
        proj.sort();
        proj.dedup();
        let inputs: Vec<PhysicalPlan> = inputs
            .into_iter()
            .map(|p| PhysicalPlan::Project {
                input: Box::new(p),
                attrs: proj.clone(),
            })
            .collect();
        let plan = if inputs.len() == 1 {
            inputs.into_iter().next().expect("one input")
        } else {
            PhysicalPlan::Union { inputs }
        };
        Ok((Some(plan), total))
    }

    // -----------------------------------------------------------------
    // Helpers
    // -----------------------------------------------------------------

    /// Aggregates as stored in hash tables (after the optional AVG rewrite),
    /// deduplicated.
    fn storage_aggs(&self, q: &QuerySpec) -> Vec<AggExpr> {
        let mut out: Vec<AggExpr> = Vec::new();
        for a in &q.aggregates {
            let rewritten = if self.config.avg_rewrite {
                a.rewrite_avg()
            } else {
                vec![a.clone()]
            };
            for r in rewritten {
                if !out.contains(&r) {
                    out.push(r);
                }
            }
        }
        out
    }

    /// Attributes a scan of `table` must keep in flight: query outputs,
    /// join keys and (benefit-oriented) selection attributes.
    fn required_attrs(&self, q: &QuerySpec, table: &str) -> Vec<Arc<str>> {
        let prefix = format!("{table}.");
        let mut attrs: Vec<Arc<str>> = Vec::new();
        let add = |a: &Arc<str>, attrs: &mut Vec<Arc<str>>| {
            if a.starts_with(&prefix) && !attrs.contains(a) {
                attrs.push(a.clone());
            }
        };
        for a in &q.projection {
            add(a, &mut attrs);
        }
        for g in &q.group_by {
            add(g, &mut attrs);
        }
        for agg in &q.aggregates {
            add(&agg.attr, &mut attrs);
        }
        for e in &q.joins {
            if let Some(col) = e.col_of(table) {
                if !attrs.contains(col) {
                    attrs.push(col.clone());
                }
            }
        }
        if self.config.additional_attributes {
            for (a, _) in q.predicates.constrained() {
                add(a, &mut attrs);
            }
        }
        attrs.sort();
        attrs.dedup();
        attrs
    }

    /// Fingerprint of the hash table a fresh build over `build_mask` would
    /// publish.
    fn build_fingerprint(
        &self,
        q: &QuerySpec,
        graph: &JoinGraph,
        build_mask: u64,
        build_key: &Arc<str>,
        request_box: &PredBox,
    ) -> HtFingerprint {
        let tables = graph.tables_of_mask(build_mask);
        let mut payload: Vec<Arc<str>> = Vec::new();
        for t in &tables {
            payload.extend(self.required_attrs(q, t));
        }
        payload.sort();
        payload.dedup();
        let mut edges = graph.edges_within_mask(build_mask);
        edges.sort();
        HtFingerprint {
            kind: HtKind::JoinBuild,
            tables,
            edges,
            region: Region::from_box(request_box.clone()),
            key_attrs: vec![build_key.clone()],
            payload_attrs: payload,
            aggregates: vec![],
            tagged: false,
        }
    }

    fn payload_width(&self, attrs: &[Arc<str>]) -> f64 {
        attrs
            .iter()
            .map(|a| {
                hashstash_exec::plan::lookup_attr_type(self.catalog, a)
                    .map(|t| t.payload_width())
                    .unwrap_or(8)
            })
            .sum::<usize>() as f64
    }
}

fn matches_reuse(plan: &PhysicalPlan) -> bool {
    plan.reuse_decisions().iter().any(|(_, c)| c.is_some())
}

/// Restrict a box to attributes of the given table set.
fn restrict_box(pred: &PredBox, tables: &BTreeSet<Arc<str>>) -> PredBox {
    let mut out = PredBox::all();
    for (attr, iv) in pred.constrained() {
        let t = attr.split('.').next().unwrap_or("");
        if tables.contains(t) {
            out.constrain(attr.clone(), iv.clone());
        }
    }
    out
}

/// Human label of a mask: first letters of table names, e.g. `CO` for
/// customer+orders, `COL` for customer+orders+lineitem.
fn mask_label(graph: &JoinGraph, mask: u64) -> String {
    graph
        .tables_of_mask(mask)
        .iter()
        .map(|t| {
            t.chars()
                .next()
                .map(|c| c.to_ascii_uppercase())
                .unwrap_or('?')
        })
        .collect()
}

/// Map the query's requested aggregates onto stored accumulator indices.
fn map_output_aggs(
    requested: &[AggExpr],
    stored: &[AggExpr],
    avg_rewrite: bool,
) -> Result<Vec<OutputAgg>> {
    let find = |expr: &AggExpr| -> Result<usize> {
        stored
            .iter()
            .position(|s| s == expr)
            .ok_or_else(|| HsError::PlanError(format!("stored aggregates lack {expr}")))
    };
    requested
        .iter()
        .map(|r| {
            if r.func == AggFunc::Avg && avg_rewrite {
                let sum_idx = find(&AggExpr::new(AggFunc::Sum, r.attr.clone()))?;
                let count_idx = find(&AggExpr::new(AggFunc::Count, r.attr.clone()))?;
                Ok(OutputAgg::AvgOf { sum_idx, count_idx })
            } else {
                Ok(OutputAgg::Direct(find(r)?))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hashstash_cache::GcConfig;
    use hashstash_exec::{execute, ExecContext, TempTableCache};
    use hashstash_plan::{Interval, QueryBuilder, ReuseCase};
    use hashstash_storage::tpch::{generate, TpchConfig};
    use hashstash_types::Value;

    fn setup() -> (Catalog, DbStats, CostModel) {
        let cat = generate(TpchConfig::new(0.002, 21));
        let stats = DbStats::from_catalog(&cat);
        (cat, stats, CostModel::synthetic())
    }

    fn q3(id: u32, ship_lo: &str) -> QuerySpec {
        QueryBuilder::new(id)
            .join(
                "customer",
                "customer.c_custkey",
                "orders",
                "orders.o_custkey",
            )
            .join(
                "orders",
                "orders.o_orderkey",
                "lineitem",
                "lineitem.l_orderkey",
            )
            .filter(
                "lineitem.l_shipdate",
                Interval::at_least(Value::Date(
                    hashstash_types::date::parse_date(ship_lo).unwrap(),
                )),
            )
            .group_by("customer.c_age")
            .agg(AggExpr::new(AggFunc::Sum, "lineitem.l_quantity"))
            .build()
            .unwrap()
    }

    fn run(
        plan: &PhysicalPlan,
        cat: &Catalog,
        htm: &HtManager,
    ) -> (hashstash_types::Schema, Vec<hashstash_types::Row>) {
        let temps = TempTableCache::unbounded();
        let mut ctx = ExecContext::new(cat, htm, &temps);
        let (schema, mut rows) = execute(plan, &mut ctx).unwrap();
        rows.sort();
        (schema, rows)
    }

    #[test]
    fn optimize_and_execute_q3() {
        let (cat, stats, cost) = setup();
        let opt = Optimizer::new(&cat, &stats, &cost, OptimizerConfig::default());
        let htm = HtManager::new(GcConfig::default());
        let oq = opt.optimize(&q3(1, "1996-01-01"), &htm).unwrap();
        assert!(oq.est_cost_ns > 0.0);
        let (_, rows) = run(&oq.plan, &cat, &htm);
        assert!(!rows.is_empty());
        // Three pipeline breakers were published: 2 joins + 1 aggregate.
        assert_eq!(htm.stats().publishes, 3);
        assert!(!oq.subplans.is_empty());
    }

    #[test]
    fn second_identical_query_gets_exact_reuse() {
        let (cat, stats, cost) = setup();
        let opt = Optimizer::new(&cat, &stats, &cost, OptimizerConfig::default());
        let htm = HtManager::new(GcConfig::default());
        let q = q3(1, "1996-01-01");
        let first = opt.optimize(&q, &htm).unwrap();
        let (_, rows1) = run(&first.plan, &cat, &htm);

        let q2 = q3(2, "1996-01-01");
        let second = opt.optimize(&q2, &htm).unwrap();
        let decisions = second.plan.reuse_decisions();
        assert!(
            decisions.iter().any(|(_, c)| c == &Some(ReuseCase::Exact)),
            "expected exact reuse, got {decisions:?}"
        );
        assert!(second.est_cost_ns < first.est_cost_ns);
        let (_, rows2) = run(&second.plan, &cat, &htm);
        assert_eq!(rows1, rows2, "reuse must not change answers");
    }

    #[test]
    fn widened_predicate_gets_partial_reuse_and_correct_answers() {
        let (cat, stats, cost) = setup();
        let opt = Optimizer::new(&cat, &stats, &cost, OptimizerConfig::default());
        let htm = HtManager::new(GcConfig::default());
        let q = q3(1, "1996-06-01");
        let first = opt.optimize(&q, &htm).unwrap();
        run(&first.plan, &cat, &htm);

        // Wider request (earlier ship date) ⇒ partial reuse with a delta.
        let q2 = q3(2, "1996-01-01");
        let second = opt.optimize(&q2, &htm).unwrap();
        let decisions = second.plan.reuse_decisions();
        assert!(
            decisions
                .iter()
                .any(|(_, c)| matches!(c, Some(ReuseCase::Partial))),
            "expected partial reuse, got {decisions:?}"
        );
        let (_, rows) = run(&second.plan, &cat, &htm);

        // Reference: never-share run in a fresh engine.
        let ns = Optimizer::new(
            &cat,
            &stats,
            &cost,
            OptimizerConfig::with_policy(Arc::new(crate::policy::NoReuse)),
        );
        let htm2 = HtManager::new(GcConfig::default());
        let reference = ns.optimize(&q3(3, "1996-01-01"), &htm2).unwrap();
        let (_, expect) = run(&reference.plan, &cat, &htm2);
        assert_eq!(rows.len(), expect.len());
        for (a, b) in rows.iter().zip(&expect) {
            assert_eq!(a.get(0), b.get(0), "group keys match");
            let fa = a.get(1).as_float().unwrap();
            let fb = b.get(1).as_float().unwrap();
            assert!((fa - fb).abs() < 1e-6 * fb.abs().max(1.0), "{fa} vs {fb}");
        }
    }

    #[test]
    fn narrowed_predicate_gets_subsuming_reuse() {
        let (cat, stats, cost) = setup();
        let opt = Optimizer::new(&cat, &stats, &cost, OptimizerConfig::default());
        let htm = HtManager::new(GcConfig::default());
        run(
            &opt.optimize(&q3(1, "1996-01-01"), &htm).unwrap().plan,
            &cat,
            &htm,
        );

        let q2 = q3(2, "1996-06-01"); // narrower
        let second = opt.optimize(&q2, &htm).unwrap();
        let decisions = second.plan.reuse_decisions();
        assert!(
            decisions
                .iter()
                .any(|(_, c)| matches!(c, Some(ReuseCase::Subsuming) | Some(ReuseCase::Exact))),
            "expected subsuming reuse, got {decisions:?}"
        );
        // Correctness vs never-share.
        let (_, rows) = run(&second.plan, &cat, &htm);
        let ns = Optimizer::new(
            &cat,
            &stats,
            &cost,
            OptimizerConfig::with_policy(Arc::new(crate::policy::NoReuse)),
        );
        let htm2 = HtManager::new(GcConfig::default());
        let (_, expect) = run(
            &ns.optimize(&q3(3, "1996-06-01"), &htm2).unwrap().plan,
            &cat,
            &htm2,
        );
        assert_eq!(rows.len(), expect.len());
    }

    #[test]
    fn rollup_uses_post_group_by() {
        let (cat, stats, cost) = setup();
        let opt = Optimizer::new(&cat, &stats, &cost, OptimizerConfig::default());
        let htm = HtManager::new(GcConfig::default());
        // First: group by (age, nationkey).
        let q1 = QueryBuilder::new(1)
            .join(
                "customer",
                "customer.c_custkey",
                "orders",
                "orders.o_custkey",
            )
            .filter(
                "orders.o_orderdate",
                Interval::at_least(Value::date_ymd(1995, 1, 1)),
            )
            .group_by("customer.c_age")
            .group_by("customer.c_nationkey")
            .agg(AggExpr::new(AggFunc::Sum, "orders.o_totalprice"))
            .build()
            .unwrap();
        run(&opt.optimize(&q1, &htm).unwrap().plan, &cat, &htm);

        // Roll-up: drop c_nationkey.
        let q2 = QueryBuilder::new(2)
            .join(
                "customer",
                "customer.c_custkey",
                "orders",
                "orders.o_custkey",
            )
            .filter(
                "orders.o_orderdate",
                Interval::at_least(Value::date_ymd(1995, 1, 1)),
            )
            .group_by("customer.c_age")
            .agg(AggExpr::new(AggFunc::Sum, "orders.o_totalprice"))
            .build()
            .unwrap();
        let second = opt.optimize(&q2, &htm).unwrap();
        match &second.plan {
            PhysicalPlan::HashAggregate {
                input,
                post_group_by,
                reuse,
                ..
            } => {
                assert!(input.is_none(), "roll-up eliminates the whole pipeline (X)");
                assert!(post_group_by.is_some());
                assert!(reuse.is_some());
            }
            other => panic!("expected aggregate root, got {other:?}"),
        }
        let (_, rows) = run(&second.plan, &cat, &htm);
        // Reference.
        let ns = Optimizer::new(
            &cat,
            &stats,
            &cost,
            OptimizerConfig::with_policy(Arc::new(crate::policy::NoReuse)),
        );
        let htm2 = HtManager::new(GcConfig::default());
        let (_, expect) = run(&ns.optimize(&q2, &htm2).unwrap().plan, &cat, &htm2);
        assert_eq!(rows.len(), expect.len());
        for (a, b) in rows.iter().zip(&expect) {
            let fa = a.get(1).as_float().unwrap();
            let fb = b.get(1).as_float().unwrap();
            assert!((fa - fb).abs() < 1e-6 * fb.abs().max(1.0));
        }
    }

    #[test]
    fn never_share_never_reuses() {
        let (cat, stats, cost) = setup();
        let cfg = OptimizerConfig::with_policy(Arc::new(crate::policy::NeverShare));
        let opt = Optimizer::new(&cat, &stats, &cost, cfg);
        let htm = HtManager::new(GcConfig::default());
        run(
            &opt.optimize(&q3(1, "1996-01-01"), &htm).unwrap().plan,
            &cat,
            &htm,
        );
        let second = opt.optimize(&q3(2, "1996-01-01"), &htm).unwrap();
        assert!(second
            .plan
            .reuse_decisions()
            .iter()
            .all(|(_, c)| c.is_none()));
    }

    #[test]
    fn avg_query_round_trips_through_rewrite() {
        let (cat, stats, cost) = setup();
        let opt = Optimizer::new(&cat, &stats, &cost, OptimizerConfig::default());
        let htm = HtManager::new(GcConfig::default());
        let q = QueryBuilder::new(1)
            .join(
                "customer",
                "customer.c_custkey",
                "orders",
                "orders.o_custkey",
            )
            .filter(
                "customer.c_age",
                Interval::closed(Value::Int(30), Value::Int(50)),
            )
            .group_by("customer.c_age")
            .agg(AggExpr::new(AggFunc::Avg, "orders.o_totalprice"))
            .build()
            .unwrap();
        let oq = opt.optimize(&q, &htm).unwrap();
        // Storage aggregates are SUM + COUNT; output reconstructs AVG.
        match &oq.plan {
            PhysicalPlan::HashAggregate {
                aggs, output_aggs, ..
            } => {
                assert_eq!(aggs.len(), 2);
                assert!(matches!(output_aggs[0], OutputAgg::AvgOf { .. }));
            }
            other => panic!("unexpected root {other:?}"),
        }
        let (_, rows) = run(&oq.plan, &cat, &htm);
        assert!(!rows.is_empty());
        for r in &rows {
            let avg = r.get(1).as_float().unwrap();
            assert!(avg > 0.0, "order totals are positive");
        }
    }
}
