//! Pluggable reuse policies.
//!
//! The paper's §6 evaluation compares five reuse configurations. Earlier
//! revisions hard-coded them as an enum threaded through the optimizer;
//! this module replaces that closed set with the [`ReusePolicy`] trait so
//! new policies can be added — and selected at runtime — without touching
//! the optimizer or engine internals.
//!
//! A policy answers three questions the optimizer asks at every pipeline
//! breaker:
//!
//! 1. [`candidates`](ReusePolicy::candidates) — which of the matched cached
//!    tables may this operator consider reusing?
//! 2. [`admit`](ReusePolicy::admit) /
//!    [`admit_scored`](ReusePolicy::admit_scored) — should a freshly built
//!    table be published (admitted) into the cache for future reuse? The
//!    scored variant receives an [`AdmissionScore`] — the cost model's
//!    prediction of cycles a future reuse would save, per byte of cache
//!    footprint — so policies can refuse tables that are cheap to rebuild
//!    but expensive to keep (see [`BenefitScoredAdmission`]).
//! 3. [`prefer_reuse`](ReusePolicy::prefer_reuse) — when costs are
//!    compared, does any reusing alternative beat any non-reusing one
//!    regardless of estimate (the paper's greedy *Always Share* baseline)?
//!
//! Plus one question the engine asks per query:
//! [`materialize`](ReusePolicy::materialize) — run the
//! materialization-based baseline (temp tables, Nagel et al. style)
//! instead of hash-table caching.
//!
//! # Implementing a custom policy
//!
//! ```
//! use hashstash_opt::policy::ReusePolicy;
//! use hashstash_opt::matching::MatchRewrite;
//! use hashstash_plan::{HtFingerprint, ReuseCase};
//!
//! /// Reuse only exact matches: never pay for deltas or post-filters.
//! struct ExactOnly;
//!
//! impl ReusePolicy for ExactOnly {
//!     fn name(&self) -> &str {
//!         "exact-only"
//!     }
//!     fn candidates(
//!         &self,
//!         _request: &HtFingerprint,
//!         matches: Vec<MatchRewrite>,
//!     ) -> Vec<MatchRewrite> {
//!         matches
//!             .into_iter()
//!             .filter(|m| m.case == ReuseCase::Exact)
//!             .collect()
//!     }
//!     fn admit(&self, _fingerprint: &HtFingerprint) -> bool {
//!         true
//!     }
//! }
//!
//! assert_eq!(ExactOnly.name(), "exact-only");
//! assert!(!ExactOnly.materialize());
//! ```

use std::fmt;
use std::sync::Arc;

use hashstash_plan::HtFingerprint;

use crate::matching::MatchRewrite;

/// The cost model's prediction of what admitting a freshly built table is
/// worth: the cycles a single future exact reuse would save (the avoided
/// build work) against the bytes the table would occupy in the cache. This
/// is the per-candidate analogue of the paper's GC weight — benefit over
/// size — applied at *admission* time instead of eviction time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionScore {
    /// Estimated build cost (ns) that one future exact reuse would skip.
    pub predicted_benefit_ns: f64,
    /// Estimated cache footprint of the table (bytes).
    pub predicted_bytes: f64,
}

impl AdmissionScore {
    /// Predicted cycles saved per byte of footprint — the admission
    /// analogue of the GC's benefit/size weight.
    pub fn benefit_per_byte(&self) -> f64 {
        self.predicted_benefit_ns / self.predicted_bytes.max(1.0)
    }
}

/// A reuse strategy the optimizer consults at every pipeline breaker.
///
/// Implementations must be [`Send`] + [`Sync`]: one policy instance is
/// shared by every session of a `Database`.
pub trait ReusePolicy: Send + Sync {
    /// Short stable name, e.g. `"hashstash"`; used in logs and stats.
    fn name(&self) -> &str;

    /// Filter (and optionally reorder) the reuse candidates matched for one
    /// request. `request` is the fingerprint of the hash table the
    /// requesting operator would build fresh; `matches` are all cached
    /// tables the matcher found viable. Return an empty vector to forbid
    /// reuse at this operator.
    fn candidates(&self, request: &HtFingerprint, matches: Vec<MatchRewrite>) -> Vec<MatchRewrite>;

    /// Whether a freshly built hash table described by `fingerprint` should
    /// be admitted (published) into the cache when this operator runs.
    fn admit(&self, fingerprint: &HtFingerprint) -> bool;

    /// [`ReusePolicy::admit`] with the cost model's benefit prediction
    /// attached. The optimizer calls this wherever it can price the build
    /// (single-query pipeline breakers); shared-plan publishes, which have
    /// no per-operator costing, fall back to the unscored hook. The default
    /// ignores the score, so existing policies keep their behavior.
    fn admit_scored(&self, fingerprint: &HtFingerprint, score: &AdmissionScore) -> bool {
        let _ = score;
        self.admit(fingerprint)
    }

    /// Whether the optimizer should run candidate matching at all. Policies
    /// that unconditionally return no candidates override this to `false`
    /// so the engine skips the recycle-graph lookup and rewrite planning
    /// entirely (and cache lookup statistics stay untouched). Default
    /// `true`.
    fn wants_candidates(&self) -> bool {
        true
    }

    /// Greedy preference: when `true`, any reusing plan alternative is
    /// preferred over any non-reusing one before costs are compared (the
    /// paper's *Always Share* baseline). Default `false`: pure cost-based
    /// arbitration.
    fn prefer_reuse(&self) -> bool {
        false
    }

    /// Whether the engine should run the materialization-based baseline:
    /// operator outputs are copied into temp tables during execution and
    /// reused for exact/subsuming requests only (Nagel et al. style, paper
    /// §6.1). Default `false`: hash-table caching.
    fn materialize(&self) -> bool {
        false
    }
}

impl fmt::Debug for dyn ReusePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ReusePolicy({})", self.name())
    }
}

/// The paper's system: cost-based reuse of every viable candidate, with
/// every pipeline-breaker hash table admitted into the cache.
#[derive(Debug, Clone, Copy, Default)]
pub struct CostBasedReuse;

impl ReusePolicy for CostBasedReuse {
    fn name(&self) -> &str {
        "hashstash"
    }
    fn candidates(
        &self,
        _request: &HtFingerprint,
        matches: Vec<MatchRewrite>,
    ) -> Vec<MatchRewrite> {
        matches
    }
    fn admit(&self, _fingerprint: &HtFingerprint) -> bool {
        true
    }
}

/// Greedy baseline (paper Exp. 2): reuse whenever any candidate matches,
/// whatever the cost model says.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysShare;

impl ReusePolicy for AlwaysShare {
    fn name(&self) -> &str {
        "always-share"
    }
    fn candidates(
        &self,
        _request: &HtFingerprint,
        matches: Vec<MatchRewrite>,
    ) -> Vec<MatchRewrite> {
        matches
    }
    fn admit(&self, _fingerprint: &HtFingerprint) -> bool {
        true
    }
    fn prefer_reuse(&self) -> bool {
        true
    }
}

/// Reuse disabled in the optimizer, nothing cached (paper Exp. 2's
/// *Never Share* baseline; execution-equivalent to [`NoReuse`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct NeverShare;

impl ReusePolicy for NeverShare {
    fn wants_candidates(&self) -> bool {
        false
    }
    fn name(&self) -> &str {
        "never-share"
    }
    fn candidates(
        &self,
        _request: &HtFingerprint,
        _matches: Vec<MatchRewrite>,
    ) -> Vec<MatchRewrite> {
        Vec::new()
    }
    fn admit(&self, _fingerprint: &HtFingerprint) -> bool {
        false
    }
}

/// Traditional execution: no reuse, no materialization, nothing cached.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoReuse;

impl ReusePolicy for NoReuse {
    fn wants_candidates(&self) -> bool {
        false
    }
    fn name(&self) -> &str {
        "no-reuse"
    }
    fn candidates(
        &self,
        _request: &HtFingerprint,
        _matches: Vec<MatchRewrite>,
    ) -> Vec<MatchRewrite> {
        Vec::new()
    }
    fn admit(&self, _fingerprint: &HtFingerprint) -> bool {
        false
    }
}

/// Materialization-based reuse (paper §6.1, after Nagel et al.): no
/// hash-table reuse; instead the engine copies operator outputs into temp
/// tables and reuses those for exact/subsuming requests. `admit` returns
/// `true` so the optimizer emits publish *markers* that the materialization
/// rewrite turns into materialize/temp-scan operators — no hash tables are
/// ever cached.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaterializedReuse;

impl ReusePolicy for MaterializedReuse {
    fn wants_candidates(&self) -> bool {
        false
    }
    fn name(&self) -> &str {
        "materialized"
    }
    fn candidates(
        &self,
        _request: &HtFingerprint,
        _matches: Vec<MatchRewrite>,
    ) -> Vec<MatchRewrite> {
        Vec::new()
    }
    fn admit(&self, _fingerprint: &HtFingerprint) -> bool {
        true
    }
    fn materialize(&self) -> bool {
        true
    }
}

/// Cost-based reuse with **benefit-scored admission**: candidates and
/// arbitration as [`CostBasedReuse`], but a freshly built table is admitted
/// only when the predicted cycles-saved-per-byte of a future reuse clears a
/// threshold. Tables that are cheap to rebuild relative to the cache space
/// they occupy (fat payloads, tiny builds) are not worth evicting someone
/// else for — the admission-time mirror of the paper's GC weight.
#[derive(Debug, Clone, Copy)]
pub struct BenefitScoredAdmission {
    /// Minimum predicted benefit (ns saved per byte) for admission.
    pub min_benefit_per_byte: f64,
}

impl BenefitScoredAdmission {
    /// Default threshold (ns/byte): under the synthetic cost grid the
    /// Fig. 7 workload's join builds score ≈0.7–2 (cheap-to-rebuild, wide
    /// payloads at the low end) while aggregates — whose reuse skips the
    /// whole input pass — score far higher. `1.0` sits at the join
    /// median: the densest half of the builds is admitted, the
    /// rebuild-cheap half is refused.
    pub const DEFAULT_MIN_BENEFIT_PER_BYTE: f64 = 1.0;

    /// Policy with an explicit threshold.
    pub fn new(min_benefit_per_byte: f64) -> Self {
        BenefitScoredAdmission {
            min_benefit_per_byte,
        }
    }
}

impl Default for BenefitScoredAdmission {
    fn default() -> Self {
        BenefitScoredAdmission::new(Self::DEFAULT_MIN_BENEFIT_PER_BYTE)
    }
}

impl ReusePolicy for BenefitScoredAdmission {
    fn name(&self) -> &str {
        "benefit-scored"
    }
    fn candidates(
        &self,
        _request: &HtFingerprint,
        matches: Vec<MatchRewrite>,
    ) -> Vec<MatchRewrite> {
        matches
    }
    /// Unscored fallback (shared-plan publishes): admit, as
    /// [`CostBasedReuse`] would.
    fn admit(&self, _fingerprint: &HtFingerprint) -> bool {
        true
    }
    fn admit_scored(&self, _fingerprint: &HtFingerprint, score: &AdmissionScore) -> bool {
        score.benefit_per_byte() >= self.min_benefit_per_byte
    }
}

/// Convenience alias for a shared, type-erased policy handle.
pub type PolicyHandle = Arc<dyn ReusePolicy>;

#[cfg(test)]
mod tests {
    use super::*;
    use hashstash_plan::{HtKind, Region};

    fn probe() -> HtFingerprint {
        HtFingerprint {
            kind: HtKind::JoinBuild,
            tables: std::iter::once(Arc::from("t")).collect(),
            edges: vec![],
            region: Region::empty(),
            key_attrs: vec![],
            payload_attrs: vec![],
            aggregates: vec![],
            tagged: false,
        }
    }

    #[test]
    fn builtin_flags_match_paper_configurations() {
        let table: [(&dyn ReusePolicy, bool, bool, bool); 5] = [
            // (policy, admits, prefers reuse, materializes)
            (&CostBasedReuse, true, false, false),
            (&AlwaysShare, true, true, false),
            (&NeverShare, false, false, false),
            (&NoReuse, false, false, false),
            (&MaterializedReuse, true, false, true),
        ];
        for (p, admits, prefers, materializes) in table {
            assert_eq!(p.admit(&probe()), admits, "{}", p.name());
            assert_eq!(p.prefer_reuse(), prefers, "{}", p.name());
            assert_eq!(p.materialize(), materializes, "{}", p.name());
        }
    }

    #[test]
    fn disabled_policies_drop_all_candidates() {
        assert!(NeverShare.candidates(&probe(), Vec::new()).is_empty());
        assert!(NoReuse.candidates(&probe(), Vec::new()).is_empty());
        assert!(MaterializedReuse
            .candidates(&probe(), Vec::new())
            .is_empty());
    }

    #[test]
    fn admit_scored_defaults_to_admit() {
        let generous = AdmissionScore {
            predicted_benefit_ns: 1e9,
            predicted_bytes: 1.0,
        };
        let stingy = AdmissionScore {
            predicted_benefit_ns: 0.0,
            predicted_bytes: 1e9,
        };
        // Policies that don't override the hook ignore the score entirely.
        assert!(CostBasedReuse.admit_scored(&probe(), &stingy));
        assert!(!NoReuse.admit_scored(&probe(), &generous));
    }

    #[test]
    fn benefit_scored_admission_thresholds_on_benefit_per_byte() {
        let p = BenefitScoredAdmission::new(0.5);
        let dense = AdmissionScore {
            predicted_benefit_ns: 100.0,
            predicted_bytes: 100.0, // 1.0 ns/byte
        };
        let sparse = AdmissionScore {
            predicted_benefit_ns: 100.0,
            predicted_bytes: 1000.0, // 0.1 ns/byte
        };
        assert!(p.admit_scored(&probe(), &dense));
        assert!(!p.admit_scored(&probe(), &sparse));
        // Unscored fallback (shared plans) admits like CostBasedReuse.
        assert!(p.admit(&probe()));
        assert!((AdmissionScore {
            predicted_benefit_ns: 7.0,
            predicted_bytes: 0.0,
        })
        .benefit_per_byte()
        .is_finite());
    }

    #[test]
    fn trait_objects_are_shareable() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PolicyHandle>();
        let p: PolicyHandle = Arc::new(CostBasedReuse);
        assert_eq!(format!("{:?}", &*p), "ReusePolicy(hashstash)");
    }
}
