//! Pluggable reuse policies.
//!
//! The paper's §6 evaluation compares five reuse configurations. Earlier
//! revisions hard-coded them as an enum threaded through the optimizer;
//! this module replaces that closed set with the [`ReusePolicy`] trait so
//! new policies can be added — and selected at runtime — without touching
//! the optimizer or engine internals.
//!
//! A policy answers three questions the optimizer asks at every pipeline
//! breaker:
//!
//! 1. [`candidates`](ReusePolicy::candidates) — which of the matched cached
//!    tables may this operator consider reusing?
//! 2. [`admit`](ReusePolicy::admit) — should a freshly built table be
//!    published (admitted) into the cache for future reuse?
//! 3. [`prefer_reuse`](ReusePolicy::prefer_reuse) — when costs are
//!    compared, does any reusing alternative beat any non-reusing one
//!    regardless of estimate (the paper's greedy *Always Share* baseline)?
//!
//! Plus one question the engine asks per query:
//! [`materialize`](ReusePolicy::materialize) — run the
//! materialization-based baseline (temp tables, Nagel et al. style)
//! instead of hash-table caching.
//!
//! # Implementing a custom policy
//!
//! ```
//! use hashstash_opt::policy::ReusePolicy;
//! use hashstash_opt::matching::MatchRewrite;
//! use hashstash_plan::{HtFingerprint, ReuseCase};
//!
//! /// Reuse only exact matches: never pay for deltas or post-filters.
//! struct ExactOnly;
//!
//! impl ReusePolicy for ExactOnly {
//!     fn name(&self) -> &str {
//!         "exact-only"
//!     }
//!     fn candidates(
//!         &self,
//!         _request: &HtFingerprint,
//!         matches: Vec<MatchRewrite>,
//!     ) -> Vec<MatchRewrite> {
//!         matches
//!             .into_iter()
//!             .filter(|m| m.case == ReuseCase::Exact)
//!             .collect()
//!     }
//!     fn admit(&self, _fingerprint: &HtFingerprint) -> bool {
//!         true
//!     }
//! }
//!
//! assert_eq!(ExactOnly.name(), "exact-only");
//! assert!(!ExactOnly.materialize());
//! ```

use std::fmt;
use std::sync::Arc;

use hashstash_plan::HtFingerprint;

use crate::matching::MatchRewrite;

/// A reuse strategy the optimizer consults at every pipeline breaker.
///
/// Implementations must be [`Send`] + [`Sync`]: one policy instance is
/// shared by every session of a `Database`.
pub trait ReusePolicy: Send + Sync {
    /// Short stable name, e.g. `"hashstash"`; used in logs and stats.
    fn name(&self) -> &str;

    /// Filter (and optionally reorder) the reuse candidates matched for one
    /// request. `request` is the fingerprint of the hash table the
    /// requesting operator would build fresh; `matches` are all cached
    /// tables the matcher found viable. Return an empty vector to forbid
    /// reuse at this operator.
    fn candidates(&self, request: &HtFingerprint, matches: Vec<MatchRewrite>) -> Vec<MatchRewrite>;

    /// Whether a freshly built hash table described by `fingerprint` should
    /// be admitted (published) into the cache when this operator runs.
    fn admit(&self, fingerprint: &HtFingerprint) -> bool;

    /// Whether the optimizer should run candidate matching at all. Policies
    /// that unconditionally return no candidates override this to `false`
    /// so the engine skips the recycle-graph lookup and rewrite planning
    /// entirely (and cache lookup statistics stay untouched). Default
    /// `true`.
    fn wants_candidates(&self) -> bool {
        true
    }

    /// Greedy preference: when `true`, any reusing plan alternative is
    /// preferred over any non-reusing one before costs are compared (the
    /// paper's *Always Share* baseline). Default `false`: pure cost-based
    /// arbitration.
    fn prefer_reuse(&self) -> bool {
        false
    }

    /// Whether the engine should run the materialization-based baseline:
    /// operator outputs are copied into temp tables during execution and
    /// reused for exact/subsuming requests only (Nagel et al. style, paper
    /// §6.1). Default `false`: hash-table caching.
    fn materialize(&self) -> bool {
        false
    }
}

impl fmt::Debug for dyn ReusePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ReusePolicy({})", self.name())
    }
}

/// The paper's system: cost-based reuse of every viable candidate, with
/// every pipeline-breaker hash table admitted into the cache.
#[derive(Debug, Clone, Copy, Default)]
pub struct CostBasedReuse;

impl ReusePolicy for CostBasedReuse {
    fn name(&self) -> &str {
        "hashstash"
    }
    fn candidates(
        &self,
        _request: &HtFingerprint,
        matches: Vec<MatchRewrite>,
    ) -> Vec<MatchRewrite> {
        matches
    }
    fn admit(&self, _fingerprint: &HtFingerprint) -> bool {
        true
    }
}

/// Greedy baseline (paper Exp. 2): reuse whenever any candidate matches,
/// whatever the cost model says.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysShare;

impl ReusePolicy for AlwaysShare {
    fn name(&self) -> &str {
        "always-share"
    }
    fn candidates(
        &self,
        _request: &HtFingerprint,
        matches: Vec<MatchRewrite>,
    ) -> Vec<MatchRewrite> {
        matches
    }
    fn admit(&self, _fingerprint: &HtFingerprint) -> bool {
        true
    }
    fn prefer_reuse(&self) -> bool {
        true
    }
}

/// Reuse disabled in the optimizer, nothing cached (paper Exp. 2's
/// *Never Share* baseline; execution-equivalent to [`NoReuse`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct NeverShare;

impl ReusePolicy for NeverShare {
    fn wants_candidates(&self) -> bool {
        false
    }
    fn name(&self) -> &str {
        "never-share"
    }
    fn candidates(
        &self,
        _request: &HtFingerprint,
        _matches: Vec<MatchRewrite>,
    ) -> Vec<MatchRewrite> {
        Vec::new()
    }
    fn admit(&self, _fingerprint: &HtFingerprint) -> bool {
        false
    }
}

/// Traditional execution: no reuse, no materialization, nothing cached.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoReuse;

impl ReusePolicy for NoReuse {
    fn wants_candidates(&self) -> bool {
        false
    }
    fn name(&self) -> &str {
        "no-reuse"
    }
    fn candidates(
        &self,
        _request: &HtFingerprint,
        _matches: Vec<MatchRewrite>,
    ) -> Vec<MatchRewrite> {
        Vec::new()
    }
    fn admit(&self, _fingerprint: &HtFingerprint) -> bool {
        false
    }
}

/// Materialization-based reuse (paper §6.1, after Nagel et al.): no
/// hash-table reuse; instead the engine copies operator outputs into temp
/// tables and reuses those for exact/subsuming requests. `admit` returns
/// `true` so the optimizer emits publish *markers* that the materialization
/// rewrite turns into materialize/temp-scan operators — no hash tables are
/// ever cached.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaterializedReuse;

impl ReusePolicy for MaterializedReuse {
    fn wants_candidates(&self) -> bool {
        false
    }
    fn name(&self) -> &str {
        "materialized"
    }
    fn candidates(
        &self,
        _request: &HtFingerprint,
        _matches: Vec<MatchRewrite>,
    ) -> Vec<MatchRewrite> {
        Vec::new()
    }
    fn admit(&self, _fingerprint: &HtFingerprint) -> bool {
        true
    }
    fn materialize(&self) -> bool {
        true
    }
}

/// Convenience alias for a shared, type-erased policy handle.
pub type PolicyHandle = Arc<dyn ReusePolicy>;

#[cfg(test)]
mod tests {
    use super::*;
    use hashstash_plan::{HtKind, Region};

    fn probe() -> HtFingerprint {
        HtFingerprint {
            kind: HtKind::JoinBuild,
            tables: std::iter::once(Arc::from("t")).collect(),
            edges: vec![],
            region: Region::empty(),
            key_attrs: vec![],
            payload_attrs: vec![],
            aggregates: vec![],
            tagged: false,
        }
    }

    #[test]
    fn builtin_flags_match_paper_configurations() {
        let table: [(&dyn ReusePolicy, bool, bool, bool); 5] = [
            // (policy, admits, prefers reuse, materializes)
            (&CostBasedReuse, true, false, false),
            (&AlwaysShare, true, true, false),
            (&NeverShare, false, false, false),
            (&NoReuse, false, false, false),
            (&MaterializedReuse, true, false, true),
        ];
        for (p, admits, prefers, materializes) in table {
            assert_eq!(p.admit(&probe()), admits, "{}", p.name());
            assert_eq!(p.prefer_reuse(), prefers, "{}", p.name());
            assert_eq!(p.materialize(), materializes, "{}", p.name());
        }
    }

    #[test]
    fn disabled_policies_drop_all_candidates() {
        assert!(NeverShare.candidates(&probe(), Vec::new()).is_empty());
        assert!(NoReuse.candidates(&probe(), Vec::new()).is_empty());
        assert!(MaterializedReuse
            .candidates(&probe(), Vec::new())
            .is_empty());
    }

    #[test]
    fn trait_objects_are_shareable() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PolicyHandle>();
        let p: PolicyHandle = Arc::new(CostBasedReuse);
        assert_eq!(format!("{:?}", &*p), "ReusePolicy(hashstash)");
    }
}
