//! Candidate matching and rewrite planning (paper §3.3).
//!
//! For a requesting operator the matcher asks the Hash Table Manager for
//! shape-compatible candidates (the recycle-graph pruning), classifies each
//! into one of the four reuse cases by region algebra, verifies payload
//! coverage (post-filters need their attributes stored in the table) and
//! aggregate compatibility, and computes the contribution- and
//! overhead-ratios the cost model consumes.

use std::sync::Arc;

use hashstash_cache::manager::Candidate;
use hashstash_cache::HtManager;
use hashstash_plan::{AggExpr, HtFingerprint, HtKind, PredBox, Region, ReuseCase};

use crate::stats::DbStats;

/// One viable reuse option with its rewrite ingredients.
#[derive(Debug, Clone)]
pub struct MatchRewrite {
    /// The cached table.
    pub candidate: Candidate,
    /// Which reuse case applies.
    pub case: ReuseCase,
    /// Post-filter predicates (subsuming/overlapping), restricted to the
    /// payload attributes.
    pub post_filter: Option<PredBox>,
    /// Region of missing tuples to add (partial/overlapping).
    pub delta_region: Region,
    /// Fraction of required tuples already present (paper's `contr`).
    pub contr: f64,
    /// Fraction of stored tuples not required (paper's `overh`).
    pub overh: f64,
    /// For aggregates: request keys are a strict subset of the cached keys,
    /// requiring a post-aggregation (paper §3.3's additive-aggregate rule).
    pub needs_post_group: bool,
}

/// The matcher. Stateless: all inputs arrive per call.
#[derive(Debug, Default)]
pub struct Matcher;

impl Matcher {
    /// Find all viable reuse options for a requesting fingerprint.
    ///
    /// * `request` — the fingerprint the requesting sub-plan would publish.
    /// * `request_box` — the requesting predicates as a single box (queries
    ///   are conjunctive; regions only arise from cached lineage).
    /// * `stats` — for contribution/overhead estimation.
    pub fn find_matches(
        &self,
        htm: &HtManager,
        request: &HtFingerprint,
        request_box: &PredBox,
        stats: &DbStats,
    ) -> Vec<MatchRewrite> {
        let mut out = Vec::new();
        for candidate in htm.candidates(request) {
            if let Some(m) = self.try_match(candidate, request, request_box, stats) {
                out.push(m);
            }
        }
        out
    }

    fn try_match(
        &self,
        candidate: Candidate,
        request: &HtFingerprint,
        request_box: &PredBox,
        stats: &DbStats,
    ) -> Option<MatchRewrite> {
        let fp = &candidate.fingerprint;
        // Shared operators may only reuse tagged tables and vice versa
        // (paper §4.1).
        if fp.tagged != request.tagged {
            return None;
        }
        // Key compatibility.
        let mut needs_post_group = false;
        match request.kind {
            HtKind::JoinBuild => {
                if fp.key_attrs != request.key_attrs {
                    return None;
                }
            }
            HtKind::Aggregate | HtKind::SharedGroup => {
                if fp.key_attrs == request.key_attrs {
                    // identical group-by
                } else if is_strict_subset(&request.key_attrs, &fp.key_attrs) {
                    // Cached table is grouped more finely: allowed only when
                    // every requested aggregate is additive (paper §3.3) —
                    // AVG qualifies only after the SUM/COUNT rewrite.
                    if !all_additive(&request.aggregates) {
                        return None;
                    }
                    needs_post_group = true;
                } else {
                    return None;
                }
            }
        }
        // Aggregate provision (shared-group tables recompute anything).
        if !fp.provides_aggregates(&request.aggregates) {
            return None;
        }
        // Payload must cover everything the requester projects upward.
        if !fp.payload_covers(request.payload_attrs.iter().map(|a| a.as_ref())) {
            return None;
        }
        // Region classification.
        let case = ReuseCase::classify(&request.region, &fp.region);
        if case == ReuseCase::Disjoint {
            return None;
        }
        // Post-filter feasibility: the requesting predicates over the
        // candidate's tables must be evaluable on stored tuples.
        let post_filter = if case.needs_post_filter() {
            let restricted = restrict_to_tables(request_box, &fp.tables);
            let attrs: Vec<Arc<str>> = restricted.attrs();
            if !fp.payload_covers(attrs.iter().map(|a| a.as_ref())) {
                return None; // paper: no post-filter attrs ⇒ no reuse
            }
            Some(restricted)
        } else {
            None
        };
        let delta_region = if case.needs_delta() {
            request.region.difference(&fp.region)
        } else {
            Region::empty()
        };

        // Contribution / overhead from region volumes.
        let tables: Vec<&str> = fp.tables.iter().map(|t| t.as_ref()).collect();
        let required = stats
            .join_rows(tables.iter().copied(), &fp.edges, &request.region)
            .max(1.0);
        let useful = stats
            .join_rows(
                tables.iter().copied(),
                &fp.edges,
                &request.region.intersect(&fp.region),
            )
            .clamp(0.0, required);
        let contr = (useful / required).clamp(0.0, 1.0);
        let entries = candidate.entries.max(1) as f64;
        // Useful entries inside the cached table: estimated via the region
        // volume share of the cached lineage.
        let cached_total = stats
            .join_rows(tables.iter().copied(), &fp.edges, &fp.region)
            .max(1.0);
        let useful_share = (useful / cached_total).clamp(0.0, 1.0);
        let overh = (1.0 - useful_share).clamp(0.0, 1.0);
        let _ = entries;

        Some(MatchRewrite {
            candidate,
            case,
            post_filter,
            delta_region,
            contr,
            overh,
            needs_post_group,
        })
    }
}

fn is_strict_subset(a: &[Arc<str>], b: &[Arc<str>]) -> bool {
    a.len() < b.len() && a.iter().all(|x| b.contains(x))
}

fn all_additive(aggs: &[AggExpr]) -> bool {
    aggs.iter().all(|a| a.func.is_additive())
}

/// Restrict a box to attributes belonging to any of the given tables.
fn restrict_to_tables(pred: &PredBox, tables: &std::collections::BTreeSet<Arc<str>>) -> PredBox {
    let mut out = PredBox::all();
    for (attr, iv) in pred.constrained() {
        let table = attr.split('.').next().unwrap_or("");
        if tables.contains(table) {
            out.constrain(attr.clone(), iv.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hashstash_cache::{GcConfig, StoredHt, TaggedRow};
    use hashstash_hashtable::ExtendibleHashTable;
    use hashstash_plan::{AggFunc, Interval};
    use hashstash_storage::tpch::{generate, TpchConfig};
    use hashstash_types::{DataType, Field, Row, Schema, Value};

    fn stats() -> DbStats {
        DbStats::from_catalog(&generate(TpchConfig::new(0.002, 13)))
    }

    fn join_fp(lo: i64, hi: i64, tagged: bool) -> HtFingerprint {
        HtFingerprint {
            kind: HtKind::JoinBuild,
            tables: std::iter::once(Arc::from("customer")).collect(),
            edges: vec![],
            region: Region::from_box(PredBox::all().with(
                "customer.c_age",
                Interval::closed(Value::Int(lo), Value::Int(hi)),
            )),
            key_attrs: vec![Arc::from("customer.c_custkey")],
            payload_attrs: vec![Arc::from("customer.c_custkey"), Arc::from("customer.c_age")],
            aggregates: vec![],
            tagged,
        }
    }

    fn publish_join(htm: &HtManager, fp: &HtFingerprint, entries: usize) {
        let mut ht = ExtendibleHashTable::new(12);
        for i in 0..entries as u64 {
            ht.insert(
                i,
                TaggedRow::untagged(Row::new(vec![Value::Int(i as i64), Value::Int(30)])),
            );
        }
        htm.publish(
            fp.clone(),
            Schema::new(vec![
                Field::new("customer.c_custkey", DataType::Int),
                Field::new("customer.c_age", DataType::Int),
            ]),
            StoredHt::Join(ht),
        );
    }

    fn request_box(lo: i64, hi: i64) -> PredBox {
        PredBox::all().with(
            "customer.c_age",
            Interval::closed(Value::Int(lo), Value::Int(hi)),
        )
    }

    #[test]
    fn four_cases_classified() {
        let st = stats();
        let m = Matcher;
        let htm = HtManager::new(GcConfig::default());
        publish_join(&htm, &join_fp(30, 60, false), 100);

        let mk_req = |lo: i64, hi: i64| {
            let mut fp = join_fp(lo, hi, false);
            fp.region = Region::from_box(request_box(lo, hi));
            fp
        };
        let cases = [
            (30, 60, ReuseCase::Exact),
            (40, 50, ReuseCase::Subsuming),
            (20, 70, ReuseCase::Partial),
            (50, 80, ReuseCase::Overlapping),
        ];
        for (lo, hi, expect) in cases {
            let req = mk_req(lo, hi);
            let matches = m.find_matches(&htm, &req, &request_box(lo, hi), &st);
            assert_eq!(matches.len(), 1, "case {expect}");
            assert_eq!(matches[0].case, expect);
            match expect {
                ReuseCase::Exact => {
                    assert!(matches[0].post_filter.is_none());
                    assert!(matches[0].delta_region.is_empty());
                    assert!((matches[0].contr - 1.0).abs() < 1e-6);
                }
                ReuseCase::Subsuming => {
                    assert!(matches[0].post_filter.is_some());
                    assert!(matches[0].delta_region.is_empty());
                    assert!(matches[0].overh > 0.0);
                }
                ReuseCase::Partial => {
                    assert!(matches[0].post_filter.is_none());
                    assert!(!matches[0].delta_region.is_empty());
                    assert!(matches[0].contr < 1.0);
                }
                ReuseCase::Overlapping => {
                    assert!(matches[0].post_filter.is_some());
                    assert!(!matches[0].delta_region.is_empty());
                }
                ReuseCase::Disjoint => unreachable!(),
            }
        }
        // Disjoint yields nothing.
        let req = mk_req(80, 90);
        assert!(m
            .find_matches(&htm, &req, &request_box(80, 90), &st)
            .is_empty());
    }

    #[test]
    fn tagged_mismatch_rejected() {
        let st = stats();
        let m = Matcher;
        let htm = HtManager::new(GcConfig::default());
        publish_join(&htm, &join_fp(30, 60, false), 10);
        let mut req = join_fp(30, 60, true);
        req.tagged = true;
        assert!(m
            .find_matches(&htm, &req, &request_box(30, 60), &st)
            .is_empty());
    }

    #[test]
    fn missing_post_filter_attr_rejected() {
        let st = stats();
        let m = Matcher;
        let htm = HtManager::new(GcConfig::default());
        // Candidate payload lacks c_age ⇒ subsuming reuse impossible.
        let mut fp = join_fp(30, 60, false);
        fp.payload_attrs = vec![Arc::from("customer.c_custkey")];
        publish_join(&htm, &fp, 10);
        let mut req = join_fp(40, 50, false);
        req.payload_attrs = vec![Arc::from("customer.c_custkey")];
        let matches = m.find_matches(&htm, &req, &request_box(40, 50), &st);
        assert!(
            matches.is_empty(),
            "paper: no post-filter attributes ⇒ no reuse"
        );
    }

    #[test]
    fn aggregate_group_subset_requires_additive() {
        let st = stats();
        let m = Matcher;
        let htm = HtManager::new(GcConfig::default());
        let cached = HtFingerprint {
            kind: HtKind::Aggregate,
            tables: std::iter::once(Arc::from("customer")).collect(),
            edges: vec![],
            region: Region::all(),
            key_attrs: vec![
                Arc::from("customer.c_age"),
                Arc::from("customer.c_nationkey"),
            ],
            payload_attrs: vec![
                Arc::from("customer.c_age"),
                Arc::from("customer.c_nationkey"),
            ],
            aggregates: vec![AggExpr::new(AggFunc::Sum, "customer.c_acctbal")],
            tagged: false,
        };
        let mut ht = ExtendibleHashTable::new(24);
        ht.insert(
            1,
            hashstash_cache::AggPayload::new(
                Row::new(vec![Value::Int(30), Value::Int(2)]),
                &cached.aggregates,
            ),
        );
        htm.publish(
            cached.clone(),
            Schema::new(vec![
                Field::new("customer.c_age", DataType::Int),
                Field::new("customer.c_nationkey", DataType::Int),
            ]),
            StoredHt::Agg(ht),
        );

        // Additive request on a subset of keys ⇒ post-group match.
        let mut req = cached.clone();
        req.key_attrs = vec![Arc::from("customer.c_age")];
        let matches = m.find_matches(&htm, &req, &PredBox::all(), &st);
        assert_eq!(matches.len(), 1);
        assert!(matches[0].needs_post_group);
        assert_eq!(matches[0].case, ReuseCase::Exact);

        // AVG (non-additive) request on a subset ⇒ rejected.
        let mut avg_req = req.clone();
        avg_req.aggregates = vec![AggExpr::new(AggFunc::Avg, "customer.c_acctbal")];
        assert!(m
            .find_matches(&htm, &avg_req, &PredBox::all(), &st)
            .is_empty());

        // Superset of keys ⇒ rejected (cached is too coarse).
        let mut sup = cached.clone();
        sup.key_attrs = vec![
            Arc::from("customer.c_age"),
            Arc::from("customer.c_nationkey"),
            Arc::from("customer.c_mktsegment"),
        ];
        assert!(m.find_matches(&htm, &sup, &PredBox::all(), &st).is_empty());
    }

    #[test]
    fn aggregate_function_mismatch_rejected() {
        let st = stats();
        let m = Matcher;
        let htm = HtManager::new(GcConfig::default());
        let cached = HtFingerprint {
            kind: HtKind::Aggregate,
            tables: std::iter::once(Arc::from("customer")).collect(),
            edges: vec![],
            region: Region::all(),
            key_attrs: vec![Arc::from("customer.c_age")],
            payload_attrs: vec![Arc::from("customer.c_age")],
            aggregates: vec![AggExpr::new(AggFunc::Sum, "customer.c_acctbal")],
            tagged: false,
        };
        let ht: ExtendibleHashTable<hashstash_cache::AggPayload> = ExtendibleHashTable::new(16);
        htm.publish(
            cached.clone(),
            Schema::new(vec![Field::new("customer.c_age", DataType::Int)]),
            StoredHt::Agg(ht),
        );
        let mut req = cached.clone();
        req.aggregates = vec![AggExpr::new(AggFunc::Min, "customer.c_acctbal")];
        assert!(
            m.find_matches(&htm, &req, &PredBox::all(), &st).is_empty(),
            "a MIN cannot be answered from a SUM table"
        );
    }
}
