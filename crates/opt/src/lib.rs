//! The Reuse-aware Query Optimizer (RQO).
//!
//! Paper §3: the optimizer enumerates join orders top-down (Algorithm 1),
//! retrieves candidate hash tables from the Hash Table Manager for every
//! sub-plan, rewrites sub-plans for the applicable reuse case, and costs the
//! alternatives with reuse-aware cost models calibrated by hash-table
//! micro-benchmarks. §4: a dynamic-programming pass merges a batch of
//! queries into reuse-aware shared plans.
//!
//! * [`stats`] — table/attribute statistics (row counts, domains, distinct
//!   counts) for selectivity and cardinality estimation.
//! * [`cost`] — the reuse-aware cost models `c_RHJ` and `c_RHA` built on the
//!   calibrated [`hashstash_hashtable::CostGrid`], parameterized by the
//!   contribution- and overhead-ratios of candidate tables.
//! * [`matching`] — candidate matching and rewrite planning for the four
//!   reuse cases (exact, subsuming, partial, overlapping).
//! * [`policy`] — the [`ReusePolicy`] trait and the five built-in policies
//!   mirroring the paper's §6 configurations; new policies plug in without
//!   touching the optimizer.
//! * [`optimizer`] — single-query plan enumeration (Algorithm 1) plus the
//!   benefit-oriented optimizations of §3.4, consulting the configured
//!   [`ReusePolicy`] at every pipeline breaker.
//! * [`multi`] — the query-batch interface: DP-based merging into
//!   reuse-aware shared plans (§4.2).

pub mod cost;
pub mod matching;
pub mod multi;
pub mod optimizer;
pub mod policy;
pub mod stats;

pub use cost::{CostModel, CostParams};
pub use matching::{MatchRewrite, Matcher};
pub use multi::{plan_batch, BatchPlan, BatchUnit};
pub use optimizer::{OptimizedQuery, Optimizer, OptimizerConfig};
pub use policy::{
    AdmissionScore, AlwaysShare, BenefitScoredAdmission, CostBasedReuse, MaterializedReuse,
    NeverShare, NoReuse, PolicyHandle, ReusePolicy,
};
pub use stats::DbStats;
