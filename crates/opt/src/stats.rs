//! Table and attribute statistics for selectivity and cardinality
//! estimation.

use std::collections::{HashMap, HashSet};

use hashstash_types::Value;

use hashstash_plan::{PredBox, Region};
use hashstash_storage::{Catalog, Column};

/// Domain statistics of one (qualified) attribute.
#[derive(Debug, Clone)]
pub struct AttrStats {
    /// Smallest value in the column.
    pub lo: Value,
    /// Largest value in the column.
    pub hi: Value,
    /// Number of distinct values.
    pub distinct: u64,
}

/// Statistics of one table.
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    /// Row count.
    pub rows: usize,
    /// Per-attribute domains, keyed by qualified name.
    pub attrs: HashMap<String, AttrStats>,
}

/// Database statistics: the optimizer's view of the data.
#[derive(Debug, Clone, Default)]
pub struct DbStats {
    tables: HashMap<String, TableStats>,
}

impl DbStats {
    /// Collect exact statistics from a catalog (one pass per column; our
    /// experiment databases are small enough that exact stats are cheap and
    /// remove one source of noise from estimator-accuracy experiments).
    pub fn from_catalog(catalog: &Catalog) -> Self {
        let mut tables = HashMap::new();
        for name in catalog.table_names() {
            let table = catalog.get(name).expect("listed table exists");
            let mut ts = TableStats {
                rows: table.row_count(),
                attrs: HashMap::new(),
            };
            for (i, field) in table.schema().fields().iter().enumerate() {
                let col = table.column(i);
                if let Some(stats) = column_stats(col) {
                    ts.attrs.insert(format!("{name}.{}", field.name), stats);
                }
            }
            tables.insert(name.to_string(), ts);
        }
        DbStats { tables }
    }

    /// Row count of a base table (0 if unknown).
    pub fn table_rows(&self, table: &str) -> usize {
        self.tables.get(table).map_or(0, |t| t.rows)
    }

    /// Statistics of a qualified attribute.
    pub fn attr(&self, attr: &str) -> Option<&AttrStats> {
        let table = attr.split('.').next()?;
        self.tables.get(table)?.attrs.get(attr)
    }

    /// Selectivity of a predicate box against one table: the product of the
    /// per-attribute interval fractions (independence assumption), over the
    /// box's constraints on that table.
    pub fn box_selectivity(&self, table: &str, pred: &PredBox) -> f64 {
        let restricted = pred.project_table(table);
        if restricted.is_empty() {
            return 0.0;
        }
        let mut sel = 1.0;
        for (attr, iv) in restricted.constrained() {
            match self.attr(attr) {
                Some(s) => sel *= iv.fraction(&s.lo, &s.hi, s.distinct),
                None => sel *= 0.5,
            }
        }
        sel.clamp(0.0, 1.0)
    }

    /// Selectivity of a region against one table (boxes are disjoint, so
    /// fractions add; the sum is clamped to 1).
    pub fn region_selectivity(&self, table: &str, region: &Region) -> f64 {
        region
            .boxes()
            .iter()
            .map(|b| self.box_selectivity(table, b))
            .sum::<f64>()
            .clamp(0.0, 1.0)
    }

    /// Estimated rows of a table under a region predicate.
    pub fn filtered_rows(&self, table: &str, region: &Region) -> f64 {
        self.table_rows(table) as f64 * self.region_selectivity(table, region)
    }

    /// Estimated number of distinct combinations of the given attributes
    /// (bounded by `upper`, typically the input row estimate).
    pub fn distinct_combinations(&self, attrs: &[impl AsRef<str>], upper: f64) -> f64 {
        if attrs.is_empty() {
            return 1.0;
        }
        let mut product = 1.0f64;
        for a in attrs {
            let d = self.attr(a.as_ref()).map_or(100.0, |s| s.distinct as f64);
            product *= d;
            if product > upper {
                return upper.max(1.0);
            }
        }
        product.min(upper).max(1.0)
    }

    /// Classic System-R style join cardinality estimate for a set of tables
    /// joined by equi-join edges under a region predicate: the product of
    /// filtered table cardinalities divided, per edge, by the larger
    /// distinct count of the two join keys.
    pub fn join_rows(
        &self,
        tables: impl IntoIterator<Item = impl AsRef<str>>,
        edges: &[hashstash_plan::JoinEdge],
        region: &Region,
    ) -> f64 {
        let mut rows = 1.0f64;
        let mut any = false;
        for t in tables {
            any = true;
            rows *= self.filtered_rows(t.as_ref(), region).max(1.0);
        }
        if !any {
            return 0.0;
        }
        for e in edges {
            let dl = self.attr(&e.left_col).map_or(100.0, |s| s.distinct as f64);
            let dr = self.attr(&e.right_col).map_or(100.0, |s| s.distinct as f64);
            rows /= dl.max(dr).max(1.0);
        }
        rows.max(0.0)
    }
}

fn column_stats(col: &Column) -> Option<AttrStats> {
    if col.is_empty() {
        return None;
    }
    match col {
        Column::Int(v) => {
            let lo = *v.iter().min()?;
            let hi = *v.iter().max()?;
            let distinct = v.iter().collect::<HashSet<_>>().len() as u64;
            Some(AttrStats {
                lo: Value::Int(lo),
                hi: Value::Int(hi),
                distinct,
            })
        }
        Column::Date(v) => {
            let lo = *v.iter().min()?;
            let hi = *v.iter().max()?;
            let distinct = v.iter().collect::<HashSet<_>>().len() as u64;
            Some(AttrStats {
                lo: Value::Date(lo),
                hi: Value::Date(hi),
                distinct,
            })
        }
        Column::Float(v) => {
            let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let distinct = v.iter().map(|x| x.to_bits()).collect::<HashSet<_>>().len() as u64;
            Some(AttrStats {
                lo: Value::float(lo),
                hi: Value::float(hi),
                distinct,
            })
        }
        Column::Str { dict, codes } => {
            let lo = dict.iter().min()?.clone();
            let hi = dict.iter().max()?.clone();
            let distinct = codes.iter().collect::<HashSet<_>>().len() as u64;
            Some(AttrStats {
                lo: Value::Str(lo),
                hi: Value::Str(hi),
                distinct,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hashstash_plan::Interval;
    use hashstash_storage::tpch::{generate, TpchConfig};

    fn stats() -> DbStats {
        DbStats::from_catalog(&generate(TpchConfig::new(0.002, 9)))
    }

    #[test]
    fn table_rows_and_attr_domains() {
        let s = stats();
        assert!(s.table_rows("customer") >= 50);
        let age = s.attr("customer.c_age").unwrap();
        assert!(age.lo >= Value::Int(18));
        assert!(age.hi <= Value::Int(92));
        assert!(age.distinct > 10);
        assert!(s.attr("customer.nope").is_none());
    }

    #[test]
    fn box_selectivity_scales_with_range() {
        let s = stats();
        let narrow = PredBox::all().with(
            "customer.c_age",
            Interval::closed(Value::Int(30), Value::Int(34)),
        );
        let wide = PredBox::all().with(
            "customer.c_age",
            Interval::closed(Value::Int(20), Value::Int(80)),
        );
        let sn = s.box_selectivity("customer", &narrow);
        let sw = s.box_selectivity("customer", &wide);
        assert!(sn < sw, "{sn} < {sw}");
        assert!(sn > 0.0 && sw <= 1.0);
        // Predicates on other tables do not affect this table.
        let other = PredBox::all().with(
            "orders.o_orderdate",
            Interval::closed(Value::Date(0), Value::Date(1)),
        );
        assert_eq!(s.box_selectivity("customer", &other), 1.0);
    }

    #[test]
    fn region_selectivity_adds_disjoint_boxes() {
        let s = stats();
        let b1 = PredBox::all().with(
            "customer.c_age",
            Interval::closed(Value::Int(20), Value::Int(29)),
        );
        let b2 = PredBox::all().with(
            "customer.c_age",
            Interval::closed(Value::Int(30), Value::Int(39)),
        );
        let merged = PredBox::all().with(
            "customer.c_age",
            Interval::closed(Value::Int(20), Value::Int(39)),
        );
        let r12 = Region::from_box(b1).union(&Region::from_box(b2));
        let rm = Region::from_box(merged);
        let s12 = s.region_selectivity("customer", &r12);
        let sm = s.region_selectivity("customer", &rm);
        assert!((s12 - sm).abs() < 1e-9, "{s12} vs {sm}");
    }

    #[test]
    fn join_rows_reasonable_for_fk_join() {
        let s = stats();
        let edges = vec![hashstash_plan::JoinEdge::new(
            "customer",
            "customer.c_custkey",
            "orders",
            "orders.o_custkey",
        )];
        let est = s.join_rows(["customer", "orders"], &edges, &Region::all());
        let actual = s.table_rows("orders") as f64;
        // FK join: |orders ⋈ customer| = |orders|; estimate within 2×.
        assert!(
            est > actual * 0.5 && est < actual * 2.0,
            "est={est} actual={actual}"
        );
    }

    #[test]
    fn distinct_combinations_bounded() {
        let s = stats();
        let d = s.distinct_combinations(&["customer.c_age"], 1e9);
        assert!(d > 10.0 && d <= 75.0);
        let combo = s.distinct_combinations(&["customer.c_age", "customer.c_mktsegment"], 1e9);
        assert!(combo > d);
        let capped = s.distinct_combinations(&["customer.c_age"], 5.0);
        assert_eq!(capped, 5.0);
        assert_eq!(s.distinct_combinations(&[] as &[&str], 10.0), 1.0);
    }

    #[test]
    fn filtered_rows_empty_region() {
        let s = stats();
        assert_eq!(s.filtered_rows("customer", &Region::empty()), 0.0);
    }
}
