//! Reuse-aware cost models (paper §3.2).
//!
//! The models estimate nanoseconds for the reuse-aware hash join (RHJ) and
//! hash aggregate (RHA):
//!
//! ```text
//! c_RHJ = c_resize(HT) + c_build(HT) + c_probe(HT)
//! c_RHA = c_resize(HT) + c_insert(HT) + c_update(HT)
//!
//! c_build  = |Builder| · (1 − contr(HT)) · ci(htSize, tWidth)
//! c_probe  = |Prober| · cl(htSize, tWidth)
//! c_insert = |distinct(Input.key)| · (1 − contr) · ci(htSize, tWidth)
//! c_update = (|Input| − |distinct|) · (1 − contr) · cu(htSize, tWidth)
//! ```
//!
//! `ci`/`cl`/`cu` come from the calibrated [`CostGrid`] (paper Figure 3).
//! The **contribution-ratio** `contr` is the fraction of required tuples the
//! candidate already holds; the **overhead-ratio** `overh` is the fraction
//! of the candidate's tuples the request does not need — it inflates
//! `htSize` (cache pressure) and adds post-filter work.

use hashstash_hashtable::calibration::{CostGrid, HtOp};

use crate::policy::AdmissionScore;

/// Scalar cost constants besides the calibrated grid.
#[derive(Debug, Clone, Copy)]
pub struct CostParams {
    /// Sequential scan cost per tuple (ns).
    pub scan_ns: f64,
    /// Random index lookup cost per fetched tuple (ns).
    pub index_ns: f64,
    /// Post-filter check per tuple (ns).
    pub filter_ns: f64,
    /// Materializing one tuple into a temp table (ns) — baseline cost.
    pub materialize_ns: f64,
    /// Re-tagging one stored tuple in a shared reuse (ns).
    pub retag_ns: f64,
    /// Emitting one output row (ns).
    pub output_ns: f64,
    /// Per-bucket directory resize cost (ns).
    pub resize_ns_per_slot: f64,
    /// Copy-on-write charge per byte of a cached table: a mutating
    /// (partial/overlapping) reuse clones the whole table before writing
    /// its delta, so the optimizer must not price mutating reuse of a large
    /// cached table as if the delta insert were the only cost.
    pub cow_ns_per_byte: f64,
    /// Worker threads the executor fans morsel-parallel phases (scan
    /// filtering, probe, reuse post-filtering) out to. `1` = serial
    /// interpreter; reuse-vs-recompute decisions would otherwise silently
    /// assume serial probe costs.
    pub parallel_workers: usize,
    /// Fixed dispatch overhead per morsel (ns): one atomic claim plus the
    /// output-buffer bookkeeping.
    pub morsel_overhead_ns: f64,
    /// Dispatch cost of one parallel phase (ns), paid once per phase
    /// regardless of worker count: a queue push, a condvar wakeup and the
    /// quiesce wait on the engine's persistent worker pool
    /// (`hashstash_exec::PHASE_DISPATCH_NS`, measured by `exp8_parallel`).
    /// The retired spawn-per-phase executor paid ~25 µs *per worker* here;
    /// together with the executor's derived morsel-count threshold this
    /// keeps the model honest about small inputs.
    pub parallel_dispatch_ns: f64,
    /// Serial stitch/replay cost per build-input row of a partitioned
    /// parallel build (ns): the single-threaded pass that installs the
    /// per-partition chains (joins) or replays the structural history
    /// (aggregates) after the workers' partition passes. It also absorbs
    /// the per-worker full key scan of the partition phase. This is the
    /// merge term that keeps the model honest about Amdahl's law on builds:
    /// a parallel build never gets cheaper than `rows ·
    /// build_merge_ns_per_row`.
    pub build_merge_ns_per_row: f64,
    /// Whether the executor's columnar selection-vector paths are on
    /// (`hashstash_exec::default_vectorize`, i.e. `HS_VECTORIZE`). When
    /// set, sequential scans are priced with the vectorized per-tuple
    /// cost + per-batch overhead instead of the row-interpreter
    /// [`CostParams::scan_ns`].
    pub vectorized: bool,
    /// Vectorized filter cost per tuple (ns): one typed-slice compare in a
    /// monomorphized kernel, no boxed scalar materialization. Replaces
    /// [`CostParams::scan_ns`] on the vectorized scan path.
    pub vec_scan_ns: f64,
    /// Fixed per-batch overhead of a vectorized scan (ns): selection-vector
    /// allocation and kernel dispatch, paid once per morsel-sized batch.
    pub vec_batch_ns: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            scan_ns: 2.0,
            index_ns: 18.0,
            filter_ns: 1.5,
            materialize_ns: 8.0,
            retag_ns: 6.0,
            output_ns: 4.0,
            resize_ns_per_slot: 0.6,
            cow_ns_per_byte: 0.08,
            parallel_workers: 1,
            morsel_overhead_ns: 400.0,
            parallel_dispatch_ns: hashstash_exec::PHASE_DISPATCH_NS as f64,
            build_merge_ns_per_row: 1.5,
            vectorized: hashstash_exec::default_vectorize(),
            vec_scan_ns: 0.5,
            vec_batch_ns: 60.0,
        }
    }
}

/// Inputs describing one candidate hash table for reuse costing.
#[derive(Debug, Clone, Copy)]
pub struct CandidateShape {
    /// Entries currently stored.
    pub entries: f64,
    /// Logical bytes currently occupied.
    pub bytes: f64,
    /// Tuple width in bytes.
    pub tuple_width: f64,
    /// Contribution-ratio: fraction of *required* tuples already present.
    pub contr: f64,
    /// Overhead-ratio: fraction of *stored* tuples that are not required.
    pub overh: f64,
}

/// The reuse-aware cost model.
#[derive(Debug, Clone)]
pub struct CostModel {
    grid: CostGrid,
    params: CostParams,
}

impl CostModel {
    /// Model from a calibrated grid.
    pub fn new(grid: CostGrid, params: CostParams) -> Self {
        CostModel { grid, params }
    }

    /// Deterministic model used by tests and default engines.
    pub fn synthetic() -> Self {
        CostModel::new(CostGrid::synthetic(), CostParams::default())
    }

    /// The same model assuming the executor fans morsel-parallel phases out
    /// to `workers` threads (engines set this from their `parallelism`
    /// knob; `1` reproduces the serial model exactly). The executor clamps
    /// its fan-out to the machine's core count
    /// ([`hashstash_exec::effective_parallelism`]), so the model prices
    /// the clamped width — requesting 16 workers on a 4-core host must
    /// not make plans look four times cheaper than they can run.
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        self.params.parallel_workers = hashstash_exec::effective_parallelism(workers.max(1));
        self
    }

    /// Scalar parameters.
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// Effective cost of a morsel-parallelizable phase whose serial cost is
    /// `serial_ns` over `rows` items: near-linear speedup capped by the
    /// morsel count, plus per-morsel dispatch overhead and one flat
    /// per-phase submission to the persistent worker pool
    /// ([`CostParams::parallel_dispatch_ns`] — *not* multiplied by the
    /// worker count; the pool's threads already exist). Identity for one
    /// worker or inputs below the executor's derived fan-out threshold
    /// ([`hashstash_exec::min_parallel_morsels`]) — exactly the serial
    /// fast path.
    pub fn parallel(&self, serial_ns: f64, rows: f64) -> f64 {
        let workers = self.params.parallel_workers.max(1) as f64;
        let morsel = hashstash_exec::MORSEL_ROWS as f64;
        let morsels = (rows / morsel).ceil();
        if workers <= 1.0 || morsels < hashstash_exec::min_parallel_morsels() as f64 {
            return serial_ns;
        }
        let effective = workers.min(morsels);
        (serial_ns + morsels * self.params.morsel_overhead_ns) / effective
            + self.params.parallel_dispatch_ns
    }

    /// Effective cost of a **partitioned parallel build** whose serial cost
    /// is `serial_ns` over `rows` build-input rows: the per-partition chain
    /// computation (joins) / key-partitioned folding (aggregates) divides
    /// across workers, then a serial stitch/replay pass pays
    /// [`CostParams::build_merge_ns_per_row`] per row, plus one flat
    /// per-phase pool dispatch. Identity for one worker or inputs below
    /// the executor's fan-out cutoff
    /// ([`hashstash_exec::MIN_PARALLEL_BUILD_ROWS`]) — exactly the serial
    /// insert loop. This is what lets reuse-vs-recompute (and admission
    /// benefit scoring) stop assuming serial `ht_inserts`.
    pub fn parallel_build(&self, serial_ns: f64, rows: f64) -> f64 {
        let workers = self.params.parallel_workers.max(1) as f64;
        if workers <= 1.0 || rows < hashstash_exec::MIN_PARALLEL_BUILD_ROWS as f64 {
            return serial_ns;
        }
        serial_ns / workers
            + rows * self.params.build_merge_ns_per_row
            + self.params.parallel_dispatch_ns
    }

    /// The calibration grid.
    pub fn grid(&self) -> &CostGrid {
        &self.grid
    }

    /// The same model pricing scans for the columnar selection-vector
    /// executor (`true`) or the row interpreter (`false`). Engines set this
    /// from their vectorize knob so reuse-vs-recompute decisions price the
    /// scans that will actually run; the default follows `HS_VECTORIZE`.
    pub fn with_vectorized(mut self, vectorized: bool) -> Self {
        self.params.vectorized = vectorized;
        self
    }

    /// Serial cost of a **vectorized** scan over `rows` tuples: a tight
    /// typed-slice kernel per tuple plus a fixed overhead per morsel-sized
    /// batch (selection-vector bookkeeping). The admission scores and
    /// reuse-vs-recompute comparisons pick this up through [`Self::scan`],
    /// so a cheaper scan correctly shrinks the benefit of caching
    /// scan-dominated builds.
    pub fn vectorized(&self, rows: f64) -> f64 {
        let batches = (rows / hashstash_exec::MORSEL_ROWS as f64).ceil();
        rows * self.params.vec_scan_ns + batches * self.params.vec_batch_ns
    }

    /// Cost of scanning `rows` tuples sequentially (filter + projection
    /// fan out over morsels). Priced with the vectorized kernel term when
    /// the engine runs columnar ([`CostParams::vectorized`]), the
    /// row-interpreter per-tuple cost otherwise.
    pub fn scan(&self, rows: f64) -> f64 {
        let serial = if self.params.vectorized {
            self.vectorized(rows)
        } else {
            rows * self.params.scan_ns
        };
        self.parallel(serial, rows)
    }

    /// Cost of fetching `rows` tuples through a secondary index (the
    /// residual-filter pass over index hits fans out over morsels too).
    pub fn index_scan(&self, rows: f64) -> f64 {
        self.parallel(rows * self.params.index_ns, rows)
    }

    /// Cost of materializing `rows` tuples into a temp table (baseline).
    pub fn materialize(&self, rows: f64) -> f64 {
        rows * self.params.materialize_ns
    }

    /// Estimated logical size of a hash table holding `entries` tuples of
    /// `width` bytes (mirrors `ExtendibleHashTable::logical_bytes`).
    pub fn ht_size(&self, entries: f64, width: f64) -> f64 {
        let buckets = (entries / 2.0).max(2.0);
        buckets * 5.0 + entries * (12.0 + width)
    }

    /// `c_RHJ` for building a *fresh* join table of `build_rows` tuples of
    /// `width` bytes and probing it with `probe_rows` tuples. The build is
    /// priced as a partitioned parallel build ([`Self::parallel_build`]):
    /// workers derive disjoint bucket partitions of the serial chain order
    /// and a serial stitch installs them, so determinism costs a merge term
    /// rather than serialization. The probe phase fans out over morsels.
    pub fn rhj_fresh(&self, build_rows: f64, width: f64, probe_rows: f64) -> f64 {
        let size = self.ht_size(build_rows, width);
        let resize = (build_rows / 2.0) * self.params.resize_ns_per_slot;
        let build = self.parallel_build(
            build_rows
                * self
                    .grid
                    .cost_ns(HtOp::Insert, size as usize, width as usize),
            build_rows,
        );
        let probe = self.parallel(
            probe_rows
                * self
                    .grid
                    .cost_ns(HtOp::Lookup, size as usize, width as usize),
            probe_rows,
        );
        resize + build + probe
    }

    /// `c_RHJ` when reusing a candidate table.
    ///
    /// * `required_rows` — tuples the request needs in the table.
    /// * `probe_rows` — probe-side input size.
    /// * `expected_matches` — estimated probe matches (drives post-filter
    ///   cost when the candidate carries overhead tuples).
    ///
    /// The delta insert of a mutating reuse is priced *serially* on
    /// purpose: the executor keeps delta inserts on the serial path (they
    /// extend a table with existing chain history, which the partitioned
    /// build cannot reproduce), so the model must not discount them.
    pub fn rhj_reuse(
        &self,
        cand: &CandidateShape,
        required_rows: f64,
        probe_rows: f64,
        expected_matches: f64,
    ) -> f64 {
        let missing = required_rows * (1.0 - cand.contr);
        // Final size after adding missing tuples.
        let final_entries = cand.entries + missing;
        let size = self
            .ht_size(final_entries, cand.tuple_width)
            .max(cand.bytes);
        let resize = if missing > 0.0 {
            (missing / 2.0) * self.params.resize_ns_per_slot
        } else {
            0.0
        };
        // Mutating (delta-inserting) reuse copies the whole cached table
        // before the first write (copy-on-write under the shared-checkout
        // model); read-only reuse pays nothing here.
        let cow = if missing > 0.0 {
            cand.bytes * self.params.cow_ns_per_byte
        } else {
            0.0
        };
        let build = missing
            * self
                .grid
                .cost_ns(HtOp::Insert, size as usize, cand.tuple_width as usize);
        let probe = self.parallel(
            probe_rows
                * self
                    .grid
                    .cost_ns(HtOp::Lookup, size as usize, cand.tuple_width as usize),
            probe_rows,
        );
        // Post-filtering false positives: matches scale with the overhead
        // share of the table. Runs inside the morsel-parallel probe loop.
        let post = if cand.overh > 0.0 {
            let false_matches = expected_matches * cand.overh / (1.0 - cand.overh).max(0.05);
            self.parallel(
                (expected_matches + false_matches) * self.params.filter_ns,
                probe_rows,
            )
        } else {
            0.0
        };
        resize + cow + build + probe + post
    }

    /// `c_RHA` for a *fresh* aggregation of `input_rows` tuples with
    /// `distinct_groups` groups of `width`-byte states. The fold (inserts +
    /// updates) is priced as a partitioned parallel build over the input
    /// rows ([`Self::parallel_build`]): key-partitioned workers fold groups
    /// in global row order, a serial replay pass reconstructs the table.
    pub fn rha_fresh(&self, input_rows: f64, distinct_groups: f64, width: f64) -> f64 {
        let groups = distinct_groups.min(input_rows).max(1.0);
        let size = self.ht_size(groups, width);
        let resize = (groups / 2.0) * self.params.resize_ns_per_slot;
        let insert = groups
            * self
                .grid
                .cost_ns(HtOp::Insert, size as usize, width as usize);
        let update = (input_rows - groups).max(0.0)
            * self
                .grid
                .cost_ns(HtOp::Update, size as usize, width as usize);
        resize + self.parallel_build(insert + update, input_rows)
    }

    /// `c_RHA` when reusing a candidate aggregate table: only the missing
    /// input needs to be folded in.
    pub fn rha_reuse(&self, cand: &CandidateShape, input_rows: f64, distinct_groups: f64) -> f64 {
        let missing_rows = input_rows * (1.0 - cand.contr);
        let missing_groups = distinct_groups.min(missing_rows) * (1.0 - cand.contr);
        let final_groups = cand.entries + missing_groups;
        let size = self.ht_size(final_groups, cand.tuple_width).max(cand.bytes);
        let resize = if missing_groups > 0.0 {
            (missing_groups / 2.0) * self.params.resize_ns_per_slot
        } else {
            0.0
        };
        // Copy-on-write: folding a delta into the cached aggregate clones
        // the whole table first (see `rhj_reuse`).
        let cow = if missing_rows > 0.0 {
            cand.bytes * self.params.cow_ns_per_byte
        } else {
            0.0
        };
        let insert = missing_groups
            * self
                .grid
                .cost_ns(HtOp::Insert, size as usize, cand.tuple_width as usize);
        let update = (missing_rows - missing_groups).max(0.0)
            * self
                .grid
                .cost_ns(HtOp::Update, size as usize, cand.tuple_width as usize);
        // Post-filtering groups that the request does not need (subsuming /
        // overlapping on group attributes); the output pass fans out over
        // the stored groups.
        let post = self.parallel(
            cand.entries * cand.overh * self.params.filter_ns,
            cand.entries,
        );
        resize + cow + insert + update + post
    }

    /// Admission score for publishing a fresh **join build**: the benefit
    /// is the build-side share of `c_RHJ` (resize + inserts — exactly what
    /// a future exact reuse skips; the probe is paid either way), the cost
    /// is the table's predicted footprint.
    pub fn admission_score_join(&self, build_rows: f64, width: f64) -> AdmissionScore {
        AdmissionScore {
            predicted_benefit_ns: self.rhj_fresh(build_rows, width, 0.0),
            predicted_bytes: self.ht_size(build_rows, width),
        }
    }

    /// Admission score for publishing a fresh **aggregate**: a future exact
    /// reuse skips the whole `c_RHA` (aggregation is all build), against
    /// the grouped table's predicted footprint.
    pub fn admission_score_agg(
        &self,
        input_rows: f64,
        distinct_groups: f64,
        width: f64,
    ) -> AdmissionScore {
        AdmissionScore {
            predicted_benefit_ns: self.rha_fresh(input_rows, distinct_groups, width),
            predicted_bytes: self.ht_size(distinct_groups.min(input_rows).max(1.0), width),
        }
    }

    /// Cost of re-tagging every stored tuple of a reused table in a shared
    /// plan (paper §4.1: mandatory before an SRHJ/SRHA executes).
    pub fn retag(&self, entries: f64) -> f64 {
        entries * self.params.retag_ns
    }

    /// Cost of emitting `rows` result rows.
    pub fn output(&self, rows: f64) -> f64 {
        rows * self.params.output_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::synthetic()
    }

    #[test]
    fn fresh_join_cost_grows_with_inputs() {
        let m = model();
        let small = m.rhj_fresh(1_000.0, 32.0, 10_000.0);
        let large = m.rhj_fresh(100_000.0, 32.0, 1_000_000.0);
        assert!(large > small * 10.0);
    }

    #[test]
    fn exact_reuse_cheaper_than_fresh() {
        let m = model();
        let cand = CandidateShape {
            entries: 100_000.0,
            bytes: m.ht_size(100_000.0, 32.0),
            tuple_width: 32.0,
            contr: 1.0,
            overh: 0.0,
        };
        let reuse = m.rhj_reuse(&cand, 100_000.0, 1_000_000.0, 1_000_000.0);
        let fresh = m.rhj_fresh(100_000.0, 32.0, 1_000_000.0);
        assert!(
            reuse < fresh,
            "exact reuse skips the build: {reuse} < {fresh}"
        );
    }

    #[test]
    fn reuse_cost_monotone_in_contribution() {
        // Paper Figure 9a: as contribution falls, reuse cost rises.
        let m = model();
        let mut prev = f64::NEG_INFINITY;
        for contr_pct in (0..=100).rev().step_by(10) {
            let contr = contr_pct as f64 / 100.0;
            let cand = CandidateShape {
                entries: 100_000.0,
                bytes: m.ht_size(100_000.0, 32.0),
                tuple_width: 32.0,
                contr,
                overh: 1.0 - contr,
            };
            let c = m.rhj_reuse(&cand, 100_000.0, 1_000_000.0, 1_000_000.0);
            assert!(
                c >= prev,
                "cost must rise as contribution falls: contr={contr} cost={c} prev={prev}"
            );
            prev = c;
        }
    }

    #[test]
    fn always_share_crossover_exists() {
        // With low contribution the reuse cost must exceed the fresh cost —
        // the crossover the paper shows near 70% contribution (Fig 9a).
        let m = model();
        let fresh = m.rhj_fresh(100_000.0, 32.0, 1_000_000.0);
        let low = CandidateShape {
            entries: 100_000.0,
            bytes: m.ht_size(100_000.0, 32.0),
            tuple_width: 32.0,
            contr: 0.0,
            overh: 1.0,
        };
        let high = CandidateShape {
            contr: 1.0,
            overh: 0.0,
            ..low
        };
        assert!(m.rhj_reuse(&low, 100_000.0, 1_000_000.0, 1_000_000.0) > fresh);
        assert!(m.rhj_reuse(&high, 100_000.0, 1_000_000.0, 1_000_000.0) < fresh);
    }

    #[test]
    fn rha_fresh_distinguishes_insert_and_update() {
        let m = model();
        // Many groups ⇒ many inserts ⇒ more expensive than few groups.
        let many = m.rha_fresh(1_000_000.0, 500_000.0, 64.0);
        let few = m.rha_fresh(1_000_000.0, 100.0, 64.0);
        assert!(many > few);
    }

    #[test]
    fn rha_reuse_cheaper_with_full_contribution() {
        let m = model();
        let cand = CandidateShape {
            entries: 1_000.0,
            bytes: m.ht_size(1_000.0, 64.0),
            tuple_width: 64.0,
            contr: 1.0,
            overh: 0.0,
        };
        let reuse = m.rha_reuse(&cand, 1_000_000.0, 1_000.0);
        let fresh = m.rha_fresh(1_000_000.0, 1_000.0, 64.0);
        assert!(reuse < fresh * 0.05, "{reuse} vs {fresh}");
    }

    #[test]
    fn cow_copy_charged_to_mutating_reuse_only() {
        let m = model();
        let readonly = CandidateShape {
            entries: 1_000_000.0,
            bytes: m.ht_size(1_000_000.0, 32.0),
            tuple_width: 32.0,
            contr: 1.0,
            overh: 0.0,
        };
        let mutating = CandidateShape {
            contr: 0.999,
            ..readonly
        };
        let exact = m.rhj_reuse(&readonly, 1_000_000.0, 1_000.0, 1_000.0);
        let partial = m.rhj_reuse(&mutating, 1_000_000.0, 1_000.0, 1_000.0);
        // A near-exact partial reuse of a huge table still pays the O(table)
        // copy-on-write before inserting its tiny delta.
        let cow = readonly.bytes * m.params().cow_ns_per_byte;
        assert!(
            partial - exact >= cow * 0.99,
            "partial={partial} exact={exact} cow={cow}"
        );
        // Same for aggregates.
        let agg_exact = m.rha_reuse(&readonly, 0.0, 1_000.0);
        let agg_partial = m.rha_reuse(&mutating, 1_000.0, 1_000.0);
        assert!(agg_partial - agg_exact >= cow * 0.99);
    }

    #[test]
    fn parallel_workers_shrink_probe_and_scan_costs() {
        let serial = CostModel::synthetic();
        let par = CostModel::synthetic().with_parallelism(4);
        // One worker reproduces the serial model exactly.
        let one = CostModel::synthetic().with_parallelism(1);
        assert_eq!(
            one.rhj_fresh(100_000.0, 32.0, 1_000_000.0),
            serial.rhj_fresh(100_000.0, 32.0, 1_000_000.0)
        );
        // Probe-heavy joins and big scans get cheaper with workers…
        assert!(
            par.rhj_fresh(100_000.0, 32.0, 1_000_000.0)
                < serial.rhj_fresh(100_000.0, 32.0, 1_000_000.0)
        );
        assert!(par.scan(1_000_000.0) < serial.scan(1_000_000.0));
        // …but sub-morsel inputs keep the serial fast path.
        assert_eq!(par.scan(100.0), serial.scan(100.0));
        // Reuse probes are priced with the same parallel term, so the
        // reuse-vs-recompute comparison stays apples to apples.
        let cand = CandidateShape {
            entries: 100_000.0,
            bytes: serial.ht_size(100_000.0, 32.0),
            tuple_width: 32.0,
            contr: 1.0,
            overh: 0.0,
        };
        assert!(
            par.rhj_reuse(&cand, 100_000.0, 1_000_000.0, 1_000_000.0)
                < serial.rhj_reuse(&cand, 100_000.0, 1_000_000.0, 1_000_000.0)
        );
        assert!(
            par.rhj_reuse(&cand, 100_000.0, 1_000_000.0, 1_000_000.0)
                < par.rhj_fresh(100_000.0, 32.0, 1_000_000.0),
            "exact reuse still wins under parallel pricing"
        );
    }

    #[test]
    fn parallel_build_pricing() {
        let serial = model();
        let one = CostModel::synthetic().with_parallelism(1);
        let par = CostModel::synthetic().with_parallelism(4);
        // One worker reproduces the serial model exactly, builds included.
        assert_eq!(
            one.rhj_fresh(100_000.0, 32.0, 0.0),
            serial.rhj_fresh(100_000.0, 32.0, 0.0)
        );
        assert_eq!(
            one.rha_fresh(1_000_000.0, 50_000.0, 64.0),
            serial.rha_fresh(1_000_000.0, 50_000.0, 64.0)
        );
        // Big builds get cheaper with workers…
        assert!(par.rhj_fresh(100_000.0, 32.0, 0.0) < serial.rhj_fresh(100_000.0, 32.0, 0.0));
        assert!(
            par.rha_fresh(1_000_000.0, 50_000.0, 64.0)
                < serial.rha_fresh(1_000_000.0, 50_000.0, 64.0)
        );
        // …but below the executor's fan-out cutoff pricing stays serial…
        let small = (hashstash_exec::MIN_PARALLEL_BUILD_ROWS - 1) as f64;
        assert_eq!(
            par.rhj_fresh(small, 32.0, 0.0),
            serial.rhj_fresh(small, 32.0, 0.0)
        );
        // …and the serial stitch pass bounds the speedup (Amdahl).
        assert!(
            par.parallel_build(1e9, 100_000.0) >= 100_000.0 * par.params().build_merge_ns_per_row
        );
    }

    #[test]
    fn admission_benefit_reflects_parallel_build() {
        // A future reuse saves a *parallel* build on a parallel engine, so
        // the admission benefit must shrink with workers (same footprint).
        let serial = model();
        let par = CostModel::synthetic().with_parallelism(4);
        let s = serial.admission_score_join(100_000.0, 32.0);
        let p = par.admission_score_join(100_000.0, 32.0);
        assert!(p.predicted_benefit_ns < s.predicted_benefit_ns);
        assert_eq!(p.predicted_bytes, s.predicted_bytes);
        let s = serial.admission_score_agg(1_000_000.0, 50_000.0, 64.0);
        let p = par.admission_score_agg(1_000_000.0, 50_000.0, 64.0);
        assert!(p.predicted_benefit_ns < s.predicted_benefit_ns);
        assert_eq!(p.predicted_bytes, s.predicted_bytes);
    }

    #[test]
    fn vectorized_scan_pricing() {
        let vec = CostModel::synthetic().with_vectorized(true);
        let row = CostModel::synthetic().with_vectorized(false);
        // The kernel term beats the row interpreter on big scans (this is
        // the speedup exp11 measures)…
        assert!(vec.scan(1_000_000.0) < row.scan(1_000_000.0));
        // …but the per-batch overhead keeps tiny scans from being priced
        // as free.
        assert!(vec.scan(1.0) >= vec.params().vec_batch_ns);
        // The vectorized term never changes index-scan pricing: the index
        // path stays row-at-a-time in the executor.
        assert_eq!(vec.index_scan(10_000.0), row.index_scan(10_000.0));
        // Admission benefit for scan-independent builds is unaffected.
        let v = vec.admission_score_join(100_000.0, 32.0);
        let r = row.admission_score_join(100_000.0, 32.0);
        assert_eq!(v.predicted_benefit_ns, r.predicted_benefit_ns);
    }

    #[test]
    fn scan_and_aux_costs_positive() {
        let m = model();
        assert!(m.scan(100.0) > 0.0);
        assert!(m.index_scan(100.0) > m.scan(100.0));
        assert!(m.materialize(100.0) > 0.0);
        assert!(m.retag(100.0) > 0.0);
        assert!(m.output(10.0) > 0.0);
        assert!(m.ht_size(1000.0, 32.0) > 1000.0 * 32.0);
    }
}
