//! Reuse-aware cost models (paper §3.2).
//!
//! The models estimate nanoseconds for the reuse-aware hash join (RHJ) and
//! hash aggregate (RHA):
//!
//! ```text
//! c_RHJ = c_resize(HT) + c_build(HT) + c_probe(HT)
//! c_RHA = c_resize(HT) + c_insert(HT) + c_update(HT)
//!
//! c_build  = |Builder| · (1 − contr(HT)) · ci(htSize, tWidth)
//! c_probe  = |Prober| · cl(htSize, tWidth)
//! c_insert = |distinct(Input.key)| · (1 − contr) · ci(htSize, tWidth)
//! c_update = (|Input| − |distinct|) · (1 − contr) · cu(htSize, tWidth)
//! ```
//!
//! `ci`/`cl`/`cu` come from the calibrated [`CostGrid`] (paper Figure 3).
//! The **contribution-ratio** `contr` is the fraction of required tuples the
//! candidate already holds; the **overhead-ratio** `overh` is the fraction
//! of the candidate's tuples the request does not need — it inflates
//! `htSize` (cache pressure) and adds post-filter work.

use hashstash_hashtable::calibration::{CostGrid, HtOp};

/// Scalar cost constants besides the calibrated grid.
#[derive(Debug, Clone, Copy)]
pub struct CostParams {
    /// Sequential scan cost per tuple (ns).
    pub scan_ns: f64,
    /// Random index lookup cost per fetched tuple (ns).
    pub index_ns: f64,
    /// Post-filter check per tuple (ns).
    pub filter_ns: f64,
    /// Materializing one tuple into a temp table (ns) — baseline cost.
    pub materialize_ns: f64,
    /// Re-tagging one stored tuple in a shared reuse (ns).
    pub retag_ns: f64,
    /// Emitting one output row (ns).
    pub output_ns: f64,
    /// Per-bucket directory resize cost (ns).
    pub resize_ns_per_slot: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            scan_ns: 2.0,
            index_ns: 18.0,
            filter_ns: 1.5,
            materialize_ns: 8.0,
            retag_ns: 6.0,
            output_ns: 4.0,
            resize_ns_per_slot: 0.6,
        }
    }
}

/// Inputs describing one candidate hash table for reuse costing.
#[derive(Debug, Clone, Copy)]
pub struct CandidateShape {
    /// Entries currently stored.
    pub entries: f64,
    /// Logical bytes currently occupied.
    pub bytes: f64,
    /// Tuple width in bytes.
    pub tuple_width: f64,
    /// Contribution-ratio: fraction of *required* tuples already present.
    pub contr: f64,
    /// Overhead-ratio: fraction of *stored* tuples that are not required.
    pub overh: f64,
}

/// The reuse-aware cost model.
#[derive(Debug, Clone)]
pub struct CostModel {
    grid: CostGrid,
    params: CostParams,
}

impl CostModel {
    /// Model from a calibrated grid.
    pub fn new(grid: CostGrid, params: CostParams) -> Self {
        CostModel { grid, params }
    }

    /// Deterministic model used by tests and default engines.
    pub fn synthetic() -> Self {
        CostModel::new(CostGrid::synthetic(), CostParams::default())
    }

    /// Scalar parameters.
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// The calibration grid.
    pub fn grid(&self) -> &CostGrid {
        &self.grid
    }

    /// Cost of scanning `rows` tuples sequentially.
    pub fn scan(&self, rows: f64) -> f64 {
        rows * self.params.scan_ns
    }

    /// Cost of fetching `rows` tuples through a secondary index.
    pub fn index_scan(&self, rows: f64) -> f64 {
        rows * self.params.index_ns
    }

    /// Cost of materializing `rows` tuples into a temp table (baseline).
    pub fn materialize(&self, rows: f64) -> f64 {
        rows * self.params.materialize_ns
    }

    /// Estimated logical size of a hash table holding `entries` tuples of
    /// `width` bytes (mirrors `ExtendibleHashTable::logical_bytes`).
    pub fn ht_size(&self, entries: f64, width: f64) -> f64 {
        let buckets = (entries / 2.0).max(2.0);
        buckets * 5.0 + entries * (12.0 + width)
    }

    /// `c_RHJ` for building a *fresh* join table of `build_rows` tuples of
    /// `width` bytes and probing it with `probe_rows` tuples.
    pub fn rhj_fresh(&self, build_rows: f64, width: f64, probe_rows: f64) -> f64 {
        let size = self.ht_size(build_rows, width);
        let resize = (build_rows / 2.0) * self.params.resize_ns_per_slot;
        let build = build_rows
            * self
                .grid
                .cost_ns(HtOp::Insert, size as usize, width as usize);
        let probe = probe_rows
            * self
                .grid
                .cost_ns(HtOp::Lookup, size as usize, width as usize);
        resize + build + probe
    }

    /// `c_RHJ` when reusing a candidate table.
    ///
    /// * `required_rows` — tuples the request needs in the table.
    /// * `probe_rows` — probe-side input size.
    /// * `expected_matches` — estimated probe matches (drives post-filter
    ///   cost when the candidate carries overhead tuples).
    pub fn rhj_reuse(
        &self,
        cand: &CandidateShape,
        required_rows: f64,
        probe_rows: f64,
        expected_matches: f64,
    ) -> f64 {
        let missing = required_rows * (1.0 - cand.contr);
        // Final size after adding missing tuples.
        let final_entries = cand.entries + missing;
        let size = self
            .ht_size(final_entries, cand.tuple_width)
            .max(cand.bytes);
        let resize = if missing > 0.0 {
            (missing / 2.0) * self.params.resize_ns_per_slot
        } else {
            0.0
        };
        let build = missing
            * self
                .grid
                .cost_ns(HtOp::Insert, size as usize, cand.tuple_width as usize);
        let probe = probe_rows
            * self
                .grid
                .cost_ns(HtOp::Lookup, size as usize, cand.tuple_width as usize);
        // Post-filtering false positives: matches scale with the overhead
        // share of the table.
        let post = if cand.overh > 0.0 {
            let false_matches = expected_matches * cand.overh / (1.0 - cand.overh).max(0.05);
            (expected_matches + false_matches) * self.params.filter_ns
        } else {
            0.0
        };
        resize + build + probe + post
    }

    /// `c_RHA` for a *fresh* aggregation of `input_rows` tuples with
    /// `distinct_groups` groups of `width`-byte states.
    pub fn rha_fresh(&self, input_rows: f64, distinct_groups: f64, width: f64) -> f64 {
        let groups = distinct_groups.min(input_rows).max(1.0);
        let size = self.ht_size(groups, width);
        let resize = (groups / 2.0) * self.params.resize_ns_per_slot;
        let insert = groups
            * self
                .grid
                .cost_ns(HtOp::Insert, size as usize, width as usize);
        let update = (input_rows - groups).max(0.0)
            * self
                .grid
                .cost_ns(HtOp::Update, size as usize, width as usize);
        resize + insert + update
    }

    /// `c_RHA` when reusing a candidate aggregate table: only the missing
    /// input needs to be folded in.
    pub fn rha_reuse(&self, cand: &CandidateShape, input_rows: f64, distinct_groups: f64) -> f64 {
        let missing_rows = input_rows * (1.0 - cand.contr);
        let missing_groups = distinct_groups.min(missing_rows) * (1.0 - cand.contr);
        let final_groups = cand.entries + missing_groups;
        let size = self.ht_size(final_groups, cand.tuple_width).max(cand.bytes);
        let resize = if missing_groups > 0.0 {
            (missing_groups / 2.0) * self.params.resize_ns_per_slot
        } else {
            0.0
        };
        let insert = missing_groups
            * self
                .grid
                .cost_ns(HtOp::Insert, size as usize, cand.tuple_width as usize);
        let update = (missing_rows - missing_groups).max(0.0)
            * self
                .grid
                .cost_ns(HtOp::Update, size as usize, cand.tuple_width as usize);
        // Post-filtering groups that the request does not need (subsuming /
        // overlapping on group attributes).
        let post = cand.entries * cand.overh * self.params.filter_ns;
        resize + insert + update + post
    }

    /// Cost of re-tagging every stored tuple of a reused table in a shared
    /// plan (paper §4.1: mandatory before an SRHJ/SRHA executes).
    pub fn retag(&self, entries: f64) -> f64 {
        entries * self.params.retag_ns
    }

    /// Cost of emitting `rows` result rows.
    pub fn output(&self, rows: f64) -> f64 {
        rows * self.params.output_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::synthetic()
    }

    #[test]
    fn fresh_join_cost_grows_with_inputs() {
        let m = model();
        let small = m.rhj_fresh(1_000.0, 32.0, 10_000.0);
        let large = m.rhj_fresh(100_000.0, 32.0, 1_000_000.0);
        assert!(large > small * 10.0);
    }

    #[test]
    fn exact_reuse_cheaper_than_fresh() {
        let m = model();
        let cand = CandidateShape {
            entries: 100_000.0,
            bytes: m.ht_size(100_000.0, 32.0),
            tuple_width: 32.0,
            contr: 1.0,
            overh: 0.0,
        };
        let reuse = m.rhj_reuse(&cand, 100_000.0, 1_000_000.0, 1_000_000.0);
        let fresh = m.rhj_fresh(100_000.0, 32.0, 1_000_000.0);
        assert!(
            reuse < fresh,
            "exact reuse skips the build: {reuse} < {fresh}"
        );
    }

    #[test]
    fn reuse_cost_monotone_in_contribution() {
        // Paper Figure 9a: as contribution falls, reuse cost rises.
        let m = model();
        let mut prev = f64::NEG_INFINITY;
        for contr_pct in (0..=100).rev().step_by(10) {
            let contr = contr_pct as f64 / 100.0;
            let cand = CandidateShape {
                entries: 100_000.0,
                bytes: m.ht_size(100_000.0, 32.0),
                tuple_width: 32.0,
                contr,
                overh: 1.0 - contr,
            };
            let c = m.rhj_reuse(&cand, 100_000.0, 1_000_000.0, 1_000_000.0);
            assert!(
                c >= prev,
                "cost must rise as contribution falls: contr={contr} cost={c} prev={prev}"
            );
            prev = c;
        }
    }

    #[test]
    fn always_share_crossover_exists() {
        // With low contribution the reuse cost must exceed the fresh cost —
        // the crossover the paper shows near 70% contribution (Fig 9a).
        let m = model();
        let fresh = m.rhj_fresh(100_000.0, 32.0, 1_000_000.0);
        let low = CandidateShape {
            entries: 100_000.0,
            bytes: m.ht_size(100_000.0, 32.0),
            tuple_width: 32.0,
            contr: 0.0,
            overh: 1.0,
        };
        let high = CandidateShape {
            contr: 1.0,
            overh: 0.0,
            ..low
        };
        assert!(m.rhj_reuse(&low, 100_000.0, 1_000_000.0, 1_000_000.0) > fresh);
        assert!(m.rhj_reuse(&high, 100_000.0, 1_000_000.0, 1_000_000.0) < fresh);
    }

    #[test]
    fn rha_fresh_distinguishes_insert_and_update() {
        let m = model();
        // Many groups ⇒ many inserts ⇒ more expensive than few groups.
        let many = m.rha_fresh(1_000_000.0, 500_000.0, 64.0);
        let few = m.rha_fresh(1_000_000.0, 100.0, 64.0);
        assert!(many > few);
    }

    #[test]
    fn rha_reuse_cheaper_with_full_contribution() {
        let m = model();
        let cand = CandidateShape {
            entries: 1_000.0,
            bytes: m.ht_size(1_000.0, 64.0),
            tuple_width: 64.0,
            contr: 1.0,
            overh: 0.0,
        };
        let reuse = m.rha_reuse(&cand, 1_000_000.0, 1_000.0);
        let fresh = m.rha_fresh(1_000_000.0, 1_000.0, 64.0);
        assert!(reuse < fresh * 0.05, "{reuse} vs {fresh}");
    }

    #[test]
    fn scan_and_aux_costs_positive() {
        let m = model();
        assert!(m.scan(100.0) > 0.0);
        assert!(m.index_scan(100.0) > m.scan(100.0));
        assert!(m.materialize(100.0) > 0.0);
        assert!(m.retag(100.0) > 0.0);
        assert!(m.output(10.0) > 0.0);
        assert!(m.ht_size(1000.0, 32.0) > 1000.0 * 32.0);
    }
}
