//! Runtime model-checking for the cache's concurrency protocols, compiled
//! in only under the `analysis` cargo feature.
//!
//! Two checkers:
//!
//! * a **thread-local lock-order tracker**: every lock acquisition inside
//!   the store declares its level (the same levels the `// lock-order:`
//!   annotations pin and the `lock-discipline` tidy lint cross-checks), and
//!   acquiring a level ≤ one already held on the thread panics. The
//!   store's protocol never *intends* to nest its locks, so the asserted
//!   rule is the strictest one: strictly increasing levels per thread —
//!   any accidental nesting introduced by a future change trips it, in
//!   whatever stress test first executes that path.
//! * a **pin-leak detector** ([`ReuseStore::assert_quiesced`]
//!   (crate::store::ReuseStore::assert_quiesced)): checkout guards
//!   increment a per-store counter that `release`/`commit_checkin`
//!   decrement; at a quiesce point the counter must be zero and every
//!   entry unpinned, so a leaked (forgotten) guard fails the suite instead
//!   of silently pinning an entry against eviction forever.
//!
//! Both are assertions, not logs: `cargo test --features analysis` turns
//! the existing stress suites into protocol checks.

use std::cell::RefCell;

pub use crate::store::{LEVEL_BUDGET_GC, LEVEL_BUDGET_STORES, LEVEL_SHARD};

thread_local! {
    /// Levels currently held by this thread, in acquisition order.
    static HELD: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
}

/// Record acquiring a lock at `level`. Panics if the thread already holds
/// a lock at the same or a higher level — i.e. on *any* nesting the
/// declared order does not permit.
pub fn acquire(level: u32) {
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(&top) = held.last() {
            assert!(
                level > top,
                "lock-order violation: acquiring level {level} while holding level {top} \
                 (held: {:?}); see the lock-order table in README `Correctness tooling`",
                *held
            );
        }
        held.push(level);
    });
}

/// Record releasing a lock at `level` (the most recent acquisition of that
/// level on this thread).
pub fn release(level: u32) {
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(pos) = held.iter().rposition(|&l| l == level) {
            held.remove(pos);
        }
    });
}

/// Number of tracked locks currently held by this thread.
pub fn held_count() -> usize {
    HELD.with(|held| held.borrow().len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increasing_levels_are_accepted() {
        acquire(LEVEL_BUDGET_STORES);
        acquire(LEVEL_SHARD);
        acquire(LEVEL_BUDGET_GC);
        assert_eq!(held_count(), 3);
        release(LEVEL_BUDGET_GC);
        release(LEVEL_SHARD);
        release(LEVEL_BUDGET_STORES);
        assert_eq!(held_count(), 0);
    }

    #[test]
    fn sequential_reacquisition_is_fine() {
        for _ in 0..3 {
            acquire(LEVEL_SHARD);
            release(LEVEL_SHARD);
        }
        assert_eq!(held_count(), 0);
    }

    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn same_level_nesting_panics() {
        acquire(LEVEL_SHARD);
        acquire(LEVEL_SHARD); // two shard locks at once: forbidden
    }

    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn descending_nesting_panics() {
        acquire(LEVEL_BUDGET_GC);
        acquire(LEVEL_SHARD); // gc (30) then shard (20): descends
    }
}
