//! The generic reuse store: one sharded, budget-governed cache layer
//! behind both the Hash Table Manager and the temp-table cache.
//!
//! HashStash treats cached hash tables and materialized intermediates as
//! *one* reuse problem — one memory budget, one cost/benefit decision
//! (paper §4–5). [`ReuseStore`] realizes that: everything the two caches
//! would otherwise duplicate lives here exactly once —
//!
//! * fingerprint-shape **sharding** (a shard per shape-key hash, so
//!   sessions touching unrelated plan shapes never contend),
//! * the **shared byte budget** ([`ReuseBudget`]): several typed stores
//!   register with one budget, and the eviction loop ranks entries of
//!   *every* registered store in a single victim search,
//! * RAII shared/exclusive **checkout guards** ([`Checkout`]) with
//!   copy-on-write mutation (and a sole-reference in-place fast path),
//! * identical-lineage **publish dedup**,
//! * **recycle-graph** candidate lookup (paper §3.3),
//! * statistics, per-table TTL expiry and eviction.
//!
//! The facades ([`crate::manager::HtManager`],
//! `hashstash_exec::temp::TempTableCache`) only add their payload type and
//! id newtype on top.

use std::collections::{hash_map, HashMap};
use std::fmt;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, Weak};

use hashstash_types::{HsError, Result, Schema};

use hashstash_plan::HtFingerprint;

use crate::recycle::{RecycleGraph, ShapeKey};

/// Default shard count: enough to keep 8-way session fan-out off a single
/// lock without bloating tiny test caches.
pub const DEFAULT_SHARDS: usize = 8;

// ------------------------------------------------------------- lock order
//
// The declared global lock order (see the `// lock-order:` annotations on
// the fields below, the lock-discipline tidy lint, and the table in README
// `Correctness tooling`). The store's protocol holds at most one of these
// at a time; under `--features analysis` every acquisition is checked
// against the strictly-increasing rule by a thread-local tracker.

/// Level of [`ReuseBudget`]'s store registry.
pub const LEVEL_BUDGET_STORES: u32 = 10;
/// Level of [`ReuseBudget`]'s per-tenant floor table (read, copied out,
/// released before any shard lock).
pub const LEVEL_TENANT_FLOORS: u32 = 15;
/// Level shared by every store shard (two shard locks never nest).
pub const LEVEL_SHARD: u32 = 20;
/// Level of each store's per-tenant stats rollup (nests under a shard lock).
pub const LEVEL_TENANT_STATS: u32 = 25;
/// Level of [`ReuseBudget`]'s GC-config leaf lock.
pub const LEVEL_BUDGET_GC: u32 = 30;

/// A `MutexGuard` that reports its release to the lock-order tracker.
#[cfg(feature = "analysis")]
#[derive(Debug)]
pub(crate) struct OrderedGuard<'a, T> {
    guard: MutexGuard<'a, T>,
    level: u32,
}

#[cfg(feature = "analysis")]
impl<T> std::ops::Deref for OrderedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

#[cfg(feature = "analysis")]
impl<T> std::ops::DerefMut for OrderedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(feature = "analysis")]
impl<T> Drop for OrderedGuard<'_, T> {
    fn drop(&mut self) {
        crate::analysis::release(self.level);
    }
}

#[cfg(feature = "analysis")]
pub(crate) type LockGuard<'a, T> = OrderedGuard<'a, T>;
#[cfg(not(feature = "analysis"))]
pub(crate) type LockGuard<'a, T> = MutexGuard<'a, T>;

/// Acquire `m` at the declared `level`. Poisoning is tolerated everywhere
/// in the store (entries stay consistent under panic because guards clean
/// up), so this never panics on a poisoned mutex; under `analysis` it
/// panics on a lock-order violation instead.
#[cfg(feature = "analysis")]
fn lock_at<'a, T>(m: &'a Mutex<T>, level: u32) -> LockGuard<'a, T> {
    crate::analysis::acquire(level);
    OrderedGuard {
        guard: m.lock().unwrap_or_else(PoisonError::into_inner),
        level,
    }
}

#[cfg(not(feature = "analysis"))]
fn lock_at<'a, T>(m: &'a Mutex<T>, _level: u32) -> LockGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// What a payload type must provide to live in a [`ReuseStore`].
///
/// `Clone` powers copy-on-write mutation (`Arc::make_mut`); everything else
/// is bookkeeping the store needs for budgets and fine-grained GC.
pub trait ReusePayload: Clone + Send + Sync + fmt::Debug + 'static {
    /// Logical footprint in bytes (drives the shared budget).
    fn logical_bytes(&self) -> usize;

    /// Number of stored elements (rows or hash-table entries) — the unit of
    /// fine-grained GC stamps.
    fn len(&self) -> usize;

    /// Whether the payload holds no elements.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Keep exactly the elements whose position is `true` in `keep`
    /// (fine-grained pruning). Positions beyond `keep.len()` are dropped.
    fn retain_mask(&mut self, keep: &[bool]);
}

/// Typed id newtype over the store's raw `u64` ids. The home shard is
/// encoded in the raw value (`raw * shards + shard`), so id-only operations
/// find their shard without a global index.
pub trait StoreId: Copy + Eq + Hash + fmt::Debug + fmt::Display + Send + Sync + 'static {
    /// Wrap a raw store id.
    fn from_raw(raw: u64) -> Self;
    /// Unwrap to the raw store id.
    fn raw(self) -> u64;
}

impl StoreId for hashstash_types::HtId {
    fn from_raw(raw: u64) -> Self {
        hashstash_types::HtId(raw)
    }
    fn raw(self) -> u64 {
        self.0
    }
}

/// Identity of a tenant sharing the reuse caches. Every cached entry is
/// owned by the tenant whose session published it; the budget's victim
/// search, the per-tenant statistics and the per-tenant anti-starvation
/// floors ([`ReuseBudget::set_tenant_floor`]) key on this.
///
/// Single-tenant embedders never see it: the engine publishes everything
/// under [`TenantId::DEFAULT`] unless a session says otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The tenant everything belongs to when no tenant is configured.
    pub const DEFAULT: TenantId = TenantId(0);
}

impl Default for TenantId {
    fn default() -> Self {
        TenantId::DEFAULT
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// Eviction policy for the coarse-grained garbage collector.
///
/// The paper ships LRU (§5); LFU and benefit-weighted eviction are provided
/// for the ablation experiments. Under a shared [`ReuseBudget`] the policy
/// ranks hash tables and temp tables in the *same* victim search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Evict the table with the oldest last-access timestamp (paper §5).
    #[default]
    Lru,
    /// Evict the least frequently reused table.
    Lfu,
    /// Evict the table with the lowest reuse-per-byte density — large,
    /// rarely reused tables go first.
    BenefitWeighted,
}

/// Garbage-collector configuration (shared across every store registered
/// with one [`ReuseBudget`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct GcConfig {
    /// Memory budget for all cached tables of *all* payload kinds; `None`
    /// disables eviction (the paper's "wo GC" mode). The budget is shared
    /// across shards and across stores.
    pub budget_bytes: Option<usize>,
    /// Which table to evict when over budget.
    pub policy: EvictionPolicy,
    /// Enable the fine-grained (per-entry) bookkeeping mode the paper
    /// implemented and then disabled for its overhead (§5). When on, every
    /// checkout re-stamps all entries of the table — the monitoring cost
    /// shows up in the GC overhead experiment.
    pub fine_grained: bool,
    /// Per-table TTL in clock ticks: entries idle longer than this are
    /// evicted ahead of the victim search (even with no byte pressure).
    /// `None` (default) disables TTL expiry.
    pub ttl_ticks: Option<u64>,
    /// Anti-starvation floor for the shared budget: a store whose footprint
    /// is at or below this many bytes is skipped by the victim search while
    /// any other registered store still has evictable mass above its floor.
    /// `0` (default) disables the floor.
    pub floor_bytes: usize,
}

/// Aggregate per-store statistics (drives the paper's Figure 7b table).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CacheStats {
    /// Tables ever published into this store.
    pub publishes: u64,
    /// Publish calls deduplicated onto an existing identical-lineage entry
    /// (e.g. re-publishes from re-planned retries). `publishes +
    /// publish_dedups` equals the number of publish calls.
    pub publish_dedups: u64,
    /// Checkouts for reuse (shared and exclusive).
    pub reuses: u64,
    /// Tables evicted by the GC (budget pressure or TTL expiry).
    pub evictions: u64,
    /// Candidate lookups served.
    pub candidate_lookups: u64,
    /// Current footprint of this store in bytes.
    pub bytes: usize,
    /// Current number of cached tables in this store.
    pub entries: usize,
    /// High-water mark of this store's footprint.
    pub peak_bytes: usize,
}

impl CacheStats {
    /// The paper's "hit ratio": average number of reuses per cached element.
    pub fn hit_ratio(&self) -> f64 {
        if self.publishes == 0 {
            0.0
        } else {
            self.reuses as f64 / self.publishes as f64
        }
    }
}

/// Snapshot of the fields eviction policies compare, so the victim search
/// can scan shards (and stores) one at a time without holding several
/// locks. The clock behind `last_used` is owned by the shared
/// [`ReuseBudget`], which is what makes cross-store comparison meaningful.
#[derive(Debug, Clone, Copy)]
struct VictimKey {
    last_used: u64,
    use_count: u64,
    bytes: usize,
}

impl VictimKey {
    fn better_victim(&self, other: &VictimKey, policy: EvictionPolicy) -> bool {
        match policy {
            EvictionPolicy::Lru => self.last_used < other.last_used,
            EvictionPolicy::Lfu => {
                (self.use_count, self.last_used) < (other.use_count, other.last_used)
            }
            EvictionPolicy::BenefitWeighted => {
                let da = (self.use_count + 1) as f64 / self.bytes.max(1) as f64;
                let db = (other.use_count + 1) as f64 / other.bytes.max(1) as f64;
                da < db || (da == db && self.last_used < other.last_used)
            }
        }
    }
}

/// The eviction-side view of one typed store, used by [`ReuseBudget`] to
/// run a single victim search across payload kinds.
trait VictimSource: Send + Sync + fmt::Debug {
    /// Current footprint of this store (for the anti-starvation floor).
    fn current_bytes(&self) -> usize;
    /// The policy's best unpinned victim in this store, skipping entries
    /// owned by a tenant in `protected` (tenants at/below their budget
    /// floor). Pass an empty slice to consider every tenant.
    fn best_victim(
        &self,
        policy: EvictionPolicy,
        protected: &[TenantId],
    ) -> Option<(u64, VictimKey)>;
    /// Re-validate and evict; `false` if the entry was pinned or removed
    /// since the scan.
    fn try_evict(&self, raw_id: u64) -> bool;
    /// Evict every unpinned entry whose `last_used` is older than `cutoff`
    /// (TTL expiry). Returns the number evicted.
    fn expire_idle(&self, cutoff: u64) -> usize;
    /// Add this store's per-tenant live footprint into `out` (cross-store
    /// totals drive the per-tenant floors).
    fn add_tenant_bytes(&self, out: &mut HashMap<TenantId, usize>);
}

/// The shared byte budget: one logical clock, one footprint counter and one
/// eviction loop governing every [`ReuseStore`] registered with it.
///
/// Standalone stores create a private budget; an engine that caches both
/// hash tables and temp tables hands the *same* `Arc<ReuseBudget>` to both,
/// which is what makes "one memory budget, one eviction decision" true.
#[derive(Debug)]
pub struct ReuseBudget {
    // lock-order: 30 (budget GC config; leaf — read, copied out, released)
    gc: Mutex<GcConfig>,
    clock: AtomicU64,
    bytes: AtomicUsize,
    peak_bytes: AtomicUsize,
    /// Clock tick of the last TTL sweep — the sweep is O(total entries)
    /// across every store, so it is throttled rather than run on each
    /// publish/checkin.
    ttl_sweep_tick: AtomicU64,
    /// Round-robin cursor for the floor-ignoring fallback eviction pass:
    /// rotates the starting store so sustained fallback pressure drains
    /// every source evenly instead of pulling one kind arbitrarily far
    /// below its floor while the others sit untouched.
    fallback_cursor: AtomicUsize,
    // lock-order: 15 (per-tenant budget floors; read, copied out, released
    // before any shard lock)
    tenant_floors: Mutex<HashMap<TenantId, usize>>,
    // lock-order: 10 (budget store registry; enforce snapshots it before
    // touching any store's shards)
    stores: Mutex<Vec<Weak<dyn VictimSource>>>,
}

impl ReuseBudget {
    /// A budget with the given GC configuration.
    pub fn new(gc: GcConfig) -> Arc<Self> {
        Arc::new(ReuseBudget {
            gc: Mutex::new(gc),
            clock: AtomicU64::new(0),
            bytes: AtomicUsize::new(0),
            peak_bytes: AtomicUsize::new(0),
            ttl_sweep_tick: AtomicU64::new(0),
            fallback_cursor: AtomicUsize::new(0),
            tenant_floors: Mutex::new(HashMap::new()),
            stores: Mutex::new(Vec::new()),
        })
    }

    /// The GC configuration.
    pub fn gc_config(&self) -> GcConfig {
        *lock_at(&self.gc, LEVEL_BUDGET_GC)
    }

    /// Replace the GC configuration (budget changes take effect on the next
    /// publish/checkin).
    pub fn set_gc_config(&self, gc: GcConfig) {
        *lock_at(&self.gc, LEVEL_BUDGET_GC) = gc;
    }

    /// Combined footprint of every registered store, in bytes.
    pub fn bytes(&self) -> usize {
        self.bytes.load(Ordering::Relaxed)
    }

    /// High-water mark of the combined footprint.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes.load(Ordering::Relaxed)
    }

    /// Set (or clear, with `0`) a tenant's anti-starvation floor: while the
    /// tenant's combined footprint across every registered store is at or
    /// below `bytes`, the victim search skips its entries, so another
    /// tenant's churn cannot evict its hot intermediates. The fallback pass
    /// still ignores floors when *nothing* else is evictable, so
    /// enforcement always makes progress — size the shared budget above the
    /// sum of the floors to make them hard in practice.
    pub fn set_tenant_floor(&self, tenant: TenantId, bytes: usize) {
        let mut floors = lock_at(&self.tenant_floors, LEVEL_TENANT_FLOORS);
        if bytes == 0 {
            floors.remove(&tenant);
        } else {
            floors.insert(tenant, bytes);
        }
    }

    /// The configured floor for a tenant (`0` when none is set).
    pub fn tenant_floor(&self, tenant: TenantId) -> usize {
        lock_at(&self.tenant_floors, LEVEL_TENANT_FLOORS)
            .get(&tenant)
            .copied()
            .unwrap_or(0)
    }

    /// Combined per-tenant footprint across every registered store.
    pub fn tenant_bytes(&self) -> HashMap<TenantId, usize> {
        let mut out = HashMap::new();
        for s in self.sources() {
            s.add_tenant_bytes(&mut out);
        }
        out
    }

    /// Record that the caches' entries were freshly stamped (warm-restart
    /// rehydration calls this after re-publishing): the TTL sweep restarts
    /// its throttle window from the current clock instead of comparing a
    /// zeroed sweep tick against rehydration-era stamps.
    pub fn mark_swept(&self) {
        self.ttl_sweep_tick
            .store(self.clock.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn register(&self, store: Weak<dyn VictimSource>) {
        lock_at(&self.stores, LEVEL_BUDGET_STORES).push(store);
    }

    fn add_bytes(&self, delta: usize) {
        let now = self.bytes.fetch_add(delta, Ordering::Relaxed) + delta;
        self.peak_bytes.fetch_max(now, Ordering::Relaxed);
    }

    fn sub_bytes(&self, delta: usize) {
        self.bytes.fetch_sub(delta, Ordering::Relaxed);
    }

    /// Live registered stores (pruning any that were dropped).
    fn sources(&self) -> Vec<Arc<dyn VictimSource>> {
        let mut stores = lock_at(&self.stores, LEVEL_BUDGET_STORES);
        stores.retain(|w| w.strong_count() > 0);
        stores.iter().filter_map(Weak::upgrade).collect()
    }

    /// TTL expiry followed by the cross-store victim loop: evict until the
    /// combined footprint drops below the budget. Checked-out tables are
    /// never evicted. Returns the number of evictions.
    pub fn enforce(&self) -> usize {
        let gc = self.gc_config();
        let sources = self.sources();
        let mut evicted = 0;
        // Per-table TTL first: idle entries go regardless of byte pressure,
        // ahead of the policy's victim search. The sweep scans every entry
        // of every store, so it runs at most once per ttl/8 ticks (a CAS
        // elects one sweeper under concurrency) — worst-case staleness is
        // ttl + ttl/8 rather than a full scan per publish/checkin.
        if let Some(ttl) = gc.ttl_ticks {
            let interval = (ttl / 8).max(1);
            let now = self.clock.load(Ordering::Relaxed);
            // Elect one sweeper with an atomic read-modify-write on the
            // sweep tick. The old load-then-CAS decided the election on a
            // possibly stale `last`: a loser whose snapshot was overtaken
            // concluded a sweep had just run even when the winning stamp
            // was itself older than a full interval (clock readings
            // interleave with stamping), deferring a due sweep by another
            // whole interval. `fetch_update` re-reads the current stamp on
            // every retry, so exactly one caller wins per elapsed interval
            // and a due sweep is never skipped.
            let won = self
                .ttl_sweep_tick
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |last| {
                    (now.saturating_sub(last) >= interval).then_some(now)
                })
                .is_ok();
            if won {
                let cutoff = now.saturating_sub(ttl);
                for s in &sources {
                    evicted += s.expire_idle(cutoff);
                }
            }
        }
        let Some(budget) = gc.budget_bytes else {
            return evicted;
        };
        let floors = lock_at(&self.tenant_floors, LEVEL_TENANT_FLOORS).clone();
        while self.bytes() > budget {
            // One victim search ranking every store's entries together.
            // Pass 1 respects the per-kind anti-starvation floor *and* the
            // per-tenant floors (a tenant whose cross-store footprint is at
            // or below its floor is skipped); pass 2 — only reached when
            // pass 1 found nothing evictable — ignores both so enforcement
            // always makes progress, but walks the sources round-robin so
            // repeated fallback evictions alternate kinds instead of
            // draining whichever store the policy happens to rank first
            // arbitrarily far below its floor.
            let protected: Vec<TenantId> = if floors.is_empty() {
                Vec::new()
            } else {
                let bytes = self.tenant_bytes();
                floors
                    .iter()
                    .filter(|(t, &floor)| bytes.get(t).copied().unwrap_or(0) <= floor)
                    .map(|(&t, _)| t)
                    .collect()
            };
            let mut victim = Self::best_over(&sources, gc.policy, gc.floor_bytes, &protected);
            if victim.is_none() && (gc.floor_bytes > 0 || !protected.is_empty()) {
                victim = self.fallback_victim(&sources, gc.policy);
            }
            let Some((source, raw_id, _)) = victim else {
                break;
            };
            if source.try_evict(raw_id) {
                evicted += 1;
            }
            // Re-validation failure (pinned or removed since the scan) just
            // re-enters the loop and re-scans.
        }
        evicted
    }

    /// The floor-ignoring fallback pass: take the policy's best victim from
    /// the first source (in round-robin order from a rotating cursor) that
    /// has any unpinned entry at all.
    fn fallback_victim(
        &self,
        sources: &[Arc<dyn VictimSource>],
        policy: EvictionPolicy,
    ) -> Option<(Arc<dyn VictimSource>, u64, VictimKey)> {
        let n = sources.len();
        if n == 0 {
            return None;
        }
        let start = self.fallback_cursor.fetch_add(1, Ordering::Relaxed);
        for k in 0..n {
            let s = &sources[(start + k) % n];
            if let Some((id, key)) = s.best_victim(policy, &[]) {
                return Some((Arc::clone(s), id, key));
            }
        }
        None
    }

    fn best_over(
        sources: &[Arc<dyn VictimSource>],
        policy: EvictionPolicy,
        floor_bytes: usize,
        protected: &[TenantId],
    ) -> Option<(Arc<dyn VictimSource>, u64, VictimKey)> {
        let mut best: Option<(Arc<dyn VictimSource>, u64, VictimKey)> = None;
        for s in sources {
            if floor_bytes > 0 && s.current_bytes() <= floor_bytes {
                continue; // protected: this kind is at its floor
            }
            if let Some((id, key)) = s.best_victim(policy, protected) {
                if best
                    .as_ref()
                    .is_none_or(|(_, _, b)| key.better_victim(b, policy))
                {
                    best = Some((Arc::clone(s), id, key));
                }
            }
        }
        best
    }
}

/// How the cache entry holds its payload.
#[derive(Debug)]
enum Slot<P> {
    /// The shared handle. Readers clone it; writers replace it at check-in.
    Present(Arc<P>),
    /// An exclusive guard took the payload out for sole-reference in-place
    /// mutation. Restored at check-in; the entry is dropped if the guard
    /// abandons (the payload may be half-mutated, so the pristine version
    /// no longer exists).
    InPlace,
}

#[derive(Debug)]
struct StoreEntry<P> {
    fingerprint: HtFingerprint,
    schema: Schema,
    slot: Slot<P>,
    /// Owner: the tenant whose session published this entry. Eviction
    /// protection and the per-tenant statistics key on it; reuse by other
    /// tenants is credited to the owner (shared reuse across tenants is a
    /// feature, not a leak — lineages only match on identical base data).
    tenant: TenantId,
    bytes: usize,
    last_used: u64,
    use_count: u64,
    /// Outstanding shared (read-only) checkouts.
    readers: u32,
    /// Whether an exclusive (mutating) checkout is outstanding.
    writer: bool,
    /// Fine-grained mode: one timestamp per stored element.
    entry_stamps: Option<Vec<u64>>,
}

impl<P> StoreEntry<P> {
    /// Pinned entries are never evicted and never dropped.
    fn pinned(&self) -> bool {
        self.readers > 0 || self.writer
    }
}

/// Lineage validation applied inside a checkout, before any bookkeeping.
#[derive(Debug, Clone, Copy)]
pub(crate) enum RegionCheck<'r> {
    /// No validation (plain checkout by id).
    None,
    /// The lineage must still equal the planned region (mutating reuse:
    /// the delta was computed against it, so any drift invalidates it).
    Eq(&'r hashstash_plan::Region),
    /// The lineage must still cover the request region (read-only reuse:
    /// concurrent widening is tolerated and compensated by the executor).
    Covers(&'r hashstash_plan::Region),
}

/// How a [`Checkout`] guard holds its table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CheckoutMode {
    /// Read-only handle clone; any number may coexist.
    Shared,
    /// Mutating copy-on-write checkout; at most one per table.
    Exclusive,
}

/// An RAII guard over a cached table checked out by one query.
///
/// Shared guards give read-only access through [`Checkout::table`].
/// Exclusive guards additionally allow [`Checkout::table_mut`] and publish
/// their new version — typically with a widened `fingerprint` — via
/// [`Checkout::checkin`].
///
/// Dropping a guard without checking in releases the pin: a shared guard
/// simply decrements the reader count; an exclusive guard abandons its
/// private copy and leaves the cached version untouched — unless the guard
/// took the sole-reference in-place fast path, in which case the pristine
/// version no longer exists and the (possibly half-mutated) entry is
/// dropped from the cache instead of being republished under a lineage it
/// may no longer match. Either way error paths and panics cannot leak a
/// checked-out table or corrupt a cached one.
#[derive(Debug)]
pub struct Checkout<'s, Id: StoreId, P: ReusePayload> {
    store: &'s ReuseStore<Id, P>,
    /// Identity in the cache.
    pub id: Id,
    /// Lineage at checkout time. Mutating reuses (partial/overlapping)
    /// widen the region before [`Checkout::checkin`].
    pub fingerprint: HtFingerprint,
    /// Payload schema (qualified attribute names → types).
    pub schema: Schema,
    payload: Arc<P>,
    mode: CheckoutMode,
    /// Whether this guard took the entry's handle for in-place mutation.
    in_place: bool,
    active: bool,
}

impl<Id: StoreId, P: ReusePayload> Checkout<'_, Id, P> {
    /// Read-only view of the payload.
    pub fn table(&self) -> &P {
        &self.payload
    }

    /// Whether this guard may mutate the payload.
    pub fn is_exclusive(&self) -> bool {
        self.mode == CheckoutMode::Exclusive
    }

    /// Mutable access. Only exclusive guards may mutate; concurrent readers
    /// keep their pre-mutation snapshot.
    ///
    /// When the guard holds the **sole** reference (no concurrent reader
    /// snapshots — `Arc` count of exactly two: the cache entry and this
    /// guard), the entry's handle is taken out and the mutation happens in
    /// place, skipping the O(table) copy. Readers arriving during the
    /// in-place window get a `CacheError` (→ ordinary re-plan). With any
    /// reader snapshot outstanding the mutation is copy-on-write as before:
    /// the copy is the price of letting readers keep probing, and of
    /// abandon-on-drop leaving the cached version pristine.
    pub fn table_mut(&mut self) -> Result<&mut P> {
        if self.mode != CheckoutMode::Exclusive {
            return Err(HsError::CacheError(format!(
                "{} checked out shared (read-only); use checkout_mut to mutate",
                self.id
            )));
        }
        if !self.in_place && Arc::strong_count(&self.payload) == 2 {
            // Possibly sole-referenced (entry + this guard). Confirm under
            // the shard lock — new references are only minted there, so a
            // count of 2 observed under the lock is definitive — and take
            // the entry's handle so we own the only one.
            let inner = &self.store.inner;
            let mut state = inner.lock_shard(inner.shard_of_id(self.id));
            if let Some(entry) = state.entries.get_mut(&self.id) {
                if let Slot::Present(h) = &entry.slot {
                    if Arc::ptr_eq(h, &self.payload) && Arc::strong_count(&self.payload) == 2 {
                        entry.slot = Slot::InPlace;
                        self.in_place = true;
                    }
                }
            }
        }
        // Sole reference → mutates in place; otherwise copy-on-write.
        Ok(Arc::make_mut(&mut self.payload))
    }

    /// A cheap owned handle on the current version of the payload (used by
    /// shared plans that check in early and keep reading).
    pub fn snapshot(&self) -> Arc<P> {
        Arc::clone(&self.payload)
    }

    /// The common epilogue of a mutating (delta) reuse: widen the lineage
    /// region by the requesting operator's region, publish the new version,
    /// and hand back an immutable snapshot so the caller can keep reading
    /// (probing, output production) without holding the writer slot.
    pub fn checkin_widened(mut self, request_region: &hashstash_plan::Region) -> Result<Arc<P>> {
        self.fingerprint.region = self.fingerprint.region.union(request_region);
        let snapshot = self.snapshot();
        self.checkin()?;
        Ok(snapshot)
    }

    /// Publish this guard's (possibly mutated) payload version and updated
    /// `fingerprint`/`schema` back to the cache. A no-op release for shared
    /// guards, which cannot have changed anything.
    pub fn checkin(mut self) -> Result<()> {
        self.active = false;
        match self.mode {
            CheckoutMode::Shared => {
                self.store.release(self.id, self.mode, false);
                Ok(())
            }
            CheckoutMode::Exclusive => self.store.commit_checkin(
                self.id,
                self.fingerprint.clone(),
                self.schema.clone(),
                Arc::clone(&self.payload),
            ),
        }
    }
}

impl<Id: StoreId, P: ReusePayload> Drop for Checkout<'_, Id, P> {
    fn drop(&mut self) {
        if self.active {
            self.store.release(self.id, self.mode, self.in_place);
        }
    }
}

/// Candidate description handed to the facade (and on to the optimizer):
/// the entry's identity plus a cheap handle on its payload, from which the
/// facade derives whatever statistics its cost model consumes.
#[derive(Debug, Clone)]
pub struct StoreCandidate<Id, P> {
    pub id: Id,
    pub fingerprint: HtFingerprint,
    pub schema: Schema,
    pub payload: Arc<P>,
}

/// One entry as seen by a stats-neutral persistence snapshot
/// ([`ReuseStore::snapshot_entries`]): the payload handle plus the
/// bookkeeping the snapshot writer scores admission with.
#[derive(Debug, Clone)]
pub struct SnapshotEntry<Id, P> {
    /// Cache id at snapshot time (ids are *not* stable across restarts —
    /// rehydration re-publishes and obtains fresh ids).
    pub id: Id,
    /// Lineage of the entry.
    pub fingerprint: HtFingerprint,
    /// Payload schema.
    pub schema: Schema,
    /// Shared payload handle (a clone of the cache's `Arc`).
    pub payload: Arc<P>,
    /// Logical footprint in bytes.
    pub bytes: usize,
    /// How often the entry was checked out — the numerator of the
    /// benefit-per-byte persistence score.
    pub use_count: u64,
}

#[derive(Debug)]
struct ShardState<Id, P> {
    entries: HashMap<Id, StoreEntry<P>>,
    recycle: RecycleGraph<Id>,
}

impl<Id, P> Default for ShardState<Id, P> {
    fn default() -> Self {
        ShardState {
            entries: HashMap::new(),
            recycle: RecycleGraph::default(),
        }
    }
}

#[derive(Debug)]
struct StoreInner<Id: StoreId, P: ReusePayload> {
    budget: Arc<ReuseBudget>,
    // lock-order: 20 (store shards; two are never held at once — cross-shard
    // moves in commit_checkin go one shard at a time)
    shards: Vec<Mutex<ShardState<Id, P>>>,
    next_id: AtomicU64,
    publishes: AtomicU64,
    publish_dedups: AtomicU64,
    reuses: AtomicU64,
    evictions: AtomicU64,
    candidate_lookups: AtomicU64,
    bytes: AtomicUsize,
    entries: AtomicUsize,
    peak_bytes: AtomicUsize,
    // lock-order: 25 (per-tenant stats rollup; nests under one shard lock)
    tenant_stats: Mutex<HashMap<TenantId, TenantCounters>>,
    /// Pin-leak detector: +1 per successful checkout, −1 per release or
    /// exclusive checkin. [`ReuseStore::assert_quiesced`] requires 0.
    #[cfg(feature = "analysis")]
    pins: std::sync::atomic::AtomicI64,
}

/// Per-tenant slice of one store's statistics. Candidate lookups are not
/// tracked here: a lookup serves whichever tenants' entries match, so it has
/// no single owner — [`CacheStats::candidate_lookups`] stays global-only.
#[derive(Debug, Clone, Copy, Default)]
struct TenantCounters {
    publishes: u64,
    publish_dedups: u64,
    reuses: u64,
    evictions: u64,
    bytes: usize,
    entries: usize,
    peak_bytes: usize,
}

impl<Id: StoreId, P: ReusePayload> StoreInner<Id, P> {
    fn lock_shard(&self, idx: usize) -> LockGuard<'_, ShardState<Id, P>> {
        lock_at(&self.shards[idx], LEVEL_SHARD)
    }

    /// Shard owning tables of this fingerprint's shape (and the shape's
    /// recycle-graph slice). Routed by [`ShapeKey::stable_hash`] — not a
    /// `RandomState`-seeded std hasher — so the same shape lands on the
    /// same shard in every process, which the durability layer's golden
    /// shard-routing test pins for warm restarts.
    fn shard_of_shape(&self, fp: &HtFingerprint) -> usize {
        (ShapeKey::of(fp).stable_hash() as usize) % self.shards.len()
    }

    /// Shard an id was homed in at publish time (encoded in the id).
    fn shard_of_id(&self, id: Id) -> usize {
        (id.raw() as usize) % self.shards.len()
    }

    /// Count a footprint increase against this store *and* the shared
    /// budget (call while holding the shard lock that made the bytes
    /// visible — a concurrent eviction must never subtract bytes the
    /// counters don't hold yet).
    fn add_bytes(&self, delta: usize) {
        let now = self.bytes.fetch_add(delta, Ordering::Relaxed) + delta;
        self.peak_bytes.fetch_max(now, Ordering::Relaxed);
        self.budget.add_bytes(delta);
    }

    fn sub_bytes(&self, delta: usize) {
        self.bytes.fetch_sub(delta, Ordering::Relaxed);
        self.budget.sub_bytes(delta);
    }

    /// Update one tenant's counter slice. Safe to call with a shard lock
    /// held (level 20 → 25) or with nothing held.
    fn tenant_mut(&self, tenant: TenantId, f: impl FnOnce(&mut TenantCounters)) {
        let mut stats = lock_at(&self.tenant_stats, LEVEL_TENANT_STATS);
        f(stats.entry(tenant).or_default());
    }

    /// Grow a tenant's live footprint (and its high-water mark).
    fn tenant_add_bytes(&self, tenant: TenantId, delta: usize) {
        self.tenant_mut(tenant, |c| {
            c.bytes += delta;
            c.peak_bytes = c.peak_bytes.max(c.bytes);
        });
    }

    fn tenant_sub_bytes(&self, tenant: TenantId, delta: usize) {
        self.tenant_mut(tenant, |c| c.bytes = c.bytes.saturating_sub(delta));
    }

    /// Remove an already-extracted entry's recycle registration and
    /// accounting (entry map removal happened under the home shard lock).
    fn account_removed(&self, id: Id, entry: &StoreEntry<P>) {
        self.lock_shard(self.shard_of_shape(&entry.fingerprint))
            .recycle
            .remove(&entry.fingerprint, id);
        self.entries.fetch_sub(1, Ordering::Relaxed);
        self.sub_bytes(entry.bytes);
        self.tenant_mut(entry.tenant, |c| {
            c.entries = c.entries.saturating_sub(1);
            c.bytes = c.bytes.saturating_sub(entry.bytes);
        });
    }
}

impl<Id: StoreId, P: ReusePayload> VictimSource for StoreInner<Id, P> {
    fn current_bytes(&self) -> usize {
        self.bytes.load(Ordering::Relaxed)
    }

    fn best_victim(
        &self,
        policy: EvictionPolicy,
        protected: &[TenantId],
    ) -> Option<(u64, VictimKey)> {
        let mut victim: Option<(u64, VictimKey)> = None;
        for (si, _) in self.shards.iter().enumerate() {
            let state = self.lock_shard(si);
            for (&id, e) in &state.entries {
                if e.pinned() || protected.contains(&e.tenant) {
                    continue;
                }
                let key = VictimKey {
                    last_used: e.last_used,
                    use_count: e.use_count,
                    bytes: e.bytes,
                };
                if victim
                    .as_ref()
                    .is_none_or(|(_, best)| key.better_victim(best, policy))
                {
                    victim = Some((id.raw(), key));
                }
            }
        }
        victim
    }

    fn try_evict(&self, raw_id: u64) -> bool {
        let id = Id::from_raw(raw_id);
        // Re-lock and re-validate: the victim may have been pinned or
        // removed by a concurrent session since the scan.
        let removed = {
            let mut state = self.lock_shard(self.shard_of_id(id));
            match state.entries.get(&id) {
                Some(e) if !e.pinned() => state.entries.remove(&id),
                _ => None,
            }
        };
        match removed {
            Some(entry) => {
                self.account_removed(id, &entry);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                self.tenant_mut(entry.tenant, |c| c.evictions += 1);
                true
            }
            None => false,
        }
    }

    fn expire_idle(&self, cutoff: u64) -> usize {
        let mut evicted = 0;
        for (si, _) in self.shards.iter().enumerate() {
            let expired: Vec<(Id, StoreEntry<P>)> = {
                let mut state = self.lock_shard(si);
                let ids: Vec<Id> = state
                    .entries
                    .iter()
                    .filter(|(_, e)| !e.pinned() && e.last_used < cutoff)
                    .map(|(&id, _)| id)
                    .collect();
                ids.into_iter()
                    .filter_map(|id| state.entries.remove(&id).map(|e| (id, e)))
                    .collect()
            };
            for (id, entry) in expired {
                self.account_removed(id, &entry);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                self.tenant_mut(entry.tenant, |c| c.evictions += 1);
                evicted += 1;
            }
        }
        evicted
    }

    fn add_tenant_bytes(&self, out: &mut HashMap<TenantId, usize>) {
        let stats = lock_at(&self.tenant_stats, LEVEL_TENANT_STATS);
        for (&tenant, c) in stats.iter() {
            *out.entry(tenant).or_default() += c.bytes;
        }
    }
}

/// A sharded, concurrently accessible reuse cache for one payload type.
///
/// All methods take `&self`; interior locking is per shard. See the module
/// docs for the checkout/checkin concurrency model. Cloning is cheap (the
/// state is `Arc`-shared).
#[derive(Debug, Clone)]
pub struct ReuseStore<Id: StoreId, P: ReusePayload> {
    inner: Arc<StoreInner<Id, P>>,
}

impl<Id: StoreId, P: ReusePayload> ReuseStore<Id, P> {
    /// A store governed by `budget`, with `shards` shards (≥ 1). The store
    /// registers itself with the budget's victim search.
    pub fn new(budget: Arc<ReuseBudget>, shards: usize) -> Self {
        let shards = shards.max(1);
        let inner = Arc::new(StoreInner {
            budget,
            shards: (0..shards)
                .map(|_| Mutex::new(ShardState::default()))
                .collect(),
            next_id: AtomicU64::new(1),
            publishes: AtomicU64::new(0),
            publish_dedups: AtomicU64::new(0),
            reuses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            candidate_lookups: AtomicU64::new(0),
            bytes: AtomicUsize::new(0),
            entries: AtomicUsize::new(0),
            peak_bytes: AtomicUsize::new(0),
            tenant_stats: Mutex::new(HashMap::new()),
            #[cfg(feature = "analysis")]
            pins: std::sync::atomic::AtomicI64::new(0),
        });
        let weak: Weak<StoreInner<Id, P>> = Arc::downgrade(&inner);
        inner.budget.register(weak);
        ReuseStore { inner }
    }

    /// A store with a private, unlimited budget (GC off).
    pub fn unbounded(shards: usize) -> Self {
        ReuseStore::new(ReuseBudget::new(GcConfig::default()), shards)
    }

    /// The budget governing this store (possibly shared with others).
    pub fn budget(&self) -> &Arc<ReuseBudget> {
        &self.inner.budget
    }

    /// Number of independent shards.
    pub fn num_shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// Publish a payload under a fingerprint. Returns its cache id. May
    /// trigger evictions (in any store sharing the budget) to respect the
    /// memory budget.
    ///
    /// Publishing a lineage that is already cached (same shape, payload and
    /// set-equal region — e.g. a re-planned retry re-running an operator
    /// whose first attempt's publish survived the abort) is deduplicated:
    /// the existing entry is kept (base tables are immutable, so identical
    /// lineage means identical content), its LRU stamp refreshed, and its
    /// id returned without touching the footprint or the publish counter.
    pub fn publish(&self, fingerprint: HtFingerprint, schema: Schema, payload: P) -> Id {
        self.publish_as(TenantId::DEFAULT, fingerprint, schema, payload)
    }

    /// [`ReuseStore::publish`] on behalf of a tenant: the new entry is owned
    /// by `tenant` for budget-floor protection and per-tenant statistics.
    /// A dedup hit keeps the existing entry's owner (base tables are
    /// immutable, so an identical lineage is the same table whoever built
    /// it); the dedup itself is credited to the publishing tenant.
    pub fn publish_as(
        &self,
        tenant: TenantId,
        fingerprint: HtFingerprint,
        schema: Schema,
        payload: P,
    ) -> Id {
        let inner = &self.inner;
        let shard = inner.shard_of_shape(&fingerprint);
        let now = inner.budget.tick();
        let bytes = payload.logical_bytes();
        let entry_stamps = inner
            .budget
            .gc_config()
            .fine_grained
            .then(|| vec![now; payload.len()]);
        let id = {
            let mut state = inner.lock_shard(shard);
            let candidates = state.recycle.candidates(&fingerprint);
            let duplicate = candidates.into_iter().find_map(|id| {
                let entry = state.entries.get_mut(&id)?;
                (!entry.writer && entry.fingerprint.same_lineage(&fingerprint)).then(|| {
                    entry.last_used = now;
                    id
                })
            });
            if let Some(id) = duplicate {
                inner.publish_dedups.fetch_add(1, Ordering::Relaxed);
                inner.tenant_mut(tenant, |c| c.publish_dedups += 1);
                return id;
            }
            // Encode the home shard in the id so id-only operations
            // (checkout, checkin, drop) find the right shard without a
            // global index.
            let raw = inner.next_id.fetch_add(1, Ordering::Relaxed);
            let id = Id::from_raw(raw * inner.shards.len() as u64 + shard as u64);
            state.recycle.add(&fingerprint, id);
            state.entries.insert(
                id,
                StoreEntry {
                    fingerprint,
                    schema,
                    slot: Slot::Present(Arc::new(payload)),
                    tenant,
                    bytes,
                    last_used: now,
                    use_count: 0,
                    readers: 0,
                    writer: false,
                    entry_stamps,
                },
            );
            // Count the bytes while still holding the shard lock: the entry
            // is evictable the moment the lock drops, and a concurrent
            // eviction must never subtract bytes the counter doesn't hold
            // yet (usize underflow).
            inner.entries.fetch_add(1, Ordering::Relaxed);
            inner.add_bytes(bytes);
            inner.publishes.fetch_add(1, Ordering::Relaxed);
            inner.tenant_mut(tenant, |c| {
                c.publishes += 1;
                c.entries += 1;
                c.bytes += bytes;
                c.peak_bytes = c.peak_bytes.max(c.bytes);
            });
            id
        };
        inner.budget.enforce();
        id
    }

    /// Candidate tables whose producing sub-plan matches the request's
    /// shape. Tables with an outstanding *mutating* checkout are excluded
    /// (single-reuser rule for writers); tables held by readers remain
    /// candidates — shared read-only reuse is the point of the Arc design.
    pub fn candidates(&self, request: &HtFingerprint) -> Vec<StoreCandidate<Id, P>> {
        let inner = &self.inner;
        inner.candidate_lookups.fetch_add(1, Ordering::Relaxed);
        fn push_candidate<Id: StoreId, P: ReusePayload>(
            out: &mut Vec<StoreCandidate<Id, P>>,
            state: &ShardState<Id, P>,
            id: Id,
        ) {
            let Some(e) = state.entries.get(&id) else {
                return; // evicted between graph probe and entry lookup
            };
            let Slot::Present(payload) = &e.slot else {
                return; // held for in-place mutation
            };
            if e.writer {
                return;
            }
            out.push(StoreCandidate {
                id,
                fingerprint: e.fingerprint.clone(),
                schema: e.schema.clone(),
                payload: Arc::clone(payload),
            });
        }

        let shape_shard = inner.shard_of_shape(request);
        let mut out = Vec::new();
        // Entries of this shape home in the shape's shard, so serve them
        // under the single lock we already hold for the graph probe. Only
        // ids re-homed by a shape-changing checkin (not produced by any
        // current code path) need another shard's lock.
        let foreign: Vec<Id> = {
            let mut state = inner.lock_shard(shape_shard);
            let ids = state.recycle.candidates(request);
            let mut foreign = Vec::new();
            for id in ids {
                if inner.shard_of_id(id) == shape_shard {
                    push_candidate(&mut out, &state, id);
                } else {
                    foreign.push(id);
                }
            }
            foreign
        };
        for id in foreign {
            let state = inner.lock_shard(inner.shard_of_id(id));
            push_candidate(&mut out, &state, id);
        }
        out
    }

    /// All cached fingerprints (the temp-table baseline enumerates its
    /// cache instead of going through shape matching).
    pub fn fingerprints(&self) -> Vec<(Id, HtFingerprint)> {
        let inner = &self.inner;
        let mut out = Vec::new();
        for (si, _) in inner.shards.iter().enumerate() {
            let state = inner.lock_shard(si);
            out.extend(
                state
                    .entries
                    .iter()
                    .map(|(&id, e)| (id, e.fingerprint.clone())),
            );
        }
        out
    }

    /// Stats-neutral snapshot of every available entry, for persistence.
    ///
    /// Clones each entry's shared payload handle under its shard lock —
    /// the same race-safety a shared checkout relies on (base handles are
    /// immutable; mutating reuse replaces the `Arc` at check-in, so a
    /// snapshot taken concurrently sees either the old or the new version,
    /// both internally consistent). Unlike a checkout it does **not** bump
    /// `use_count`, LRU stamps or the `reuses` counter, does not pin the
    /// entry, and is invisible to cache statistics. Entries held for
    /// in-place mutation or by an exclusive writer are skipped (their
    /// pristine payload may no longer exist).
    pub fn snapshot_entries(&self) -> Vec<SnapshotEntry<Id, P>> {
        let inner = &self.inner;
        let mut out = Vec::new();
        for (si, _) in inner.shards.iter().enumerate() {
            let state = inner.lock_shard(si);
            for (&id, e) in &state.entries {
                let Slot::Present(payload) = &e.slot else {
                    continue;
                };
                if e.writer {
                    continue;
                }
                out.push(SnapshotEntry {
                    id,
                    fingerprint: e.fingerprint.clone(),
                    schema: e.schema.clone(),
                    payload: Arc::clone(payload),
                    bytes: e.bytes,
                    use_count: e.use_count,
                });
            }
        }
        out
    }

    /// Schema of a cached entry.
    pub fn schema(&self, id: Id) -> Result<Schema> {
        let inner = &self.inner;
        let state = inner.lock_shard(inner.shard_of_id(id));
        state
            .entries
            .get(&id)
            .map(|e| e.schema.clone())
            .ok_or_else(|| HsError::CacheError(format!("{id} not in cache")))
    }

    pub(crate) fn checkout_inner(
        &self,
        id: Id,
        exclusive: bool,
        check: RegionCheck<'_>,
    ) -> Result<Checkout<'_, Id, P>> {
        let inner = &self.inner;
        let now = inner.budget.tick();
        let fine = inner.budget.gc_config().fine_grained;
        let mode = if exclusive {
            CheckoutMode::Exclusive
        } else {
            CheckoutMode::Shared
        };
        let mut state = inner.lock_shard(inner.shard_of_id(id));
        let entry = state
            .entries
            .get_mut(&id)
            .ok_or_else(|| HsError::CacheError(format!("{id} not in cache")))?;
        // Lineage validation happens *before* any bookkeeping: a failed
        // (stale-plan) checkout must not inflate use counts, LRU stamps or
        // the reuse statistics.
        match check {
            RegionCheck::None => {}
            RegionCheck::Eq(expect) => {
                if !entry.fingerprint.region.set_eq(expect) {
                    return Err(HsError::CacheError(format!(
                        "{id} lineage changed since planning"
                    )));
                }
            }
            RegionCheck::Covers(request) => {
                if !request.is_subset(&entry.fingerprint.region) {
                    return Err(HsError::CacheError(format!(
                        "{id} lineage no longer covers the requested region"
                    )));
                }
            }
        }
        let Slot::Present(handle) = &entry.slot else {
            // The writer took the payload for in-place mutation; there is
            // no snapshot to hand out until it checks back in.
            return Err(HsError::CacheError(format!(
                "{id} checked out for in-place mutation"
            )));
        };
        let payload = Arc::clone(handle);
        match mode {
            CheckoutMode::Shared => entry.readers += 1,
            CheckoutMode::Exclusive => {
                if entry.writer {
                    return Err(HsError::CacheError(format!(
                        "{id} already checked out for writing"
                    )));
                }
                entry.writer = true;
            }
        }
        entry.last_used = now;
        entry.use_count += 1;
        if fine {
            // Fine-grained bookkeeping: re-stamp every element. This is the
            // per-entry monitoring overhead the paper measured and rejected.
            entry.entry_stamps = Some(vec![now; payload.len()]);
        }
        inner.reuses.fetch_add(1, Ordering::Relaxed);
        // Reuse is credited to the entry's owner: a tenant's hit ratio
        // measures how often the tables *it* built paid off, whichever
        // session probed them.
        let owner = entry.tenant;
        inner.tenant_mut(owner, |c| c.reuses += 1);
        #[cfg(feature = "analysis")]
        inner.pins.fetch_add(1, Ordering::Relaxed);
        Ok(Checkout {
            store: self,
            id,
            fingerprint: entry.fingerprint.clone(),
            schema: entry.schema.clone(),
            payload,
            mode,
            in_place: false,
            active: true,
        })
    }

    /// Check an entry out for shared, read-only reuse. Any number of shared
    /// checkouts may coexist.
    pub fn checkout(&self, id: Id) -> Result<Checkout<'_, Id, P>> {
        self.checkout_inner(id, false, RegionCheck::None)
    }

    /// Shared checkout failing — without touching use counts or LRU stamps
    /// — unless the lineage region still equals `expect_region`.
    pub fn checkout_expecting(
        &self,
        id: Id,
        expect_region: &hashstash_plan::Region,
    ) -> Result<Checkout<'_, Id, P>> {
        self.checkout_inner(id, false, RegionCheck::Eq(expect_region))
    }

    /// Shared checkout validating that the lineage still **covers**
    /// `request_region` (read-only reuse tolerates concurrent widening; the
    /// guard's `fingerprint` carries the observed lineage so the caller can
    /// compensate).
    pub fn checkout_covering(
        &self,
        id: Id,
        request_region: &hashstash_plan::Region,
    ) -> Result<Checkout<'_, Id, P>> {
        self.checkout_inner(id, false, RegionCheck::Covers(request_region))
    }

    /// Check an entry out for mutating reuse. At most one mutating checkout
    /// per entry — the paper's single-reuser rule (§2.2), enforced only
    /// where mutation actually happens.
    pub fn checkout_mut(&self, id: Id) -> Result<Checkout<'_, Id, P>> {
        self.checkout_inner(id, true, RegionCheck::None)
    }

    /// [`ReuseStore::checkout_mut`] with strict lineage pre-validation
    /// (mutating reuse computed its delta against the planned region, so
    /// any widening must re-plan).
    pub fn checkout_mut_expecting(
        &self,
        id: Id,
        expect_region: &hashstash_plan::Region,
    ) -> Result<Checkout<'_, Id, P>> {
        self.checkout_inner(id, true, RegionCheck::Eq(expect_region))
    }

    /// Release a pin without publishing changes (guard drop). An exclusive
    /// guard that took the in-place fast path leaves no pristine version to
    /// fall back to, so its entry is dropped from the cache.
    fn release(&self, id: Id, mode: CheckoutMode, in_place: bool) {
        let inner = &self.inner;
        #[cfg(feature = "analysis")]
        inner.pins.fetch_sub(1, Ordering::Relaxed);
        let removed = {
            let mut state = inner.lock_shard(inner.shard_of_id(id));
            if let Some(entry) = state.entries.get_mut(&id) {
                match mode {
                    CheckoutMode::Shared => {
                        entry.readers = entry.readers.saturating_sub(1);
                        None
                    }
                    CheckoutMode::Exclusive => {
                        entry.writer = false;
                        if in_place && matches!(entry.slot, Slot::InPlace) {
                            state.entries.remove(&id)
                        } else {
                            None
                        }
                    }
                }
            } else {
                None
            }
        };
        if let Some(entry) = removed {
            inner.account_removed(id, &entry);
        }
    }

    /// Publish an exclusive guard's new payload version (paper Figure 1,
    /// step 4). The fingerprint may have changed (partial reuse widens the
    /// region); the recycle graph is updated if the shape changed.
    fn commit_checkin(
        &self,
        id: Id,
        fingerprint: HtFingerprint,
        schema: Schema,
        payload: Arc<P>,
    ) -> Result<()> {
        let inner = &self.inner;
        // The guard is consumed whether or not the commit succeeds, so the
        // pin is gone either way.
        #[cfg(feature = "analysis")]
        inner.pins.fetch_sub(1, Ordering::Relaxed);
        let now = inner.budget.tick();
        let fine = inner.budget.gc_config().fine_grained;
        let home = inner.shard_of_id(id);
        let shape_change = {
            let mut state = inner.lock_shard(home);
            let entry = state
                .entries
                .get_mut(&id)
                .ok_or_else(|| HsError::CacheError(format!("{id} not in cache")))?;
            debug_assert!(entry.writer, "checkin without an exclusive checkout");
            let shape_change =
                (!entry.fingerprint.same_shape(&fingerprint)).then(|| entry.fingerprint.clone());
            let old_bytes = entry.bytes;
            let new_bytes = payload.logical_bytes();
            entry.bytes = new_bytes;
            if fine {
                entry.entry_stamps = Some(vec![now; payload.len()]);
            }
            entry.fingerprint = fingerprint.clone();
            entry.schema = schema;
            entry.slot = Slot::Present(payload);
            entry.last_used = now;
            entry.writer = false;
            // Byte delta while still holding the shard lock: once it drops
            // the entry is evictable, and a concurrent eviction subtracting
            // the new size against a counter still holding the old one
            // would underflow.
            if new_bytes >= old_bytes {
                inner.add_bytes(new_bytes - old_bytes);
                inner.tenant_add_bytes(entry.tenant, new_bytes - old_bytes);
            } else {
                inner.sub_bytes(old_bytes - new_bytes);
                inner.tenant_sub_bytes(entry.tenant, old_bytes - new_bytes);
            }
            shape_change
        };
        // Move the recycle registration when the shape changed (one shard
        // lock at a time; candidate lookups tolerate the brief window by
        // re-validating against the entry).
        if let Some(old_fp) = shape_change {
            inner
                .lock_shard(inner.shard_of_shape(&old_fp))
                .recycle
                .remove(&old_fp, id);
            inner
                .lock_shard(inner.shard_of_shape(&fingerprint))
                .recycle
                .add(&fingerprint, id);
        }
        inner.budget.enforce();
        Ok(())
    }

    /// Drop an entry outright. Fails while it is checked out.
    pub fn drop_entry(&self, id: Id) -> Result<()> {
        let inner = &self.inner;
        let entry = {
            let mut state = inner.lock_shard(inner.shard_of_id(id));
            match state.entries.entry(id) {
                hash_map::Entry::Vacant(_) => {
                    return Err(HsError::CacheError(format!("{id} not in cache")))
                }
                hash_map::Entry::Occupied(e) if e.get().pinned() => {
                    return Err(HsError::CacheError(format!("{id} is checked out")))
                }
                hash_map::Entry::Occupied(e) => e.remove(),
            }
        };
        inner.account_removed(id, &entry);
        Ok(())
    }

    /// Run the budget's TTL expiry + cross-store victim loop (see
    /// [`ReuseBudget::enforce`]). Returns the number of evictions across
    /// every store sharing the budget.
    pub fn enforce_budget(&self) -> usize {
        self.inner.budget.enforce()
    }

    /// Fine-grained GC: drop the oldest `1 - keep_fraction` of an entry's
    /// elements (requires `fine_grained` mode). Returns elements removed.
    /// Copy-on-write: concurrent readers keep the unpruned snapshot.
    pub fn prune_entries(&self, id: Id, keep_fraction: f64) -> Result<usize> {
        let inner = &self.inner;
        if !inner.budget.gc_config().fine_grained {
            return Err(HsError::Config(
                "prune_entries requires fine_grained GC mode".into(),
            ));
        }
        let now = inner.budget.tick();
        let (before, after) = {
            let mut state = inner.lock_shard(inner.shard_of_id(id));
            let entry = state
                .entries
                .get_mut(&id)
                .ok_or_else(|| HsError::CacheError(format!("{id} not in cache")))?;
            if entry.writer {
                return Err(HsError::CacheError(format!("{id} checked out")));
            }
            let Slot::Present(handle) = &mut entry.slot else {
                return Err(HsError::CacheError(format!("{id} checked out")));
            };
            let stamps = entry.entry_stamps.clone().unwrap_or_default();
            let before = handle.len();
            let keep = ((before as f64) * keep_fraction).ceil() as usize;
            if keep >= before {
                return Ok(0);
            }
            // Rank elements by (stamp, position); keep the newest `keep`.
            // Position breaks ties so a uniform-stamp table still prunes.
            let mut order: Vec<usize> = (0..before).collect();
            order.sort_unstable_by_key(|&i| (stamps.get(i).copied().unwrap_or(0), i));
            let mut keep_mask = vec![false; before];
            for &i in order.iter().rev().take(keep) {
                keep_mask[i] = true;
            }
            Arc::make_mut(handle).retain_mask(&keep_mask);
            let after = handle.len();
            let old_bytes = entry.bytes;
            entry.bytes = handle.logical_bytes();
            // Survivors get a *fresh* stamp: a later checkout always ticks
            // later than the prune, keeping per-element timestamps monotone.
            entry.entry_stamps = Some(vec![now; after]);
            let new_bytes = entry.bytes;
            // Byte delta under the shard lock (see publish/commit_checkin:
            // a concurrent eviction must never see the entry's new size
            // before the counter does).
            if new_bytes >= old_bytes {
                inner.add_bytes(new_bytes - old_bytes);
                inner.tenant_add_bytes(entry.tenant, new_bytes - old_bytes);
            } else {
                inner.sub_bytes(old_bytes - new_bytes);
                inner.tenant_sub_bytes(entry.tenant, old_bytes - new_bytes);
            }
            (before, after)
        };
        Ok(before - after)
    }

    /// Fine-grained per-element timestamps of an entry (`None` unless
    /// `fine_grained` mode stamped it). For tests and GC experiments.
    pub fn entry_stamps(&self, id: Id) -> Result<Option<Vec<u64>>> {
        let inner = &self.inner;
        let state = inner.lock_shard(inner.shard_of_id(id));
        state
            .entries
            .get(&id)
            .map(|e| e.entry_stamps.clone())
            .ok_or_else(|| HsError::CacheError(format!("{id} not in cache")))
    }

    /// Aggregate statistics snapshot (this store only; the combined
    /// footprint lives on the [`ReuseBudget`]).
    pub fn stats(&self) -> CacheStats {
        let inner = &self.inner;
        CacheStats {
            publishes: inner.publishes.load(Ordering::Relaxed),
            publish_dedups: inner.publish_dedups.load(Ordering::Relaxed),
            reuses: inner.reuses.load(Ordering::Relaxed),
            evictions: inner.evictions.load(Ordering::Relaxed),
            candidate_lookups: inner.candidate_lookups.load(Ordering::Relaxed),
            bytes: inner.bytes.load(Ordering::Relaxed),
            entries: inner.entries.load(Ordering::Relaxed),
            peak_bytes: inner.peak_bytes.load(Ordering::Relaxed),
        }
    }

    /// Per-tenant statistics slices, sorted by tenant id. Each counter of
    /// the global [`ReuseStore::stats`] (except `candidate_lookups`, which
    /// has no single owner, and `peak_bytes`, whose per-tenant high-water
    /// marks need not peak simultaneously) is the sum of the slices — a
    /// tenant appears once it has published, reused or evicted anything.
    pub fn tenant_stats(&self) -> Vec<(TenantId, CacheStats)> {
        let inner = &self.inner;
        let stats = lock_at(&inner.tenant_stats, LEVEL_TENANT_STATS);
        let mut out: Vec<(TenantId, CacheStats)> = stats
            .iter()
            .map(|(&tenant, c)| {
                (
                    tenant,
                    CacheStats {
                        publishes: c.publishes,
                        publish_dedups: c.publish_dedups,
                        reuses: c.reuses,
                        evictions: c.evictions,
                        candidate_lookups: 0,
                        bytes: c.bytes,
                        entries: c.entries,
                        peak_bytes: c.peak_bytes,
                    },
                )
            })
            .collect();
        drop(stats);
        out.sort_by_key(|(t, _)| *t);
        out
    }

    /// One tenant's statistics slice (zeroed if the tenant has no history).
    pub fn tenant_stats_for(&self, tenant: TenantId) -> CacheStats {
        self.tenant_stats()
            .into_iter()
            .find(|(t, _)| *t == tenant)
            .map(|(_, s)| s)
            .unwrap_or_default()
    }

    /// Stamp every cached entry with one fresh clock tick.
    ///
    /// Warm-restart rehydration calls this after re-publishing the
    /// persisted entries: each re-publish ticks the shared clock, so a
    /// large snapshot leaves its earliest entries tens of thousands of
    /// ticks "older" than its latest purely from rehydration order — the
    /// first TTL sweep after restart would expire most of the warm cache
    /// it just paid to rebuild. After `freshen_all` every survivor starts
    /// its idle clock at the restart instead.
    pub fn freshen_all(&self) {
        let inner = &self.inner;
        let now = inner.budget.tick();
        for (si, _) in inner.shards.iter().enumerate() {
            let mut state = inner.lock_shard(si);
            for e in state.entries.values_mut() {
                e.last_used = now;
                if let Some(stamps) = &mut e.entry_stamps {
                    stamps.fill(now);
                }
            }
        }
    }

    /// Recount footprint and entries directly from the shards (O(entries),
    /// takes every shard lock in turn). At quiesce this must equal
    /// [`CacheStats::bytes`]/[`CacheStats::entries`] — the concurrency
    /// stress tests assert exactly that.
    pub fn audit(&self) -> (usize, usize) {
        let inner = &self.inner;
        let mut bytes = 0;
        let mut entries = 0;
        for (si, _) in inner.shards.iter().enumerate() {
            let state = inner.lock_shard(si);
            entries += state.entries.len();
            bytes += state.entries.values().map(|e| e.bytes).sum::<usize>();
        }
        (bytes, entries)
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.inner.entries.load(Ordering::Relaxed)
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether a given entry is currently cached and not held by a writer
    /// (readers do not block availability).
    pub fn is_available(&self, id: Id) -> bool {
        let inner = &self.inner;
        let state = inner.lock_shard(inner.shard_of_id(id));
        state.entries.get(&id).is_some_and(|e| !e.writer)
    }

    /// Checkout guards currently outstanding (`analysis` feature only).
    #[cfg(feature = "analysis")]
    pub fn outstanding_pins(&self) -> i64 {
        self.inner.pins.load(Ordering::SeqCst)
    }

    /// Pin-leak detector: assert that every checkout guard ever handed out
    /// has been returned (released, dropped or checked in) and that no
    /// entry still carries readers, a writer or an in-place hole.
    ///
    /// Call at a quiesce point — after every worker thread has joined. A
    /// `mem::forget`-leaked guard, a double-count bug, or a release path
    /// that forgets its bookkeeping all fail here with the store's state
    /// spelled out, instead of silently pinning entries against eviction.
    #[cfg(feature = "analysis")]
    pub fn assert_quiesced(&self) {
        let pins = self.outstanding_pins();
        assert_eq!(
            pins, 0,
            "pin leak: {pins} checkout guard(s) never returned to the store"
        );
        let inner = &self.inner;
        for (si, _) in inner.shards.iter().enumerate() {
            let state = inner.lock_shard(si);
            for (id, e) in &state.entries {
                assert_eq!(e.readers, 0, "{id}: {} reader(s) at quiesce", e.readers);
                assert!(!e.writer, "{id}: writer flag still set at quiesce");
                assert!(
                    matches!(e.slot, Slot::Present(_)),
                    "{id}: payload still taken for in-place mutation at quiesce"
                );
            }
        }
    }
}
