//! The Hash Table Manager (HTM): cache, lineage index and garbage collector.
//!
//! Paper §2.2: *"The hash table cache manages hash tables for reuse; it
//! stores pointers to cached hash tables, as well as lineage information
//! about how each one of them was created. It also stores statistics to
//! enable the cost-based hash table selection by the optimizer."*
//!
//! * [`payload`] — the value types stored inside cached tables: join rows
//!   (optionally qid-tagged), aggregate accumulator states, and raw grouped
//!   rows for shared aggregates.
//! * [`manager::HtManager`] — publish / candidates / checkout / checkin /
//!   release life-cycle. The manager is *sharded by fingerprint shape* and
//!   all methods take `&self`, so any number of sessions can use it
//!   concurrently. Cached tables are `Arc`-backed: read-only reuse shares a
//!   handle clone between any number of queries, while mutating reuse
//!   (partial/overlapping) is copy-on-write under the paper's single-reuser
//!   rule (§2.2) — enforced only where mutation actually happens. Checkouts
//!   are RAII guards: error paths and panics release the table instead of
//!   leaking it.
//! * [`recycle`] — the recycle-graph-style lineage index: candidate lookup
//!   is pruned to nodes that actually reference a cached hash table
//!   (paper §3.3).
//! * [`manager::GcConfig`] — coarse-grained LRU eviction of whole tables
//!   (paper §5) under a budget shared across shards, with optional
//!   alternative policies for ablation studies.

pub mod manager;
pub mod payload;
pub mod recycle;

pub use manager::{CacheStats, CheckedOut, EvictionPolicy, GcConfig, HtManager, DEFAULT_SHARDS};
pub use payload::{AggAccum, AggPayload, StoredHt, TaggedRow};
pub use recycle::RecycleGraph;
