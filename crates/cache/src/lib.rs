//! The reuse-cache layer: the generic [`store::ReuseStore`], its typed
//! Hash Table Manager facade, lineage index and garbage collector.
//!
//! Paper §2.2: *"The hash table cache manages hash tables for reuse; it
//! stores pointers to cached hash tables, as well as lineage information
//! about how each one of them was created. It also stores statistics to
//! enable the cost-based hash table selection by the optimizer."*
//!
//! * [`store`] — the generic, payload-agnostic reuse store: fingerprint-
//!   shape sharding, the shared [`store::ReuseBudget`] (one byte budget and
//!   one eviction loop ranking *every* payload kind together), RAII
//!   shared/exclusive checkout guards with copy-on-write mutation (and a
//!   sole-reference in-place fast path), identical-lineage publish dedup,
//!   per-table TTL expiry, statistics.
//! * [`payload`] — the payload types: [`payload::StoredHt`] (join rows,
//!   optionally qid-tagged; aggregate accumulator states; raw grouped rows
//!   for shared aggregates) and [`payload::MaterializedRows`] (the
//!   temp-table baseline's row vectors).
//! * [`manager::HtManager`] — the hash-table facade: publish / candidates /
//!   checkout / checkin / release life-cycle, all methods `&self`.
//!   Read-only reuse shares an `Arc` handle clone between any number of
//!   queries; mutating reuse is single-reuser (§2.2), enforced only where
//!   mutation actually happens. Checkouts are RAII guards: error paths and
//!   panics release the table instead of leaking it.
//! * [`recycle`] — the recycle-graph-style lineage index: candidate lookup
//!   is pruned to nodes that actually reference a cached hash table
//!   (paper §3.3).
//! * [`store::GcConfig`] — coarse-grained eviction of whole tables (paper
//!   §5) under the shared budget, with optional alternative policies, TTLs
//!   and an anti-starvation floor per payload kind.

#[cfg(feature = "analysis")]
pub mod analysis;
pub mod manager;
pub mod payload;
pub mod recycle;
pub mod store;

pub use manager::{Candidate, CheckedOut, HtManager};
pub use payload::{AggAccum, AggPayload, MaterializedRows, StoredHt, TaggedRow};
pub use recycle::RecycleGraph;
pub use store::{
    CacheStats, Checkout, EvictionPolicy, GcConfig, ReuseBudget, ReusePayload, ReuseStore,
    SnapshotEntry, StoreCandidate, StoreId, TenantId, DEFAULT_SHARDS,
};
