//! The Hash Table Manager (HTM): cache, lineage index and garbage collector.
//!
//! Paper §2.2: *"The hash table cache manages hash tables for reuse; it
//! stores pointers to cached hash tables, as well as lineage information
//! about how each one of them was created. It also stores statistics to
//! enable the cost-based hash table selection by the optimizer."*
//!
//! * [`payload`] — the value types stored inside cached tables: join rows
//!   (optionally qid-tagged), aggregate accumulator states, and raw grouped
//!   rows for shared aggregates.
//! * [`manager::HtManager`] — publish / candidates / checkout / checkin /
//!   release life-cycle. Only one query may reuse a given table at a time
//!   (paper §2.2), enforced by the checkout protocol.
//! * [`recycle`] — the recycle-graph-style lineage index: candidate lookup
//!   is pruned to nodes that actually reference a cached hash table
//!   (paper §3.3).
//! * [`manager::GcConfig`] — coarse-grained LRU eviction of whole tables
//!   (paper §5), with optional alternative policies for ablation studies.

pub mod manager;
pub mod payload;
pub mod recycle;

pub use manager::{CacheStats, CheckedOut, EvictionPolicy, GcConfig, HtManager};
pub use payload::{AggAccum, AggPayload, StoredHt, TaggedRow};
pub use recycle::RecycleGraph;
