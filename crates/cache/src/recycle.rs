//! Recycle-graph lineage index.
//!
//! The paper stores lineage "in a similar way as described in [Nagel et al.]
//! using a so-called recycle graph G_C" that merges the plans of all cached
//! hash tables, and prunes matching to "those nodes n_c that actually refer
//! to a cached hash-table" (§3.3).
//!
//! [`RecycleGraph`] realizes both ideas: every published hash table adds its
//! producing sub-plan as a node; nodes are merged (deduplicated) by their
//! structural *shape key* — operator kind, base tables, join edges and hash
//! key. Candidate lookup for a requesting operator is then a single bucket
//! probe that returns only nodes carrying hash tables, never the interior of
//! other plans.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use hashstash_types::HtId;

use hashstash_plan::HtFingerprint;

/// Structural shape key of a sub-plan that materializes a hash table.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ShapeKey {
    kind: &'static str,
    tables: Vec<String>,
    edges: Vec<String>,
    keys: Vec<String>,
}

impl ShapeKey {
    /// Compute the shape key of a fingerprint.
    ///
    /// Join tables key on their hash key; aggregate tables deliberately do
    /// *not*, because a table grouped by a superset of the requested keys is
    /// still reusable via post-aggregation (paper §3.3) — the matcher checks
    /// key compatibility after the bucket probe.
    pub fn of(fp: &HtFingerprint) -> Self {
        let kind = match fp.kind {
            hashstash_plan::HtKind::JoinBuild => "join",
            hashstash_plan::HtKind::Aggregate => "agg",
            hashstash_plan::HtKind::SharedGroup => "shared-group",
        };
        let mut edges: Vec<String> = fp.edges.iter().map(|e| e.to_string()).collect();
        edges.sort();
        let keys = match fp.kind {
            hashstash_plan::HtKind::JoinBuild => {
                fp.key_attrs.iter().map(|k| k.to_string()).collect()
            }
            hashstash_plan::HtKind::Aggregate | hashstash_plan::HtKind::SharedGroup => Vec::new(),
        };
        ShapeKey {
            kind,
            tables: fp.tables.iter().map(|t| t.to_string()).collect(),
            edges,
            keys,
        }
    }

    /// A process- and version-stable 64-bit hash of the shape.
    ///
    /// Shard routing must not depend on `RandomState` seeds or on the std
    /// hasher's (unspecified, version-dependent) algorithm: warm restart
    /// re-publishes persisted entries in a *new* process, and the golden
    /// shard-routing test pins this value, so the hash is FNV-1a over an
    /// unambiguous field encoding (each component terminated by `\0`, which
    /// cannot occur in table/column names).
    pub fn stable_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes.iter().chain(std::iter::once(&0u8)) {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(self.kind.as_bytes());
        for t in &self.tables {
            eat(t.as_bytes());
        }
        eat(b"|");
        for e in &self.edges {
            eat(e.as_bytes());
        }
        eat(b"|");
        for k in &self.keys {
            eat(k.as_bytes());
        }
        h
    }
}

/// One node of the recycle graph: a materializing operator plus the cached
/// hash tables produced by structurally identical sub-plans.
#[derive(Debug, Clone)]
struct RecycleNode<Id> {
    /// Cached tables with this shape (they differ in predicate region).
    hts: Vec<Id>,
    /// How many times this node matched a request (graph-level statistics).
    lookups: u64,
}

/// The merged lineage graph of all cached hash tables.
///
/// Generic over the cached-table id so the same index serves every payload
/// kind of the generic reuse store; defaults to [`HtId`] for the classic
/// hash-table use.
#[derive(Debug)]
pub struct RecycleGraph<Id = HtId> {
    nodes: HashMap<ShapeKey, RecycleNode<Id>>,
}

impl<Id> Default for RecycleGraph<Id> {
    fn default() -> Self {
        RecycleGraph {
            nodes: HashMap::new(),
        }
    }
}

impl<Id: Copy + PartialEq> RecycleGraph<Id> {
    /// Empty graph.
    pub fn new() -> Self {
        RecycleGraph::default()
    }

    /// Merge the producing sub-plan of a newly cached hash table into the
    /// graph. Structurally identical sub-plans collapse into one node.
    pub fn add(&mut self, fp: &HtFingerprint, id: Id) {
        match self.nodes.entry(ShapeKey::of(fp)) {
            Entry::Occupied(mut e) => e.get_mut().hts.push(id),
            Entry::Vacant(e) => {
                e.insert(RecycleNode {
                    hts: vec![id],
                    lookups: 0,
                });
            }
        }
    }

    /// Remove a hash table (evicted or dropped).
    pub fn remove(&mut self, fp: &HtFingerprint, id: Id) {
        let key = ShapeKey::of(fp);
        if let Some(node) = self.nodes.get_mut(&key) {
            node.hts.retain(|&h| h != id);
            if node.hts.is_empty() {
                self.nodes.remove(&key);
            }
        }
    }

    /// Candidate hash tables whose producing sub-plan is structurally
    /// identical to the requesting fingerprint. This is the §3.3 pruning:
    /// only nodes referring to cached hash tables are visited.
    pub fn candidates(&mut self, request: &HtFingerprint) -> Vec<Id> {
        match self.nodes.get_mut(&ShapeKey::of(request)) {
            Some(node) => {
                node.lookups += 1;
                node.hts.clone()
            }
            None => Vec::new(),
        }
    }

    /// Number of distinct plan shapes in the graph.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of cached tables referenced.
    pub fn ht_count(&self) -> usize {
        self.nodes.values().map(|n| n.hts.len()).sum()
    }

    /// Total candidate lookups served (statistics for experiments).
    pub fn lookup_count(&self) -> u64 {
        self.nodes.values().map(|n| n.lookups).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hashstash_plan::{HtKind, Interval, JoinEdge, PredBox, Region};
    use hashstash_types::Value;
    use std::sync::Arc;

    fn fp(lo: i64, hi: i64) -> HtFingerprint {
        HtFingerprint {
            kind: HtKind::JoinBuild,
            tables: ["customer", "orders"]
                .iter()
                .map(|s| Arc::from(*s))
                .collect(),
            edges: vec![JoinEdge::new(
                "customer",
                "customer.c_custkey",
                "orders",
                "orders.o_custkey",
            )],
            region: Region::from_box(PredBox::all().with(
                "customer.c_age",
                Interval::closed(Value::Int(lo), Value::Int(hi)),
            )),
            key_attrs: vec![Arc::from("customer.c_custkey")],
            payload_attrs: vec![Arc::from("customer.c_age")],
            aggregates: Vec::new(),
            tagged: false,
        }
    }

    #[test]
    fn same_shape_merges_into_one_node() {
        let mut g = RecycleGraph::new();
        g.add(&fp(0, 10), HtId(1));
        g.add(&fp(20, 30), HtId(2));
        assert_eq!(g.node_count(), 1, "same shape ⇒ one node");
        assert_eq!(g.ht_count(), 2);
        let cands = g.candidates(&fp(5, 6));
        assert_eq!(cands, vec![HtId(1), HtId(2)]);
        assert_eq!(g.lookup_count(), 1);
    }

    #[test]
    fn different_shape_different_node() {
        let mut g = RecycleGraph::new();
        g.add(&fp(0, 10), HtId(1));
        let mut agg = fp(0, 10);
        agg.kind = HtKind::Aggregate;
        g.add(&agg, HtId(2));
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.candidates(&fp(0, 10)), vec![HtId(1)]);
        assert_eq!(g.candidates(&agg), vec![HtId(2)]);
    }

    #[test]
    fn remove_cleans_up_empty_nodes() {
        let mut g = RecycleGraph::new();
        g.add(&fp(0, 10), HtId(1));
        g.remove(&fp(0, 10), HtId(1));
        assert_eq!(g.node_count(), 0);
        assert!(g.candidates(&fp(0, 10)).is_empty());
    }

    #[test]
    fn edge_order_does_not_matter() {
        let mut g = RecycleGraph::new();
        let mut a = fp(0, 10);
        a.edges = vec![
            JoinEdge::new(
                "customer",
                "customer.c_custkey",
                "orders",
                "orders.o_custkey",
            ),
            JoinEdge::new(
                "orders",
                "orders.o_orderkey",
                "lineitem",
                "lineitem.l_orderkey",
            ),
        ];
        a.tables.insert(Arc::from("lineitem"));
        let mut b = a.clone();
        b.edges.reverse();
        g.add(&a, HtId(1));
        g.add(&b, HtId(2));
        assert_eq!(g.node_count(), 1);
    }
}
