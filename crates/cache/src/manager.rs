//! The hash-table cache and its garbage collector.
//!
//! # Concurrency model
//!
//! The manager is sharded by the *shape key* of each table's fingerprint
//! (operator kind, base tables, join edges, hash keys — the recycle-graph
//! bucketing): every shard owns an independent mutex over its entry map and
//! recycle-graph slice, so sessions touching unrelated plan shapes never
//! contend. The memory budget and all statistics are process-wide atomics
//! shared across shards.
//!
//! Cached tables are stored as `Arc<StoredHt>` handles:
//!
//! * [`HtManager::checkout`] — *shared* checkout for read-only reuse (exact
//!   and subsuming): clones the handle, so any number of queries can probe
//!   the same table concurrently. No lock is held while the table is in use.
//! * [`HtManager::checkout_mut`] — *exclusive* checkout for mutating reuse
//!   (partial/overlapping delta insertion, shared-plan re-tagging). Only one
//!   writer per table at a time — the paper's single-reuser rule (§2.2) is
//!   enforced exactly where mutation happens. Writers copy-on-write via
//!   [`Arc::make_mut`], so concurrent readers keep probing their immutable
//!   snapshot; the new version is published at [`CheckedOut::checkin`].
//!
//! Both checkouts return an RAII [`CheckedOut`] guard: dropping it (error
//! return, panic, or plain completion of a read-only reuse) releases the
//! table back to the cache, so an executor error path can never strand an
//! entry as permanently checked out.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use hashstash_types::{HsError, HtId, Result, Schema};

use hashstash_plan::HtFingerprint;

use crate::payload::StoredHt;
use crate::recycle::{RecycleGraph, ShapeKey};

/// Eviction policy for the coarse-grained garbage collector.
///
/// The paper ships LRU (§5); LFU and benefit-weighted eviction are provided
/// for the ablation experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Evict the table with the oldest last-access timestamp (paper §5).
    #[default]
    Lru,
    /// Evict the least frequently reused table.
    Lfu,
    /// Evict the table with the lowest reuse-per-byte density — large,
    /// rarely reused tables go first.
    BenefitWeighted,
}

/// Garbage-collector configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct GcConfig {
    /// Memory budget for all cached tables; `None` disables eviction
    /// (the paper's "wo GC" mode). The budget is shared across shards.
    pub budget_bytes: Option<usize>,
    /// Which table to evict when over budget.
    pub policy: EvictionPolicy,
    /// Enable the fine-grained (per-entry) bookkeeping mode the paper
    /// implemented and then disabled for its overhead (§5). When on, every
    /// checkout re-stamps all entries of the table — the monitoring cost
    /// shows up in the GC overhead experiment.
    pub fine_grained: bool,
}

/// Aggregate cache statistics (drives the paper's Figure 7b table).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CacheStats {
    /// Hash tables ever published into the cache.
    pub publishes: u64,
    /// Publish calls deduplicated onto an existing identical-lineage entry
    /// (e.g. re-publishes from re-planned retries). `publishes +
    /// publish_dedups` equals the number of publish calls.
    pub publish_dedups: u64,
    /// Checkouts for reuse (shared and exclusive).
    pub reuses: u64,
    /// Tables evicted by the GC.
    pub evictions: u64,
    /// Candidate lookups served.
    pub candidate_lookups: u64,
    /// Current footprint in bytes.
    pub bytes: usize,
    /// Current number of cached tables.
    pub entries: usize,
    /// High-water mark of the footprint.
    pub peak_bytes: usize,
}

impl CacheStats {
    /// The paper's "hit ratio": average number of reuses per cached element.
    pub fn hit_ratio(&self) -> f64 {
        if self.publishes == 0 {
            0.0
        } else {
            self.reuses as f64 / self.publishes as f64
        }
    }
}

#[derive(Debug)]
struct CacheEntry {
    fingerprint: HtFingerprint,
    schema: Schema,
    /// The shared table handle. Readers clone it; writers replace it at
    /// check-in (copy-on-write).
    ht: Arc<StoredHt>,
    bytes: usize,
    last_used: u64,
    use_count: u64,
    /// Outstanding shared (read-only) checkouts.
    readers: u32,
    /// Whether an exclusive (mutating) checkout is outstanding.
    writer: bool,
    /// Fine-grained mode: one timestamp per arena slot.
    entry_stamps: Option<Vec<u64>>,
}

impl CacheEntry {
    /// Pinned entries are never evicted and never dropped.
    fn pinned(&self) -> bool {
        self.readers > 0 || self.writer
    }
}

/// Lineage validation applied inside a checkout, before any bookkeeping.
#[derive(Debug, Clone, Copy)]
enum RegionCheck<'r> {
    /// No validation (plain checkout by id).
    None,
    /// The lineage must still equal the planned region (mutating reuse:
    /// the delta was computed against it, so any drift invalidates it).
    Eq(&'r hashstash_plan::Region),
    /// The lineage must still cover the request region (read-only reuse:
    /// concurrent widening is tolerated and compensated by the executor).
    Covers(&'r hashstash_plan::Region),
}

/// How a [`CheckedOut`] guard holds its table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CheckoutMode {
    /// Read-only handle clone; any number may coexist.
    Shared,
    /// Mutating copy-on-write checkout; at most one per table.
    Exclusive,
}

/// An RAII guard over a cached table checked out by one query.
///
/// Shared guards ([`HtManager::checkout`]) give read-only access through
/// [`CheckedOut::table`]. Exclusive guards ([`HtManager::checkout_mut`])
/// additionally allow [`CheckedOut::table_mut`] (copy-on-write) and publish
/// their new version — typically with a widened `fingerprint` — via
/// [`CheckedOut::checkin`].
///
/// Dropping a guard without checking in releases the pin: a shared guard
/// simply decrements the reader count, an exclusive guard abandons its
/// private copy and leaves the cached version untouched. Either way the
/// entry stays available and correctly accounted — error paths and panics
/// cannot leak a checked-out table.
#[derive(Debug)]
pub struct CheckedOut<'m> {
    mgr: &'m HtManager,
    /// Identity in the cache.
    pub id: HtId,
    /// Lineage at checkout time. Mutating reuses (partial/overlapping)
    /// widen the region before [`CheckedOut::checkin`].
    pub fingerprint: HtFingerprint,
    /// Payload schema (qualified attribute names → types).
    pub schema: Schema,
    ht: Arc<StoredHt>,
    mode: CheckoutMode,
    active: bool,
}

impl CheckedOut<'_> {
    /// Read-only view of the table.
    pub fn table(&self) -> &StoredHt {
        &self.ht
    }

    /// Whether this guard may mutate the table.
    pub fn is_exclusive(&self) -> bool {
        self.mode == CheckoutMode::Exclusive
    }

    /// Mutable access via copy-on-write. Only exclusive guards may mutate;
    /// concurrent readers keep their pre-mutation snapshot.
    ///
    /// Note the cost: because the cache entry keeps its own handle, the
    /// first `table_mut` call always copies the table. That copy is the
    /// deliberate price of abandon-on-drop semantics (an executor error
    /// after partial mutation leaves the cached version pristine) and of
    /// letting readers keep probing during the mutation; the cost model
    /// does not yet charge it to partial reuse (see ROADMAP).
    pub fn table_mut(&mut self) -> Result<&mut StoredHt> {
        if self.mode != CheckoutMode::Exclusive {
            return Err(HsError::CacheError(format!(
                "{} checked out shared (read-only); use checkout_mut to mutate",
                self.id
            )));
        }
        Ok(Arc::make_mut(&mut self.ht))
    }

    /// A cheap owned handle on the current version of the table (used by
    /// shared plans that check in early and keep reading).
    pub fn snapshot(&self) -> Arc<StoredHt> {
        Arc::clone(&self.ht)
    }

    /// The common epilogue of a mutating (delta) reuse: widen the lineage
    /// region by the requesting operator's region, publish the new version,
    /// and hand back an immutable snapshot so the caller can keep reading
    /// (probing, output production) without holding the writer slot.
    pub fn checkin_widened(
        mut self,
        request_region: &hashstash_plan::Region,
    ) -> Result<Arc<StoredHt>> {
        self.fingerprint.region = self.fingerprint.region.union(request_region);
        let snapshot = self.snapshot();
        self.checkin()?;
        Ok(snapshot)
    }

    /// Publish this guard's (possibly mutated) table version and updated
    /// `fingerprint`/`schema` back to the cache. A no-op release for shared
    /// guards, which cannot have changed anything.
    pub fn checkin(mut self) -> Result<()> {
        self.active = false;
        match self.mode {
            CheckoutMode::Shared => {
                self.mgr.release(self.id, self.mode);
                Ok(())
            }
            CheckoutMode::Exclusive => self.mgr.commit_checkin(
                self.id,
                self.fingerprint.clone(),
                self.schema.clone(),
                Arc::clone(&self.ht),
            ),
        }
    }
}

impl Drop for CheckedOut<'_> {
    fn drop(&mut self) {
        if self.active {
            self.mgr.release(self.id, self.mode);
        }
    }
}

/// Candidate description handed to the optimizer for costing.
#[derive(Debug, Clone)]
pub struct Candidate {
    pub id: HtId,
    pub fingerprint: HtFingerprint,
    pub schema: Schema,
    /// Entries, distinct keys, width, bytes — the statistics the cost model
    /// consumes.
    pub entries: usize,
    pub distinct_keys: usize,
    pub tuple_width: usize,
    pub bytes: usize,
}

/// Snapshot of the fields eviction policies compare, so the victim search
/// can scan shards one at a time without holding several locks.
#[derive(Debug, Clone, Copy)]
struct VictimKey {
    last_used: u64,
    use_count: u64,
    bytes: usize,
}

impl VictimKey {
    fn of(e: &CacheEntry) -> Self {
        VictimKey {
            last_used: e.last_used,
            use_count: e.use_count,
            bytes: e.bytes,
        }
    }

    fn better_victim(&self, other: &VictimKey, policy: EvictionPolicy) -> bool {
        match policy {
            EvictionPolicy::Lru => self.last_used < other.last_used,
            EvictionPolicy::Lfu => {
                (self.use_count, self.last_used) < (other.use_count, other.last_used)
            }
            EvictionPolicy::BenefitWeighted => {
                let da = (self.use_count + 1) as f64 / self.bytes.max(1) as f64;
                let db = (other.use_count + 1) as f64 / other.bytes.max(1) as f64;
                da < db || (da == db && self.last_used < other.last_used)
            }
        }
    }
}

#[derive(Debug, Default)]
struct ShardState {
    entries: HashMap<HtId, CacheEntry>,
    recycle: RecycleGraph,
}

/// Default shard count: enough to keep 8-way session fan-out off a single
/// lock without bloating tiny test caches.
pub const DEFAULT_SHARDS: usize = 8;

/// The Hash Table Manager: a sharded, concurrently accessible cache.
///
/// All methods take `&self`; interior locking is per shard. See the module
/// docs for the checkout/checkin concurrency model.
#[derive(Debug)]
pub struct HtManager {
    shards: Vec<Mutex<ShardState>>,
    gc: Mutex<GcConfig>,
    next_id: AtomicU64,
    clock: AtomicU64,
    publishes: AtomicU64,
    publish_dedups: AtomicU64,
    reuses: AtomicU64,
    evictions: AtomicU64,
    candidate_lookups: AtomicU64,
    bytes: AtomicUsize,
    entries: AtomicUsize,
    peak_bytes: AtomicUsize,
}

impl HtManager {
    /// Create a manager with the given GC configuration and
    /// [`DEFAULT_SHARDS`] shards.
    pub fn new(gc: GcConfig) -> Self {
        HtManager::with_shards(gc, DEFAULT_SHARDS)
    }

    /// Create a manager with an explicit shard count (≥ 1).
    pub fn with_shards(gc: GcConfig, shards: usize) -> Self {
        let shards = shards.max(1);
        HtManager {
            shards: (0..shards)
                .map(|_| Mutex::new(ShardState::default()))
                .collect(),
            gc: Mutex::new(gc),
            next_id: AtomicU64::new(1),
            clock: AtomicU64::new(0),
            publishes: AtomicU64::new(0),
            publish_dedups: AtomicU64::new(0),
            reuses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            candidate_lookups: AtomicU64::new(0),
            bytes: AtomicUsize::new(0),
            entries: AtomicUsize::new(0),
            peak_bytes: AtomicUsize::new(0),
        }
    }

    /// Manager with unlimited memory (GC off).
    pub fn unbounded() -> Self {
        HtManager::new(GcConfig::default())
    }

    /// Number of independent shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn gc(&self) -> GcConfig {
        *self.gc.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_shard(&self, idx: usize) -> MutexGuard<'_, ShardState> {
        self.shards[idx]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Shard owning tables of this fingerprint's shape (and the shape's
    /// recycle-graph slice).
    fn shard_of_shape(&self, fp: &HtFingerprint) -> usize {
        let mut h = DefaultHasher::new();
        ShapeKey::of(fp).hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    /// Shard an id was homed in at publish time (encoded in the id).
    fn shard_of_id(&self, id: HtId) -> usize {
        (id.0 as usize) % self.shards.len()
    }

    fn add_bytes(&self, delta: usize) {
        let now = self.bytes.fetch_add(delta, Ordering::Relaxed) + delta;
        self.peak_bytes.fetch_max(now, Ordering::Relaxed);
    }

    fn sub_bytes(&self, delta: usize) {
        self.bytes.fetch_sub(delta, Ordering::Relaxed);
    }

    /// Publish a hash table materialized by a pipeline breaker. Returns its
    /// cache id. May trigger evictions to respect the memory budget.
    ///
    /// Publishing a lineage that is already cached (same shape, payload and
    /// set-equal region — e.g. a re-planned retry re-running an operator
    /// whose first attempt's publish survived the abort) is deduplicated:
    /// the existing entry is kept (base tables are immutable, so identical
    /// lineage means identical content), its LRU stamp refreshed, and its
    /// id returned without touching the footprint or the publish counter.
    pub fn publish(&self, fingerprint: HtFingerprint, schema: Schema, ht: StoredHt) -> HtId {
        let shard = self.shard_of_shape(&fingerprint);
        let now = self.tick();
        let bytes = ht.logical_bytes();
        let entry_stamps = self.gc().fine_grained.then(|| vec![now; ht.len()]);
        let id = {
            let mut state = self.lock_shard(shard);
            let duplicate = state
                .recycle
                .candidates(&fingerprint)
                .into_iter()
                .find(|id| {
                    state
                        .entries
                        .get(id)
                        .is_some_and(|e| !e.writer && e.fingerprint.same_lineage(&fingerprint))
                });
            if let Some(id) = duplicate {
                let entry = state.entries.get_mut(&id).expect("checked above");
                entry.last_used = now;
                self.publish_dedups.fetch_add(1, Ordering::Relaxed);
                return id;
            }
            // Encode the home shard in the id so id-only operations
            // (checkout, checkin, drop) find the right shard without a
            // global index.
            let raw = self.next_id.fetch_add(1, Ordering::Relaxed);
            let id = HtId(raw * self.shards.len() as u64 + shard as u64);
            state.recycle.add(&fingerprint, id);
            state.entries.insert(
                id,
                CacheEntry {
                    fingerprint,
                    schema,
                    ht: Arc::new(ht),
                    bytes,
                    last_used: now,
                    use_count: 0,
                    readers: 0,
                    writer: false,
                    entry_stamps,
                },
            );
            // Count the bytes while still holding the shard lock: the entry
            // is evictable the moment the lock drops, and a concurrent
            // eviction must never subtract bytes the counter doesn't hold
            // yet (usize underflow).
            self.entries.fetch_add(1, Ordering::Relaxed);
            self.add_bytes(bytes);
            id
        };
        self.publishes.fetch_add(1, Ordering::Relaxed);
        self.enforce_budget();
        id
    }

    /// Candidate tables whose producing sub-plan matches the request's
    /// shape. Tables with an outstanding *mutating* checkout are excluded
    /// (single-reuser rule for writers); tables held by readers remain
    /// candidates — shared read-only reuse is the point of the Arc design.
    pub fn candidates(&self, request: &HtFingerprint) -> Vec<Candidate> {
        self.candidate_lookups.fetch_add(1, Ordering::Relaxed);
        fn push_candidate(out: &mut Vec<Candidate>, state: &ShardState, id: HtId) {
            let Some(e) = state.entries.get(&id) else {
                return; // evicted between graph probe and entry lookup
            };
            if e.writer {
                return;
            }
            out.push(Candidate {
                id,
                fingerprint: e.fingerprint.clone(),
                schema: e.schema.clone(),
                entries: e.ht.len(),
                distinct_keys: e.ht.distinct_keys(),
                tuple_width: e.ht.tuple_width(),
                bytes: e.ht.logical_bytes(),
            });
        }

        let shape_shard = self.shard_of_shape(request);
        let mut out = Vec::new();
        // Entries of this shape home in the shape's shard, so serve them
        // under the single lock we already hold for the graph probe. Only
        // ids re-homed by a shape-changing checkin (not produced by any
        // current code path) need another shard's lock.
        let foreign: Vec<HtId> = {
            let mut state = self.lock_shard(shape_shard);
            let ids = state.recycle.candidates(request);
            let mut foreign = Vec::new();
            for id in ids {
                if self.shard_of_id(id) == shape_shard {
                    push_candidate(&mut out, &state, id);
                } else {
                    foreign.push(id);
                }
            }
            foreign
        };
        for id in foreign {
            let state = self.lock_shard(self.shard_of_id(id));
            push_candidate(&mut out, &state, id);
        }
        out
    }

    fn checkout_inner(
        &self,
        id: HtId,
        mode: CheckoutMode,
        check: RegionCheck<'_>,
    ) -> Result<CheckedOut<'_>> {
        let now = self.tick();
        let fine = self.gc().fine_grained;
        let mut state = self.lock_shard(self.shard_of_id(id));
        let entry = state
            .entries
            .get_mut(&id)
            .ok_or_else(|| HsError::CacheError(format!("{id} not in cache")))?;
        // Lineage validation happens *before* any bookkeeping: a failed
        // (stale-plan) checkout must not inflate use counts, LRU stamps or
        // the reuse statistics.
        match check {
            RegionCheck::None => {}
            RegionCheck::Eq(expect) => {
                if !entry.fingerprint.region.set_eq(expect) {
                    return Err(HsError::CacheError(format!(
                        "{id} lineage changed since planning"
                    )));
                }
            }
            RegionCheck::Covers(request) => {
                if !request.is_subset(&entry.fingerprint.region) {
                    return Err(HsError::CacheError(format!(
                        "{id} lineage no longer covers the requested region"
                    )));
                }
            }
        }
        match mode {
            CheckoutMode::Shared => entry.readers += 1,
            CheckoutMode::Exclusive => {
                if entry.writer {
                    return Err(HsError::CacheError(format!(
                        "{id} already checked out for writing"
                    )));
                }
                entry.writer = true;
            }
        }
        entry.last_used = now;
        entry.use_count += 1;
        if fine {
            // Fine-grained bookkeeping: re-stamp every entry. This is the
            // per-entry monitoring overhead the paper measured and rejected.
            entry.entry_stamps = Some(vec![now; entry.ht.len()]);
        }
        self.reuses.fetch_add(1, Ordering::Relaxed);
        Ok(CheckedOut {
            mgr: self,
            id,
            fingerprint: entry.fingerprint.clone(),
            schema: entry.schema.clone(),
            ht: Arc::clone(&entry.ht),
            mode,
            active: true,
        })
    }

    /// Check a table out for shared, read-only reuse (exact and subsuming
    /// matches). Any number of shared checkouts may coexist.
    pub fn checkout(&self, id: HtId) -> Result<CheckedOut<'_>> {
        self.checkout_inner(id, CheckoutMode::Shared, RegionCheck::None)
    }

    /// [`HtManager::checkout`], but failing — without touching use counts
    /// or LRU stamps — unless the table's lineage region still equals
    /// `expect_region`. Sessions use this to detect that a concurrent
    /// partial reuse widened the table after their plan classified it.
    pub fn checkout_expecting(
        &self,
        id: HtId,
        expect_region: &hashstash_plan::Region,
    ) -> Result<CheckedOut<'_>> {
        self.checkout_inner(id, CheckoutMode::Shared, RegionCheck::Eq(expect_region))
    }

    /// Shared checkout validating that the table's lineage still **covers**
    /// `request_region`, rather than equalling the planned region exactly.
    /// Read-only (exact/subsuming) reuse uses this so a concurrent lineage
    /// widening — which only *adds* tuples — downgrades to an in-place
    /// subsuming reuse (the executor post-filters to the request region)
    /// instead of forcing a full re-plan. The guard's `fingerprint` carries
    /// the lineage observed at checkout, letting the caller detect whether
    /// compensation is needed.
    pub fn checkout_covering(
        &self,
        id: HtId,
        request_region: &hashstash_plan::Region,
    ) -> Result<CheckedOut<'_>> {
        self.checkout_inner(
            id,
            CheckoutMode::Shared,
            RegionCheck::Covers(request_region),
        )
    }

    /// Check a table out for mutating reuse (partial/overlapping delta
    /// insertion, shared-plan re-tagging). At most one mutating checkout per
    /// table — the paper's single-reuser rule, enforced only where mutation
    /// actually happens. Mutation is copy-on-write: concurrent readers keep
    /// their snapshot until [`CheckedOut::checkin`] publishes the new
    /// version.
    pub fn checkout_mut(&self, id: HtId) -> Result<CheckedOut<'_>> {
        self.checkout_inner(id, CheckoutMode::Exclusive, RegionCheck::None)
    }

    /// [`HtManager::checkout_mut`] with the same lineage pre-validation as
    /// [`HtManager::checkout_expecting`]. Mutating reuse keeps the strict
    /// equality check: its delta scan was computed against the planned
    /// region, so any widening makes the delta wrong and must re-plan.
    pub fn checkout_mut_expecting(
        &self,
        id: HtId,
        expect_region: &hashstash_plan::Region,
    ) -> Result<CheckedOut<'_>> {
        self.checkout_inner(id, CheckoutMode::Exclusive, RegionCheck::Eq(expect_region))
    }

    /// Release a pin without publishing changes (guard drop).
    fn release(&self, id: HtId, mode: CheckoutMode) {
        let mut state = self.lock_shard(self.shard_of_id(id));
        if let Some(entry) = state.entries.get_mut(&id) {
            match mode {
                CheckoutMode::Shared => entry.readers = entry.readers.saturating_sub(1),
                CheckoutMode::Exclusive => entry.writer = false,
            }
        }
    }

    /// Publish an exclusive guard's new table version (paper Figure 1,
    /// step 4). The fingerprint may have changed (partial reuse widens the
    /// region); the recycle graph is updated if the shape changed.
    fn commit_checkin(
        &self,
        id: HtId,
        fingerprint: HtFingerprint,
        schema: Schema,
        ht: Arc<StoredHt>,
    ) -> Result<()> {
        let now = self.tick();
        let fine = self.gc().fine_grained;
        let home = self.shard_of_id(id);
        let shape_change = {
            let mut state = self.lock_shard(home);
            let entry = state
                .entries
                .get_mut(&id)
                .ok_or_else(|| HsError::CacheError(format!("{id} not in cache")))?;
            debug_assert!(entry.writer, "checkin without an exclusive checkout");
            let shape_change =
                (!entry.fingerprint.same_shape(&fingerprint)).then(|| entry.fingerprint.clone());
            let old_bytes = entry.bytes;
            let new_bytes = ht.logical_bytes();
            entry.bytes = new_bytes;
            if fine {
                entry.entry_stamps = Some(vec![now; ht.len()]);
            }
            entry.fingerprint = fingerprint.clone();
            entry.schema = schema;
            entry.ht = ht;
            entry.last_used = now;
            entry.writer = false;
            // Byte delta while still holding the shard lock: once it drops
            // the entry is evictable, and a concurrent eviction subtracting
            // the new size against a counter still holding the old one
            // would underflow.
            if new_bytes >= old_bytes {
                self.add_bytes(new_bytes - old_bytes);
            } else {
                self.sub_bytes(old_bytes - new_bytes);
            }
            shape_change
        };
        // Move the recycle registration when the shape changed (one shard
        // lock at a time; candidate lookups tolerate the brief window by
        // re-validating against the entry).
        if let Some(old_fp) = shape_change {
            self.lock_shard(self.shard_of_shape(&old_fp))
                .recycle
                .remove(&old_fp, id);
            self.lock_shard(self.shard_of_shape(&fingerprint))
                .recycle
                .add(&fingerprint, id);
        }
        self.enforce_budget();
        Ok(())
    }

    /// Drop a table outright. Fails while the table is checked out.
    pub fn drop_table(&self, id: HtId) -> Result<()> {
        let entry = {
            let mut state = self.lock_shard(self.shard_of_id(id));
            match state.entries.get(&id) {
                None => return Err(HsError::CacheError(format!("{id} not in cache"))),
                Some(e) if e.pinned() => {
                    return Err(HsError::CacheError(format!("{id} is checked out")))
                }
                Some(_) => state.entries.remove(&id).expect("entry exists"),
            }
        };
        self.lock_shard(self.shard_of_shape(&entry.fingerprint))
            .recycle
            .remove(&entry.fingerprint, id);
        self.entries.fetch_sub(1, Ordering::Relaxed);
        self.sub_bytes(entry.bytes);
        Ok(())
    }

    /// Evict tables until the footprint drops below the budget. Checked-out
    /// tables (readers or writer) are never evicted. Returns the number of
    /// evictions.
    pub fn enforce_budget(&self) -> usize {
        let gc = self.gc();
        let Some(budget) = gc.budget_bytes else {
            return 0;
        };
        let mut evicted = 0;
        while self.bytes.load(Ordering::Relaxed) > budget {
            // Pick the policy's best victim across all shards, locking one
            // shard at a time.
            let mut victim: Option<(usize, HtId, VictimKey)> = None;
            for (si, _) in self.shards.iter().enumerate() {
                let state = self.lock_shard(si);
                for (&id, e) in &state.entries {
                    if e.pinned() {
                        continue;
                    }
                    let key = VictimKey::of(e);
                    if victim
                        .as_ref()
                        .is_none_or(|(_, _, best)| key.better_victim(best, gc.policy))
                    {
                        victim = Some((si, id, key));
                    }
                }
            }
            let Some((si, id, _)) = victim else { break };
            // Re-lock and re-validate: the victim may have been pinned or
            // removed by a concurrent session since the scan.
            let removed = {
                let mut state = self.lock_shard(si);
                match state.entries.get(&id) {
                    Some(e) if !e.pinned() => state.entries.remove(&id),
                    _ => None,
                }
            };
            if let Some(entry) = removed {
                self.lock_shard(self.shard_of_shape(&entry.fingerprint))
                    .recycle
                    .remove(&entry.fingerprint, id);
                self.entries.fetch_sub(1, Ordering::Relaxed);
                self.sub_bytes(entry.bytes);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                evicted += 1;
            }
        }
        evicted
    }

    /// Fine-grained GC: drop the oldest `1 - keep_fraction` of a table's
    /// entries (requires `fine_grained` mode). Returns entries removed.
    /// Copy-on-write: concurrent readers keep the unpruned snapshot.
    pub fn prune_entries(&self, id: HtId, keep_fraction: f64) -> Result<usize> {
        if !self.gc().fine_grained {
            return Err(HsError::Config(
                "prune_entries requires fine_grained GC mode".into(),
            ));
        }
        let now = self.tick();
        let (before, after) = {
            let mut state = self.lock_shard(self.shard_of_id(id));
            let entry = state
                .entries
                .get_mut(&id)
                .ok_or_else(|| HsError::CacheError(format!("{id} not in cache")))?;
            if entry.writer {
                return Err(HsError::CacheError(format!("{id} checked out")));
            }
            let stamps = entry.entry_stamps.clone().unwrap_or_default();
            let before = entry.ht.len();
            let keep = ((before as f64) * keep_fraction).ceil() as usize;
            if keep >= before {
                return Ok(0);
            }
            // Rank entries by (stamp, arena position); keep the newest
            // `keep`. Position breaks ties so a uniform-stamp table still
            // prunes.
            let mut order: Vec<usize> = (0..before).collect();
            order.sort_unstable_by_key(|&i| (stamps.get(i).copied().unwrap_or(0), i));
            let mut keep_mask = vec![false; before];
            for &i in order.iter().rev().take(keep) {
                keep_mask[i] = true;
            }
            let mut idx = 0usize;
            let ht = Arc::make_mut(&mut entry.ht);
            match ht {
                StoredHt::Join(t) | StoredHt::SharedGroup(t) => t.retain(|_, _| {
                    let keep_it = keep_mask.get(idx).copied().unwrap_or(false);
                    idx += 1;
                    keep_it
                }),
                StoredHt::Agg(t) => t.retain(|_, _| {
                    let keep_it = keep_mask.get(idx).copied().unwrap_or(false);
                    idx += 1;
                    keep_it
                }),
            }
            let after = ht.len();
            let old_bytes = entry.bytes;
            entry.bytes = entry.ht.logical_bytes();
            // Survivors get a *fresh* stamp: a later checkout always ticks
            // later than the prune, keeping per-entry timestamps monotone.
            entry.entry_stamps = Some(vec![now; after]);
            let new_bytes = entry.bytes;
            // Byte delta under the shard lock (see publish/commit_checkin:
            // a concurrent eviction must never see the entry's new size
            // before the counter does).
            if new_bytes >= old_bytes {
                self.add_bytes(new_bytes - old_bytes);
            } else {
                self.sub_bytes(old_bytes - new_bytes);
            }
            (before, after)
        };
        Ok(before - after)
    }

    /// Fine-grained per-slot timestamps of a table (`None` unless
    /// `fine_grained` mode stamped it). For tests and GC experiments.
    pub fn entry_stamps(&self, id: HtId) -> Result<Option<Vec<u64>>> {
        let state = self.lock_shard(self.shard_of_id(id));
        state
            .entries
            .get(&id)
            .map(|e| e.entry_stamps.clone())
            .ok_or_else(|| HsError::CacheError(format!("{id} not in cache")))
    }

    /// Aggregate statistics snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            publishes: self.publishes.load(Ordering::Relaxed),
            publish_dedups: self.publish_dedups.load(Ordering::Relaxed),
            reuses: self.reuses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            candidate_lookups: self.candidate_lookups.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            entries: self.entries.load(Ordering::Relaxed),
            peak_bytes: self.peak_bytes.load(Ordering::Relaxed),
        }
    }

    /// Recount footprint and entries directly from the shards (O(entries),
    /// takes every shard lock in turn). At quiesce this must equal
    /// [`CacheStats::bytes`]/[`CacheStats::entries`] — the concurrency
    /// stress tests assert exactly that.
    pub fn audit(&self) -> (usize, usize) {
        let mut bytes = 0;
        let mut entries = 0;
        for (si, _) in self.shards.iter().enumerate() {
            let state = self.lock_shard(si);
            entries += state.entries.len();
            bytes += state.entries.values().map(|e| e.bytes).sum::<usize>();
        }
        (bytes, entries)
    }

    /// Number of cached tables.
    pub fn len(&self) -> usize {
        self.entries.load(Ordering::Relaxed)
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether a given table is currently cached and not held by a writer
    /// (readers do not block availability).
    pub fn is_available(&self, id: HtId) -> bool {
        let state = self.lock_shard(self.shard_of_id(id));
        state.entries.get(&id).is_some_and(|e| !e.writer)
    }

    /// The GC configuration.
    pub fn gc_config(&self) -> GcConfig {
        self.gc()
    }

    /// Replace the GC configuration (budget changes take effect on the next
    /// publish/checkin).
    pub fn set_gc_config(&self, gc: GcConfig) {
        *self.gc.lock().unwrap_or_else(PoisonError::into_inner) = gc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::TaggedRow;
    use hashstash_hashtable::ExtendibleHashTable;
    use hashstash_plan::{HtKind, Interval, PredBox, Region};
    use hashstash_types::{DataType, Field, Row, Value};

    fn fp(lo: i64, hi: i64) -> HtFingerprint {
        HtFingerprint {
            kind: HtKind::JoinBuild,
            tables: std::iter::once(Arc::from("customer")).collect(),
            edges: vec![],
            region: Region::from_box(PredBox::all().with(
                "customer.c_age",
                Interval::closed(Value::Int(lo), Value::Int(hi)),
            )),
            key_attrs: vec![Arc::from("customer.c_custkey")],
            payload_attrs: vec![Arc::from("customer.c_age")],
            aggregates: Vec::new(),
            tagged: false,
        }
    }

    fn schema() -> Schema {
        Schema::new(vec![Field::new("customer.c_age", DataType::Int)])
    }

    fn table(n: usize) -> StoredHt {
        let mut ht = ExtendibleHashTable::new(8);
        for i in 0..n as u64 {
            ht.insert(i, TaggedRow::untagged(Row::new(vec![Value::Int(i as i64)])));
        }
        StoredHt::Join(ht)
    }

    #[test]
    fn publish_candidates_checkout_checkin() {
        let m = HtManager::unbounded();
        let id = m.publish(fp(0, 50), schema(), table(100));
        assert_eq!(m.len(), 1);
        let cands = m.candidates(&fp(0, 10));
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].id, id);
        assert_eq!(cands[0].entries, 100);

        // Shared checkouts coexist and keep the table available.
        let co = m.checkout(id).unwrap();
        let co2 = m.checkout(id).unwrap();
        assert!(m.is_available(id), "shared readers keep availability");
        assert_eq!(
            m.candidates(&fp(0, 10)).len(),
            1,
            "readers do not hide candidates"
        );
        assert_eq!(co.table().len(), co2.table().len());
        drop(co2);
        co.checkin().unwrap();
        assert!(m.is_available(id));
        assert_eq!(m.stats().reuses, 2);
        assert!((m.stats().hit_ratio() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn identical_lineage_publish_dedups() {
        let m = HtManager::unbounded();
        let a = m.publish(fp(0, 50), schema(), table(100));
        let bytes = m.stats().bytes;
        let b = m.publish(fp(0, 50), schema(), table(100));
        assert_eq!(a, b, "identical lineage maps onto the existing entry");
        assert_eq!(m.len(), 1);
        assert_eq!(m.stats().publishes, 1, "dedup does not inflate publishes");
        assert_eq!(m.stats().publish_dedups, 1);
        assert_eq!(m.stats().bytes, bytes, "dedup does not inflate footprint");
        assert_eq!(m.audit(), (bytes, 1));
        // A different region is a different lineage and gets its own entry.
        let c = m.publish(fp(0, 60), schema(), table(100));
        assert_ne!(a, c);
        assert_eq!(m.len(), 2);
        assert_eq!(m.stats().publishes, 2);
    }

    #[test]
    fn dedup_skips_writer_held_entries() {
        let m = HtManager::unbounded();
        let a = m.publish(fp(0, 50), schema(), table(10));
        let w = m.checkout_mut(a).unwrap();
        // The held entry's lineage is about to change at check-in, so a
        // concurrent identical publish must not alias onto it.
        let b = m.publish(fp(0, 50), schema(), table(10));
        assert_ne!(a, b);
        assert_eq!(m.len(), 2);
        drop(w);
    }

    #[test]
    fn checkout_covering_tolerates_concurrent_widening() {
        let m = HtManager::unbounded();
        let id = m.publish(fp(20, 30), schema(), table(10));
        let planned = fp(20, 30).region;
        // A concurrent partial reuse widens the lineage to [10, 30].
        let mut w = m.checkout_mut(id).unwrap();
        w.fingerprint.region = fp(10, 30).region;
        w.checkin().unwrap();
        // Strict (mutating-reuse) validation fails…
        assert!(m.checkout_expecting(id, &planned).is_err());
        // …but the covering checkout succeeds and reports the widened
        // lineage so the executor can compensate with a post-filter.
        let co = m.checkout_covering(id, &planned).unwrap();
        assert!(co.fingerprint.region.set_eq(&fp(10, 30).region));
        drop(co);
        // A request the lineage does not cover still fails.
        assert!(m.checkout_covering(id, &fp(0, 50).region).is_err());
    }

    #[test]
    fn exclusive_checkout_is_single_reuser() {
        let m = HtManager::unbounded();
        let id = m.publish(fp(0, 50), schema(), table(10));
        let w = m.checkout_mut(id).unwrap();
        assert!(!m.is_available(id), "writer blocks availability");
        assert!(
            m.candidates(&fp(0, 10)).is_empty(),
            "writer-held ⇒ no candidate"
        );
        assert!(m.checkout_mut(id).is_err(), "double mutating checkout");
        // Readers may still snapshot the pre-mutation version.
        let r = m.checkout(id).unwrap();
        assert_eq!(r.table().len(), 10);
        drop(w); // dropped without checkin: cached version untouched
        assert!(m.is_available(id));
        let again = m.checkout_mut(id).unwrap();
        assert_eq!(again.table().len(), 10);
    }

    #[test]
    fn dropped_guard_releases_instead_of_leaking() {
        let m = HtManager::unbounded();
        let id = m.publish(fp(0, 50), schema(), table(25));
        let bytes = m.stats().bytes;
        {
            let _w = m.checkout_mut(id).unwrap();
            // Simulated executor error: the guard is dropped here without
            // a checkin.
        }
        assert!(m.is_available(id), "entry recovered on guard drop");
        assert_eq!(m.candidates(&fp(0, 10)).len(), 1);
        assert_eq!(m.stats().bytes, bytes, "bytes still accounted");
        let (audit_bytes, audit_entries) = m.audit();
        assert_eq!(audit_bytes, bytes);
        assert_eq!(audit_entries, 1);
    }

    #[test]
    fn cow_mutation_preserves_reader_snapshots() {
        let m = HtManager::unbounded();
        let id = m.publish(fp(20, 30), schema(), table(10));
        let reader = m.checkout(id).unwrap();
        let mut writer = m.checkout_mut(id).unwrap();
        {
            let StoredHt::Join(t) = writer.table_mut().unwrap() else {
                panic!("join table")
            };
            for i in 100..110u64 {
                t.insert(i, TaggedRow::untagged(Row::new(vec![Value::Int(i as i64)])));
            }
        }
        writer.fingerprint.region = fp(10, 30).region;
        writer.checkin().unwrap();
        // The reader still sees the pre-mutation snapshot…
        assert_eq!(reader.table().len(), 10);
        // …while the cache serves the new version with widened lineage.
        let cands = m.candidates(&fp(10, 30));
        assert_eq!(cands[0].entries, 20);
        assert!(cands[0].fingerprint.region.set_eq(&fp(10, 30).region));
    }

    #[test]
    fn shared_guard_rejects_mutation() {
        let m = HtManager::unbounded();
        let id = m.publish(fp(0, 10), schema(), table(5));
        let mut r = m.checkout(id).unwrap();
        assert!(r.table_mut().is_err(), "shared checkout is read-only");
    }

    #[test]
    fn checkin_updates_region_after_partial_reuse() {
        let m = HtManager::unbounded();
        let id = m.publish(fp(20, 30), schema(), table(10));
        let mut co = m.checkout_mut(id).unwrap();
        // Simulate a partial reuse that widened the region to [10, 30].
        co.fingerprint.region = fp(10, 30).region;
        co.checkin().unwrap();
        let cands = m.candidates(&fp(10, 30));
        assert!(cands[0].fingerprint.region.set_eq(&fp(10, 30).region));
        let _ = id;
    }

    #[test]
    fn lru_eviction_under_budget() {
        let bytes_of = |n: usize| table(n).logical_bytes();
        let budget = bytes_of(100) * 2 + bytes_of(100) / 2;
        let m = HtManager::new(GcConfig {
            budget_bytes: Some(budget),
            policy: EvictionPolicy::Lru,
            fine_grained: false,
        });
        let a = m.publish(fp(0, 10), schema(), table(100));
        let b = m.publish(fp(20, 30), schema(), table(100));
        // Touch `a` so `b` becomes the LRU victim.
        let co = m.checkout(a).unwrap();
        co.checkin().unwrap();
        let _c = m.publish(fp(40, 50), schema(), table(100));
        assert_eq!(m.stats().evictions, 1);
        assert!(m.is_available(a), "recently used survives");
        assert!(!m.is_available(b), "LRU victim evicted");
    }

    #[test]
    fn lfu_eviction_prefers_rarely_used() {
        let m = HtManager::new(GcConfig {
            budget_bytes: Some(table(100).logical_bytes() * 2),
            policy: EvictionPolicy::Lfu,
            fine_grained: false,
        });
        let a = m.publish(fp(0, 10), schema(), table(100));
        let b = m.publish(fp(20, 30), schema(), table(100));
        for _ in 0..3 {
            let co = m.checkout(a).unwrap();
            co.checkin().unwrap();
        }
        // `b` has zero reuses; publishing a third table evicts it.
        let _c = m.publish(fp(40, 50), schema(), table(100));
        assert!(m.is_available(a));
        assert!(!m.is_available(b));
    }

    /// The checked-out-survival property, asserted unconditionally: a
    /// budget sized for exactly one table admits `b`; while `b` is pinned
    /// by a checkout, publishing `c` must evict `c` itself (the only
    /// unpinned entry), never the pinned `b`.
    #[test]
    fn checked_out_tables_survive_eviction() {
        let one_table = table(10).logical_bytes();
        let m = HtManager::new(GcConfig {
            budget_bytes: Some(one_table),
            policy: EvictionPolicy::Lru,
            fine_grained: false,
        });
        let b = m.publish(fp(0, 10), schema(), table(10));
        assert!(m.is_available(b), "budget admits exactly one table");

        // Shared pin: the squeeze must pick someone else.
        let co = m.checkout(b).unwrap();
        let c = m.publish(fp(20, 30), schema(), table(10));
        assert!(m.is_available(b), "reader-pinned table survives the GC");
        assert!(!m.is_available(c), "the unpinned newcomer was evicted");
        co.checkin().unwrap();

        // Exclusive pin: same property.
        let w = m.checkout_mut(b).unwrap();
        let d = m.publish(fp(40, 50), schema(), table(10));
        assert!(!m.is_available(d), "unpinned newcomer evicted again");
        drop(w);
        assert!(m.is_available(b), "writer-pinned table survived the GC");
        assert_eq!(m.len(), 1);
        assert!(m.stats().bytes <= one_table, "budget holds at quiesce");
    }

    #[test]
    fn budget_none_never_evicts() {
        let m = HtManager::unbounded();
        for i in 0..20 {
            m.publish(fp(i, i + 1), schema(), table(50));
        }
        assert_eq!(m.stats().evictions, 0);
        assert_eq!(m.len(), 20);
        assert!(m.stats().peak_bytes >= m.stats().bytes);
        let (bytes, entries) = m.audit();
        assert_eq!(bytes, m.stats().bytes);
        assert_eq!(entries, 20);
    }

    #[test]
    fn prune_entries_fine_grained() {
        let m = HtManager::new(GcConfig {
            budget_bytes: None,
            policy: EvictionPolicy::Lru,
            fine_grained: true,
        });
        let id = m.publish(fp(0, 10), schema(), table(100));
        let removed = m.prune_entries(id, 0.25).unwrap();
        assert!(removed >= 70, "kept ~25%, removed {removed}");
        let cands = m.candidates(&fp(0, 10));
        assert!(cands[0].entries <= 30);
    }

    /// Pruned survivors must carry a *fresh* timestamp so that a checkout
    /// right after the prune stamps strictly later — per-entry timestamps
    /// stay monotone (the pre-PR code re-used a stale clock value).
    #[test]
    fn prune_restamps_with_fresh_tick() {
        let m = HtManager::new(GcConfig {
            budget_bytes: None,
            policy: EvictionPolicy::Lru,
            fine_grained: true,
        });
        let id = m.publish(fp(0, 10), schema(), table(40));
        let publish_stamp = m.entry_stamps(id).unwrap().unwrap()[0];
        m.prune_entries(id, 0.5).unwrap();
        let after_prune = m.entry_stamps(id).unwrap().unwrap();
        assert!(!after_prune.is_empty());
        assert!(
            after_prune.iter().all(|&s| s > publish_stamp),
            "prune stamps ({:?}) must advance past the publish stamp {publish_stamp}",
            &after_prune[..1]
        );
        // A checkout after the prune must stamp strictly later still.
        let co = m.checkout(id).unwrap();
        co.checkin().unwrap();
        let after_checkout = m.entry_stamps(id).unwrap().unwrap();
        assert!(
            after_checkout.iter().all(|&s| s > after_prune[0]),
            "checkout stamps must be monotone over prune stamps"
        );
    }

    #[test]
    fn prune_requires_fine_grained_mode() {
        let m = HtManager::unbounded();
        let id = m.publish(fp(0, 10), schema(), table(10));
        assert!(matches!(m.prune_entries(id, 0.5), Err(HsError::Config(_))));
    }

    #[test]
    fn drop_table_removes_from_recycle_graph() {
        let m = HtManager::unbounded();
        let id = m.publish(fp(0, 10), schema(), table(10));
        m.drop_table(id).unwrap();
        assert!(m.candidates(&fp(0, 10)).is_empty());
        assert!(m.drop_table(id).is_err());
        let (bytes, entries) = m.audit();
        assert_eq!((bytes, entries), (0, 0));
        assert_eq!(m.stats().bytes, 0);
    }

    #[test]
    fn drop_table_refuses_pinned_entries() {
        let m = HtManager::unbounded();
        let id = m.publish(fp(0, 10), schema(), table(10));
        let co = m.checkout(id).unwrap();
        assert!(m.drop_table(id).is_err(), "reader pin blocks drop");
        drop(co);
        assert!(m.drop_table(id).is_ok());
    }

    #[test]
    fn ids_spread_across_shards_by_shape() {
        let m = HtManager::with_shards(GcConfig::default(), 4);
        // Different shapes (different key attrs) land on (usually)
        // different shards; same shape stays on one shard.
        let a1 = m.publish(fp(0, 10), schema(), table(5));
        let a2 = m.publish(fp(20, 30), schema(), table(5));
        assert_eq!(
            a1.0 % 4,
            a2.0 % 4,
            "same shape ⇒ same home shard (region differences are irrelevant)"
        );
        assert_eq!(m.len(), 2);
        assert_eq!(m.candidates(&fp(0, 50)).len(), 2);
    }
}
