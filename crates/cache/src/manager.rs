//! The hash-table cache and its garbage collector.

use std::collections::HashMap;

use hashstash_types::{HsError, HtId, Result, Schema};

use hashstash_plan::HtFingerprint;

use crate::payload::StoredHt;
use crate::recycle::RecycleGraph;

/// Eviction policy for the coarse-grained garbage collector.
///
/// The paper ships LRU (§5); LFU and benefit-weighted eviction are provided
/// for the ablation experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Evict the table with the oldest last-access timestamp (paper §5).
    #[default]
    Lru,
    /// Evict the least frequently reused table.
    Lfu,
    /// Evict the table with the lowest reuse-per-byte density — large,
    /// rarely reused tables go first.
    BenefitWeighted,
}

/// Garbage-collector configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct GcConfig {
    /// Memory budget for all cached tables; `None` disables eviction
    /// (the paper's "wo GC" mode).
    pub budget_bytes: Option<usize>,
    /// Which table to evict when over budget.
    pub policy: EvictionPolicy,
    /// Enable the fine-grained (per-entry) bookkeeping mode the paper
    /// implemented and then disabled for its overhead (§5). When on, every
    /// checkout re-stamps all entries of the table — the monitoring cost
    /// shows up in the GC overhead experiment.
    pub fine_grained: bool,
}

/// Aggregate cache statistics (drives the paper's Figure 7b table).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CacheStats {
    /// Hash tables ever published into the cache.
    pub publishes: u64,
    /// Checkouts for reuse.
    pub reuses: u64,
    /// Tables evicted by the GC.
    pub evictions: u64,
    /// Candidate lookups served.
    pub candidate_lookups: u64,
    /// Current footprint in bytes (checked-out tables count at their size
    /// when last seen).
    pub bytes: usize,
    /// Current number of cached tables.
    pub entries: usize,
    /// High-water mark of the footprint.
    pub peak_bytes: usize,
}

impl CacheStats {
    /// The paper's "hit ratio": average number of reuses per cached element.
    pub fn hit_ratio(&self) -> f64 {
        if self.publishes == 0 {
            0.0
        } else {
            self.reuses as f64 / self.publishes as f64
        }
    }
}

#[derive(Debug)]
struct CacheEntry {
    fingerprint: HtFingerprint,
    schema: Schema,
    /// `None` while checked out by a query.
    ht: Option<StoredHt>,
    bytes: usize,
    last_used: u64,
    use_count: u64,
    /// Fine-grained mode: one timestamp per arena slot.
    entry_stamps: Option<Vec<u64>>,
}

/// A cached table checked out for exclusive reuse by one query.
///
/// The paper allows "only one query to reuse a hash-table in the cache at a
/// time" (§2.2); ownership transfer enforces that statically.
#[derive(Debug)]
pub struct CheckedOut {
    /// Identity in the cache; pass back to [`HtManager::checkin`].
    pub id: HtId,
    /// Lineage at checkout time. Mutating reuses (partial/overlapping)
    /// update the region before check-in.
    pub fingerprint: HtFingerprint,
    /// Payload schema (qualified attribute names → types).
    pub schema: Schema,
    /// The table itself.
    pub ht: StoredHt,
}

/// Candidate description handed to the optimizer for costing.
#[derive(Debug, Clone)]
pub struct Candidate {
    pub id: HtId,
    pub fingerprint: HtFingerprint,
    pub schema: Schema,
    /// Entries, distinct keys, width, bytes — the statistics the cost model
    /// consumes.
    pub entries: usize,
    pub distinct_keys: usize,
    pub tuple_width: usize,
    pub bytes: usize,
}

/// The Hash Table Manager.
#[derive(Debug)]
pub struct HtManager {
    entries: HashMap<HtId, CacheEntry>,
    recycle: RecycleGraph,
    gc: GcConfig,
    next_id: u64,
    clock: u64,
    stats: CacheStats,
}

impl HtManager {
    /// Create a manager with the given GC configuration.
    pub fn new(gc: GcConfig) -> Self {
        HtManager {
            entries: HashMap::new(),
            recycle: RecycleGraph::new(),
            gc,
            next_id: 1,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Manager with unlimited memory (GC off).
    pub fn unbounded() -> Self {
        HtManager::new(GcConfig::default())
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn recompute_footprint(&mut self) {
        self.stats.bytes = self.entries.values().map(|e| e.bytes).sum();
        self.stats.entries = self.entries.len();
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.stats.bytes);
    }

    /// Publish a hash table materialized by a pipeline breaker. Returns its
    /// cache id. May trigger evictions to respect the memory budget.
    pub fn publish(&mut self, fingerprint: HtFingerprint, schema: Schema, ht: StoredHt) -> HtId {
        let id = HtId(self.next_id);
        self.next_id += 1;
        let now = self.tick();
        let bytes = ht.logical_bytes();
        let entry_stamps = self.gc.fine_grained.then(|| vec![now; ht.len()]);
        self.recycle.add(&fingerprint, id);
        self.entries.insert(
            id,
            CacheEntry {
                fingerprint,
                schema,
                ht: Some(ht),
                bytes,
                last_used: now,
                use_count: 0,
                entry_stamps,
            },
        );
        self.stats.publishes += 1;
        self.recompute_footprint();
        self.enforce_budget();
        id
    }

    /// Candidate tables whose producing sub-plan matches the request's
    /// shape. Checked-out tables are excluded (single-reuser rule).
    pub fn candidates(&mut self, request: &HtFingerprint) -> Vec<Candidate> {
        self.stats.candidate_lookups += 1;
        let ids = self.recycle.candidates(request);
        ids.into_iter()
            .filter_map(|id| {
                let e = self.entries.get(&id)?;
                let ht = e.ht.as_ref()?;
                Some(Candidate {
                    id,
                    fingerprint: e.fingerprint.clone(),
                    schema: e.schema.clone(),
                    entries: ht.len(),
                    distinct_keys: ht.distinct_keys(),
                    tuple_width: ht.tuple_width(),
                    bytes: ht.logical_bytes(),
                })
            })
            .collect()
    }

    /// Check a table out for exclusive reuse.
    pub fn checkout(&mut self, id: HtId) -> Result<CheckedOut> {
        let now = self.tick();
        let fine = self.gc.fine_grained;
        let entry = self
            .entries
            .get_mut(&id)
            .ok_or_else(|| HsError::CacheError(format!("{id} not in cache")))?;
        let ht = entry
            .ht
            .take()
            .ok_or_else(|| HsError::CacheError(format!("{id} already checked out")))?;
        entry.last_used = now;
        entry.use_count += 1;
        if fine {
            // Fine-grained bookkeeping: re-stamp every entry. This is the
            // per-entry monitoring overhead the paper measured and rejected.
            entry.entry_stamps = Some(vec![now; ht.len()]);
        }
        self.stats.reuses += 1;
        Ok(CheckedOut {
            id,
            fingerprint: entry.fingerprint.clone(),
            schema: entry.schema.clone(),
            ht,
        })
    }

    /// Return a table after the query finishes (paper Figure 1, step 4).
    /// The fingerprint may have changed (partial reuse widens the region);
    /// the recycle graph is updated if the shape changed.
    pub fn checkin(&mut self, co: CheckedOut) -> Result<()> {
        let now = self.tick();
        let fine = self.gc.fine_grained;
        let entry = self
            .entries
            .get_mut(&co.id)
            .ok_or_else(|| HsError::CacheError(format!("{} not in cache", co.id)))?;
        if entry.ht.is_some() {
            return Err(HsError::CacheError(format!(
                "{} was not checked out",
                co.id
            )));
        }
        let shape_changed = !entry.fingerprint.same_shape(&co.fingerprint);
        if shape_changed {
            self.recycle.remove(&entry.fingerprint, co.id);
            self.recycle.add(&co.fingerprint, co.id);
        }
        entry.bytes = co.ht.logical_bytes();
        if fine {
            entry.entry_stamps = Some(vec![now; co.ht.len()]);
        }
        entry.fingerprint = co.fingerprint;
        entry.schema = co.schema;
        entry.ht = Some(co.ht);
        entry.last_used = now;
        self.recompute_footprint();
        self.enforce_budget();
        Ok(())
    }

    /// Drop a table outright.
    pub fn drop_table(&mut self, id: HtId) -> Result<()> {
        let entry = self
            .entries
            .remove(&id)
            .ok_or_else(|| HsError::CacheError(format!("{id} not in cache")))?;
        self.recycle.remove(&entry.fingerprint, id);
        self.recompute_footprint();
        Ok(())
    }

    /// Evict tables until the footprint drops below the budget. Checked-out
    /// tables are never evicted. Returns the number of evictions.
    pub fn enforce_budget(&mut self) -> usize {
        let Some(budget) = self.gc.budget_bytes else {
            return 0;
        };
        let mut evicted = 0;
        while self.stats.bytes > budget {
            let victim = self
                .entries
                .iter()
                .filter(|(_, e)| e.ht.is_some())
                .min_by(|(_, a), (_, b)| match self.gc.policy {
                    EvictionPolicy::Lru => a.last_used.cmp(&b.last_used),
                    EvictionPolicy::Lfu => a
                        .use_count
                        .cmp(&b.use_count)
                        .then(a.last_used.cmp(&b.last_used)),
                    EvictionPolicy::BenefitWeighted => {
                        let da = (a.use_count + 1) as f64 / a.bytes.max(1) as f64;
                        let db = (b.use_count + 1) as f64 / b.bytes.max(1) as f64;
                        da.partial_cmp(&db)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(a.last_used.cmp(&b.last_used))
                    }
                })
                .map(|(&id, _)| id);
            let Some(id) = victim else { break };
            let entry = self.entries.remove(&id).expect("victim exists");
            self.recycle.remove(&entry.fingerprint, id);
            self.stats.evictions += 1;
            evicted += 1;
            self.recompute_footprint();
        }
        evicted
    }

    /// Fine-grained GC: drop the oldest `1 - keep_fraction` of a table's
    /// entries (requires `fine_grained` mode). Returns entries removed.
    pub fn prune_entries(&mut self, id: HtId, keep_fraction: f64) -> Result<usize> {
        if !self.gc.fine_grained {
            return Err(HsError::Config(
                "prune_entries requires fine_grained GC mode".into(),
            ));
        }
        let entry = self
            .entries
            .get_mut(&id)
            .ok_or_else(|| HsError::CacheError(format!("{id} not in cache")))?;
        let Some(ht) = entry.ht.as_mut() else {
            return Err(HsError::CacheError(format!("{id} checked out")));
        };
        let stamps = entry.entry_stamps.clone().unwrap_or_default();
        let before = ht.len();
        let keep = ((before as f64) * keep_fraction).ceil() as usize;
        if keep >= before {
            return Ok(0);
        }
        // Rank entries by (stamp, arena position); keep the newest `keep`.
        // Position breaks ties so a uniform-stamp table still prunes.
        let mut order: Vec<usize> = (0..before).collect();
        order.sort_unstable_by_key(|&i| (stamps.get(i).copied().unwrap_or(0), i));
        let mut keep_mask = vec![false; before];
        for &i in order.iter().rev().take(keep) {
            keep_mask[i] = true;
        }
        let mut idx = 0usize;
        match ht {
            StoredHt::Join(t) | StoredHt::SharedGroup(t) => t.retain(|_, _| {
                let keep_it = keep_mask.get(idx).copied().unwrap_or(false);
                idx += 1;
                keep_it
            }),
            StoredHt::Agg(t) => t.retain(|_, _| {
                let keep_it = keep_mask.get(idx).copied().unwrap_or(false);
                idx += 1;
                keep_it
            }),
        }
        let after = ht.len();
        entry.bytes = ht.logical_bytes();
        entry.entry_stamps = Some(vec![self.clock; after]);
        self.recompute_footprint();
        Ok(before - after)
    }

    /// Aggregate statistics snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of cached tables.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether a given table is currently cached (and not checked out).
    pub fn is_available(&self, id: HtId) -> bool {
        self.entries.get(&id).is_some_and(|e| e.ht.is_some())
    }

    /// The GC configuration.
    pub fn gc_config(&self) -> GcConfig {
        self.gc
    }

    /// Replace the GC configuration (budget changes take effect on the next
    /// publish/checkin).
    pub fn set_gc_config(&mut self, gc: GcConfig) {
        self.gc = gc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::TaggedRow;
    use hashstash_hashtable::ExtendibleHashTable;
    use hashstash_plan::{HtKind, Interval, PredBox, Region};
    use hashstash_types::{DataType, Field, Row, Value};
    use std::sync::Arc;

    fn fp(lo: i64, hi: i64) -> HtFingerprint {
        HtFingerprint {
            kind: HtKind::JoinBuild,
            tables: std::iter::once(Arc::from("customer")).collect(),
            edges: vec![],
            region: Region::from_box(PredBox::all().with(
                "customer.c_age",
                Interval::closed(Value::Int(lo), Value::Int(hi)),
            )),
            key_attrs: vec![Arc::from("customer.c_custkey")],
            payload_attrs: vec![Arc::from("customer.c_age")],
            aggregates: Vec::new(),
            tagged: false,
        }
    }

    fn schema() -> Schema {
        Schema::new(vec![Field::new("customer.c_age", DataType::Int)])
    }

    fn table(n: usize) -> StoredHt {
        let mut ht = ExtendibleHashTable::new(8);
        for i in 0..n as u64 {
            ht.insert(i, TaggedRow::untagged(Row::new(vec![Value::Int(i as i64)])));
        }
        StoredHt::Join(ht)
    }

    #[test]
    fn publish_candidates_checkout_checkin() {
        let mut m = HtManager::unbounded();
        let id = m.publish(fp(0, 50), schema(), table(100));
        assert_eq!(m.len(), 1);
        let cands = m.candidates(&fp(0, 10));
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].id, id);
        assert_eq!(cands[0].entries, 100);

        let co = m.checkout(id).unwrap();
        assert!(!m.is_available(id));
        assert!(
            m.candidates(&fp(0, 10)).is_empty(),
            "checked out ⇒ no candidate"
        );
        assert!(m.checkout(id).is_err(), "double checkout rejected");
        m.checkin(co).unwrap();
        assert!(m.is_available(id));
        assert_eq!(m.stats().reuses, 1);
        assert!((m.stats().hit_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn checkin_updates_region_after_partial_reuse() {
        let mut m = HtManager::unbounded();
        let id = m.publish(fp(20, 30), schema(), table(10));
        let mut co = m.checkout(id).unwrap();
        // Simulate a partial reuse that widened the region to [10, 30].
        co.fingerprint.region = fp(10, 30).region;
        m.checkin(co).unwrap();
        let cands = m.candidates(&fp(10, 30));
        assert!(cands[0].fingerprint.region.set_eq(&fp(10, 30).region));
    }

    #[test]
    fn lru_eviction_under_budget() {
        let bytes_of = |n: usize| table(n).logical_bytes();
        let budget = bytes_of(100) * 2 + bytes_of(100) / 2;
        let mut m = HtManager::new(GcConfig {
            budget_bytes: Some(budget),
            policy: EvictionPolicy::Lru,
            fine_grained: false,
        });
        let a = m.publish(fp(0, 10), schema(), table(100));
        let b = m.publish(fp(20, 30), schema(), table(100));
        // Touch `a` so `b` becomes the LRU victim.
        let co = m.checkout(a).unwrap();
        m.checkin(co).unwrap();
        let _c = m.publish(fp(40, 50), schema(), table(100));
        assert_eq!(m.stats().evictions, 1);
        assert!(m.is_available(a), "recently used survives");
        assert!(!m.is_available(b), "LRU victim evicted");
    }

    #[test]
    fn lfu_eviction_prefers_rarely_used() {
        let mut m = HtManager::new(GcConfig {
            budget_bytes: Some(table(100).logical_bytes() * 2),
            policy: EvictionPolicy::Lfu,
            fine_grained: false,
        });
        let a = m.publish(fp(0, 10), schema(), table(100));
        let b = m.publish(fp(20, 30), schema(), table(100));
        for _ in 0..3 {
            let co = m.checkout(a).unwrap();
            m.checkin(co).unwrap();
        }
        // `b` has zero reuses; publishing a third table evicts it.
        let _c = m.publish(fp(40, 50), schema(), table(100));
        assert!(m.is_available(a));
        assert!(!m.is_available(b));
    }

    #[test]
    fn checked_out_tables_survive_eviction() {
        let mut m = HtManager::new(GcConfig {
            budget_bytes: Some(1), // everything is over budget
            policy: EvictionPolicy::Lru,
            fine_grained: false,
        });
        let a = m.publish(fp(0, 10), schema(), table(10));
        // `a` is evicted immediately (over budget, not checked out).
        assert!(!m.is_available(a));
        // Publish again but hold a checkout during the squeeze.
        let b = m.publish(fp(0, 10), schema(), table(10));
        if m.is_available(b) {
            let co = m.checkout(b).unwrap();
            let _c = m.publish(fp(20, 30), schema(), table(10));
            // b survives because it is checked out.
            m.checkin(co).unwrap();
        }
        // No panic ⇒ protocol holds even under extreme pressure.
    }

    #[test]
    fn budget_none_never_evicts() {
        let mut m = HtManager::unbounded();
        for i in 0..20 {
            m.publish(fp(i, i + 1), schema(), table(50));
        }
        assert_eq!(m.stats().evictions, 0);
        assert_eq!(m.len(), 20);
        assert!(m.stats().peak_bytes >= m.stats().bytes);
    }

    #[test]
    fn prune_entries_fine_grained() {
        let mut m = HtManager::new(GcConfig {
            budget_bytes: None,
            policy: EvictionPolicy::Lru,
            fine_grained: true,
        });
        let id = m.publish(fp(0, 10), schema(), table(100));
        let removed = m.prune_entries(id, 0.25).unwrap();
        assert!(removed >= 70, "kept ~25%, removed {removed}");
        let cands = m.candidates(&fp(0, 10));
        assert!(cands[0].entries <= 30);
    }

    #[test]
    fn prune_requires_fine_grained_mode() {
        let mut m = HtManager::unbounded();
        let id = m.publish(fp(0, 10), schema(), table(10));
        assert!(matches!(m.prune_entries(id, 0.5), Err(HsError::Config(_))));
    }

    #[test]
    fn drop_table_removes_from_recycle_graph() {
        let mut m = HtManager::unbounded();
        let id = m.publish(fp(0, 10), schema(), table(10));
        m.drop_table(id).unwrap();
        assert!(m.candidates(&fp(0, 10)).is_empty());
        assert!(m.drop_table(id).is_err());
    }
}
