//! The hash-table cache: a typed facade over the generic
//! [`crate::store::ReuseStore`].
//!
//! # Concurrency model
//!
//! The store is sharded by the *shape key* of each table's fingerprint
//! (operator kind, base tables, join edges, hash keys — the recycle-graph
//! bucketing): every shard owns an independent mutex over its entry map and
//! recycle-graph slice, so sessions touching unrelated plan shapes never
//! contend. The memory budget and all statistics are process-wide atomics;
//! the budget may be *shared* with other stores (the temp-table cache), in
//! which case one eviction loop ranks every payload kind together.
//!
//! Cached tables are stored as `Arc<StoredHt>` handles:
//!
//! * [`HtManager::checkout`] — *shared* checkout for read-only reuse (exact
//!   and subsuming): clones the handle, so any number of queries can probe
//!   the same table concurrently. No lock is held while the table is in use.
//! * [`HtManager::checkout_mut`] — *exclusive* checkout for mutating reuse
//!   (partial/overlapping delta insertion, shared-plan re-tagging). Only one
//!   writer per table at a time — the paper's single-reuser rule (§2.2) is
//!   enforced exactly where mutation happens. Writers copy-on-write via
//!   `Arc::make_mut` — or, when no reader snapshot is outstanding, take the
//!   sole-reference in-place fast path that skips the O(table) copy — so
//!   concurrent readers always keep probing their immutable snapshot; the
//!   new version is published at [`CheckedOut::checkin`].
//!
//! Both checkouts return an RAII [`CheckedOut`] guard: dropping it (error
//! return, panic, or plain completion of a read-only reuse) releases the
//! table back to the cache, so an executor error path can never strand an
//! entry as permanently checked out.

use std::sync::Arc;

use hashstash_types::{HtId, Result, Schema};

use hashstash_plan::HtFingerprint;

use crate::payload::StoredHt;
use crate::store::{Checkout, ReuseBudget, ReuseStore, SnapshotEntry, StoreCandidate};

pub use crate::store::{CacheStats, EvictionPolicy, GcConfig, TenantId, DEFAULT_SHARDS};

/// An RAII guard over a cached hash table checked out by one query — the
/// hash-table instantiation of the generic [`Checkout`] guard.
pub type CheckedOut<'m> = Checkout<'m, HtId, StoredHt>;

/// Candidate description handed to the optimizer for costing.
#[derive(Debug, Clone)]
pub struct Candidate {
    pub id: HtId,
    pub fingerprint: HtFingerprint,
    pub schema: Schema,
    /// Entries, distinct keys, width, bytes — the statistics the cost model
    /// consumes.
    pub entries: usize,
    pub distinct_keys: usize,
    pub tuple_width: usize,
    pub bytes: usize,
}

impl Candidate {
    fn of(c: StoreCandidate<HtId, StoredHt>) -> Self {
        Candidate {
            entries: c.payload.len(),
            distinct_keys: c.payload.distinct_keys(),
            tuple_width: c.payload.tuple_width(),
            bytes: c.payload.logical_bytes(),
            id: c.id,
            fingerprint: c.fingerprint,
            schema: c.schema,
        }
    }
}

/// The Hash Table Manager: a sharded, concurrently accessible cache.
///
/// All methods take `&self`; interior locking is per shard. See the module
/// docs for the checkout/checkin concurrency model.
#[derive(Debug)]
pub struct HtManager {
    store: ReuseStore<HtId, StoredHt>,
}

impl HtManager {
    /// Create a manager with the given GC configuration and
    /// [`DEFAULT_SHARDS`] shards, over a private budget.
    pub fn new(gc: GcConfig) -> Self {
        HtManager::with_shards(gc, DEFAULT_SHARDS)
    }

    /// Create a manager with an explicit shard count (≥ 1) over a private
    /// budget.
    pub fn with_shards(gc: GcConfig, shards: usize) -> Self {
        HtManager::with_budget(ReuseBudget::new(gc), shards)
    }

    /// Create a manager over an existing — possibly shared — budget. An
    /// engine that also runs a temp-table cache hands both the *same*
    /// budget, which makes the byte limit and the eviction victim search
    /// span both payload kinds.
    pub fn with_budget(budget: Arc<ReuseBudget>, shards: usize) -> Self {
        HtManager {
            store: ReuseStore::new(budget, shards),
        }
    }

    /// Manager with unlimited memory (GC off).
    pub fn unbounded() -> Self {
        HtManager::new(GcConfig::default())
    }

    /// Number of independent shards.
    pub fn num_shards(&self) -> usize {
        self.store.num_shards()
    }

    /// The budget governing this cache (possibly shared with the temp-table
    /// cache).
    pub fn budget(&self) -> &Arc<ReuseBudget> {
        self.store.budget()
    }

    /// Publish a hash table materialized by a pipeline breaker. Returns its
    /// cache id. May trigger evictions to respect the memory budget.
    ///
    /// Identical-lineage re-publishes are deduplicated — see
    /// [`ReuseStore::publish`].
    pub fn publish(&self, fingerprint: HtFingerprint, schema: Schema, ht: StoredHt) -> HtId {
        self.store.publish(fingerprint, schema, ht)
    }

    /// [`HtManager::publish`] on behalf of a tenant: the table is owned by
    /// `tenant` for per-tenant budget floors and statistics — see
    /// [`ReuseStore::publish_as`].
    pub fn publish_as(
        &self,
        tenant: TenantId,
        fingerprint: HtFingerprint,
        schema: Schema,
        ht: StoredHt,
    ) -> HtId {
        self.store.publish_as(tenant, fingerprint, schema, ht)
    }

    /// Candidate tables whose producing sub-plan matches the request's
    /// shape. Tables with an outstanding *mutating* checkout are excluded
    /// (single-reuser rule for writers); tables held by readers remain
    /// candidates — shared read-only reuse is the point of the Arc design.
    pub fn candidates(&self, request: &HtFingerprint) -> Vec<Candidate> {
        self.store
            .candidates(request)
            .into_iter()
            .map(Candidate::of)
            .collect()
    }

    /// Check a table out for shared, read-only reuse (exact and subsuming
    /// matches). Any number of shared checkouts may coexist.
    pub fn checkout(&self, id: HtId) -> Result<CheckedOut<'_>> {
        self.store.checkout(id)
    }

    /// [`HtManager::checkout`], but failing — without touching use counts
    /// or LRU stamps — unless the table's lineage region still equals
    /// `expect_region`. Sessions use this to detect that a concurrent
    /// partial reuse widened the table after their plan classified it.
    pub fn checkout_expecting(
        &self,
        id: HtId,
        expect_region: &hashstash_plan::Region,
    ) -> Result<CheckedOut<'_>> {
        self.store.checkout_expecting(id, expect_region)
    }

    /// Shared checkout validating that the table's lineage still **covers**
    /// `request_region`, rather than equalling the planned region exactly.
    /// Read-only (exact/subsuming) reuse uses this so a concurrent lineage
    /// widening — which only *adds* tuples — downgrades to an in-place
    /// subsuming reuse (the executor post-filters to the request region)
    /// instead of forcing a full re-plan. The guard's `fingerprint` carries
    /// the lineage observed at checkout, letting the caller detect whether
    /// compensation is needed.
    pub fn checkout_covering(
        &self,
        id: HtId,
        request_region: &hashstash_plan::Region,
    ) -> Result<CheckedOut<'_>> {
        self.store.checkout_covering(id, request_region)
    }

    /// Check a table out for mutating reuse (partial/overlapping delta
    /// insertion, shared-plan re-tagging). At most one mutating checkout per
    /// table — the paper's single-reuser rule, enforced only where mutation
    /// actually happens. Mutation is copy-on-write (with a sole-reference
    /// in-place fast path): concurrent readers keep their snapshot until
    /// [`CheckedOut::checkin`] publishes the new version.
    pub fn checkout_mut(&self, id: HtId) -> Result<CheckedOut<'_>> {
        self.store.checkout_mut(id)
    }

    /// [`HtManager::checkout_mut`] with the same lineage pre-validation as
    /// [`HtManager::checkout_expecting`]. Mutating reuse keeps the strict
    /// equality check: its delta scan was computed against the planned
    /// region, so any widening makes the delta wrong and must re-plan.
    pub fn checkout_mut_expecting(
        &self,
        id: HtId,
        expect_region: &hashstash_plan::Region,
    ) -> Result<CheckedOut<'_>> {
        self.store.checkout_mut_expecting(id, expect_region)
    }

    /// Drop a table outright. Fails while the table is checked out.
    pub fn drop_table(&self, id: HtId) -> Result<()> {
        self.store.drop_entry(id)
    }

    /// Evict tables until the footprint drops below the budget (running the
    /// TTL expiry first). Checked-out tables (readers or writer) are never
    /// evicted. When the budget is shared, the victim search spans every
    /// store registered with it; the return value counts evictions across
    /// all of them.
    pub fn enforce_budget(&self) -> usize {
        self.store.enforce_budget()
    }

    /// Fine-grained GC: drop the oldest `1 - keep_fraction` of a table's
    /// entries (requires `fine_grained` mode). Returns entries removed.
    /// Copy-on-write: concurrent readers keep the unpruned snapshot.
    pub fn prune_entries(&self, id: HtId, keep_fraction: f64) -> Result<usize> {
        self.store.prune_entries(id, keep_fraction)
    }

    /// Fine-grained per-slot timestamps of a table (`None` unless
    /// `fine_grained` mode stamped it). For tests and GC experiments.
    pub fn entry_stamps(&self, id: HtId) -> Result<Option<Vec<u64>>> {
        self.store.entry_stamps(id)
    }

    /// Stats-neutral snapshot of every available table for persistence —
    /// see [`ReuseStore::snapshot_entries`]. Does not pin entries or touch
    /// LRU/use counters; writer-held tables are skipped.
    pub fn snapshot_entries(&self) -> Vec<SnapshotEntry<HtId, StoredHt>> {
        self.store.snapshot_entries()
    }

    /// Aggregate statistics snapshot.
    pub fn stats(&self) -> CacheStats {
        self.store.stats()
    }

    /// Per-tenant statistics slices — see [`ReuseStore::tenant_stats`].
    pub fn tenant_stats(&self) -> Vec<(TenantId, CacheStats)> {
        self.store.tenant_stats()
    }

    /// One tenant's statistics slice (zeroed when the tenant has no
    /// history in this cache).
    pub fn tenant_stats_for(&self, tenant: TenantId) -> CacheStats {
        self.store.tenant_stats_for(tenant)
    }

    /// Stamp every cached table with one fresh clock tick (warm-restart
    /// rehydration) — see [`ReuseStore::freshen_all`].
    pub fn freshen_all(&self) {
        self.store.freshen_all()
    }

    /// Recount footprint and entries directly from the shards (O(entries),
    /// takes every shard lock in turn). At quiesce this must equal
    /// [`CacheStats::bytes`]/[`CacheStats::entries`] — the concurrency
    /// stress tests assert exactly that.
    pub fn audit(&self) -> (usize, usize) {
        self.store.audit()
    }

    /// Pin-leak detector forward (`analysis` feature): panics unless every
    /// checkout guard has been returned and every entry is unpinned. See
    /// `ReuseStore::assert_quiesced`.
    #[cfg(feature = "analysis")]
    pub fn assert_quiesced(&self) {
        self.store.assert_quiesced()
    }

    /// Number of checkout guards currently outstanding (`analysis` feature).
    #[cfg(feature = "analysis")]
    pub fn outstanding_pins(&self) -> i64 {
        self.store.outstanding_pins()
    }

    /// Number of cached tables.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Whether a given table is currently cached and not held by a writer
    /// (readers do not block availability).
    pub fn is_available(&self, id: HtId) -> bool {
        self.store.is_available(id)
    }

    /// The GC configuration (of the — possibly shared — budget).
    pub fn gc_config(&self) -> GcConfig {
        self.store.budget().gc_config()
    }

    /// Replace the GC configuration (budget changes take effect on the next
    /// publish/checkin).
    pub fn set_gc_config(&self, gc: GcConfig) {
        self.store.budget().set_gc_config(gc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::TaggedRow;
    use hashstash_hashtable::ExtendibleHashTable;
    use hashstash_plan::{HtKind, Interval, PredBox, Region};
    use hashstash_types::{DataType, Field, HsError, Row, Value};

    fn fp(lo: i64, hi: i64) -> HtFingerprint {
        HtFingerprint {
            kind: HtKind::JoinBuild,
            tables: std::iter::once(Arc::from("customer")).collect(),
            edges: vec![],
            region: Region::from_box(PredBox::all().with(
                "customer.c_age",
                Interval::closed(Value::Int(lo), Value::Int(hi)),
            )),
            key_attrs: vec![Arc::from("customer.c_custkey")],
            payload_attrs: vec![Arc::from("customer.c_age")],
            aggregates: Vec::new(),
            tagged: false,
        }
    }

    fn schema() -> Schema {
        Schema::new(vec![Field::new("customer.c_age", DataType::Int)])
    }

    fn table(n: usize) -> StoredHt {
        let mut ht = ExtendibleHashTable::new(8);
        for i in 0..n as u64 {
            ht.insert(i, TaggedRow::untagged(Row::new(vec![Value::Int(i as i64)])));
        }
        StoredHt::Join(ht)
    }

    #[test]
    fn publish_candidates_checkout_checkin() {
        let m = HtManager::unbounded();
        let id = m.publish(fp(0, 50), schema(), table(100));
        assert_eq!(m.len(), 1);
        let cands = m.candidates(&fp(0, 10));
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].id, id);
        assert_eq!(cands[0].entries, 100);

        // Shared checkouts coexist and keep the table available.
        let co = m.checkout(id).unwrap();
        let co2 = m.checkout(id).unwrap();
        assert!(m.is_available(id), "shared readers keep availability");
        assert_eq!(
            m.candidates(&fp(0, 10)).len(),
            1,
            "readers do not hide candidates"
        );
        assert_eq!(co.table().len(), co2.table().len());
        drop(co2);
        co.checkin().unwrap();
        assert!(m.is_available(id));
        assert_eq!(m.stats().reuses, 2);
        assert!((m.stats().hit_ratio() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn identical_lineage_publish_dedups() {
        let m = HtManager::unbounded();
        let a = m.publish(fp(0, 50), schema(), table(100));
        let bytes = m.stats().bytes;
        let b = m.publish(fp(0, 50), schema(), table(100));
        assert_eq!(a, b, "identical lineage maps onto the existing entry");
        assert_eq!(m.len(), 1);
        assert_eq!(m.stats().publishes, 1, "dedup does not inflate publishes");
        assert_eq!(m.stats().publish_dedups, 1);
        assert_eq!(m.stats().bytes, bytes, "dedup does not inflate footprint");
        assert_eq!(m.audit(), (bytes, 1));
        // A different region is a different lineage and gets its own entry.
        let c = m.publish(fp(0, 60), schema(), table(100));
        assert_ne!(a, c);
        assert_eq!(m.len(), 2);
        assert_eq!(m.stats().publishes, 2);
    }

    #[test]
    fn dedup_skips_writer_held_entries() {
        let m = HtManager::unbounded();
        let a = m.publish(fp(0, 50), schema(), table(10));
        let w = m.checkout_mut(a).unwrap();
        // The held entry's lineage is about to change at check-in, so a
        // concurrent identical publish must not alias onto it.
        let b = m.publish(fp(0, 50), schema(), table(10));
        assert_ne!(a, b);
        assert_eq!(m.len(), 2);
        drop(w);
    }

    #[test]
    fn checkout_covering_tolerates_concurrent_widening() {
        let m = HtManager::unbounded();
        let id = m.publish(fp(20, 30), schema(), table(10));
        let planned = fp(20, 30).region;
        // A concurrent partial reuse widens the lineage to [10, 30].
        let mut w = m.checkout_mut(id).unwrap();
        w.fingerprint.region = fp(10, 30).region;
        w.checkin().unwrap();
        // Strict (mutating-reuse) validation fails…
        assert!(m.checkout_expecting(id, &planned).is_err());
        // …but the covering checkout succeeds and reports the widened
        // lineage so the executor can compensate with a post-filter.
        let co = m.checkout_covering(id, &planned).unwrap();
        assert!(co.fingerprint.region.set_eq(&fp(10, 30).region));
        drop(co);
        // A request the lineage does not cover still fails.
        assert!(m.checkout_covering(id, &fp(0, 50).region).is_err());
    }

    #[test]
    fn exclusive_checkout_is_single_reuser() {
        let m = HtManager::unbounded();
        let id = m.publish(fp(0, 50), schema(), table(10));
        let w = m.checkout_mut(id).unwrap();
        assert!(!m.is_available(id), "writer blocks availability");
        assert!(
            m.candidates(&fp(0, 10)).is_empty(),
            "writer-held ⇒ no candidate"
        );
        assert!(m.checkout_mut(id).is_err(), "double mutating checkout");
        // Readers may still snapshot the pre-mutation version.
        let r = m.checkout(id).unwrap();
        assert_eq!(r.table().len(), 10);
        drop(w); // dropped without checkin: cached version untouched
        assert!(m.is_available(id));
        let again = m.checkout_mut(id).unwrap();
        assert_eq!(again.table().len(), 10);
    }

    #[test]
    fn dropped_guard_releases_instead_of_leaking() {
        let m = HtManager::unbounded();
        let id = m.publish(fp(0, 50), schema(), table(25));
        let bytes = m.stats().bytes;
        {
            let _w = m.checkout_mut(id).unwrap();
            // Simulated executor error: the guard is dropped here without
            // a checkin.
        }
        assert!(m.is_available(id), "entry recovered on guard drop");
        assert_eq!(m.candidates(&fp(0, 10)).len(), 1);
        assert_eq!(m.stats().bytes, bytes, "bytes still accounted");
        let (audit_bytes, audit_entries) = m.audit();
        assert_eq!(audit_bytes, bytes);
        assert_eq!(audit_entries, 1);
    }

    #[test]
    fn cow_mutation_preserves_reader_snapshots() {
        let m = HtManager::unbounded();
        let id = m.publish(fp(20, 30), schema(), table(10));
        let reader = m.checkout(id).unwrap();
        let mut writer = m.checkout_mut(id).unwrap();
        {
            let StoredHt::Join(t) = writer.table_mut().unwrap() else {
                panic!("join table")
            };
            for i in 100..110u64 {
                t.insert(i, TaggedRow::untagged(Row::new(vec![Value::Int(i as i64)])));
            }
        }
        writer.fingerprint.region = fp(10, 30).region;
        writer.checkin().unwrap();
        // The reader still sees the pre-mutation snapshot…
        assert_eq!(reader.table().len(), 10);
        // …while the cache serves the new version with widened lineage.
        let cands = m.candidates(&fp(10, 30));
        assert_eq!(cands[0].entries, 20);
        assert!(cands[0].fingerprint.region.set_eq(&fp(10, 30).region));
    }

    /// Sole-reference fast path: with no reader snapshot outstanding, the
    /// mutation happens **in place** — the post-checkin cache entry is the
    /// very same allocation that was published, not a copy.
    #[test]
    fn sole_reference_mutation_skips_the_copy() {
        let m = HtManager::unbounded();
        let id = m.publish(fp(20, 30), schema(), table(10));
        let original_ptr = {
            let co = m.checkout(id).unwrap();
            Arc::as_ptr(&co.snapshot())
        };
        let mut writer = m.checkout_mut(id).unwrap();
        {
            let StoredHt::Join(t) = writer.table_mut().unwrap() else {
                panic!("join table")
            };
            t.insert(500, TaggedRow::untagged(Row::new(vec![Value::Int(500)])));
        }
        writer.fingerprint.region = fp(10, 30).region;
        writer.checkin().unwrap();
        let after = m.checkout(id).unwrap();
        assert_eq!(after.table().len(), 11, "delta landed");
        assert_eq!(
            Arc::as_ptr(&after.snapshot()),
            original_ptr,
            "no COW copy: the cached allocation is unchanged"
        );
    }

    /// During an in-place mutation there is no snapshot to hand out: a
    /// concurrent shared checkout fails with a `CacheError` (the session's
    /// ordinary re-plan path) instead of observing a torn table. A reader
    /// that grabbed its snapshot *before* the writer mutates forces the
    /// copy-on-write path and keeps its view — pinned by
    /// `cow_mutation_preserves_reader_snapshots`.
    #[test]
    fn in_place_window_rejects_new_readers() {
        let m = HtManager::unbounded();
        let id = m.publish(fp(20, 30), schema(), table(10));
        let mut writer = m.checkout_mut(id).unwrap();
        writer.table_mut().unwrap(); // takes the in-place fast path
        assert!(
            matches!(m.checkout(id), Err(HsError::CacheError(_))),
            "no snapshot exists during the in-place window"
        );
        writer.checkin().unwrap();
        assert!(m.checkout(id).is_ok(), "snapshot restored at check-in");
    }

    /// Abandoning a guard *after* it took the in-place fast path drops the
    /// entry: the pristine version no longer exists, and re-publishing a
    /// possibly half-mutated table under its old lineage could serve wrong
    /// answers. Accounting must stay exact.
    #[test]
    fn abandoned_in_place_mutation_drops_the_entry() {
        let m = HtManager::unbounded();
        let keep = m.publish(fp(40, 60), schema(), table(5));
        let id = m.publish(fp(20, 30), schema(), table(10));
        {
            let mut writer = m.checkout_mut(id).unwrap();
            let StoredHt::Join(t) = writer.table_mut().unwrap() else {
                panic!("join table")
            };
            t.insert(999, TaggedRow::untagged(Row::new(vec![Value::Int(999)])));
            // Simulated executor error: dropped without checkin.
        }
        assert!(!m.is_available(id), "half-mutated entry dropped");
        assert!(m.is_available(keep), "other entries untouched");
        // Shape-matched candidates no longer include the dropped entry.
        let cands = m.candidates(&fp(20, 30));
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].id, keep);
        let (audit_bytes, audit_entries) = m.audit();
        assert_eq!(audit_entries, 1);
        assert_eq!(m.stats().bytes, audit_bytes, "accounting stays exact");
    }

    #[test]
    fn shared_guard_rejects_mutation() {
        let m = HtManager::unbounded();
        let id = m.publish(fp(0, 10), schema(), table(5));
        let mut r = m.checkout(id).unwrap();
        assert!(r.table_mut().is_err(), "shared checkout is read-only");
    }

    #[test]
    fn checkin_updates_region_after_partial_reuse() {
        let m = HtManager::unbounded();
        let id = m.publish(fp(20, 30), schema(), table(10));
        let mut co = m.checkout_mut(id).unwrap();
        // Simulate a partial reuse that widened the region to [10, 30].
        co.fingerprint.region = fp(10, 30).region;
        co.checkin().unwrap();
        let cands = m.candidates(&fp(10, 30));
        assert!(cands[0].fingerprint.region.set_eq(&fp(10, 30).region));
        let _ = id;
    }

    #[test]
    fn lru_eviction_under_budget() {
        let bytes_of = |n: usize| table(n).logical_bytes();
        let budget = bytes_of(100) * 2 + bytes_of(100) / 2;
        let m = HtManager::new(GcConfig {
            budget_bytes: Some(budget),
            policy: EvictionPolicy::Lru,
            ..GcConfig::default()
        });
        let a = m.publish(fp(0, 10), schema(), table(100));
        let b = m.publish(fp(20, 30), schema(), table(100));
        // Touch `a` so `b` becomes the LRU victim.
        let co = m.checkout(a).unwrap();
        co.checkin().unwrap();
        let _c = m.publish(fp(40, 50), schema(), table(100));
        assert_eq!(m.stats().evictions, 1);
        assert!(m.is_available(a), "recently used survives");
        assert!(!m.is_available(b), "LRU victim evicted");
    }

    #[test]
    fn lfu_eviction_prefers_rarely_used() {
        let m = HtManager::new(GcConfig {
            budget_bytes: Some(table(100).logical_bytes() * 2),
            policy: EvictionPolicy::Lfu,
            ..GcConfig::default()
        });
        let a = m.publish(fp(0, 10), schema(), table(100));
        let b = m.publish(fp(20, 30), schema(), table(100));
        for _ in 0..3 {
            let co = m.checkout(a).unwrap();
            co.checkin().unwrap();
        }
        // `b` has zero reuses; publishing a third table evicts it.
        let _c = m.publish(fp(40, 50), schema(), table(100));
        assert!(m.is_available(a));
        assert!(!m.is_available(b));
    }

    /// The checked-out-survival property, asserted unconditionally: a
    /// budget sized for exactly one table admits `b`; while `b` is pinned
    /// by a checkout, publishing `c` must evict `c` itself (the only
    /// unpinned entry), never the pinned `b`.
    #[test]
    fn checked_out_tables_survive_eviction() {
        let one_table = table(10).logical_bytes();
        let m = HtManager::new(GcConfig {
            budget_bytes: Some(one_table),
            policy: EvictionPolicy::Lru,
            ..GcConfig::default()
        });
        let b = m.publish(fp(0, 10), schema(), table(10));
        assert!(m.is_available(b), "budget admits exactly one table");

        // Shared pin: the squeeze must pick someone else.
        let co = m.checkout(b).unwrap();
        let c = m.publish(fp(20, 30), schema(), table(10));
        assert!(m.is_available(b), "reader-pinned table survives the GC");
        assert!(!m.is_available(c), "the unpinned newcomer was evicted");
        co.checkin().unwrap();

        // Exclusive pin: same property.
        let w = m.checkout_mut(b).unwrap();
        let d = m.publish(fp(40, 50), schema(), table(10));
        assert!(!m.is_available(d), "unpinned newcomer evicted again");
        drop(w);
        assert!(m.is_available(b), "writer-pinned table survived the GC");
        assert_eq!(m.len(), 1);
        assert!(m.stats().bytes <= one_table, "budget holds at quiesce");
    }

    #[test]
    fn budget_none_never_evicts() {
        let m = HtManager::unbounded();
        for i in 0..20 {
            m.publish(fp(i, i + 1), schema(), table(50));
        }
        assert_eq!(m.stats().evictions, 0);
        assert_eq!(m.len(), 20);
        assert!(m.stats().peak_bytes >= m.stats().bytes);
        let (bytes, entries) = m.audit();
        assert_eq!(bytes, m.stats().bytes);
        assert_eq!(entries, 20);
    }

    /// Per-table TTL: entries idle longer than `ttl_ticks` are evicted
    /// ahead of the victim search, even with no byte pressure at all.
    #[test]
    fn ttl_evicts_idle_entries_without_byte_pressure() {
        let m = HtManager::new(GcConfig {
            ttl_ticks: Some(8),
            ..GcConfig::default()
        });
        let idle = m.publish(fp(0, 10), schema(), table(10));
        let hot = m.publish(fp(20, 30), schema(), table(10));
        // Advance the clock past the TTL by touching only `hot`.
        for _ in 0..10 {
            m.checkout(hot).unwrap().checkin().unwrap();
        }
        m.enforce_budget();
        assert!(!m.is_available(idle), "idle entry expired");
        assert!(m.is_available(hot), "recently used entry survives");
        assert_eq!(m.stats().evictions, 1);
        let (audit_bytes, audit_entries) = m.audit();
        assert_eq!(audit_entries, 1);
        assert_eq!(m.stats().bytes, audit_bytes);
    }

    /// TTL pruning is monotone: under the same operation history, a longer
    /// TTL never expires an entry a shorter TTL would have kept.
    #[test]
    fn ttl_pruning_is_monotone_in_the_ttl() {
        // Same op sequence against two managers differing only in TTL.
        fn survivors(ttl: u64) -> Vec<bool> {
            let m = HtManager::new(GcConfig {
                ttl_ticks: Some(ttl),
                ..GcConfig::default()
            });
            let ids: Vec<HtId> = (0..4)
                .map(|i| m.publish(fp(i * 20, i * 20 + 10), schema(), table(10)))
                .collect();
            // Touch table k exactly 2k times, interleaved, so older tables
            // have strictly older last-used stamps.
            for round in 0..6 {
                for (k, &id) in ids.iter().enumerate() {
                    if round < 2 * k {
                        m.checkout(id).unwrap().checkin().unwrap();
                    }
                }
            }
            m.enforce_budget();
            ids.iter().map(|&id| m.is_available(id)).collect()
        }
        let short = survivors(3);
        let long = survivors(12);
        for (i, (s, l)) in short.iter().zip(&long).enumerate() {
            assert!(
                !s || *l,
                "entry {i} survived ttl=3 but was expired by ttl=12"
            );
        }
        // The shorter TTL expired at least as many entries.
        assert!(short.iter().filter(|s| !**s).count() >= long.iter().filter(|l| !**l).count());
    }

    #[test]
    fn prune_entries_fine_grained() {
        let m = HtManager::new(GcConfig {
            fine_grained: true,
            ..GcConfig::default()
        });
        let id = m.publish(fp(0, 10), schema(), table(100));
        let removed = m.prune_entries(id, 0.25).unwrap();
        assert!(removed >= 70, "kept ~25%, removed {removed}");
        let cands = m.candidates(&fp(0, 10));
        assert!(cands[0].entries <= 30);
    }

    /// Pruned survivors must carry a *fresh* timestamp so that a checkout
    /// right after the prune stamps strictly later — per-entry timestamps
    /// stay monotone (the pre-PR code re-used a stale clock value).
    #[test]
    fn prune_restamps_with_fresh_tick() {
        let m = HtManager::new(GcConfig {
            fine_grained: true,
            ..GcConfig::default()
        });
        let id = m.publish(fp(0, 10), schema(), table(40));
        let publish_stamp = m.entry_stamps(id).unwrap().unwrap()[0];
        m.prune_entries(id, 0.5).unwrap();
        let after_prune = m.entry_stamps(id).unwrap().unwrap();
        assert!(!after_prune.is_empty());
        assert!(
            after_prune.iter().all(|&s| s > publish_stamp),
            "prune stamps ({:?}) must advance past the publish stamp {publish_stamp}",
            &after_prune[..1]
        );
        // A checkout after the prune must stamp strictly later still.
        let co = m.checkout(id).unwrap();
        co.checkin().unwrap();
        let after_checkout = m.entry_stamps(id).unwrap().unwrap();
        assert!(
            after_checkout.iter().all(|&s| s > after_prune[0]),
            "checkout stamps must be monotone over prune stamps"
        );
    }

    #[test]
    fn prune_requires_fine_grained_mode() {
        let m = HtManager::unbounded();
        let id = m.publish(fp(0, 10), schema(), table(10));
        assert!(matches!(m.prune_entries(id, 0.5), Err(HsError::Config(_))));
    }

    #[test]
    fn drop_table_removes_from_recycle_graph() {
        let m = HtManager::unbounded();
        let id = m.publish(fp(0, 10), schema(), table(10));
        m.drop_table(id).unwrap();
        assert!(m.candidates(&fp(0, 10)).is_empty());
        assert!(m.drop_table(id).is_err());
        let (bytes, entries) = m.audit();
        assert_eq!((bytes, entries), (0, 0));
        assert_eq!(m.stats().bytes, 0);
    }

    #[test]
    fn drop_table_refuses_pinned_entries() {
        let m = HtManager::unbounded();
        let id = m.publish(fp(0, 10), schema(), table(10));
        let co = m.checkout(id).unwrap();
        assert!(m.drop_table(id).is_err(), "reader pin blocks drop");
        drop(co);
        assert!(m.drop_table(id).is_ok());
    }

    #[test]
    fn ids_spread_across_shards_by_shape() {
        let m = HtManager::with_shards(GcConfig::default(), 4);
        // Different shapes (different key attrs) land on (usually)
        // different shards; same shape stays on one shard.
        let a1 = m.publish(fp(0, 10), schema(), table(5));
        let a2 = m.publish(fp(20, 30), schema(), table(5));
        assert_eq!(
            a1.0 % 4,
            a2.0 % 4,
            "same shape ⇒ same home shard (region differences are irrelevant)"
        );
        assert_eq!(m.len(), 2);
        assert_eq!(m.candidates(&fp(0, 50)).len(), 2);
    }
}
