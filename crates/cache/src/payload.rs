//! Value types stored inside cached hash tables — and the payloads the
//! generic [`crate::store::ReuseStore`] accepts ([`StoredHt`] for the Hash
//! Table Manager, [`MaterializedRows`] for the temp-table baseline).

use hashstash_types::{QidSet, Row, Value};

use hashstash_plan::{AggExpr, AggFunc};

use crate::store::ReusePayload;

/// A row with a query-id tag.
///
/// Non-shared operators leave the tag [`QidSet::EMPTY`]; shared operators
/// (SRHJ / SRHA) use it to track which queries of the batch each tuple
/// qualifies for (Data-Query model, paper §4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct TaggedRow {
    pub row: Row,
    pub tag: QidSet,
}

impl TaggedRow {
    /// An untagged row.
    pub fn untagged(row: Row) -> Self {
        TaggedRow {
            row,
            tag: QidSet::EMPTY,
        }
    }

    /// A tagged row.
    pub fn tagged(row: Row, tag: QidSet) -> Self {
        TaggedRow { row, tag }
    }
}

/// One aggregate accumulator state.
///
/// Accumulators *merge*, which is what lets a reuse-aware hash aggregate add
/// missing tuples into an existing state. Note the paper's additivity rule
/// (§3.3) concerns *post-aggregation over finalized outputs* when the
/// requested group-by is a subset of the cached one; the matcher enforces it
/// — `AVG` only qualifies after the benefit-oriented `AVG → SUM,COUNT`
/// rewrite.
#[derive(Debug, Clone, PartialEq)]
pub enum AggAccum {
    Sum(f64),
    Count(i64),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: f64, count: i64 },
}

impl AggAccum {
    /// Fresh accumulator for a function.
    pub fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::Sum => AggAccum::Sum(0.0),
            AggFunc::Count => AggAccum::Count(0),
            AggFunc::Min => AggAccum::Min(None),
            AggFunc::Max => AggAccum::Max(None),
            AggFunc::Avg => AggAccum::Avg { sum: 0.0, count: 0 },
        }
    }

    /// The function this accumulator computes.
    pub fn func(&self) -> AggFunc {
        match self {
            AggAccum::Sum(_) => AggFunc::Sum,
            AggAccum::Count(_) => AggFunc::Count,
            AggAccum::Min(_) => AggFunc::Min,
            AggAccum::Max(_) => AggFunc::Max,
            AggAccum::Avg { .. } => AggFunc::Avg,
        }
    }

    /// Fold one input value into the state.
    pub fn update(&mut self, v: &Value) {
        match self {
            AggAccum::Sum(s) => *s += v.to_f64().unwrap_or(0.0),
            AggAccum::Count(c) => *c += 1,
            AggAccum::Min(m) => {
                if m.as_ref().is_none_or(|cur| v < cur) {
                    *m = Some(v.clone());
                }
            }
            AggAccum::Max(m) => {
                if m.as_ref().is_none_or(|cur| v > cur) {
                    *m = Some(v.clone());
                }
            }
            AggAccum::Avg { sum, count } => {
                *sum += v.to_f64().unwrap_or(0.0);
                *count += 1;
            }
        }
    }

    /// Merge another state over a disjoint input partition.
    pub fn merge(&mut self, other: &AggAccum) {
        match (self, other) {
            (AggAccum::Sum(a), AggAccum::Sum(b)) => *a += b,
            (AggAccum::Count(a), AggAccum::Count(b)) => *a += b,
            (AggAccum::Min(a), AggAccum::Min(b)) => {
                if let Some(bv) = b {
                    if a.as_ref().is_none_or(|av| bv < av) {
                        *a = Some(bv.clone());
                    }
                }
            }
            (AggAccum::Max(a), AggAccum::Max(b)) => {
                if let Some(bv) = b {
                    if a.as_ref().is_none_or(|av| bv > av) {
                        *a = Some(bv.clone());
                    }
                }
            }
            (AggAccum::Avg { sum: sa, count: ca }, AggAccum::Avg { sum: sb, count: cb }) => {
                *sa += sb;
                *ca += cb;
            }
            // tidy:allow(no-panic-paths): planner invariant — accumulators of one
            // expression always share a function; merging mismatched kinds would
            // silently corrupt results, so fail loudly
            (a, b) => panic!("cannot merge {:?} into {:?}", b.func(), a.func()),
        }
    }

    /// Final scalar value of the aggregate.
    pub fn finalize(&self) -> Value {
        match self {
            AggAccum::Sum(s) => Value::float(*s),
            AggAccum::Count(c) => Value::Int(*c),
            AggAccum::Min(m) | AggAccum::Max(m) => m.clone().unwrap_or(Value::Int(0)),
            AggAccum::Avg { sum, count } => {
                if *count == 0 {
                    Value::float(0.0)
                } else {
                    Value::float(sum / *count as f64)
                }
            }
        }
    }
}

/// One aggregate hash-table entry: the group key values plus one accumulator
/// per aggregate expression (aligned with the fingerprint's `aggregates`).
#[derive(Debug, Clone, PartialEq)]
pub struct AggPayload {
    /// Group-by values, aligned with the fingerprint's `key_attrs`.
    pub group: Row,
    /// Accumulator states, aligned with the fingerprint's `aggregates`.
    pub accums: Vec<AggAccum>,
}

impl AggPayload {
    /// Fresh payload for a group with the given aggregate expressions.
    pub fn new(group: Row, aggs: &[AggExpr]) -> Self {
        AggPayload {
            group,
            accums: aggs.iter().map(|a| AggAccum::new(a.func)).collect(),
        }
    }
}

/// A cached hash table, typed by what produced it.
#[derive(Debug, Clone)]
pub enum StoredHt {
    /// Join build side: multi-map join-key → tagged rows.
    Join(hashstash_hashtable::ExtendibleHashTable<TaggedRow>),
    /// Aggregate: group-key → accumulator states.
    Agg(hashstash_hashtable::ExtendibleHashTable<AggPayload>),
    /// Shared grouping phase: group-key → raw tagged rows.
    SharedGroup(hashstash_hashtable::ExtendibleHashTable<TaggedRow>),
}

impl StoredHt {
    /// Logical footprint in bytes (the cost model's `htSize`).
    pub fn logical_bytes(&self) -> usize {
        match self {
            StoredHt::Join(ht) | StoredHt::SharedGroup(ht) => ht.logical_bytes(),
            StoredHt::Agg(ht) => ht.logical_bytes(),
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        match self {
            StoredHt::Join(ht) | StoredHt::SharedGroup(ht) => ht.len(),
            StoredHt::Agg(ht) => ht.len(),
        }
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        match self {
            StoredHt::Join(ht) | StoredHt::SharedGroup(ht) => ht.distinct_keys(),
            StoredHt::Agg(ht) => ht.distinct_keys(),
        }
    }

    /// Logical tuple width in bytes.
    pub fn tuple_width(&self) -> usize {
        match self {
            StoredHt::Join(ht) | StoredHt::SharedGroup(ht) => ht.tuple_width(),
            StoredHt::Agg(ht) => ht.tuple_width(),
        }
    }
}

impl ReusePayload for StoredHt {
    fn logical_bytes(&self) -> usize {
        StoredHt::logical_bytes(self)
    }

    fn len(&self) -> usize {
        StoredHt::len(self)
    }

    fn retain_mask(&mut self, keep: &[bool]) {
        let mut idx = 0usize;
        let mut keep_it = || {
            let k = keep.get(idx).copied().unwrap_or(false);
            idx += 1;
            k
        };
        match self {
            StoredHt::Join(t) | StoredHt::SharedGroup(t) => t.retain(|_, _| keep_it()),
            StoredHt::Agg(t) => t.retain(|_, _| keep_it()),
        }
    }
}

/// Approximate in-memory size of one materialized row (arrays of scalars).
pub fn row_bytes(row: &Row) -> usize {
    row.values()
        .iter()
        .map(|v| match v {
            Value::Str(s) => 16 + s.len(),
            _ => 8,
        })
        .sum::<usize>()
        + 24
}

/// A materialized intermediate result: the payload type of the temp-table
/// baseline (plain row vectors, Nagel et al. style). Byte accounting is
/// precomputed so budget checks never re-walk the rows.
#[derive(Debug, Clone, PartialEq)]
pub struct MaterializedRows {
    rows: Vec<Row>,
    bytes: usize,
}

impl MaterializedRows {
    /// Wrap materialized rows, computing their footprint once.
    pub fn new(rows: Vec<Row>) -> Self {
        let bytes = rows.iter().map(row_bytes).sum();
        MaterializedRows { rows, bytes }
    }

    /// The materialized rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }
}

impl std::ops::Deref for MaterializedRows {
    type Target = [Row];

    fn deref(&self) -> &[Row] {
        &self.rows
    }
}

impl ReusePayload for MaterializedRows {
    fn logical_bytes(&self) -> usize {
        self.bytes
    }

    fn len(&self) -> usize {
        self.rows.len()
    }

    fn retain_mask(&mut self, keep: &[bool]) {
        let mut idx = 0usize;
        self.rows.retain(|_| {
            let k = keep.get(idx).copied().unwrap_or(false);
            idx += 1;
            k
        });
        self.bytes = self.rows.iter().map(row_bytes).sum();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_count_update_finalize() {
        let mut s = AggAccum::new(AggFunc::Sum);
        s.update(&Value::Int(3));
        s.update(&Value::float(1.5));
        assert_eq!(s.finalize(), Value::float(4.5));

        let mut c = AggAccum::new(AggFunc::Count);
        c.update(&Value::str("whatever"));
        c.update(&Value::Int(0));
        assert_eq!(c.finalize(), Value::Int(2));
    }

    #[test]
    fn min_max_track_extremes() {
        let mut mn = AggAccum::new(AggFunc::Min);
        let mut mx = AggAccum::new(AggFunc::Max);
        for v in [5, 2, 9] {
            mn.update(&Value::Int(v));
            mx.update(&Value::Int(v));
        }
        assert_eq!(mn.finalize(), Value::Int(2));
        assert_eq!(mx.finalize(), Value::Int(9));
    }

    #[test]
    fn avg_accumulates_sum_and_count() {
        let mut a = AggAccum::new(AggFunc::Avg);
        a.update(&Value::Int(2));
        a.update(&Value::Int(4));
        assert_eq!(a.finalize(), Value::float(3.0));
        assert_eq!(AggAccum::new(AggFunc::Avg).finalize(), Value::float(0.0));
    }

    #[test]
    fn merge_partial_states() {
        let mut a = AggAccum::new(AggFunc::Sum);
        a.update(&Value::Int(1));
        let mut b = AggAccum::new(AggFunc::Sum);
        b.update(&Value::Int(2));
        a.merge(&b);
        assert_eq!(a.finalize(), Value::float(3.0));

        let mut mn = AggAccum::Min(Some(Value::Int(5)));
        mn.merge(&AggAccum::Min(Some(Value::Int(3))));
        assert_eq!(mn.finalize(), Value::Int(3));
        mn.merge(&AggAccum::Min(None));
        assert_eq!(mn.finalize(), Value::Int(3));
    }

    #[test]
    #[should_panic(expected = "cannot merge")]
    fn merge_mismatched_functions_panics() {
        let mut a = AggAccum::new(AggFunc::Sum);
        a.merge(&AggAccum::new(AggFunc::Count));
    }

    #[test]
    fn agg_payload_construction() {
        let aggs = vec![
            AggExpr::new(AggFunc::Sum, "l.q"),
            AggExpr::new(AggFunc::Count, "l.q"),
        ];
        let p = AggPayload::new(Row::new(vec![Value::Int(1)]), &aggs);
        assert_eq!(p.accums.len(), 2);
        assert_eq!(p.accums[0].func(), AggFunc::Sum);
        assert_eq!(p.accums[1].func(), AggFunc::Count);
    }

    #[test]
    fn stored_ht_accessors() {
        let mut ht = hashstash_hashtable::ExtendibleHashTable::new(16);
        ht.insert(1, TaggedRow::untagged(Row::new(vec![Value::Int(1)])));
        ht.insert(1, TaggedRow::untagged(Row::new(vec![Value::Int(2)])));
        let stored = StoredHt::Join(ht);
        assert_eq!(stored.len(), 2);
        assert_eq!(stored.distinct_keys(), 1);
        assert_eq!(stored.tuple_width(), 16);
        assert!(!stored.is_empty());
        assert!(stored.logical_bytes() > 0);
    }
}
