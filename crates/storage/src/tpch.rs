//! Deterministic TPC-H-style data generator.
//!
//! The paper evaluates on TPC-H SF=10 "with secondary indexes on all
//! selection attributes used in our query workloads" and notes that relative
//! gains are scale-invariant (§6). This generator produces the same seven
//! tables at a configurable scale factor, deterministically from a seed, and
//! adds the `c_age` column on CUSTOMER that the paper's example queries use
//! (Figure 2/4) — `c_age` is not part of standard TPC-H.
//!
//! Cardinalities follow TPC-H: per unit scale factor there are 150k
//! customers, 1.5M orders (10 per customer), ~6M lineitems (1–7 per order),
//! 200k parts, 10k suppliers, plus the fixed 25 nations and 5 regions.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use hashstash_types::{date, DataType, Value};

use crate::catalog::Catalog;
use crate::table::TableBuilder;

/// First possible `o_orderdate` (TPC-H: 1992-01-01).
pub fn min_order_date() -> i32 {
    date::days_from_ymd(1992, 1, 1)
}

/// Last possible `o_orderdate` (TPC-H: 1998-08-02).
pub fn max_order_date() -> i32 {
    date::days_from_ymd(1998, 8, 2)
}

/// Last possible `l_shipdate` (order date + up to 121 days).
pub fn max_ship_date() -> i32 {
    max_order_date() + 121
}

/// Customer age bounds for the paper's `c_age` extension column.
pub const MIN_AGE: i64 = 18;
/// Upper (inclusive) customer age.
pub const MAX_AGE: i64 = 92;

/// TPC-H market segments.
pub const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct TpchConfig {
    /// TPC-H scale factor. SF=1 is ~6M lineitems; experiments here default
    /// to much smaller SFs (see DESIGN.md, substitution table).
    pub scale_factor: f64,
    /// RNG seed — the same seed always produces the same database.
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            scale_factor: 0.01,
            seed: 42,
        }
    }
}

impl TpchConfig {
    /// Convenience constructor.
    pub fn new(scale_factor: f64, seed: u64) -> Self {
        TpchConfig { scale_factor, seed }
    }

    /// Number of customers at this scale factor (min 50 so tiny test
    /// databases stay joinable).
    pub fn customers(&self) -> usize {
        ((150_000.0 * self.scale_factor) as usize).max(50)
    }

    /// Number of orders.
    pub fn orders(&self) -> usize {
        self.customers() * 10
    }

    /// Number of parts.
    pub fn parts(&self) -> usize {
        ((200_000.0 * self.scale_factor) as usize).max(40)
    }

    /// Number of suppliers.
    pub fn suppliers(&self) -> usize {
        ((10_000.0 * self.scale_factor) as usize).max(10)
    }
}

/// Generate the full database and register secondary indexes on every
/// selection attribute the paper's workloads touch.
pub fn generate(config: TpchConfig) -> Catalog {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut catalog = Catalog::new();

    catalog.register(gen_region());
    catalog.register(gen_nation(&mut rng));
    catalog.register(gen_supplier(&config, &mut rng));
    catalog.register(gen_customer(&config, &mut rng));
    catalog.register(gen_part(&config, &mut rng));
    let (orders, order_dates) = gen_orders(&config, &mut rng);
    catalog.register(orders);
    catalog.register(gen_lineitem(&config, &order_dates, &mut rng));

    catalog
}

fn gen_region() -> crate::table::Table {
    let mut b = TableBuilder::new(
        "region",
        vec![("r_regionkey", DataType::Int), ("r_name", DataType::Str)],
    );
    for (i, name) in ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
        .iter()
        .enumerate()
    {
        b.push_row(vec![Value::Int(i as i64), Value::str(name)]);
    }
    b.finish()
}

fn gen_nation(rng: &mut SmallRng) -> crate::table::Table {
    let names = [
        "ALGERIA",
        "ARGENTINA",
        "BRAZIL",
        "CANADA",
        "EGYPT",
        "ETHIOPIA",
        "FRANCE",
        "GERMANY",
        "INDIA",
        "INDONESIA",
        "IRAN",
        "IRAQ",
        "JAPAN",
        "JORDAN",
        "KENYA",
        "MOROCCO",
        "MOZAMBIQUE",
        "PERU",
        "CHINA",
        "ROMANIA",
        "SAUDI ARABIA",
        "VIETNAM",
        "RUSSIA",
        "UNITED KINGDOM",
        "UNITED STATES",
    ];
    let mut b = TableBuilder::new(
        "nation",
        vec![
            ("n_nationkey", DataType::Int),
            ("n_name", DataType::Str),
            ("n_regionkey", DataType::Int),
        ],
    );
    for (i, name) in names.iter().enumerate() {
        b.push_row(vec![
            Value::Int(i as i64),
            Value::str(name),
            Value::Int(rng.gen_range(0..5)),
        ]);
    }
    b.finish()
}

fn gen_supplier(config: &TpchConfig, rng: &mut SmallRng) -> crate::table::Table {
    let mut b = TableBuilder::with_capacity(
        "supplier",
        vec![
            ("s_suppkey", DataType::Int),
            ("s_nationkey", DataType::Int),
            ("s_acctbal", DataType::Float),
        ],
        config.suppliers(),
    );
    for k in 1..=config.suppliers() as i64 {
        b.push_row(vec![
            Value::Int(k),
            Value::Int(rng.gen_range(0..25)),
            Value::float((rng.gen_range(-99_999..=999_999) as f64) / 100.0),
        ]);
    }
    b.finish_with_indexes(&["s_acctbal"])
        .expect("valid index column")
}

fn gen_customer(config: &TpchConfig, rng: &mut SmallRng) -> crate::table::Table {
    let mut b = TableBuilder::with_capacity(
        "customer",
        vec![
            ("c_custkey", DataType::Int),
            ("c_age", DataType::Int),
            ("c_nationkey", DataType::Int),
            ("c_acctbal", DataType::Float),
            ("c_mktsegment", DataType::Str),
        ],
        config.customers(),
    );
    for k in 1..=config.customers() as i64 {
        b.push_row(vec![
            Value::Int(k),
            Value::Int(rng.gen_range(MIN_AGE..=MAX_AGE)),
            Value::Int(rng.gen_range(0..25)),
            Value::float((rng.gen_range(-99_999..=999_999) as f64) / 100.0),
            Value::str(SEGMENTS[rng.gen_range(0..SEGMENTS.len())]),
        ]);
    }
    b.finish_with_indexes(&["c_age", "c_mktsegment"])
        .expect("valid index columns")
}

fn gen_part(config: &TpchConfig, rng: &mut SmallRng) -> crate::table::Table {
    let mut b = TableBuilder::with_capacity(
        "part",
        vec![
            ("p_partkey", DataType::Int),
            ("p_brand", DataType::Str),
            ("p_mfgr", DataType::Str),
            ("p_size", DataType::Int),
            ("p_retailprice", DataType::Float),
        ],
        config.parts(),
    );
    for k in 1..=config.parts() as i64 {
        let m = rng.gen_range(1..=5);
        let brand = rng.gen_range(1..=5);
        b.push_row(vec![
            Value::Int(k),
            Value::str(&format!("Brand#{m}{brand}")),
            Value::str(&format!("Manufacturer#{m}")),
            Value::Int(rng.gen_range(1..=50)),
            Value::float(900.0 + (k % 1000) as f64 / 10.0),
        ]);
    }
    b.finish_with_indexes(&["p_brand", "p_size"])
        .expect("valid index columns")
}

fn gen_orders(config: &TpchConfig, rng: &mut SmallRng) -> (crate::table::Table, Vec<i32>) {
    let mut b = TableBuilder::with_capacity(
        "orders",
        vec![
            ("o_orderkey", DataType::Int),
            ("o_custkey", DataType::Int),
            ("o_orderdate", DataType::Date),
            ("o_totalprice", DataType::Float),
        ],
        config.orders(),
    );
    let customers = config.customers() as i64;
    let lo = min_order_date();
    let hi = max_order_date();
    let mut dates = Vec::with_capacity(config.orders());
    for k in 1..=config.orders() as i64 {
        let d = rng.gen_range(lo..=hi);
        dates.push(d);
        b.push_row(vec![
            Value::Int(k),
            Value::Int(rng.gen_range(1..=customers)),
            Value::Date(d),
            Value::float((rng.gen_range(1_000..=500_000) as f64) / 100.0),
        ]);
    }
    (
        b.finish_with_indexes(&["o_orderdate"])
            .expect("valid index column"),
        dates,
    )
}

fn gen_lineitem(
    config: &TpchConfig,
    order_dates: &[i32],
    rng: &mut SmallRng,
) -> crate::table::Table {
    let mut b = TableBuilder::with_capacity(
        "lineitem",
        vec![
            ("l_orderkey", DataType::Int),
            ("l_partkey", DataType::Int),
            ("l_suppkey", DataType::Int),
            ("l_quantity", DataType::Float),
            ("l_extendedprice", DataType::Float),
            ("l_discount", DataType::Float),
            ("l_shipdate", DataType::Date),
        ],
        // 1–7 lineitems per order, 4 expected: reserve the mean so the
        // common case never reallocates more than once.
        order_dates.len() * 4,
    );
    let parts = config.parts() as i64;
    let suppliers = config.suppliers() as i64;
    for (order_idx, &odate) in order_dates.iter().enumerate() {
        let orderkey = (order_idx + 1) as i64;
        let items = rng.gen_range(1..=7);
        for _ in 0..items {
            let qty = rng.gen_range(1..=50) as f64;
            let price = (rng.gen_range(90_000..=110_000) as f64) / 100.0;
            b.push_row(vec![
                Value::Int(orderkey),
                Value::Int(rng.gen_range(1..=parts)),
                Value::Int(rng.gen_range(1..=suppliers)),
                Value::float(qty),
                Value::float(qty * price),
                Value::float(rng.gen_range(0..=10) as f64 / 100.0),
                Value::Date(odate + rng.gen_range(1..=121)),
            ]);
        }
    }
    b.finish_with_indexes(&["l_shipdate"])
        .expect("valid index column")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Catalog {
        generate(TpchConfig::new(0.001, 7))
    }

    #[test]
    fn all_tables_present() {
        let cat = tiny();
        for t in [
            "region", "nation", "supplier", "customer", "part", "orders", "lineitem",
        ] {
            assert!(cat.get(t).is_ok(), "missing table {t}");
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = generate(TpchConfig::new(0.001, 99));
        let b = generate(TpchConfig::new(0.001, 99));
        let la = a.get("lineitem").unwrap();
        let lb = b.get("lineitem").unwrap();
        assert_eq!(la.row_count(), lb.row_count());
        for i in (0..la.row_count()).step_by(97) {
            assert_eq!(la.row(i), lb.row(i));
        }
        let c = generate(TpchConfig::new(0.001, 100));
        let lc = c.get("lineitem").unwrap();
        // Different seed ⇒ different data (overwhelmingly likely).
        let same = (0..la.row_count().min(lc.row_count()))
            .take(100)
            .all(|i| la.row(i) == lc.row(i));
        assert!(!same, "different seeds should differ");
    }

    #[test]
    fn cardinalities_scale() {
        let cfg = TpchConfig::new(0.01, 1);
        let cat = generate(cfg);
        assert_eq!(cat.get("customer").unwrap().row_count(), cfg.customers());
        assert_eq!(cat.get("orders").unwrap().row_count(), cfg.orders());
        let li = cat.get("lineitem").unwrap().row_count();
        assert!(li >= cfg.orders() && li <= cfg.orders() * 7);
    }

    #[test]
    fn foreign_keys_resolve() {
        let cat = tiny();
        let customers = cat.get("customer").unwrap().row_count() as i64;
        let orders = cat.get("orders").unwrap();
        let custkey_col = orders.column_by_name("o_custkey").unwrap();
        for i in 0..orders.row_count() {
            let k = custkey_col.get(i).as_int().unwrap();
            assert!(k >= 1 && k <= customers, "dangling o_custkey {k}");
        }
    }

    #[test]
    fn ship_date_after_order_date() {
        let cat = tiny();
        let orders = cat.get("orders").unwrap();
        let lineitem = cat.get("lineitem").unwrap();
        let odate = orders.column_by_name("o_orderdate").unwrap();
        let lkey = lineitem.column_by_name("l_orderkey").unwrap();
        let sdate = lineitem.column_by_name("l_shipdate").unwrap();
        for i in 0..lineitem.row_count() {
            let ok = lkey.get(i).as_int().unwrap() as usize - 1;
            assert!(sdate.get(i).as_date().unwrap() > odate.get(ok).as_date().unwrap());
        }
    }

    #[test]
    fn ages_in_bounds_and_indexed() {
        let cat = tiny();
        let customer = cat.get("customer").unwrap();
        let age = customer.column_by_name("c_age").unwrap();
        for i in 0..customer.row_count() {
            let a = age.get(i).as_int().unwrap();
            assert!((MIN_AGE..=MAX_AGE).contains(&a));
        }
        assert!(customer.index_on("c_age").is_some());
        assert!(cat
            .get("lineitem")
            .unwrap()
            .index_on("l_shipdate")
            .is_some());
        assert!(cat.get("orders").unwrap().index_on("o_orderdate").is_some());
        assert!(cat.get("part").unwrap().index_on("p_brand").is_some());
    }

    #[test]
    fn date_constants_ordered() {
        assert!(min_order_date() < max_order_date());
        assert!(max_order_date() < max_ship_date());
    }
}
