//! Typed columnar storage.

use std::collections::HashMap;
use std::sync::Arc;

use hashstash_types::{DataType, Value};

/// A typed column of values.
///
/// Strings are dictionary-encoded: the `dict` holds distinct strings, the
/// `codes` vector holds per-row dictionary indices. TPC-H string selection
/// attributes (brand, mfgr, segment…) are low-cardinality, so this keeps
/// scans cache-friendly and makes string equality a `u32` compare.
#[derive(Debug, Clone)]
pub enum Column {
    Int(Vec<i64>),
    Float(Vec<f64>),
    Date(Vec<i32>),
    Str {
        dict: Vec<Arc<str>>,
        codes: Vec<u32>,
    },
}

impl Column {
    /// An empty column of the given type.
    pub fn new(dtype: DataType) -> Self {
        match dtype {
            DataType::Int => Column::Int(Vec::new()),
            DataType::Float => Column::Float(Vec::new()),
            DataType::Date => Column::Date(Vec::new()),
            DataType::Str => Column::Str {
                dict: Vec::new(),
                codes: Vec::new(),
            },
        }
    }

    /// The column's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int(_) => DataType::Int,
            Column::Float(_) => DataType::Float,
            Column::Date(_) => DataType::Date,
            Column::Str { .. } => DataType::Str,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Date(v) => v.len(),
            Column::Str { codes, .. } => codes.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value at row `i` (clones; string clones are refcount bumps).
    pub fn get(&self, i: usize) -> Value {
        match self {
            Column::Int(v) => Value::Int(v[i]),
            Column::Float(v) => Value::float(v[i]),
            Column::Date(v) => Value::Date(v[i]),
            Column::Str { dict, codes } => Value::Str(dict[codes[i] as usize].clone()),
        }
    }

    /// Compare row `i` against a scalar without materializing a `Value`.
    ///
    /// Returns `None` on type mismatch.
    pub fn cmp_row(&self, i: usize, v: &Value) -> Option<std::cmp::Ordering> {
        match (self, v) {
            (Column::Int(c), Value::Int(x)) => Some(c[i].cmp(x)),
            (Column::Date(c), Value::Date(x)) => Some(c[i].cmp(x)),
            (Column::Float(c), Value::Float(x)) => Some(hashstash_types::F64(c[i]).cmp(x)),
            (Column::Str { dict, codes }, Value::Str(s)) => {
                Some(dict[codes[i] as usize].as_ref().cmp(s.as_ref()))
            }
            _ => None,
        }
    }

    /// Approximate heap footprint in bytes (used in memory statistics).
    ///
    /// Each dictionary entry is charged its string bytes plus the
    /// `Arc<str>` allocation header (two 8-byte reference counts) plus the
    /// 16-byte fat pointer slot in the `dict` vector. The header is charged
    /// per *entry*, not per shared `Arc`: a dictionary entry keeps its
    /// backing allocation alive regardless of how many other columns share
    /// it, so per-column accounting must not undercount it.
    pub fn bytes(&self) -> usize {
        match self {
            Column::Int(v) => v.len() * 8,
            Column::Float(v) => v.len() * 8,
            Column::Date(v) => v.len() * 4,
            Column::Str { dict, codes } => {
                codes.len() * 4 + dict.iter().map(|s| s.len() + 32).sum::<usize>()
            }
        }
    }

    /// The raw `i64` slice of an `Int` column.
    #[inline]
    pub fn as_int(&self) -> Option<&[i64]> {
        match self {
            Column::Int(v) => Some(v),
            _ => None,
        }
    }

    /// The raw `f64` slice of a `Float` column.
    #[inline]
    pub fn as_float(&self) -> Option<&[f64]> {
        match self {
            Column::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The raw day-count slice of a `Date` column.
    #[inline]
    pub fn as_date(&self) -> Option<&[i32]> {
        match self {
            Column::Date(v) => Some(v),
            _ => None,
        }
    }

    /// Dictionary and per-row codes of a `Str` column.
    #[inline]
    pub fn dict_parts(&self) -> Option<(&[Arc<str>], &[u32])> {
        match self {
            Column::Str { dict, codes } => Some((dict, codes)),
            _ => None,
        }
    }

    /// Selection-vector filter kernel: append to `sel` the row ids in
    /// `range` whose value passes `kernel`, in ascending order. Returns
    /// `false` (leaving `sel` untouched) when the kernel's type does not
    /// match the column — the caller falls back to row-at-a-time
    /// evaluation. Each arm is a tight loop over the typed slice; no
    /// per-row `Value` is materialized.
    pub fn select_range(
        &self,
        range: std::ops::Range<usize>,
        kernel: &RangeKernel,
        sel: &mut Vec<u32>,
    ) -> bool {
        match (self, kernel) {
            (Column::Int(v), RangeKernel::Int { lo, hi }) => {
                for i in range {
                    if (*lo..=*hi).contains(&v[i]) {
                        sel.push(i as u32);
                    }
                }
                true
            }
            (Column::Date(v), RangeKernel::Date { lo, hi }) => {
                for i in range {
                    if (*lo..=*hi).contains(&v[i]) {
                        sel.push(i as u32);
                    }
                }
                true
            }
            (Column::Float(v), RangeKernel::Float { lo, hi }) => {
                for i in range {
                    let k = hashstash_types::f64_order_key(v[i]);
                    if (*lo..=*hi).contains(&k) {
                        sel.push(i as u32);
                    }
                }
                true
            }
            (Column::Str { codes, .. }, RangeKernel::Dict { ok }) => {
                for i in range {
                    if ok[codes[i] as usize] {
                        sel.push(i as u32);
                    }
                }
                true
            }
            _ => false,
        }
    }

    /// Selection-vector refinement kernel: retain in `sel` only the row ids
    /// whose value passes `kernel` (order preserved). Returns `false`
    /// (leaving `sel` untouched) on a kernel/column type mismatch.
    pub fn refine_range(&self, kernel: &RangeKernel, sel: &mut Vec<u32>) -> bool {
        match (self, kernel) {
            (Column::Int(v), RangeKernel::Int { lo, hi }) => {
                sel.retain(|&rid| (*lo..=*hi).contains(&v[rid as usize]));
                true
            }
            (Column::Date(v), RangeKernel::Date { lo, hi }) => {
                sel.retain(|&rid| (*lo..=*hi).contains(&v[rid as usize]));
                true
            }
            (Column::Float(v), RangeKernel::Float { lo, hi }) => {
                sel.retain(|&rid| {
                    (*lo..=*hi).contains(&hashstash_types::f64_order_key(v[rid as usize]))
                });
                true
            }
            (Column::Str { codes, .. }, RangeKernel::Dict { ok }) => {
                sel.retain(|&rid| ok[codes[rid as usize] as usize]);
                true
            }
            _ => false,
        }
    }
}

/// A compiled, type-specific range test the selection kernels run per row.
///
/// All four variants are *inclusive* range compares over primitive
/// representations: interval bounds are lowered once per scan box
/// (exclusive bounds become `± 1` on discrete domains and on the float
/// order key; dictionary predicates become a per-code boolean mask), after
/// which the per-row work is a branchless-friendly compare with no `Value`
/// in sight. An impossible predicate lowers to an empty range (`lo > hi`).
#[derive(Debug, Clone)]
pub enum RangeKernel {
    /// `lo <= x <= hi` over an `Int` column.
    Int { lo: i64, hi: i64 },
    /// `lo <= x <= hi` over a `Date` column (day counts).
    Date { lo: i32, hi: i32 },
    /// `lo <= f64_order_key(x) <= hi` over a `Float` column
    /// ([`hashstash_types::f64_order_key`] mirrors the `F64` total order).
    Float { lo: u64, hi: u64 },
    /// Per-dictionary-code acceptance mask over a `Str` column: the string
    /// predicate is evaluated once per distinct dictionary entry, turning
    /// the per-row test into a `u32` index into `ok`.
    Dict { ok: Vec<bool> },
}

/// Incremental builder for one column.
#[derive(Debug)]
pub struct ColumnBuilder {
    column: Column,
    dict_lookup: HashMap<Arc<str>, u32>,
}

impl ColumnBuilder {
    /// Start building a column of the given type.
    pub fn new(dtype: DataType) -> Self {
        ColumnBuilder {
            column: Column::new(dtype),
            dict_lookup: HashMap::new(),
        }
    }

    /// Start building a column with room for `n` rows, so pushing `n`
    /// values never grow-reallocates the data vector (the TPC-H loaders
    /// know their cardinalities up front). The string dictionary is left
    /// at its default capacity — distinct-value counts are small and
    /// unknown.
    pub fn with_capacity(dtype: DataType, n: usize) -> Self {
        let column = match dtype {
            DataType::Int => Column::Int(Vec::with_capacity(n)),
            DataType::Float => Column::Float(Vec::with_capacity(n)),
            DataType::Date => Column::Date(Vec::with_capacity(n)),
            DataType::Str => Column::Str {
                dict: Vec::new(),
                codes: Vec::with_capacity(n),
            },
        };
        ColumnBuilder {
            column,
            dict_lookup: HashMap::new(),
        }
    }

    /// Append a value. Panics on type mismatch (catalog construction is
    /// programmatic; a mismatch is a bug, not user input).
    pub fn push(&mut self, v: Value) {
        match (&mut self.column, v) {
            (Column::Int(c), Value::Int(x)) => c.push(x),
            (Column::Float(c), Value::Float(x)) => c.push(x.0),
            (Column::Date(c), Value::Date(x)) => c.push(x),
            (Column::Str { dict, codes }, Value::Str(s)) => {
                let code = match self.dict_lookup.get(&s) {
                    Some(&c) => c,
                    None => {
                        let c = dict.len() as u32;
                        dict.push(s.clone());
                        self.dict_lookup.insert(s, c);
                        c
                    }
                };
                codes.push(code);
            }
            (col, v) => panic!(
                "type mismatch pushing {:?} into {:?} column",
                v.data_type(),
                col.data_type()
            ),
        }
    }

    /// Convenience: push an `i64`.
    pub fn push_int(&mut self, v: i64) {
        self.push(Value::Int(v));
    }

    /// Convenience: push an `f64`.
    pub fn push_float(&mut self, v: f64) {
        self.push(Value::float(v));
    }

    /// Convenience: push a date given as days since epoch.
    pub fn push_date(&mut self, days: i32) {
        self.push(Value::Date(days));
    }

    /// Convenience: push a string.
    pub fn push_str(&mut self, s: &str) {
        self.push(Value::str(s));
    }

    /// Finish building.
    pub fn finish(self) -> Column {
        self.column
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_get_all_types() {
        let mut b = ColumnBuilder::new(DataType::Int);
        b.push_int(1);
        b.push_int(2);
        let c = b.finish();
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1), Value::Int(2));
        assert_eq!(c.data_type(), DataType::Int);

        let mut b = ColumnBuilder::new(DataType::Str);
        b.push_str("a");
        b.push_str("b");
        b.push_str("a");
        let c = b.finish();
        assert_eq!(c.get(2), Value::str("a"));
        if let Column::Str { dict, .. } = &c {
            assert_eq!(dict.len(), 2, "dictionary deduplicates");
        } else {
            panic!("expected string column");
        }
    }

    #[test]
    fn cmp_row_matches_value_order() {
        let mut b = ColumnBuilder::new(DataType::Date);
        b.push_date(100);
        let c = b.finish();
        assert_eq!(
            c.cmp_row(0, &Value::Date(50)),
            Some(std::cmp::Ordering::Greater)
        );
        assert_eq!(c.cmp_row(0, &Value::Int(50)), None, "type mismatch");
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn push_wrong_type_panics() {
        let mut b = ColumnBuilder::new(DataType::Int);
        b.push_str("nope");
    }

    #[test]
    fn bytes_accounting() {
        let mut b = ColumnBuilder::new(DataType::Int);
        for i in 0..10 {
            b.push_int(i);
        }
        assert_eq!(b.finish().bytes(), 80);
    }

    #[test]
    fn str_bytes_accounting_golden() {
        let mut b = ColumnBuilder::new(DataType::Str);
        b.push_str("abc"); // dict entry 0: 3 bytes
        b.push_str("de"); // dict entry 1: 2 bytes
        b.push_str("abc"); // reuses entry 0
        let c = b.finish();
        // 3 codes * 4 bytes + per-entry (len + 16-byte Arc header +
        // 16-byte fat-pointer slot): (3 + 32) + (2 + 32).
        assert_eq!(c.bytes(), 12 + 35 + 34);
    }

    #[test]
    fn with_capacity_preallocates_without_changing_contents() {
        let mut a = ColumnBuilder::with_capacity(DataType::Int, 100);
        let mut b = ColumnBuilder::new(DataType::Int);
        for i in 0..100 {
            a.push_int(i);
            b.push_int(i);
        }
        let (a, b) = (a.finish(), b.finish());
        assert_eq!(a.len(), b.len());
        for i in 0..100 {
            assert_eq!(a.get(i), b.get(i));
        }
        let mut s = ColumnBuilder::with_capacity(DataType::Str, 4);
        s.push_str("x");
        s.push_str("y");
        s.push_str("x");
        let s = s.finish();
        let (dict, codes) = s.dict_parts().unwrap();
        assert_eq!(dict.len(), 2);
        assert_eq!(codes, &[0, 1, 0]);
    }

    #[test]
    fn typed_slice_accessors() {
        let mut b = ColumnBuilder::new(DataType::Int);
        b.push_int(5);
        let c = b.finish();
        assert_eq!(c.as_int(), Some(&[5i64][..]));
        assert!(c.as_float().is_none());
        assert!(c.as_date().is_none());
        assert!(c.dict_parts().is_none());
    }

    #[test]
    fn select_and_refine_kernels_match_scalar_filters() {
        let mut b = ColumnBuilder::new(DataType::Int);
        for v in [5i64, -3, 12, 7, 12, 0] {
            b.push_int(v);
        }
        let c = b.finish();
        let k = RangeKernel::Int { lo: 0, hi: 11 };
        let mut sel = Vec::new();
        assert!(c.select_range(0..c.len(), &k, &mut sel));
        assert_eq!(sel, vec![0, 3, 5]);
        // Refine with a tighter range.
        assert!(c.refine_range(&RangeKernel::Int { lo: 5, hi: 7 }, &mut sel));
        assert_eq!(sel, vec![0, 3]);
        // Type mismatch leaves the selection untouched.
        assert!(!c.refine_range(&RangeKernel::Date { lo: 0, hi: 1 }, &mut sel));
        assert_eq!(sel, vec![0, 3]);

        let mut b = ColumnBuilder::new(DataType::Float);
        for v in [1.5f64, -0.0, f64::NAN, 3.0] {
            b.push_float(v);
        }
        let c = b.finish();
        let k = RangeKernel::Float {
            lo: hashstash_types::f64_order_key(0.0),
            hi: hashstash_types::f64_order_key(2.0),
        };
        let mut sel = Vec::new();
        assert!(c.select_range(0..c.len(), &k, &mut sel));
        assert_eq!(sel, vec![0, 1], "-0.0 is inside [0, 2], NaN is above");

        let mut b = ColumnBuilder::new(DataType::Str);
        for s in ["a", "b", "a", "c"] {
            b.push_str(s);
        }
        let c = b.finish();
        let k = RangeKernel::Dict {
            ok: vec![true, false, true],
        };
        let mut sel = Vec::new();
        assert!(c.select_range(1..c.len(), &k, &mut sel));
        assert_eq!(sel, vec![2, 3]);
    }

    #[test]
    fn float_column_roundtrip() {
        let mut b = ColumnBuilder::new(DataType::Float);
        b.push_float(1.5);
        b.push_float(-2.5);
        let c = b.finish();
        assert_eq!(c.get(0), Value::float(1.5));
        assert_eq!(
            c.cmp_row(1, &Value::float(0.0)),
            Some(std::cmp::Ordering::Less)
        );
    }
}
