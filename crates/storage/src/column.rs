//! Typed columnar storage.

use std::collections::HashMap;
use std::sync::Arc;

use hashstash_types::{DataType, Value};

/// A typed column of values.
///
/// Strings are dictionary-encoded: the `dict` holds distinct strings, the
/// `codes` vector holds per-row dictionary indices. TPC-H string selection
/// attributes (brand, mfgr, segment…) are low-cardinality, so this keeps
/// scans cache-friendly and makes string equality a `u32` compare.
#[derive(Debug, Clone)]
pub enum Column {
    Int(Vec<i64>),
    Float(Vec<f64>),
    Date(Vec<i32>),
    Str {
        dict: Vec<Arc<str>>,
        codes: Vec<u32>,
    },
}

impl Column {
    /// An empty column of the given type.
    pub fn new(dtype: DataType) -> Self {
        match dtype {
            DataType::Int => Column::Int(Vec::new()),
            DataType::Float => Column::Float(Vec::new()),
            DataType::Date => Column::Date(Vec::new()),
            DataType::Str => Column::Str {
                dict: Vec::new(),
                codes: Vec::new(),
            },
        }
    }

    /// The column's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int(_) => DataType::Int,
            Column::Float(_) => DataType::Float,
            Column::Date(_) => DataType::Date,
            Column::Str { .. } => DataType::Str,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Date(v) => v.len(),
            Column::Str { codes, .. } => codes.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value at row `i` (clones; string clones are refcount bumps).
    pub fn get(&self, i: usize) -> Value {
        match self {
            Column::Int(v) => Value::Int(v[i]),
            Column::Float(v) => Value::float(v[i]),
            Column::Date(v) => Value::Date(v[i]),
            Column::Str { dict, codes } => Value::Str(dict[codes[i] as usize].clone()),
        }
    }

    /// Compare row `i` against a scalar without materializing a `Value`.
    ///
    /// Returns `None` on type mismatch.
    pub fn cmp_row(&self, i: usize, v: &Value) -> Option<std::cmp::Ordering> {
        match (self, v) {
            (Column::Int(c), Value::Int(x)) => Some(c[i].cmp(x)),
            (Column::Date(c), Value::Date(x)) => Some(c[i].cmp(x)),
            (Column::Float(c), Value::Float(x)) => Some(hashstash_types::F64(c[i]).cmp(x)),
            (Column::Str { dict, codes }, Value::Str(s)) => {
                Some(dict[codes[i] as usize].as_ref().cmp(s.as_ref()))
            }
            _ => None,
        }
    }

    /// Approximate heap footprint in bytes (used in memory statistics).
    pub fn bytes(&self) -> usize {
        match self {
            Column::Int(v) => v.len() * 8,
            Column::Float(v) => v.len() * 8,
            Column::Date(v) => v.len() * 4,
            Column::Str { dict, codes } => {
                codes.len() * 4 + dict.iter().map(|s| s.len() + 16).sum::<usize>()
            }
        }
    }
}

/// Incremental builder for one column.
#[derive(Debug)]
pub struct ColumnBuilder {
    column: Column,
    dict_lookup: HashMap<Arc<str>, u32>,
}

impl ColumnBuilder {
    /// Start building a column of the given type.
    pub fn new(dtype: DataType) -> Self {
        ColumnBuilder {
            column: Column::new(dtype),
            dict_lookup: HashMap::new(),
        }
    }

    /// Append a value. Panics on type mismatch (catalog construction is
    /// programmatic; a mismatch is a bug, not user input).
    pub fn push(&mut self, v: Value) {
        match (&mut self.column, v) {
            (Column::Int(c), Value::Int(x)) => c.push(x),
            (Column::Float(c), Value::Float(x)) => c.push(x.0),
            (Column::Date(c), Value::Date(x)) => c.push(x),
            (Column::Str { dict, codes }, Value::Str(s)) => {
                let code = match self.dict_lookup.get(&s) {
                    Some(&c) => c,
                    None => {
                        let c = dict.len() as u32;
                        dict.push(s.clone());
                        self.dict_lookup.insert(s, c);
                        c
                    }
                };
                codes.push(code);
            }
            (col, v) => panic!(
                "type mismatch pushing {:?} into {:?} column",
                v.data_type(),
                col.data_type()
            ),
        }
    }

    /// Convenience: push an `i64`.
    pub fn push_int(&mut self, v: i64) {
        self.push(Value::Int(v));
    }

    /// Convenience: push an `f64`.
    pub fn push_float(&mut self, v: f64) {
        self.push(Value::float(v));
    }

    /// Convenience: push a date given as days since epoch.
    pub fn push_date(&mut self, days: i32) {
        self.push(Value::Date(days));
    }

    /// Convenience: push a string.
    pub fn push_str(&mut self, s: &str) {
        self.push(Value::str(s));
    }

    /// Finish building.
    pub fn finish(self) -> Column {
        self.column
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_get_all_types() {
        let mut b = ColumnBuilder::new(DataType::Int);
        b.push_int(1);
        b.push_int(2);
        let c = b.finish();
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1), Value::Int(2));
        assert_eq!(c.data_type(), DataType::Int);

        let mut b = ColumnBuilder::new(DataType::Str);
        b.push_str("a");
        b.push_str("b");
        b.push_str("a");
        let c = b.finish();
        assert_eq!(c.get(2), Value::str("a"));
        if let Column::Str { dict, .. } = &c {
            assert_eq!(dict.len(), 2, "dictionary deduplicates");
        } else {
            panic!("expected string column");
        }
    }

    #[test]
    fn cmp_row_matches_value_order() {
        let mut b = ColumnBuilder::new(DataType::Date);
        b.push_date(100);
        let c = b.finish();
        assert_eq!(
            c.cmp_row(0, &Value::Date(50)),
            Some(std::cmp::Ordering::Greater)
        );
        assert_eq!(c.cmp_row(0, &Value::Int(50)), None, "type mismatch");
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn push_wrong_type_panics() {
        let mut b = ColumnBuilder::new(DataType::Int);
        b.push_str("nope");
    }

    #[test]
    fn bytes_accounting() {
        let mut b = ColumnBuilder::new(DataType::Int);
        for i in 0..10 {
            b.push_int(i);
        }
        assert_eq!(b.finish().bytes(), 80);
    }

    #[test]
    fn float_column_roundtrip() {
        let mut b = ColumnBuilder::new(DataType::Float);
        b.push_float(1.5);
        b.push_float(-2.5);
        let c = b.finish();
        assert_eq!(c.get(0), Value::float(1.5));
        assert_eq!(
            c.cmp_row(1, &Value::float(0.0)),
            Some(std::cmp::Ordering::Less)
        );
    }
}
