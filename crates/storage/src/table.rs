//! Tables: a schema plus columns plus optional secondary indexes.

use std::collections::HashMap;

use hashstash_types::{DataType, Field, HsError, Result, Row, Schema, Value};

use crate::column::{Column, ColumnBuilder};
use crate::index::SortedIndex;

/// An immutable in-memory table.
///
/// Column names are stored *unqualified* (`c_age`); the planner qualifies
/// them with the table name (`customer.c_age`) when building operator
/// schemas. Secondary indexes are registered per column and answer range
/// scans for the reuse-aware delta scans.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<Column>,
    indexes: HashMap<usize, SortedIndex>,
}

impl Table {
    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Unqualified schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Schema with every field qualified as `table.column`.
    pub fn qualified_schema(&self) -> Schema {
        Schema::new(
            self.schema
                .fields()
                .iter()
                .map(|f| Field::new(format!("{}.{}", self.name, f.name), f.dtype))
                .collect(),
        )
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Column by position.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Column by (unqualified) name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        Ok(&self.columns[self.schema.index_of(name)?])
    }

    /// Materialize row `i` across all columns.
    pub fn row(&self, i: usize) -> Row {
        Row::new(self.columns.iter().map(|c| c.get(i)).collect())
    }

    /// Materialize row `i` projected onto the given column positions.
    pub fn row_projected(&self, i: usize, cols: &[usize]) -> Row {
        Row::new(cols.iter().map(|&c| self.columns[c].get(i)).collect())
    }

    /// Reassemble a table from recovered parts: name, schema, columns and
    /// the positions of indexed columns. Indexes are rebuilt (not restored
    /// byte-wise — `SortedIndex::build` is deterministic over the column
    /// content, so a rebuilt index equals the original). Validates that
    /// columns are rectangular and match the schema's types and width.
    pub fn from_parts(
        name: impl Into<String>,
        schema: Schema,
        columns: Vec<Column>,
        indexed: &[usize],
    ) -> Result<Table> {
        let name = name.into();
        if columns.len() != schema.len() {
            return Err(HsError::ExecError(format!(
                "table {name}: {} columns for a {}-field schema",
                columns.len(),
                schema.len()
            )));
        }
        for (i, c) in columns.iter().enumerate() {
            if c.data_type() != schema.field_at(i).dtype {
                return Err(HsError::TypeMismatch {
                    expected: schema.field_at(i).dtype.to_string(),
                    found: c.data_type().to_string(),
                });
            }
        }
        let mut table = Table {
            name,
            schema,
            columns,
            indexes: HashMap::with_capacity(indexed.len()),
        };
        check_rectangular(&table)?;
        for &col in indexed {
            if col >= table.schema.len() {
                return Err(HsError::ExecError(format!(
                    "table {}: index on out-of-range column {col}",
                    table.name
                )));
            }
            let index = SortedIndex::build(&table.columns[col]);
            table.indexes.insert(col, index);
        }
        Ok(table)
    }

    /// Positions of columns carrying a secondary index, sorted (the
    /// persistence layer records these so recovery rebuilds the same
    /// indexes).
    pub fn indexed_columns(&self) -> Vec<usize> {
        let mut cols: Vec<usize> = self.indexes.keys().copied().collect();
        cols.sort_unstable();
        cols
    }

    /// Build (or rebuild) a sorted secondary index on the named column.
    pub fn create_index(&mut self, column: &str) -> Result<()> {
        let idx = self.schema.index_of(column)?;
        let index = SortedIndex::build(&self.columns[idx]);
        self.indexes.insert(idx, index);
        Ok(())
    }

    /// The secondary index on the named column, if one exists.
    pub fn index_on(&self, column: &str) -> Option<&SortedIndex> {
        let idx = self.schema.index_of(column).ok()?;
        self.indexes.get(&idx)
    }

    /// Whether an index exists on the given column position.
    pub fn has_index(&self, col: usize) -> bool {
        self.indexes.contains_key(&col)
    }

    /// Approximate heap footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.columns.iter().map(Column::bytes).sum::<usize>()
            + self.indexes.values().map(SortedIndex::bytes).sum::<usize>()
    }
}

/// Row-at-a-time table builder used by the generator and by tests.
#[derive(Debug)]
pub struct TableBuilder {
    name: String,
    schema: Schema,
    builders: Vec<ColumnBuilder>,
}

impl TableBuilder {
    /// Start a table with the given unqualified column names and types.
    pub fn new(name: impl Into<String>, columns: Vec<(&str, DataType)>) -> Self {
        TableBuilder::with_capacity(name, columns, 0)
    }

    /// Start a table with room for `rows` rows in every column, so loaders
    /// that know their cardinality up front (the TPC-H generator, recovery)
    /// never grow-reallocate while pushing.
    pub fn with_capacity(
        name: impl Into<String>,
        columns: Vec<(&str, DataType)>,
        rows: usize,
    ) -> Self {
        let schema = Schema::new(
            columns
                .iter()
                .map(|(n, t)| Field::new(*n, *t))
                .collect::<Vec<_>>(),
        );
        let builders = columns
            .iter()
            .map(|(_, t)| ColumnBuilder::with_capacity(*t, rows))
            .collect();
        TableBuilder {
            name: name.into(),
            schema,
            builders,
        }
    }

    /// Append one row. The value count must match the schema width.
    pub fn push_row(&mut self, values: Vec<Value>) {
        assert_eq!(
            values.len(),
            self.builders.len(),
            "row width mismatch for table {}",
            self.name
        );
        for (b, v) in self.builders.iter_mut().zip(values) {
            b.push(v);
        }
    }

    /// Finish, building sorted indexes on the named columns.
    pub fn finish_with_indexes(self, indexed: &[&str]) -> Result<Table> {
        let mut table = Table {
            name: self.name,
            schema: self.schema,
            columns: self
                .builders
                .into_iter()
                .map(ColumnBuilder::finish)
                .collect(),
            indexes: HashMap::new(),
        };
        for col in indexed {
            table.create_index(col)?;
        }
        Ok(table)
    }

    /// Finish without indexes.
    pub fn finish(self) -> Table {
        self.finish_with_indexes(&[])
            .expect("finish without indexes cannot fail")
    }
}

/// Validate that all columns have equal length (invariant check for tests).
pub fn check_rectangular(table: &Table) -> Result<()> {
    let n = table.row_count();
    for (i, c) in (0..table.schema().len()).map(|i| (i, table.column(i))) {
        if c.len() != n {
            return Err(HsError::ExecError(format!(
                "column {i} of table {} has {} rows, expected {n}",
                table.name(),
                c.len()
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people() -> Table {
        let mut b = TableBuilder::new(
            "people",
            vec![
                ("id", DataType::Int),
                ("age", DataType::Int),
                ("name", DataType::Str),
            ],
        );
        b.push_row(vec![Value::Int(1), Value::Int(30), Value::str("ann")]);
        b.push_row(vec![Value::Int(2), Value::Int(25), Value::str("bob")]);
        b.push_row(vec![Value::Int(3), Value::Int(35), Value::str("cy")]);
        b.finish_with_indexes(&["age"]).unwrap()
    }

    #[test]
    fn build_and_read_rows() {
        let t = people();
        assert_eq!(t.row_count(), 3);
        assert_eq!(
            t.row(1).values(),
            &[Value::Int(2), Value::Int(25), Value::str("bob")]
        );
        assert_eq!(t.row_projected(2, &[2]).values(), &[Value::str("cy")]);
        check_rectangular(&t).unwrap();
    }

    #[test]
    fn qualified_schema_prefixes_names() {
        let t = people();
        assert_eq!(t.qualified_schema().field_at(0).name, "people.id");
    }

    #[test]
    fn index_registration() {
        let t = people();
        assert!(t.index_on("age").is_some());
        assert!(t.index_on("id").is_none());
        assert!(t.has_index(1));
        assert!(!t.has_index(0));
    }

    #[test]
    fn column_by_name_errors() {
        let t = people();
        assert!(t.column_by_name("age").is_ok());
        assert!(matches!(
            t.column_by_name("nope"),
            Err(HsError::UnknownColumn(_))
        ));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn push_row_width_checked() {
        let mut b = TableBuilder::new("t", vec![("x", DataType::Int)]);
        b.push_row(vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn bytes_positive() {
        assert!(people().bytes() > 0);
    }

    #[test]
    fn from_parts_roundtrips_with_indexes() {
        let t = people();
        let columns: Vec<Column> = (0..t.schema().len()).map(|i| t.column(i).clone()).collect();
        let rebuilt =
            Table::from_parts(t.name(), t.schema().clone(), columns, &t.indexed_columns()).unwrap();
        assert_eq!(rebuilt.row_count(), t.row_count());
        assert_eq!(rebuilt.indexed_columns(), t.indexed_columns());
        assert!(rebuilt.index_on("age").is_some());
        for i in 0..t.row_count() {
            assert_eq!(rebuilt.row(i), t.row(i));
        }
    }

    #[test]
    fn from_parts_validates() {
        let t = people();
        // Wrong column count.
        assert!(
            Table::from_parts("x", t.schema().clone(), vec![t.column(0).clone()], &[]).is_err()
        );
        // Type mismatch against the schema.
        assert!(Table::from_parts(
            "x",
            t.schema().clone(),
            vec![
                t.column(1).clone(),
                t.column(0).clone(),
                t.column(2).clone()
            ],
            &[]
        )
        .is_ok()); // both Int — same type, allowed
                   // Out-of-range index position.
        let columns: Vec<Column> = (0..t.schema().len()).map(|i| t.column(i).clone()).collect();
        assert!(Table::from_parts("x", t.schema().clone(), columns, &[9]).is_err());
    }
}
