//! In-memory columnar storage: tables, secondary indexes, catalog and the
//! TPC-H-style data generator used by every experiment in the paper.
//!
//! The paper evaluates HashStash on a TPC-H SF=10 database "with secondary
//! indexes on all selection attributes used in our query workloads" (§6).
//! This crate provides that substrate:
//!
//! * [`Column`] — typed columnar vectors; strings are dictionary-encoded.
//! * [`Table`] — a named schema plus columns, with row materialization.
//! * [`SortedIndex`] — an order-preserving secondary index answering range
//!   scans (the delta scans of partial/overlapping reuse hit these).
//! * [`Catalog`] — name → table registry shared by planner and executor.
//! * [`tpch`] — deterministic generator for REGION, NATION, SUPPLIER,
//!   CUSTOMER (extended with the paper's `c_age`), PART, ORDERS, LINEITEM.

pub mod catalog;
pub mod column;
pub mod index;
pub mod table;
pub mod tpch;

pub use catalog::Catalog;
pub use column::{Column, ColumnBuilder, RangeKernel};
pub use index::SortedIndex;
pub use table::{Table, TableBuilder};
