//! Sorted secondary indexes answering range scans.
//!
//! The paper's setup uses "secondary indexes on all selection attributes"
//! (§6). Partial- and overlapping-reuse rewrites scan only the *missing*
//! tuples (`r ∧ ¬c`), which is a small range delta — exactly the access
//! pattern a sorted index serves well.

use std::ops::Bound;

use hashstash_types::Value;

use crate::column::Column;

/// A permutation of row ids sorted by the indexed column's values.
#[derive(Debug, Clone)]
pub struct SortedIndex {
    /// Row ids ordered by column value (ties in row order).
    perm: Vec<u32>,
    /// Sorted copy of the keys aligned with `perm`, so range lookups do not
    /// chase back into the column (one contiguous binary-searchable array).
    keys: Vec<Value>,
}

impl SortedIndex {
    /// Build an index over a column.
    pub fn build(column: &Column) -> Self {
        let n = column.len();
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.sort_by(|&a, &b| {
            column
                .get(a as usize)
                .cmp(&column.get(b as usize))
                .then(a.cmp(&b))
        });
        let keys = perm.iter().map(|&r| column.get(r as usize)).collect();
        SortedIndex { perm, keys }
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// Row ids whose key lies within the given bounds.
    ///
    /// Bounds follow `std::ops::Bound` semantics; `Unbounded` on both sides
    /// returns every row (in key order).
    pub fn range(&self, lo: Bound<&Value>, hi: Bound<&Value>) -> &[u32] {
        let start = match lo {
            Bound::Unbounded => 0,
            Bound::Included(v) => self.keys.partition_point(|k| k < v),
            Bound::Excluded(v) => self.keys.partition_point(|k| k <= v),
        };
        let end = match hi {
            Bound::Unbounded => self.keys.len(),
            Bound::Included(v) => self.keys.partition_point(|k| k <= v),
            Bound::Excluded(v) => self.keys.partition_point(|k| k < v),
        };
        if start >= end {
            &[]
        } else {
            &self.perm[start..end]
        }
    }

    /// Row ids with key exactly equal to `v`.
    pub fn equals(&self, v: &Value) -> &[u32] {
        self.range(Bound::Included(v), Bound::Included(v))
    }

    /// Approximate heap footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.perm.len() * 4 + self.keys.len() * std::mem::size_of::<Value>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnBuilder;
    use hashstash_types::DataType;

    fn date_index() -> (Column, SortedIndex) {
        let mut b = ColumnBuilder::new(DataType::Date);
        for d in [50, 10, 30, 10, 40] {
            b.push_date(d);
        }
        let c = b.finish();
        let idx = SortedIndex::build(&c);
        (c, idx)
    }

    #[test]
    fn full_range_returns_all_in_order() {
        let (c, idx) = date_index();
        let rows = idx.range(Bound::Unbounded, Bound::Unbounded);
        assert_eq!(rows.len(), 5);
        let mut prev = None;
        for &r in rows {
            let v = c.get(r as usize);
            if let Some(p) = prev {
                assert!(p <= v);
            }
            prev = Some(v);
        }
    }

    #[test]
    fn inclusive_and_exclusive_bounds() {
        let (_, idx) = date_index();
        let v10 = Value::Date(10);
        let v40 = Value::Date(40);
        let incl = idx.range(Bound::Included(&v10), Bound::Included(&v40));
        assert_eq!(incl.len(), 4); // 10,10,30,40
        let excl = idx.range(Bound::Excluded(&v10), Bound::Excluded(&v40));
        assert_eq!(excl.len(), 1); // 30
    }

    #[test]
    fn equals_handles_duplicates_and_misses() {
        let (_, idx) = date_index();
        assert_eq!(idx.equals(&Value::Date(10)).len(), 2);
        assert_eq!(idx.equals(&Value::Date(99)).len(), 0);
    }

    #[test]
    fn empty_range_when_inverted() {
        let (_, idx) = date_index();
        let lo = Value::Date(45);
        let hi = Value::Date(20);
        assert!(idx
            .range(Bound::Included(&lo), Bound::Included(&hi))
            .is_empty());
    }

    #[test]
    fn string_index_range() {
        let mut b = ColumnBuilder::new(DataType::Str);
        for s in ["Brand#22", "Brand#11", "Brand#33"] {
            b.push_str(s);
        }
        let c = b.finish();
        let idx = SortedIndex::build(&c);
        let lo = Value::str("Brand#11");
        let hi = Value::str("Brand#22");
        let rows = idx.range(Bound::Included(&lo), Bound::Included(&hi));
        assert_eq!(rows.len(), 2);
        assert!(idx.equals(&Value::str("Brand#33")).len() == 1);
    }

    #[test]
    fn empty_column_index() {
        let c = Column::new(DataType::Int);
        let idx = SortedIndex::build(&c);
        assert!(idx.is_empty());
        assert!(idx.range(Bound::Unbounded, Bound::Unbounded).is_empty());
    }
}
