//! Name → table registry shared by the planner and the executor.

use std::collections::HashMap;
use std::sync::Arc;

use hashstash_types::{HsError, Result};

use crate::table::Table;

/// A catalog of immutable tables.
///
/// Tables are held behind `Arc` so plans and executors can hold cheap
/// references while the catalog stays the single source of truth.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: HashMap<String, Arc<Table>>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a table under its own name, replacing any previous table
    /// with the same name.
    pub fn register(&mut self, table: Table) {
        self.tables
            .insert(table.name().to_string(), Arc::new(table));
    }

    /// Look up a table by name.
    pub fn get(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .get(name)
            .cloned()
            .ok_or_else(|| HsError::UnknownTable(name.to_string()))
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Total approximate footprint of all tables in bytes.
    pub fn bytes(&self) -> usize {
        self.tables.values().map(|t| t.bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;
    use hashstash_types::{DataType, Value};

    fn tiny(name: &str) -> Table {
        let mut b = TableBuilder::new(name, vec![("x", DataType::Int)]);
        b.push_row(vec![Value::Int(1)]);
        b.finish()
    }

    #[test]
    fn register_and_get() {
        let mut cat = Catalog::new();
        cat.register(tiny("a"));
        cat.register(tiny("b"));
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.get("a").unwrap().name(), "a");
        assert!(matches!(cat.get("zz"), Err(HsError::UnknownTable(_))));
        assert_eq!(cat.table_names(), vec!["a", "b"]);
    }

    #[test]
    fn register_replaces() {
        let mut cat = Catalog::new();
        cat.register(tiny("a"));
        let mut b = TableBuilder::new("a", vec![("x", DataType::Int)]);
        b.push_row(vec![Value::Int(1)]);
        b.push_row(vec![Value::Int(2)]);
        cat.register(b.finish());
        assert_eq!(cat.get("a").unwrap().row_count(), 2);
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn bytes_sums_tables() {
        let mut cat = Catalog::new();
        assert_eq!(cat.bytes(), 0);
        cat.register(tiny("a"));
        assert!(cat.bytes() > 0);
    }
}
