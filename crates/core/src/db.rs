//! The concurrent engine facade: a shareable [`Database`] plus cheap
//! per-client [`Session`] handles, configured through the fluent
//! [`EngineBuilder`].
//!
//! The immutable query infrastructure — catalog, statistics, cost model and
//! the configured [`ReusePolicy`] — lives in the [`Database`] and is read
//! lock-free by every session. The Hash Table Manager is itself concurrent
//! (sharded by fingerprint shape, `Arc`-backed tables): a session takes a
//! shard lock only for candidate lookup, checkout pinning, and
//! publish/check-in. **Execution runs lock-free** on cloned table handles,
//! so sessions executing non-conflicting queries — in particular, read-only
//! exact-match reuse of the *same* table — proceed fully in parallel.
//! Mutating reuse (partial/overlapping) is copy-on-write under the paper's
//! single-reuser rule; see [`hashstash_cache::manager`] for the model.
//!
//! A table the optimizer picked can, in the short window before the session
//! pins it, be evicted or write-locked by a concurrent session. The session
//! then simply re-plans (the stale candidate is gone from the cache) — a
//! bounded retry that degrades to reuse-free execution under pathological
//! contention, never to a wrong answer.
//!
//! ```no_run
//! use hashstash::Database;
//! use hashstash_storage::tpch::{generate, TpchConfig};
//!
//! let db = Database::builder(generate(TpchConfig::new(0.01, 42))).build();
//! let mut session = db.session();
//! # let query = hashstash_plan::QueryBuilder::new(1)
//! #     .table("customer").build().unwrap();
//! let result = session.execute(&query).unwrap();
//! println!("{} rows in {:?}", result.rows.len(), result.wall_time);
//! ```

use std::path::PathBuf;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use hashstash_types::{HsError, QueryId, Result, Row, Schema};

use hashstash_cache::{CacheStats, GcConfig, HtManager, ReuseBudget, TenantId, DEFAULT_SHARDS};
use hashstash_durability::{
    benefit_score, Durability, DurabilityConfig, FsyncPolicy, PersistedEntry, PersistedPayload,
};
use hashstash_exec::shared::execute_shared;
use hashstash_exec::{
    acquire_plan_checkouts, execute, ExecContext, ExecMetrics, TempTableCache, TempTableStats,
    WorkerPool,
};
use hashstash_opt::multi::{plan_batch, BatchUnit};
use hashstash_opt::optimizer::{OptimizedQuery, Optimizer, OptimizerConfig};
use hashstash_opt::policy::{
    AlwaysShare, CostBasedReuse, MaterializedReuse, NeverShare, NoReuse, ReusePolicy,
};
use hashstash_opt::{CostModel, DbStats};
use hashstash_plan::{QuerySpec, ReuseCase};
use hashstash_storage::Catalog;

use crate::materialized::materialized_plan;

/// The paper's five §6 reuse configurations as a convenience enum; each
/// maps onto one built-in [`ReusePolicy`]. Custom policies skip this enum
/// entirely and go through [`EngineBuilder::policy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineStrategy {
    /// Reuse internal hash tables with the reuse-aware optimizer (paper).
    #[default]
    HashStash,
    /// No reuse, no materialization — the plain baseline.
    NoReuse,
    /// Materialization-based reuse into temp tables (exact + subsuming).
    Materialized,
    /// Greedy reuse of the highest-contribution candidate (Exp 2 baseline).
    AlwaysShare,
    /// Reuse disabled in the optimizer but otherwise HashStash (Exp 2
    /// baseline; equivalent to [`EngineStrategy::NoReuse`] for execution).
    NeverShare,
}

impl EngineStrategy {
    /// The built-in policy implementing this configuration.
    pub fn policy(self) -> Arc<dyn ReusePolicy> {
        match self {
            EngineStrategy::HashStash => Arc::new(CostBasedReuse),
            EngineStrategy::NoReuse => Arc::new(NoReuse),
            EngineStrategy::Materialized => Arc::new(MaterializedReuse),
            EngineStrategy::AlwaysShare => Arc::new(AlwaysShare),
            EngineStrategy::NeverShare => Arc::new(NeverShare),
        }
    }
}

/// The result of one query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Query id.
    pub query: QueryId,
    /// Output schema.
    pub schema: Schema,
    /// Output rows.
    pub rows: Vec<Row>,
    /// Wall-clock execution time (excludes optimization).
    pub wall_time: Duration,
    /// Optimization time.
    pub optimize_time: Duration,
    /// Optimizer's cost estimate (ns).
    pub est_cost_ns: f64,
    /// Execution counters.
    pub metrics: ExecMetrics,
    /// Reuse decisions per pipeline breaker (paper Table 8b's N/S strings).
    pub decisions: Vec<(String, Option<ReuseCase>)>,
}

/// Cumulative per-session statistics (drives the paper's Figure 7b).
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionStats {
    /// Queries executed.
    pub queries: u64,
    /// Total wall-clock execution time.
    pub total_wall: Duration,
    /// Total optimization time.
    pub total_optimize: Duration,
    /// Accumulated execution counters.
    pub metrics: ExecMetrics,
}

impl SessionStats {
    fn record(&mut self, queries: u64, wall: Duration, optimize: Duration, m: &ExecMetrics) {
        self.queries += queries;
        self.total_wall += wall;
        self.total_optimize += optimize;
        self.metrics.absorb(m);
    }
}

/// How [`Session::execute_batch`] runs a batch (paper Exp 4 modes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchMode {
    /// Every query individually, reuse off.
    SingleNoReuse,
    /// Every query individually, reuse on.
    SingleWithReuse,
    /// Reuse-aware shared plans (query-batch interface).
    SharedWithReuse,
}

/// Fluent configuration for a [`Database`] (obtain via
/// [`Database::builder`]).
///
/// ```no_run
/// use hashstash::{Database, EngineStrategy};
/// use hashstash_cache::GcConfig;
/// use hashstash_storage::tpch::{generate, TpchConfig};
///
/// let db = Database::builder(generate(TpchConfig::new(0.01, 42)))
///     .strategy(EngineStrategy::Materialized)
///     .gc(GcConfig::default())
///     .temp_budget(64 << 20)
///     .build();
/// assert_eq!(db.policy().name(), "materialized");
/// ```
#[must_use = "call .build() to construct the Database"]
pub struct EngineBuilder {
    catalog: Catalog,
    policy: Arc<dyn ReusePolicy>,
    gc: GcConfig,
    temp_budget: Option<usize>,
    avg_rewrite: bool,
    additional_attributes: bool,
    benefit_join_order: bool,
    benefit_epsilon: f64,
    calibrate: bool,
    parallelism: usize,
    vectorize: bool,
    pin_workers: bool,
    data_dir: Option<PathBuf>,
    fsync: FsyncPolicy,
    persist_min_benefit: f64,
    tenants: Vec<(String, usize)>,
}

impl EngineBuilder {
    fn new(catalog: Catalog) -> Self {
        EngineBuilder {
            catalog,
            policy: Arc::new(CostBasedReuse),
            gc: GcConfig::default(),
            temp_budget: None,
            avg_rewrite: true,
            additional_attributes: true,
            benefit_join_order: true,
            benefit_epsilon: 0.1,
            calibrate: false,
            parallelism: hashstash_exec::engine_default_parallelism(),
            vectorize: hashstash_exec::default_vectorize(),
            pin_workers: false,
            data_dir: None,
            fsync: FsyncPolicy::default(),
            persist_min_benefit: 0.0,
            tenants: Vec::new(),
        }
    }

    /// Register a tenant at build time with an anti-starvation budget
    /// floor (`0` = no floor): while the tenant's combined cache footprint
    /// is at or below `floor_bytes`, other tenants' churn cannot evict its
    /// entries (see [`ReuseBudget::set_tenant_floor`]). Tenants can also be
    /// added after build via [`Database::register_tenant`].
    pub fn tenant(mut self, name: impl Into<String>, floor_bytes: usize) -> Self {
        self.tenants.push((name.into(), floor_bytes));
        self
    }

    /// Install a reuse policy (any [`ReusePolicy`] implementation; see the
    /// built-ins in [`hashstash_opt::policy`]). Default:
    /// [`CostBasedReuse`].
    pub fn policy(mut self, policy: impl ReusePolicy + 'static) -> Self {
        self.policy = Arc::new(policy);
        self
    }

    /// Install an already-shared policy handle.
    pub fn policy_handle(mut self, policy: Arc<dyn ReusePolicy>) -> Self {
        self.policy = policy;
        self
    }

    /// Select one of the paper's five configurations by name.
    pub fn strategy(self, strategy: EngineStrategy) -> Self {
        self.policy_handle(strategy.policy())
    }

    /// Reuse-cache GC configuration (budget, eviction policy, per-table
    /// TTL, fine-grained mode). One configuration governs **both** payload
    /// kinds — cached hash tables and materialized temp tables share the
    /// byte budget, and the eviction loop ranks them together. Default:
    /// unbounded, LRU.
    pub fn gc(mut self, gc: GcConfig) -> Self {
        self.gc = gc;
        self
    }

    /// Shorthand: cap the shared reuse-cache budget (hash tables **and**
    /// temp tables) at `bytes` (pass `None` to disable eviction, the
    /// default).
    pub fn gc_budget(mut self, bytes: impl Into<Option<usize>>) -> Self {
        self.gc.budget_bytes = bytes.into();
        self
    }

    /// Kept for callers predating the unified reuse store: hash tables and
    /// temp tables now share **one** byte budget, so this folds into the
    /// shared cap at [`EngineBuilder::build`] — added on top of any
    /// [`EngineBuilder::gc_budget`] (the old total allowance was the two
    /// caps combined), or used alone when no GC budget is set. Call order
    /// relative to `gc_budget`/`gc` does not matter.
    pub fn temp_budget(mut self, bytes: impl Into<Option<usize>>) -> Self {
        self.temp_budget = bytes.into();
        self
    }

    /// Benefit-oriented `AVG → SUM,COUNT` rewrite (paper §3.4). Default on.
    pub fn avg_rewrite(mut self, on: bool) -> Self {
        self.avg_rewrite = on;
        self
    }

    /// Store selection attributes in join payloads (paper §3.4). Default on.
    pub fn additional_attributes(mut self, on: bool) -> Self {
        self.additional_attributes = on;
        self
    }

    /// Prefer future-benefit plans within an epsilon (paper §3.4).
    /// Default on.
    pub fn benefit_join_order(mut self, on: bool) -> Self {
        self.benefit_join_order = on;
        self
    }

    /// Relative cost slack for the benefit preference. Default `0.1`.
    pub fn benefit_epsilon(mut self, epsilon: f64) -> Self {
        self.benefit_epsilon = epsilon;
        self
    }

    /// Calibrate the cost model with real micro-benchmarks at startup
    /// instead of the deterministic synthetic grid. Default off.
    pub fn calibrate(mut self, on: bool) -> Self {
        self.calibrate = on;
        self
    }

    /// Worker threads for morsel-parallel execution inside a single query
    /// (scan filtering, join probing, reuse post-filtering). `1` is the
    /// serial interpreter; any value produces bit-identical results.
    /// Default: the `PARALLELISM` environment variable if set, otherwise
    /// all available cores.
    pub fn parallelism(mut self, workers: usize) -> Self {
        self.parallelism = workers.max(1);
        self
    }

    /// Run the hot operator loops (scan filtering, probe key extraction,
    /// aggregate folds) over columnar selection vectors instead of
    /// materialized rows. Results, metrics and published tables are
    /// bit-identical either way; `false` keeps the row-at-a-time
    /// interpreter as a differential oracle. Default: the `HS_VECTORIZE`
    /// environment variable (`0` disables), otherwise on.
    pub fn vectorize(mut self, on: bool) -> Self {
        self.vectorize = on;
        self
    }

    /// Pin each pool worker thread to a core (`worker id % cores`) at
    /// spawn — placement scaffolding for NUMA-aware scheduling. Best
    /// effort: a sandboxed container may refuse the affinity syscall, in
    /// which case the workers simply run unpinned
    /// ([`hashstash_exec::WorkerPool::pinned_workers`] reports how many
    /// pins took). Default off.
    pub fn pin_workers(mut self, on: bool) -> Self {
        self.pin_workers = on;
        self
    }

    /// Make the database durable under `path`, and recover whatever a
    /// previous incarnation left there.
    ///
    /// # Recovery
    ///
    /// When `path` holds prior history, the *recovered* catalog (newest
    /// valid snapshot + WAL replay) wins over the catalog passed to
    /// [`Database::builder`]. On first boot the builder's catalog is
    /// authoritative and every table is logged to the WAL before the
    /// database opens. Persisted reuse-cache entries are **rehydrated** by
    /// re-publishing them through the caches' normal admission path, so
    /// budgets, shard accounting and `stats == audit()` hold exactly as if
    /// the entries had been built by queries.
    ///
    /// # Crash vs clean exit
    ///
    /// A *clean* exit — [`Database::flush`] or simply dropping the last
    /// handle — writes a snapshot, rotates the WAL and fsyncs, so restart
    /// recovers everything including the torn-tail-free WAL. A *crash*
    /// recovers the newest valid snapshot plus every WAL record the
    /// configured [`EngineBuilder::fsync`] policy had made durable; a
    /// half-written ("torn") final record is detected by CRC and truncated,
    /// never fatal. Recovery therefore always yields a prefix of history.
    pub fn data_dir(mut self, path: impl Into<PathBuf>) -> Self {
        self.data_dir = Some(path.into());
        self
    }

    /// WAL fsync policy (`none | interval | always`); see
    /// [`FsyncPolicy`]. Only meaningful with [`EngineBuilder::data_dir`].
    /// Default: [`FsyncPolicy::Interval`].
    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    /// Minimum benefit-per-byte score ([`benefit_score`]: checkouts per
    /// KiB) a cache entry must clear to be persisted by snapshots. The
    /// default `0.0` persists every entry; any bar `> 0` drops entries that
    /// were never reused. Only meaningful with
    /// [`EngineBuilder::data_dir`].
    pub fn persist_min_benefit(mut self, bar: f64) -> Self {
        self.persist_min_benefit = bar;
        self
    }

    /// Construct the database. Returns an [`Arc`] so sessions — possibly on
    /// other threads — can share it immediately.
    ///
    /// Panics if [`EngineBuilder::data_dir`] recovery hits an I/O error;
    /// use [`EngineBuilder::try_build`] to handle that gracefully.
    pub fn build(self) -> Arc<Database> {
        self.try_build().expect("engine build failed")
    }

    /// Construct the database, surfacing durability I/O errors instead of
    /// panicking. Identical to [`EngineBuilder::build`] when no
    /// [`EngineBuilder::data_dir`] is configured (in-memory engines cannot
    /// fail to build).
    pub fn try_build(self) -> Result<Arc<Database>> {
        // Durable engines recover the data directory first: the recovered
        // catalog wins over the builder's when prior history exists; on
        // first boot the builder's tables are logged to the WAL so a crash
        // before the first snapshot still recovers them.
        let (durability, catalog, recovered) = match self.data_dir {
            Some(dir) => {
                let (d, rec) = Durability::open(DurabilityConfig {
                    dir,
                    fsync: self.fsync,
                    persist_min_benefit: self.persist_min_benefit,
                })
                .map_err(dur_err)?;
                if rec.catalog.is_empty() {
                    for name in self.catalog.table_names() {
                        let table = self
                            .catalog
                            .get(name)
                            .expect("table_names returned a missing table");
                        d.log_table_load(&table).map_err(dur_err)?;
                    }
                    d.sync().map_err(dur_err)?;
                    (Some(d), self.catalog, rec.entries)
                } else {
                    (Some(d), rec.catalog, rec.entries)
                }
            }
            None => (None, self.catalog, Vec::new()),
        };

        let stats = DbStats::from_catalog(&catalog);
        let cost = if self.calibrate {
            CostModel::new(
                hashstash_hashtable::Calibrator::default().run(),
                hashstash_opt::CostParams::default(),
            )
        } else {
            CostModel::synthetic()
        }
        // The optimizer must price probe/scan phases the way the executor
        // will actually run them.
        .with_parallelism(self.parallelism)
        .with_vectorized(self.vectorize);
        // One budget for both reuse caches: hash tables and temp tables
        // draw on the same byte limit and compete in one eviction loop. A
        // legacy temp_budget is folded in additively, so configuring both
        // caps yields the old total allowance regardless of call order.
        let mut gc = self.gc;
        if let Some(t) = self.temp_budget {
            gc.budget_bytes = Some(gc.budget_bytes.map_or(t, |b| b.saturating_add(t)));
        }
        let budget = ReuseBudget::new(gc);
        let db = Arc::new(Database {
            catalog,
            stats,
            cost,
            policy: self.policy,
            parallelism: self.parallelism,
            vectorize: self.vectorize,
            avg_rewrite: self.avg_rewrite,
            additional_attributes: self.additional_attributes,
            benefit_join_order: self.benefit_join_order,
            benefit_epsilon: self.benefit_epsilon,
            htm: HtManager::with_budget(Arc::clone(&budget), DEFAULT_SHARDS),
            temps: TempTableCache::with_budget(Arc::clone(&budget), DEFAULT_SHARDS),
            budget,
            // The submitting session thread is always a phase participant,
            // so `parallelism`-way execution needs `parallelism - 1` pool
            // workers. One pool serves every session of this database.
            pool: WorkerPool::new(self.parallelism.saturating_sub(1), self.pin_workers),
            totals: Mutex::new(SessionStats::default()),
            tenants: Mutex::new(Vec::new()),
            flush_error: FlushErrorSlot::default(),
            durability,
        });
        for (name, floor) in self.tenants {
            let t = db.register_tenant(&name);
            db.budget.set_tenant_floor(t, floor);
        }
        // Warm restart: re-publish persisted entries through the caches'
        // normal admission path, so budget enforcement, shard accounting
        // and the stats == audit() invariant hold by construction. Entries
        // get fresh ids (cache ids are never stable across restarts).
        let rehydrated = !recovered.is_empty();
        let gc = db.budget.gc_config();
        if rehydrated && gc.ttl_ticks.is_some() {
            // Every re-publish below ticks the shared clock, so a snapshot
            // larger than the TTL leaves its earliest entries "idle" purely
            // from rehydration order — the sweep elected mid-replay would
            // expire the warm cache the restart is paying to rebuild.
            // Suspend TTL expiry for the replay (byte-budget enforcement
            // stays on: admission control is real), restamp, then restore.
            db.budget.set_gc_config(GcConfig {
                ttl_ticks: None,
                ..gc
            });
        }
        for entry in recovered {
            match entry.payload {
                PersistedPayload::Ht(ht) => {
                    db.htm.publish(entry.fingerprint, entry.schema, ht);
                }
                PersistedPayload::Temp(rows) => {
                    db.temps.publish(entry.fingerprint, entry.schema, rows);
                }
            }
        }
        if rehydrated {
            // Restamp everything with one fresh tick — idleness starts
            // now, not at an arbitrary point of the replay order — and
            // restart the sweep throttle from the restamp tick.
            db.htm.freshen_all();
            db.temps.freshen_all();
            db.budget.set_gc_config(gc);
            db.budget.mark_swept();
        }
        Ok(db)
    }
}

/// A shareable handle on a [`Database`]'s most recent flush failure.
///
/// [`Database::flush`] records any error here (and clears it on success);
/// the `Drop` impl's best-effort final flush does the same, which is the
/// only way to *observe* a failed final snapshot — `Drop` itself can only
/// log it. Clone the slot before dropping the last `Arc<Database>`
/// ([`Database::flush_error_slot`]) and [`FlushErrorSlot::take`] afterwards.
#[derive(Debug, Clone, Default)]
pub struct FlushErrorSlot {
    // lock-order: 55 (last flush error; leaf)
    slot: Arc<Mutex<Option<HsError>>>,
}

impl FlushErrorSlot {
    /// Take the recorded error, leaving the slot empty.
    pub fn take(&self) -> Option<HsError> {
        self.slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
    }

    fn record(&self, outcome: &Result<()>) {
        let mut slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        *slot = outcome.as_ref().err().cloned();
    }
}

/// A shareable main-memory database: catalog, statistics, cost model, the
/// configured [`ReusePolicy`] and the reuse caches. Many threads hold one
/// `Arc<Database>` and drive queries through per-thread [`Session`]s; hash
/// tables published by any session are reused by all of them.
pub struct Database {
    catalog: Catalog,
    stats: DbStats,
    cost: CostModel,
    policy: Arc<dyn ReusePolicy>,
    parallelism: usize,
    vectorize: bool,
    avg_rewrite: bool,
    additional_attributes: bool,
    benefit_join_order: bool,
    benefit_epsilon: f64,
    htm: HtManager,
    temps: TempTableCache,
    budget: Arc<ReuseBudget>,
    /// Persistent morsel workers shared by every session of this database
    /// (spawned once at build, joined on drop).
    pool: WorkerPool,
    // lock-order: 50 (session stats rollup; leaf)
    totals: Mutex<SessionStats>,
    /// Registered tenant names; `TenantId(i + 1)` owns index `i`
    /// ([`TenantId::DEFAULT`] is the anonymous single-tenant id).
    // lock-order: 52 (tenant registry; leaf)
    tenants: Mutex<Vec<String>>,
    /// Most recent flush failure (shared so it outlives the database).
    flush_error: FlushErrorSlot,
    durability: Option<Durability>,
}

/// Map a durability I/O error into the engine's error type.
fn dur_err(e: std::io::Error) -> HsError {
    HsError::Config(format!("durability: {e}"))
}

impl Database {
    /// Start configuring a database over `catalog`.
    pub fn builder(catalog: Catalog) -> EngineBuilder {
        EngineBuilder::new(catalog)
    }

    /// A database with all defaults (HashStash policy, unbounded caches).
    pub fn open(catalog: Catalog) -> Arc<Database> {
        Database::builder(catalog).build()
    }

    /// Open a new session. Sessions are cheap; create one per thread or
    /// per client.
    pub fn session(self: &Arc<Self>) -> Session {
        self.session_as(TenantId::DEFAULT)
    }

    /// Open a session on behalf of a tenant: everything its queries publish
    /// into the reuse caches is owned by `tenant` (budget-floor protection,
    /// per-tenant statistics). Reuse across tenants still works — lineages
    /// only match on identical base data, and all tenants share one
    /// catalog.
    pub fn session_as(self: &Arc<Self>, tenant: TenantId) -> Session {
        Session {
            db: Arc::clone(self),
            tenant,
            stats: SessionStats::default(),
        }
    }

    /// Register a tenant by name (idempotent: re-registering returns the
    /// existing id). Tenant ids are assigned in registration order starting
    /// at `TenantId(1)`; [`TenantId::DEFAULT`] stays reserved for anonymous
    /// single-tenant use.
    pub fn register_tenant(&self, name: &str) -> TenantId {
        let mut tenants = self.tenants.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(i) = tenants.iter().position(|n| n == name) {
            return TenantId(i as u32 + 1);
        }
        tenants.push(name.to_string());
        TenantId(tenants.len() as u32)
    }

    /// Look up a registered tenant by name.
    pub fn tenant_id(&self, name: &str) -> Option<TenantId> {
        self.tenants
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .position(|n| n == name)
            .map(|i| TenantId(i as u32 + 1))
    }

    /// Set (or clear, with `0`) a tenant's anti-starvation budget floor —
    /// see [`ReuseBudget::set_tenant_floor`].
    pub fn set_tenant_floor(&self, tenant: TenantId, floor_bytes: usize) {
        self.budget.set_tenant_floor(tenant, floor_bytes);
    }

    /// One tenant's combined statistics across both reuse caches (hash
    /// tables + temp tables). `candidate_lookups` is always `0` here — a
    /// lookup serves whichever tenants' entries match, so it stays
    /// global-only; `peak_bytes` is the sum of the two caches' per-tenant
    /// high-water marks (an upper bound on the tenant's true combined
    /// peak).
    pub fn tenant_cache_stats(&self, tenant: TenantId) -> CacheStats {
        let ht = self.htm.tenant_stats_for(tenant);
        let tmp = self.temps.tenant_stats_for(tenant);
        CacheStats {
            publishes: ht.publishes + tmp.publishes,
            publish_dedups: ht.publish_dedups + tmp.publish_dedups,
            reuses: ht.reuses + tmp.reuses,
            evictions: ht.evictions + tmp.evictions,
            candidate_lookups: 0,
            bytes: ht.bytes + tmp.bytes,
            entries: ht.entries + tmp.entries,
            peak_bytes: ht.peak_bytes + tmp.peak_bytes,
        }
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Database statistics.
    pub fn stats(&self) -> &DbStats {
        &self.stats
    }

    /// The reuse policy in effect.
    pub fn policy(&self) -> &Arc<dyn ReusePolicy> {
        &self.policy
    }

    /// Morsel-parallel worker count every session's executor uses
    /// (`1` = serial interpreter).
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Whether sessions execute the columnar selection-vector paths
    /// (`HS_VECTORIZE` / [`EngineBuilder::vectorize`]).
    pub fn vectorize(&self) -> bool {
        self.vectorize
    }

    /// The persistent worker pool parallel phases of every session run on.
    pub fn worker_pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// Assert every background facility is idle: no queued or in-flight
    /// pool phases, and (under `--features analysis`) no leaked cache
    /// checkouts in either reuse cache. Stress tests call this after
    /// joining their clients.
    #[cfg(feature = "analysis")]
    pub fn assert_quiesced(&self) {
        self.pool.assert_quiesced();
        self.htm.assert_quiesced();
        self.temps.assert_quiesced();
    }

    /// Hash-table cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.htm.stats()
    }

    /// Temp-table cache statistics (materialized baseline).
    pub fn temp_stats(&self) -> TempTableStats {
        self.temps.stats()
    }

    /// Totals accumulated across every session of this database.
    pub fn total_stats(&self) -> SessionStats {
        *self.totals.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Current reuse-cache memory footprint in bytes: the combined
    /// footprint of every payload kind under the shared budget (hash
    /// tables *and* temp tables — whichever the policy populates).
    pub fn reuse_memory_bytes(&self) -> usize {
        self.budget.bytes()
    }

    /// The shared budget governing both reuse caches.
    pub fn reuse_budget(&self) -> &Arc<ReuseBudget> {
        &self.budget
    }

    /// The Hash Table Manager. It is safe to use directly from any thread
    /// (all its methods take `&self`); tests and experiments seed or
    /// inspect the cache through this.
    pub fn cache(&self) -> &HtManager {
        &self.htm
    }

    /// Run `f` against the Hash Table Manager (kept for callers predating
    /// [`Database::cache`]; the manager no longer needs `&mut`).
    pub fn with_cache<R>(&self, f: impl FnOnce(&HtManager) -> R) -> R {
        f(&self.htm)
    }

    /// Whether this database persists to a data directory.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// The WAL fsync policy in effect (`None` for in-memory databases).
    pub fn fsync_policy(&self) -> Option<hashstash_durability::FsyncPolicy> {
        self.durability.as_ref().map(|d| d.fsync_policy())
    }

    /// Persist the current state: write a snapshot of the catalog plus
    /// every reuse-cache entry whose benefit-per-byte clears the
    /// [`EngineBuilder::persist_min_benefit`] bar, rotate to a fresh WAL
    /// segment, and delete superseded files. No-op (returns `Ok`) for
    /// in-memory databases.
    ///
    /// # Clean-exit contract
    ///
    /// After a successful `flush` the data directory contains exactly one
    /// snapshot and one empty WAL segment — no torn tail is possible, and
    /// the next [`EngineBuilder::data_dir`] boot recovers the full catalog
    /// and the persisted cache subset. Dropping the last `Arc<Database>`
    /// calls `flush` best-effort; a failure there is logged to stderr and
    /// recorded in the flush-error slot ([`Database::flush_error_slot`]) —
    /// call `flush` explicitly when you need the error as a return value.
    ///
    /// Snapshotting is safe against live queries: entries are cloned under
    /// the caches' shard locks via the same guards that protect checkout,
    /// and entries currently write-locked (mid-mutation) are skipped —
    /// they re-qualify at the next flush.
    pub fn flush(&self) -> Result<()> {
        let outcome = self.flush_inner();
        self.flush_error.record(&outcome);
        outcome
    }

    /// The most recent [`Database::flush`] failure, if any (cleared by the
    /// next successful flush, or by taking it). The `Drop` impl's final
    /// best-effort flush records here too; use [`Database::flush_error_slot`]
    /// to keep a handle that survives the drop.
    pub fn take_flush_error(&self) -> Option<HsError> {
        self.flush_error.take()
    }

    /// A clone of the flush-error slot that outlives this database — the
    /// only way to *check* whether the `Drop`-time final flush succeeded.
    pub fn flush_error_slot(&self) -> FlushErrorSlot {
        self.flush_error.clone()
    }

    fn flush_inner(&self) -> Result<()> {
        let Some(d) = &self.durability else {
            return Ok(());
        };
        let bar = d.persist_min_benefit();
        let mut entries = Vec::new();
        for e in self.htm.snapshot_entries() {
            let score = benefit_score(e.use_count, e.bytes);
            if score >= bar {
                entries.push(PersistedEntry {
                    fingerprint: e.fingerprint,
                    schema: e.schema,
                    use_count: e.use_count,
                    bytes: e.bytes as u64,
                    score,
                    payload: PersistedPayload::Ht((*e.payload).clone()),
                });
            }
        }
        for e in self.temps.snapshot_entries() {
            let score = benefit_score(e.use_count, e.bytes);
            if score >= bar {
                entries.push(PersistedEntry {
                    fingerprint: e.fingerprint,
                    schema: e.schema,
                    use_count: e.use_count,
                    bytes: e.bytes as u64,
                    score,
                    payload: PersistedPayload::Temp(e.payload.rows().to_vec()),
                });
            }
        }
        d.flush_snapshot(&self.catalog, &entries).map_err(dur_err)
    }

    fn optimizer_config(&self, policy: &Arc<dyn ReusePolicy>) -> OptimizerConfig {
        OptimizerConfig {
            policy: Arc::clone(policy),
            avg_rewrite: self.avg_rewrite,
            additional_attributes: self.additional_attributes,
            benefit_join_order: self.benefit_join_order,
            benefit_epsilon: self.benefit_epsilon,
        }
    }

    fn record(&self, queries: u64, wall: Duration, optimize: Duration, m: &ExecMetrics) {
        self.totals
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .record(queries, wall, optimize, m);
    }
}

impl Drop for Database {
    /// Best-effort flush on clean exit, so simply letting the last handle
    /// go out of scope leaves no torn WAL tail. A failed final snapshot
    /// would silently lose the warm-restart cache, so an error here is
    /// logged to stderr and recorded in the flush-error slot (readable
    /// after the drop via a pre-cloned [`Database::flush_error_slot`]);
    /// `Drop` itself must stay panic-free. The worker pool's own `Drop`
    /// runs right after this and *joins* its threads — no detached workers
    /// outlive the database.
    fn drop(&mut self) {
        if self.durability.is_some() {
            if let Err(e) = self.flush() {
                eprintln!(
                    "hashstash: final flush failed on drop: {e}; \
                     the warm-restart cache was not persisted"
                );
            }
        }
    }
}

/// A client handle on a [`Database`]: runs queries, tracks per-session
/// statistics. Cheap to create ([`Database::session`]) and safe to move to
/// another thread.
pub struct Session {
    db: Arc<Database>,
    /// The tenant this session publishes on behalf of
    /// ([`TenantId::DEFAULT`] unless opened via [`Database::session_as`]).
    tenant: TenantId,
    stats: SessionStats,
}

impl Session {
    /// The database this session runs against.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// The tenant this session publishes on behalf of.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// Statistics accumulated by this session alone.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Optimize and execute a single query (query-at-a-time interface).
    pub fn execute(&mut self, q: &QuerySpec) -> Result<QueryResult> {
        let policy = Arc::clone(&self.db.policy);
        self.execute_with_policy(q, &policy)
    }

    /// How many times a session re-plans a query whose chosen reuse
    /// candidates were evicted (or write-locked) by concurrent sessions
    /// before it falls back to reuse-free execution.
    const MAX_REUSE_RETRIES: usize = 3;

    fn execute_with_policy(
        &mut self,
        q: &QuerySpec,
        policy: &Arc<dyn ReusePolicy>,
    ) -> Result<QueryResult> {
        let db = Arc::clone(&self.db);
        for _ in 0..Self::MAX_REUSE_RETRIES {
            match self.execute_once(&db, q, policy) {
                // A table the optimizer picked was evicted or write-locked
                // between planning and pinning. Re-plan: the stale
                // candidate no longer appears, so the retry makes progress.
                Err(HsError::CacheError(_)) => continue,
                r => return r,
            }
        }
        // Pathological contention: degrade to plain execution. NoReuse
        // neither checks out nor publishes, so it cannot race the cache.
        let off: Arc<dyn ReusePolicy> = Arc::new(NoReuse);
        self.execute_once(&db, q, &off)
    }

    /// One optimize + pin + execute attempt. The cache is locked (per
    /// shard) only inside candidate lookups, the checkout pins taken right
    /// after planning, and publish/check-in; execution itself runs
    /// lock-free on the pinned handles.
    fn execute_once(
        &mut self,
        db: &Database,
        q: &QuerySpec,
        policy: &Arc<dyn ReusePolicy>,
    ) -> Result<QueryResult> {
        let opt_cfg = db.optimizer_config(policy);
        let optimizer = Optimizer::new(&db.catalog, &db.stats, &db.cost, opt_cfg);

        let t0 = Instant::now();
        let oq = if policy.materialize() {
            materialized_plan(&optimizer, q, &db.htm, &db.temps)?
        } else {
            optimizer.optimize(q, &db.htm)?
        };
        // Pin every table the plan reuses before execution starts; from
        // here on the plan cannot be invalidated by concurrent evictions.
        let pins = acquire_plan_checkouts(&oq.plan, &db.htm)?;
        let optimize_time = t0.elapsed();

        let decisions = oq.plan.reuse_decisions();
        let t1 = Instant::now();
        let mut ctx = ExecContext::new(&db.catalog, &db.htm, &db.temps)
            .with_parallelism(db.parallelism)
            .with_vectorize(db.vectorize)
            .with_pool(&db.pool)
            .with_tenant(self.tenant);
        for co in pins {
            ctx.adopt_checkout(co);
        }
        let (schema, rows) = execute(&oq.plan, &mut ctx)?;
        let wall_time = t1.elapsed();
        let metrics = ctx.metrics;

        self.stats.record(1, wall_time, optimize_time, &metrics);
        db.record(1, wall_time, optimize_time, &metrics);

        Ok(QueryResult {
            query: q.id,
            schema,
            rows,
            wall_time,
            optimize_time,
            est_cost_ns: oq.est_cost_ns,
            metrics,
            decisions,
        })
    }

    /// Optimize a query without executing it (experiments peek at plans).
    pub fn plan_only(&self, q: &QuerySpec) -> Result<OptimizedQuery> {
        let opt_cfg = self.db.optimizer_config(&self.db.policy);
        let optimizer = Optimizer::new(&self.db.catalog, &self.db.stats, &self.db.cost, opt_cfg);
        optimizer.optimize(q, &self.db.htm)
    }

    /// Execute a batch of queries (query-batch interface, paper §4).
    /// Results are returned in input order.
    pub fn execute_batch(
        &mut self,
        queries: &[QuerySpec],
        mode: BatchMode,
    ) -> Result<Vec<QueryResult>> {
        match mode {
            BatchMode::SingleNoReuse => {
                let off: Arc<dyn ReusePolicy> = Arc::new(NoReuse);
                queries
                    .iter()
                    .map(|q| self.execute_with_policy(q, &off))
                    .collect()
            }
            BatchMode::SingleWithReuse => queries.iter().map(|q| self.execute(q)).collect(),
            BatchMode::SharedWithReuse => self.execute_shared_batch(queries),
        }
    }

    fn execute_shared_batch(&mut self, queries: &[QuerySpec]) -> Result<Vec<QueryResult>> {
        let db = Arc::clone(&self.db);
        // Results survive re-planning: a retry only runs the queries whose
        // unit had not completed yet, so finished units are neither
        // re-executed (duplicate publishes) nor re-recorded (stats).
        let mut results: Vec<Option<QueryResult>> = (0..queries.len()).map(|_| None).collect();
        for _ in 0..Self::MAX_REUSE_RETRIES {
            match self.try_shared_batch(&db, queries, &mut results) {
                // A shared unit's planned reuse table vanished (evicted or
                // write-locked by a concurrent session) before the unit
                // ran. Re-plan the batch against the current cache state.
                Err(HsError::CacheError(_)) => continue,
                Ok(()) => {
                    return results
                        .into_iter()
                        .enumerate()
                        .map(|(i, r)| {
                            r.ok_or_else(|| {
                                HsError::ExecError(format!("query {i} missing from batch plan"))
                            })
                        })
                        .collect();
                }
                Err(e) => return Err(e),
            }
        }
        // Pathological contention: run the remaining queries one at a time
        // (each has its own retry + reuse-free fallback).
        for (i, slot) in results.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(self.execute(&queries[i])?);
            }
        }
        Ok(results
            .into_iter()
            .map(|r| r.expect("filled above"))
            .collect())
    }

    fn try_shared_batch(
        &mut self,
        db: &Arc<Database>,
        queries: &[QuerySpec],
        results: &mut [Option<QueryResult>],
    ) -> Result<()> {
        let opt_cfg = db.optimizer_config(&db.policy);
        let t0 = Instant::now();
        let plan = plan_batch(
            queries,
            &db.catalog,
            &db.stats,
            &db.cost,
            opt_cfg,
            &db.htm,
            true,
        )?;
        let optimize_time = t0.elapsed();

        let policy = Arc::clone(&db.policy);
        for unit in plan.units {
            match unit {
                BatchUnit::Single { index, .. } => {
                    if results[index].is_some() {
                        continue; // completed before a batch re-plan
                    }
                    // Single units re-plan on their own; they no longer need
                    // a batch-wide lock because the shared units pin their
                    // tables at checkout time and check them back in the
                    // moment their mutation completes.
                    let r = self.execute_with_policy(&queries[index], &policy)?;
                    results[index] = Some(r);
                }
                BatchUnit::Shared {
                    indices,
                    spec,
                    est_cost_ns,
                } => {
                    // A re-plan may regroup units, so count and store only
                    // the queries that had not completed before the retry —
                    // finished queries keep their result and are not
                    // re-recorded in the statistics.
                    let fresh = indices.iter().filter(|&&i| results[i].is_none()).count();
                    if fresh == 0 {
                        continue; // completed before a batch re-plan
                    }
                    let t1 = Instant::now();
                    let mut ctx = ExecContext::new(&db.catalog, &db.htm, &db.temps)
                        .with_parallelism(db.parallelism)
                        .with_vectorize(db.vectorize)
                        .with_pool(&db.pool)
                        .with_tenant(self.tenant);
                    let shared_results = execute_shared(&spec, &mut ctx)?;
                    let wall = t1.elapsed();
                    let metrics = ctx.metrics;
                    self.stats
                        .record(fresh as u64, wall, Duration::ZERO, &metrics);
                    db.record(fresh as u64, wall, Duration::ZERO, &metrics);
                    let per_query_wall = wall / indices.len().max(1) as u32;
                    for (slot, &index) in indices.iter().enumerate() {
                        if results[index].is_some() {
                            continue;
                        }
                        let r = &shared_results[slot];
                        results[index] = Some(QueryResult {
                            query: queries[index].id,
                            schema: r.schema.clone(),
                            rows: r.rows.clone(),
                            wall_time: per_query_wall,
                            optimize_time,
                            est_cost_ns: est_cost_ns / indices.len() as f64,
                            metrics,
                            decisions: vec![("shared".to_string(), None)],
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

/// Render the paper's decision string for a query (Table 8b): one
/// character per pipeline breaker in `order`, `N` = new hash table,
/// `S` = reused, `X` = operator eliminated.
pub fn decision_string(result: &QueryResult, order: &[&str]) -> String {
    let mut out = String::new();
    for want in order {
        let found = result
            .decisions
            .iter()
            .find(|(label, _)| label.contains(want));
        out.push(match found {
            None => 'X',
            Some((_, None)) => 'N',
            Some((_, Some(_))) => 'S',
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hashstash_opt::MatchRewrite;
    use hashstash_plan::{AggExpr, AggFunc, HtFingerprint, Interval, QueryBuilder};
    use hashstash_storage::tpch::{generate, TpchConfig};
    use hashstash_types::Value;

    fn catalog() -> Catalog {
        generate(TpchConfig::new(0.002, 77))
    }

    fn q3(id: u32, ship: &str) -> QuerySpec {
        QueryBuilder::new(id)
            .join(
                "customer",
                "customer.c_custkey",
                "orders",
                "orders.o_custkey",
            )
            .join(
                "orders",
                "orders.o_orderkey",
                "lineitem",
                "lineitem.l_orderkey",
            )
            .filter(
                "lineitem.l_shipdate",
                Interval::at_least(Value::Date(
                    hashstash_types::date::parse_date(ship).unwrap(),
                )),
            )
            .group_by("customer.c_age")
            .agg(AggExpr::new(AggFunc::Sum, "lineitem.l_quantity"))
            .build()
            .unwrap()
    }

    fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
        rows.sort();
        rows
    }

    #[test]
    fn database_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Database>();
        assert_send_sync::<Session>();
    }

    #[test]
    fn all_strategies_agree_on_answers() {
        let strategies = [
            EngineStrategy::HashStash,
            EngineStrategy::NoReuse,
            EngineStrategy::Materialized,
            EngineStrategy::AlwaysShare,
            EngineStrategy::NeverShare,
        ];
        let queries = [
            q3(1, "1996-06-01"),
            q3(2, "1996-01-01"),
            q3(3, "1996-09-01"),
        ];
        let mut reference: Option<Vec<Vec<Row>>> = None;
        for s in strategies {
            let db = Database::builder(catalog()).strategy(s).build();
            let mut session = db.session();
            let answers: Vec<Vec<Row>> = queries
                .iter()
                .map(|q| sorted(session.execute(q).unwrap().rows))
                .collect();
            match &reference {
                None => reference = Some(answers),
                Some(r) => {
                    for (i, (a, b)) in r.iter().zip(&answers).enumerate() {
                        assert_eq!(a.len(), b.len(), "strategy {s:?} query {i} row count");
                        for (x, y) in a.iter().zip(b) {
                            assert_eq!(x.get(0), y.get(0), "strategy {s:?} group keys");
                            let fx = x.get(1).as_float().unwrap();
                            let fy = y.get(1).as_float().unwrap();
                            assert!(
                                (fx - fy).abs() < 1e-6 * fy.abs().max(1.0),
                                "strategy {s:?} aggregates: {fx} vs {fy}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn hashstash_reuses_across_queries() {
        let db = Database::open(catalog());
        let mut session = db.session();
        session.execute(&q3(1, "1996-06-01")).unwrap();
        let second = session.execute(&q3(2, "1996-01-01")).unwrap();
        assert!(
            second.decisions.iter().any(|(_, c)| c.is_some()),
            "second query reuses: {:?}",
            second.decisions
        );
        assert!(db.cache_stats().reuses > 0);
    }

    #[test]
    fn sessions_share_the_cache() {
        let db = Database::open(catalog());
        let mut warm = db.session();
        warm.execute(&q3(1, "1996-06-01")).unwrap();
        // A *different* session reuses the tables the first one published.
        let mut cold = db.session();
        let r = cold.execute(&q3(2, "1996-06-01")).unwrap();
        assert!(
            r.decisions.iter().any(|(_, c)| c.is_some()),
            "fresh session reuses warm session's tables: {:?}",
            r.decisions
        );
        assert_eq!(cold.stats().queries, 1);
        assert_eq!(db.total_stats().queries, 2);
    }

    #[test]
    fn materialized_baseline_materializes_and_reuses() {
        let db = Database::builder(catalog())
            .strategy(EngineStrategy::Materialized)
            .build();
        let mut session = db.session();
        let first = session.execute(&q3(1, "1996-06-01")).unwrap();
        assert!(first.metrics.materialized_rows > 0, "pays materialization");
        assert!(db.temp_stats().publishes > 0);
        // Identical query reuses temp tables (exact).
        let second = session.execute(&q3(2, "1996-06-01")).unwrap();
        assert!(db.temp_stats().reuses > 0);
        assert_eq!(sorted(first.rows.clone()).len(), sorted(second.rows).len());
        // No hash tables were cached.
        assert_eq!(db.cache_stats().publishes, 0);
    }

    #[test]
    fn batch_modes_agree() {
        let queries: Vec<QuerySpec> = (0..4)
            .map(|i| {
                QueryBuilder::new(i)
                    .join(
                        "customer",
                        "customer.c_custkey",
                        "orders",
                        "orders.o_custkey",
                    )
                    .filter(
                        "customer.c_age",
                        Interval::closed(
                            Value::Int(20 + i as i64 * 5),
                            Value::Int(50 + i as i64 * 5),
                        ),
                    )
                    .group_by("customer.c_age")
                    .agg(AggExpr::new(AggFunc::Count, "orders.o_orderkey"))
                    .build()
                    .unwrap()
            })
            .collect();
        let mut reference: Option<Vec<Vec<Row>>> = None;
        for mode in [
            BatchMode::SingleNoReuse,
            BatchMode::SingleWithReuse,
            BatchMode::SharedWithReuse,
        ] {
            let db = Database::open(catalog());
            let mut session = db.session();
            let results = session.execute_batch(&queries, mode).unwrap();
            assert_eq!(results.len(), queries.len());
            let answers: Vec<Vec<Row>> = results.into_iter().map(|r| sorted(r.rows)).collect();
            match &reference {
                None => reference = Some(answers),
                Some(r) => {
                    for (i, (a, b)) in r.iter().zip(&answers).enumerate() {
                        assert_eq!(a, b, "mode {mode:?} query {i}");
                    }
                }
            }
        }
    }

    #[test]
    fn decision_string_renders() {
        let db = Database::open(catalog());
        let mut session = db.session();
        session.execute(&q3(1, "1996-06-01")).unwrap();
        let r = session.execute(&q3(2, "1996-06-01")).unwrap();
        let s = decision_string(&r, &["orders", "customer", "agg"]);
        assert_eq!(s.len(), 3);
        assert!(s.contains('S') || s.contains('X'), "some reuse shows: {s}");
    }

    #[test]
    fn gc_budget_limits_footprint() {
        let db = Database::builder(catalog()).gc_budget(64 * 1024).build();
        let mut session = db.session();
        for i in 0..6 {
            let ship = format!("199{}-0{}-01", 3 + i % 5, 1 + i % 9);
            session.execute(&q3(i as u32, &ship)).unwrap();
        }
        assert!(db.cache_stats().bytes <= 64 * 1024);
        assert!(db.cache_stats().evictions > 0);
    }

    /// The legacy `temp_budget` folds into the shared cap additively and
    /// order-independently: both caps configured yields the old *total*
    /// allowance, never a silent last-write-wins shrink.
    #[test]
    fn temp_budget_folds_into_the_shared_budget() {
        let a = Database::builder(catalog())
            .gc_budget(1 << 30)
            .temp_budget(64 << 20)
            .build();
        assert_eq!(
            a.cache().gc_config().budget_bytes,
            Some((1 << 30) + (64 << 20))
        );
        let b = Database::builder(catalog())
            .temp_budget(64 << 20)
            .gc_budget(1 << 30)
            .build();
        assert_eq!(
            b.cache().gc_config().budget_bytes,
            a.cache().gc_config().budget_bytes,
            "call order does not matter"
        );
        // temp_budget alone caps the shared pool.
        let c = Database::builder(catalog()).temp_budget(64 << 20).build();
        assert_eq!(c.cache().gc_config().budget_bytes, Some(64 << 20));
        // The temp cache is governed by the same budget object.
        assert_eq!(c.reuse_budget().gc_config().budget_bytes, Some(64 << 20));
    }

    #[test]
    fn builder_defaults_match_documented_invariants() {
        let db = Database::builder(catalog()).build();
        assert_eq!(db.policy().name(), "hashstash");
        assert!(!db.policy().materialize());
        assert_eq!(db.cache().gc_config().budget_bytes, None);
        assert_eq!(db.cache_stats().publishes, 0);
        assert_eq!(db.total_stats().queries, 0);
        assert!(db.parallelism() >= 1);
        assert_eq!(
            Database::builder(catalog())
                .parallelism(0)
                .build()
                .parallelism(),
            1
        );
    }

    /// Engine-level agreement: a 4-worker database answers a reuse-heavy
    /// sequence (fresh build → exact reuse → partial reuse) identically to
    /// a serial one. Compared as sets: the parallel-aware cost pricing may
    /// legitimately pick a different (equivalent) join orientation, so row
    /// *order* is only guaranteed plan-for-plan — the executor-level
    /// bit-identity pinned by `tests/parallel_determinism.rs`.
    #[test]
    fn parallel_database_agrees_with_serial() {
        let queries = [
            q3(1, "1996-06-01"),
            q3(2, "1996-06-01"),
            q3(3, "1996-01-01"),
        ];
        let serial = Database::builder(catalog()).parallelism(1).build();
        let parallel = Database::builder(catalog()).parallelism(4).build();
        let mut s = serial.session();
        let mut p = parallel.session();
        for q in &queries {
            let a = sorted(s.execute(q).unwrap().rows);
            let b = sorted(p.execute(q).unwrap().rows);
            assert_eq!(a.len(), b.len(), "query {} row count", q.id);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.get(0), y.get(0), "query {} group keys", q.id);
                let fx = x.get(1).as_float().unwrap();
                let fy = y.get(1).as_float().unwrap();
                assert!(
                    (fx - fy).abs() < 1e-6 * fy.abs().max(1.0),
                    "query {} aggregates: {fx} vs {fy}",
                    q.id
                );
            }
        }
        assert!(
            parallel.cache_stats().reuses > 0,
            "reuse survives parallelism"
        );
    }

    /// Durable lifecycle: build with a data dir, run queries, drop (clean
    /// exit flush), rebuild from the same dir with an *empty* catalog —
    /// the recovered catalog wins and the warmed cache serves reuse on the
    /// very first query.
    #[test]
    fn durable_restart_rehydrates_the_cache() {
        let dir = std::env::temp_dir().join(format!("hashstash-core-dur-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let db = Database::builder(catalog()).data_dir(&dir).build();
            assert!(db.is_durable());
            assert_eq!(
                db.fsync_policy(),
                Some(hashstash_durability::FsyncPolicy::Interval)
            );
            let mut session = db.session();
            session.execute(&q3(1, "1996-06-01")).unwrap();
            session.execute(&q3(2, "1996-01-01")).unwrap();
            assert!(db.cache_stats().publishes > 0);
            db.flush().unwrap();
        } // Drop flushes again, harmlessly.
        let db = Database::builder(Catalog::new()).data_dir(&dir).build();
        assert_eq!(db.catalog().len(), catalog().len(), "catalog recovered");
        assert!(
            db.cache_stats().publishes > 0,
            "cache rehydrated through the admission path"
        );
        let (audit_bytes, audit_entries) = db.cache().audit();
        assert_eq!(db.cache_stats().bytes, audit_bytes, "stats == audit");
        assert_eq!(db.cache_stats().entries, audit_entries);
        let mut session = db.session();
        let r = session.execute(&q3(3, "1996-06-01")).unwrap();
        assert!(
            r.decisions.iter().any(|(_, c)| c.is_some()),
            "first post-restart query reuses warm tables: {:?}",
            r.decisions
        );
        drop(db);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A custom policy plugs in end-to-end without touching engine or
    /// optimizer internals (acceptance criterion of the facade redesign).
    #[test]
    fn custom_policy_runs_end_to_end() {
        struct ExactOnly;
        impl ReusePolicy for ExactOnly {
            fn name(&self) -> &str {
                "exact-only"
            }
            fn candidates(
                &self,
                _request: &HtFingerprint,
                matches: Vec<MatchRewrite>,
            ) -> Vec<MatchRewrite> {
                matches
                    .into_iter()
                    .filter(|m| m.case == ReuseCase::Exact)
                    .collect()
            }
            fn admit(&self, _fingerprint: &HtFingerprint) -> bool {
                true
            }
        }

        let db = Database::builder(catalog()).policy(ExactOnly).build();
        let mut session = db.session();
        session.execute(&q3(1, "1996-06-01")).unwrap();
        // Exact repeat: reused. Widened predicate: NOT reused (would be
        // partial), unlike the cost-based policy.
        let exact = session.execute(&q3(2, "1996-06-01")).unwrap();
        assert!(exact.decisions.iter().any(|(_, c)| c.is_some()));
        let widened = session.execute(&q3(3, "1996-01-01")).unwrap();
        assert!(
            widened
                .decisions
                .iter()
                .all(|(_, c)| !matches!(c, Some(ReuseCase::Partial))),
            "exact-only policy must not take partial reuse: {:?}",
            widened.decisions
        );
        // Answers still correct vs the no-reuse baseline.
        let ns = Database::builder(catalog())
            .strategy(EngineStrategy::NoReuse)
            .build();
        let mut ns_session = ns.session();
        let want = ns_session.execute(&q3(4, "1996-01-01")).unwrap();
        assert_eq!(sorted(widened.rows).len(), sorted(want.rows).len());
    }
}
