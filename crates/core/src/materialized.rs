//! Materialization-based reuse baseline (paper §6.1, after Nagel et al.).
//!
//! This strategy materializes the same intermediates HashStash caches — the
//! build inputs of hash joins and the outputs of aggregations — but as plain
//! *temp tables* (row vectors), not as hash tables. Consequences, exactly as
//! in the paper:
//!
//! 1. materialization costs extra work during the original query
//!    ([`hashstash_exec::plan::PhysicalPlan::Materialize`] copies rows);
//! 2. only **exact** and **subsuming** reuse are supported;
//! 3. a reused temp table feeds an ordinary hash-join build — the hash table
//!    must be rebuilt from the temp rows every time.

use std::sync::Arc;

use hashstash_types::Result;

use hashstash_cache::HtManager;
use hashstash_exec::plan::{PhysicalPlan, ScanSpec};
use hashstash_exec::temp::{TempId, TempTableCache};
use hashstash_opt::optimizer::{OptimizedQuery, Optimizer};
use hashstash_plan::{HtFingerprint, PredBox, QuerySpec, ReuseCase};

/// Rewrite a never-share plan into the materialization-based baseline:
/// replace reusable sub-plans with temp scans (exact/subsuming only) and
/// wrap the remaining pipeline breakers with materialization.
///
/// The temp cache is a sharded `&self` store, so the rewrite takes no lock
/// across the optimizer's join enumeration — a temp table evicted between
/// this rewrite and execution surfaces as a `CacheError` the session's
/// retry loop handles.
pub fn materialized_plan(
    optimizer: &Optimizer<'_>,
    q: &QuerySpec,
    htm: &HtManager,
    temps: &TempTableCache,
) -> Result<OptimizedQuery> {
    let mut oq = optimizer.optimize(q, htm)?;
    let plan = std::mem::replace(&mut oq.plan, PhysicalPlan::Scan(ScanSpec::full("customer")));
    oq.plan = rewrite(plan, q, temps);
    Ok(oq)
}

fn rewrite(plan: PhysicalPlan, q: &QuerySpec, temps: &TempTableCache) -> PhysicalPlan {
    match plan {
        PhysicalPlan::HashJoin {
            probe,
            build,
            probe_key,
            build_key,
            publish,
            ..
        } => {
            let probe = Box::new(rewrite(*probe, q, temps));
            // Replace the build sub-plan with a temp scan when an exact or
            // subsuming match exists; otherwise materialize the build input.
            let build_plan = build.map(|b| rewrite(*b, q, temps));
            let new_build = match &publish {
                Some(fp) => match find_temp(temps, fp, &q.predicates) {
                    Some((id, schema, post_filter)) => PhysicalPlan::TempScan {
                        id,
                        schema,
                        post_filter,
                    },
                    None => PhysicalPlan::Materialize {
                        input: Box::new(build_plan.expect("fresh build has a sub-plan")),
                        fingerprint: fp.clone(),
                    },
                },
                None => build_plan.expect("baseline plans always carry builds"),
            };
            PhysicalPlan::HashJoin {
                probe,
                build: Some(Box::new(new_build)),
                probe_key,
                build_key,
                reuse: None,
                publish: None,
            }
        }
        PhysicalPlan::HashAggregate {
            input,
            group_by,
            aggs,
            output_aggs,
            publish,
            post_group_by,
            ..
        } => {
            let input = input.map(|i| Box::new(rewrite(*i, q, temps)));
            // Aggregate *outputs* are materialized; an exact/subsuming hit
            // replaces the whole sub-tree with a temp scan of final rows.
            if let Some(fp) = &publish {
                if let Some((id, schema, post_filter)) = find_temp(temps, fp, &q.predicates) {
                    return PhysicalPlan::TempScan {
                        id,
                        schema,
                        post_filter,
                    };
                }
            }
            let agg = PhysicalPlan::HashAggregate {
                input,
                group_by,
                aggs,
                output_aggs,
                reuse: None,
                publish: None,
                post_group_by,
            };
            match publish {
                Some(fp) => PhysicalPlan::Materialize {
                    input: Box::new(agg),
                    fingerprint: fp,
                },
                None => agg,
            }
        }
        PhysicalPlan::Filter { input, predicate } => PhysicalPlan::Filter {
            input: Box::new(rewrite(*input, q, temps)),
            predicate,
        },
        PhysicalPlan::Project { input, attrs } => PhysicalPlan::Project {
            input: Box::new(rewrite(*input, q, temps)),
            attrs,
        },
        PhysicalPlan::Union { inputs } => PhysicalPlan::Union {
            inputs: inputs.into_iter().map(|p| rewrite(p, q, temps)).collect(),
        },
        other @ (PhysicalPlan::Scan(_)
        | PhysicalPlan::TempScan { .. }
        | PhysicalPlan::Materialize { .. }) => other,
    }
}

/// Find a cached temp table matching the fingerprint with exact or subsuming
/// reuse (the only cases the baseline supports, per Nagel et al.).
fn find_temp(
    temps: &TempTableCache,
    request: &HtFingerprint,
    request_pred: &PredBox,
) -> Option<(TempId, hashstash_types::Schema, Option<PredBox>)> {
    for (id, fp) in temps.fingerprints() {
        if !fp.same_shape(request) {
            continue;
        }
        if !fp.provides_aggregates(&request.aggregates) {
            continue;
        }
        // The materialized rows must carry every attribute the requesting
        // plan projects upward (e.g. a join key introduced by a later
        // drill-down is absent from older temp tables).
        if !fp.payload_covers(request.payload_attrs.iter().map(|a| a.as_ref())) {
            continue;
        }
        match ReuseCase::classify(&request.region, &fp.region) {
            ReuseCase::Exact => {
                let schema = temps.schema(id).ok()?;
                return Some((id, schema, None));
            }
            ReuseCase::Subsuming => {
                // Post-filter needs its attributes in the materialized rows.
                let restricted = restrict_to_payload(request_pred, &fp.payload_attrs);
                let needed: Vec<Arc<str>> = {
                    let mut v = Vec::new();
                    for (a, _) in request_pred.constrained() {
                        let t = a.split('.').next().unwrap_or("");
                        if fp.tables.contains(t) {
                            v.push(a.clone());
                        }
                    }
                    v
                };
                if !fp.payload_covers(needed.iter().map(|a| a.as_ref())) {
                    continue;
                }
                let schema = temps.schema(id).ok()?;
                return Some((id, schema, Some(restricted)));
            }
            _ => continue,
        }
    }
    None
}

fn restrict_to_payload(pred: &PredBox, payload: &[Arc<str>]) -> PredBox {
    let mut out = PredBox::all();
    for (attr, iv) in pred.constrained() {
        if payload.iter().any(|p| p == attr) {
            out.constrain(attr.clone(), iv.clone());
        }
    }
    out
}
