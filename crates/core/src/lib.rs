//! HashStash: reuse of internal hash tables in a main-memory analytical
//! query engine.
//!
//! This crate is the user-facing facade over the whole workspace. It exposes
//! an [`Engine`] that owns a catalog, statistics, a calibrated cost model,
//! the Hash Table Manager and the temp-table cache, and executes queries
//! under a selectable [`EngineStrategy`]:
//!
//! * [`EngineStrategy::HashStash`] — the paper's system: reuse-aware
//!   optimization with all four reuse cases, benefit-oriented rewrites, and
//!   caching of every pipeline-breaker hash table.
//! * [`EngineStrategy::NoReuse`] — traditional execution, nothing cached.
//! * [`EngineStrategy::Materialized`] — materialization-based reuse (Nagel
//!   et al. style): operator outputs are copied into temp tables during
//!   execution and reused later for exact/subsuming requests only.
//! * [`EngineStrategy::AlwaysShare`] / [`EngineStrategy::NeverShare`] — the
//!   greedy and no-reuse baselines of the paper's Experiment 2.
//!
//! ```no_run
//! use hashstash::{Engine, EngineConfig, EngineStrategy};
//! use hashstash_storage::tpch::{generate, TpchConfig};
//!
//! let catalog = generate(TpchConfig::new(0.01, 42));
//! let mut engine = Engine::new(catalog, EngineConfig::default());
//! # let query = hashstash_plan::QueryBuilder::new(1)
//! #     .table("customer").build().unwrap();
//! let result = engine.execute(&query).unwrap();
//! println!("{} rows in {:?}", result.rows.len(), result.wall_time);
//! ```

pub mod engine;
pub mod materialized;

pub use engine::{Engine, EngineConfig, EngineStrategy, QueryResult, SessionStats};

// Re-export the component crates so downstream users need only one
// dependency.
pub use hashstash_cache as cache;
pub use hashstash_exec as exec;
pub use hashstash_hashtable as hashtable;
pub use hashstash_opt as opt;
pub use hashstash_plan as plan;
pub use hashstash_storage as storage;
pub use hashstash_types as types;
