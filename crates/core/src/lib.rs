//! HashStash: reuse of internal hash tables in a main-memory analytical
//! query engine.
//!
//! This crate is the user-facing facade over the whole workspace. The
//! entry point is [`Database`]: it owns the catalog, statistics, a
//! calibrated cost model, the Hash Table Manager and the temp-table cache,
//! and hands out cheap [`Session`] handles that any number of threads can
//! drive concurrently — hash tables published by one session are reused by
//! all of them.
//!
//! Reuse behavior is a pluggable [`ReusePolicy`]
//! (see [`hashstash_opt::policy`]). Five built-ins mirror the paper's §6
//! configurations, selectable by name through [`EngineStrategy`]:
//!
//! * [`EngineStrategy::HashStash`] — the paper's system: reuse-aware
//!   optimization with all four reuse cases, benefit-oriented rewrites, and
//!   caching of every pipeline-breaker hash table.
//! * [`EngineStrategy::NoReuse`] — traditional execution, nothing cached.
//! * [`EngineStrategy::Materialized`] — materialization-based reuse (Nagel
//!   et al. style): operator outputs are copied into temp tables during
//!   execution and reused later for exact/subsuming requests only.
//! * [`EngineStrategy::AlwaysShare`] / [`EngineStrategy::NeverShare`] — the
//!   greedy and no-reuse baselines of the paper's Experiment 2.
//!
//! Custom policies implement [`ReusePolicy`] and plug in through
//! [`EngineBuilder::policy`] without touching engine or optimizer
//! internals:
//!
//! ```no_run
//! use hashstash::{Database, EngineStrategy};
//! use hashstash_storage::tpch::{generate, TpchConfig};
//!
//! let catalog = generate(TpchConfig::new(0.01, 42));
//! let db = Database::builder(catalog)
//!     .strategy(EngineStrategy::HashStash)
//!     .gc_budget(256 << 20)
//!     .build();
//! let mut session = db.session();
//! # let query = hashstash_plan::QueryBuilder::new(1)
//! #     .table("customer").build().unwrap();
//! let result = session.execute(&query).unwrap();
//! println!("{} rows in {:?}", result.rows.len(), result.wall_time);
//! ```
//!
//! Any number of threads can drive [`Session`]s concurrently: the Hash
//! Table Manager is sharded and `Arc`-backed, so the only serialization
//! points are per-shard candidate lookups and publish/check-in — execution
//! itself runs lock-free, and read-only exact-match reuse of the same
//! cached table proceeds in parallel across sessions.
//!
//! Engines configured with [`EngineBuilder::data_dir`] are *durable*: a
//! write-ahead log plus benefit-scored snapshots persist the catalog and
//! the reuse caches, and a restart **rehydrates** cached hash tables so
//! the first queries after a reboot reuse work done before it (see
//! [`hashstash_durability`] for formats and recovery semantics, and
//! [`db::Database::flush`] for the crash-vs-clean-exit contract).
//!
//! (The pre-0.2 single-session `Engine`/`EngineConfig` shim, deprecated in
//! 0.2, has been removed; use [`Database::builder`] + [`Session`].)

pub mod db;
pub mod materialized;

pub use db::{
    decision_string, BatchMode, Database, EngineBuilder, EngineStrategy, FlushErrorSlot,
    QueryResult, Session, SessionStats,
};

// Tenant identity is part of the serving surface (sessions, budget floors,
// per-tenant statistics).
pub use hashstash_cache::TenantId;

// The policy trait is part of the facade's public surface.
pub use hashstash_opt::policy::ReusePolicy;

// Re-export the component crates so downstream users need only one
// dependency.
pub use hashstash_cache as cache;
pub use hashstash_durability as durability;
pub use hashstash_exec as exec;
pub use hashstash_hashtable as hashtable;
pub use hashstash_opt as opt;
pub use hashstash_plan as plan;
pub use hashstash_storage as storage;
pub use hashstash_types as types;
