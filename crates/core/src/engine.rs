//! Deprecated single-session facade, kept for one release.
//!
//! [`Engine`] wraps the new [`Database`]/[`Session`] split behind the old
//! `&mut self` API so existing callers keep compiling. New code should use
//! [`Database::builder`] — see the crate docs for a migration sketch:
//!
//! ```text
//! // before                                  // after
//! let mut e = Engine::new(cat, cfg);         let db = Database::builder(cat)
//! e.execute(&q)?;                                .strategy(cfg.strategy)
//!                                                .gc(cfg.gc)
//!                                                .build();
//!                                            let mut s = db.session();
//!                                            s.execute(&q)?;
//! ```

use std::sync::Arc;

use hashstash_types::Result;

use hashstash_cache::{CacheStats, GcConfig};
use hashstash_exec::TempTableStats;
use hashstash_opt::optimizer::OptimizedQuery;
use hashstash_plan::QuerySpec;
use hashstash_storage::Catalog;

pub use crate::db::{decision_string, BatchMode, EngineStrategy, QueryResult, SessionStats};
use crate::db::{Database, Session};

/// Engine configuration (deprecated flat form of [`crate::EngineBuilder`]).
#[deprecated(since = "0.2.0", note = "use Database::builder() instead")]
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Strategy under test.
    pub strategy: EngineStrategy,
    /// Hash-table cache GC configuration (HashStash-family strategies).
    pub gc: GcConfig,
    /// Temp-table cache budget (materialized baseline), `None` = unlimited.
    pub temp_budget: Option<usize>,
    /// Benefit-oriented optimization toggles (paper §3.4).
    pub avg_rewrite: bool,
    /// Store selection attributes in join payloads.
    pub additional_attributes: bool,
    /// Prefer future-benefit plans within an epsilon.
    pub benefit_join_order: bool,
    /// Calibrate the cost model with real micro-benchmarks at startup
    /// instead of the deterministic synthetic grid.
    pub calibrate: bool,
}

#[allow(deprecated)]
impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            strategy: EngineStrategy::HashStash,
            gc: GcConfig::default(),
            temp_budget: None,
            avg_rewrite: true,
            additional_attributes: true,
            benefit_join_order: true,
            calibrate: false,
        }
    }
}

#[allow(deprecated)]
impl EngineConfig {
    /// Convenience: default config with a given strategy.
    pub fn with_strategy(strategy: EngineStrategy) -> Self {
        EngineConfig {
            strategy,
            ..EngineConfig::default()
        }
    }
}

/// The deprecated single-session engine: a [`Database`] plus one
/// [`Session`] behind the old `&mut self` API.
#[deprecated(
    since = "0.2.0",
    note = "use Database::builder() and Session (concurrent, pluggable policies)"
)]
pub struct Engine {
    db: Arc<Database>,
    session: Session,
    #[allow(deprecated)]
    config: EngineConfig,
}

#[allow(deprecated)]
impl Engine {
    /// Build an engine over a catalog.
    pub fn new(catalog: Catalog, config: EngineConfig) -> Self {
        let db = Database::builder(catalog)
            .strategy(config.strategy)
            .gc(config.gc)
            .temp_budget(config.temp_budget)
            .avg_rewrite(config.avg_rewrite)
            .additional_attributes(config.additional_attributes)
            .benefit_join_order(config.benefit_join_order)
            .calibrate(config.calibrate)
            .build();
        let session = db.session();
        Engine {
            db,
            session,
            config,
        }
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        self.db.catalog()
    }

    /// Database statistics.
    pub fn stats(&self) -> &hashstash_opt::DbStats {
        self.db.stats()
    }

    /// The configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Hash-table cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.db.cache_stats()
    }

    /// Temp-table cache statistics (materialized baseline).
    pub fn temp_stats(&self) -> TempTableStats {
        self.db.temp_stats()
    }

    /// Session statistics.
    pub fn session_stats(&self) -> SessionStats {
        self.session.stats()
    }

    /// Current reuse-cache memory footprint in bytes.
    pub fn reuse_memory_bytes(&self) -> usize {
        self.db.reuse_memory_bytes()
    }

    /// Run `f` with exclusive access to the Hash Table Manager (replaces
    /// the old `htm_mut`, which cannot exist on shared state).
    pub fn with_cache<R>(&mut self, f: impl FnOnce(&mut hashstash_cache::HtManager) -> R) -> R {
        self.db.with_cache(f)
    }

    /// Optimize and execute a single query.
    pub fn execute(&mut self, q: &QuerySpec) -> Result<QueryResult> {
        self.session.execute(q)
    }

    /// Optimize a query without executing it.
    pub fn plan_only(&mut self, q: &QuerySpec) -> Result<OptimizedQuery> {
        self.session.plan_only(q)
    }

    /// Execute a batch of queries; results are returned in input order.
    pub fn execute_batch(
        &mut self,
        queries: &[QuerySpec],
        mode: BatchMode,
    ) -> Result<Vec<QueryResult>> {
        self.session.execute_batch(queries, mode)
    }

    /// Render the paper's decision string (see [`decision_string`]).
    pub fn decision_string(result: &QueryResult, order: &[&str]) -> String {
        decision_string(result, order)
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use hashstash_plan::{AggExpr, AggFunc, Interval, QueryBuilder};
    use hashstash_storage::tpch::{generate, TpchConfig};
    use hashstash_types::Value;

    fn q3(id: u32, ship: &str) -> QuerySpec {
        QueryBuilder::new(id)
            .join(
                "customer",
                "customer.c_custkey",
                "orders",
                "orders.o_custkey",
            )
            .join(
                "orders",
                "orders.o_orderkey",
                "lineitem",
                "lineitem.l_orderkey",
            )
            .filter(
                "lineitem.l_shipdate",
                Interval::at_least(Value::Date(
                    hashstash_types::date::parse_date(ship).unwrap(),
                )),
            )
            .group_by("customer.c_age")
            .agg(AggExpr::new(AggFunc::Sum, "lineitem.l_quantity"))
            .build()
            .unwrap()
    }

    /// The deprecated shim behaves exactly like a single-session database.
    #[test]
    fn shim_reuses_and_reports_stats() {
        let catalog = generate(TpchConfig::new(0.002, 77));
        let mut engine = Engine::new(catalog, EngineConfig::default());
        let first = engine.execute(&q3(1, "1996-06-01")).unwrap();
        let second = engine.execute(&q3(2, "1996-06-01")).unwrap();
        assert_eq!(first.rows.len(), second.rows.len());
        assert!(second.decisions.iter().any(|(_, c)| c.is_some()));
        assert!(engine.cache_stats().reuses > 0);
        assert_eq!(engine.session_stats().queries, 2);
        let s = Engine::decision_string(&second, &["customer.", "agg"]);
        assert_eq!(s.len(), 2);
    }

    /// Every `EngineConfig` knob maps onto the builder faithfully.
    #[test]
    fn shim_config_maps_to_builder() {
        let catalog = generate(TpchConfig::new(0.002, 77));
        let mut cfg = EngineConfig::with_strategy(EngineStrategy::Materialized);
        cfg.gc.budget_bytes = Some(1 << 20);
        cfg.temp_budget = Some(2 << 20);
        let engine = Engine::new(catalog, cfg);
        assert_eq!(engine.config().strategy, EngineStrategy::Materialized);
        assert_eq!(engine.db.policy().name(), "materialized");
    }
}
