//! The HashStash engine facade.

use std::time::{Duration, Instant};

use hashstash_types::{HsError, QueryId, Result, Row, Schema};

use hashstash_cache::{CacheStats, GcConfig, HtManager};
use hashstash_exec::shared::execute_shared;
use hashstash_exec::{execute, ExecContext, ExecMetrics, TempTableCache, TempTableStats};
use hashstash_opt::multi::{plan_batch, BatchUnit};
use hashstash_opt::optimizer::{Optimizer, OptimizerConfig, ReuseStrategy};
use hashstash_opt::{CostModel, DbStats};
use hashstash_plan::{QuerySpec, ReuseCase};
use hashstash_storage::Catalog;

use crate::materialized::materialized_plan;

/// Which reuse strategy the engine runs (paper §6 configurations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineStrategy {
    /// Reuse internal hash tables with the reuse-aware optimizer (paper).
    #[default]
    HashStash,
    /// No reuse, no materialization — the plain baseline.
    NoReuse,
    /// Materialization-based reuse into temp tables (exact + subsuming).
    Materialized,
    /// Greedy reuse of the highest-contribution candidate (Exp 2 baseline).
    AlwaysShare,
    /// Reuse disabled in the optimizer but otherwise HashStash (Exp 2
    /// baseline; equivalent to [`EngineStrategy::NoReuse`] for execution).
    NeverShare,
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Strategy under test.
    pub strategy: EngineStrategy,
    /// Hash-table cache GC configuration (HashStash-family strategies).
    pub gc: GcConfig,
    /// Temp-table cache budget (materialized baseline), `None` = unlimited.
    pub temp_budget: Option<usize>,
    /// Benefit-oriented optimization toggles (paper §3.4).
    pub avg_rewrite: bool,
    /// Store selection attributes in join payloads.
    pub additional_attributes: bool,
    /// Prefer future-benefit plans within an epsilon.
    pub benefit_join_order: bool,
    /// Calibrate the cost model with real micro-benchmarks at startup
    /// instead of the deterministic synthetic grid.
    pub calibrate: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            strategy: EngineStrategy::HashStash,
            gc: GcConfig::default(),
            temp_budget: None,
            avg_rewrite: true,
            additional_attributes: true,
            benefit_join_order: true,
            calibrate: false,
        }
    }
}

impl EngineConfig {
    /// Convenience: default config with a given strategy.
    pub fn with_strategy(strategy: EngineStrategy) -> Self {
        EngineConfig {
            strategy,
            ..EngineConfig::default()
        }
    }
}

/// The result of one query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Query id.
    pub query: QueryId,
    /// Output schema.
    pub schema: Schema,
    /// Output rows.
    pub rows: Vec<Row>,
    /// Wall-clock execution time (excludes optimization).
    pub wall_time: Duration,
    /// Optimization time.
    pub optimize_time: Duration,
    /// Optimizer's cost estimate (ns).
    pub est_cost_ns: f64,
    /// Execution counters.
    pub metrics: ExecMetrics,
    /// Reuse decisions per pipeline breaker (paper Table 8b's N/S strings).
    pub decisions: Vec<(String, Option<ReuseCase>)>,
}

/// Cumulative session statistics (drives the paper's Figure 7b).
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionStats {
    /// Queries executed.
    pub queries: u64,
    /// Total wall-clock execution time.
    pub total_wall: Duration,
    /// Total optimization time.
    pub total_optimize: Duration,
    /// Accumulated execution counters.
    pub metrics: ExecMetrics,
}

/// How [`Engine::execute_batch`] runs a batch (paper Exp 4 modes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchMode {
    /// Every query individually, reuse off.
    SingleNoReuse,
    /// Every query individually, reuse on.
    SingleWithReuse,
    /// Reuse-aware shared plans (query-batch interface).
    SharedWithReuse,
}

/// The engine: catalog + statistics + cost model + caches + strategy.
pub struct Engine {
    catalog: Catalog,
    stats: DbStats,
    cost: CostModel,
    config: EngineConfig,
    htm: HtManager,
    temps: TempTableCache,
    session: SessionStats,
}

impl Engine {
    /// Build an engine over a catalog.
    pub fn new(catalog: Catalog, config: EngineConfig) -> Self {
        let stats = DbStats::from_catalog(&catalog);
        let cost = if config.calibrate {
            CostModel::new(
                hashstash_hashtable::Calibrator::default().run(),
                hashstash_opt::CostParams::default(),
            )
        } else {
            CostModel::synthetic()
        };
        Engine {
            catalog,
            stats,
            cost,
            config,
            htm: HtManager::new(config.gc),
            temps: TempTableCache::new(config.temp_budget),
            session: SessionStats::default(),
        }
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Database statistics.
    pub fn stats(&self) -> &DbStats {
        &self.stats
    }

    /// The configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Hash-table cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.htm.stats()
    }

    /// Temp-table cache statistics (materialized baseline).
    pub fn temp_stats(&self) -> TempTableStats {
        self.temps.stats()
    }

    /// Session statistics.
    pub fn session_stats(&self) -> SessionStats {
        self.session
    }

    /// Current reuse-cache memory footprint in bytes (hash tables or temp
    /// tables, depending on strategy).
    pub fn reuse_memory_bytes(&self) -> usize {
        match self.config.strategy {
            EngineStrategy::Materialized => self.temps.stats().bytes,
            _ => self.htm.stats().bytes,
        }
    }

    /// Direct access to the Hash Table Manager (tests, experiments).
    pub fn htm_mut(&mut self) -> &mut HtManager {
        &mut self.htm
    }

    fn optimizer_config(&self) -> OptimizerConfig {
        let (strategy, publish) = match self.config.strategy {
            EngineStrategy::HashStash => (ReuseStrategy::CostModel, true),
            EngineStrategy::AlwaysShare => (ReuseStrategy::AlwaysShare, true),
            EngineStrategy::NeverShare | EngineStrategy::NoReuse => {
                (ReuseStrategy::NeverShare, false)
            }
            // The baseline publishes *markers* that the rewrite turns into
            // materialize/temp-scan operators; no hash tables are cached.
            EngineStrategy::Materialized => (ReuseStrategy::NeverShare, true),
        };
        OptimizerConfig {
            strategy,
            publish_tables: publish,
            avg_rewrite: self.config.avg_rewrite,
            additional_attributes: self.config.additional_attributes,
            benefit_join_order: self.config.benefit_join_order,
            benefit_epsilon: 0.1,
        }
    }

    /// Optimize and execute a single query (query-at-a-time interface).
    pub fn execute(&mut self, q: &QuerySpec) -> Result<QueryResult> {
        let opt_cfg = self.optimizer_config();
        let optimizer = Optimizer::new(&self.catalog, &self.stats, &self.cost, opt_cfg);

        let t0 = Instant::now();
        let oq = match self.config.strategy {
            EngineStrategy::Materialized => {
                materialized_plan(&optimizer, q, &mut self.htm, &self.temps)?
            }
            _ => optimizer.optimize(q, &mut self.htm)?,
        };
        let optimize_time = t0.elapsed();

        let decisions = oq.plan.reuse_decisions();
        let t1 = Instant::now();
        let mut ctx = ExecContext::new(&self.catalog, &mut self.htm, &mut self.temps);
        let (schema, rows) = execute(&oq.plan, &mut ctx)?;
        let wall_time = t1.elapsed();
        let metrics = ctx.metrics;

        self.session.queries += 1;
        self.session.total_wall += wall_time;
        self.session.total_optimize += optimize_time;
        self.session.metrics.absorb(&metrics);

        Ok(QueryResult {
            query: q.id,
            schema,
            rows,
            wall_time,
            optimize_time,
            est_cost_ns: oq.est_cost_ns,
            metrics,
            decisions,
        })
    }

    /// Optimize a query without executing it (experiments peek at plans).
    pub fn plan_only(&mut self, q: &QuerySpec) -> Result<hashstash_opt::optimizer::OptimizedQuery> {
        let opt_cfg = self.optimizer_config();
        let optimizer = Optimizer::new(&self.catalog, &self.stats, &self.cost, opt_cfg);
        optimizer.optimize(q, &mut self.htm)
    }

    /// Execute a batch of queries (query-batch interface, paper §4).
    /// Results are returned in input order.
    pub fn execute_batch(
        &mut self,
        queries: &[QuerySpec],
        mode: BatchMode,
    ) -> Result<Vec<QueryResult>> {
        match mode {
            BatchMode::SingleNoReuse => {
                let saved = self.config.strategy;
                self.config.strategy = EngineStrategy::NoReuse;
                let out: Result<Vec<QueryResult>> =
                    queries.iter().map(|q| self.execute(q)).collect();
                self.config.strategy = saved;
                out
            }
            BatchMode::SingleWithReuse => queries.iter().map(|q| self.execute(q)).collect(),
            BatchMode::SharedWithReuse => self.execute_shared_batch(queries),
        }
    }

    fn execute_shared_batch(&mut self, queries: &[QuerySpec]) -> Result<Vec<QueryResult>> {
        let opt_cfg = self.optimizer_config();
        let t0 = Instant::now();
        let plan = plan_batch(
            queries,
            &self.catalog,
            &self.stats,
            &self.cost,
            opt_cfg,
            &mut self.htm,
            true,
        )?;
        let optimize_time = t0.elapsed();

        let mut results: Vec<Option<QueryResult>> = (0..queries.len()).map(|_| None).collect();
        for unit in plan.units {
            match unit {
                BatchUnit::Single { index, .. } => {
                    let r = self.execute(&queries[index])?;
                    results[index] = Some(r);
                }
                BatchUnit::Shared {
                    indices,
                    spec,
                    est_cost_ns,
                } => {
                    let t1 = Instant::now();
                    let mut ctx =
                        ExecContext::new(&self.catalog, &mut self.htm, &mut self.temps);
                    let shared_results = execute_shared(&spec, &mut ctx)?;
                    let wall = t1.elapsed();
                    let metrics = ctx.metrics;
                    self.session.queries += indices.len() as u64;
                    self.session.total_wall += wall;
                    self.session.metrics.absorb(&metrics);
                    let per_query_wall = wall / indices.len().max(1) as u32;
                    for (slot, &index) in indices.iter().enumerate() {
                        let r = &shared_results[slot];
                        results[index] = Some(QueryResult {
                            query: queries[index].id,
                            schema: r.schema.clone(),
                            rows: r.rows.clone(),
                            wall_time: per_query_wall,
                            optimize_time,
                            est_cost_ns: est_cost_ns / indices.len() as f64,
                            metrics,
                            decisions: vec![("shared".to_string(), None)],
                        });
                    }
                }
            }
        }
        results
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.ok_or_else(|| HsError::ExecError(format!("query {i} missing from batch plan")))
            })
            .collect()
    }

    /// Render the paper's decision string for a query (Table 8b): one
    /// character per pipeline breaker in `order`, `N` = new hash table,
    /// `S` = reused, `X` = operator eliminated.
    pub fn decision_string(result: &QueryResult, order: &[&str]) -> String {
        let mut out = String::new();
        for want in order {
            let found = result
                .decisions
                .iter()
                .find(|(label, _)| label.contains(want));
            out.push(match found {
                None => 'X',
                Some((_, None)) => 'N',
                Some((_, Some(_))) => 'S',
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hashstash_plan::{AggExpr, AggFunc, Interval, QueryBuilder};
    use hashstash_storage::tpch::{generate, TpchConfig};
    use hashstash_types::Value;

    fn catalog() -> Catalog {
        generate(TpchConfig::new(0.002, 77))
    }

    fn q3(id: u32, ship: &str) -> QuerySpec {
        QueryBuilder::new(id)
            .join("customer", "customer.c_custkey", "orders", "orders.o_custkey")
            .join("orders", "orders.o_orderkey", "lineitem", "lineitem.l_orderkey")
            .filter(
                "lineitem.l_shipdate",
                Interval::at_least(Value::Date(
                    hashstash_types::date::parse_date(ship).unwrap(),
                )),
            )
            .group_by("customer.c_age")
            .agg(AggExpr::new(AggFunc::Sum, "lineitem.l_quantity"))
            .build()
            .unwrap()
    }

    fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
        rows.sort();
        rows
    }

    #[test]
    fn all_strategies_agree_on_answers() {
        let strategies = [
            EngineStrategy::HashStash,
            EngineStrategy::NoReuse,
            EngineStrategy::Materialized,
            EngineStrategy::AlwaysShare,
            EngineStrategy::NeverShare,
        ];
        let queries = [q3(1, "1996-06-01"), q3(2, "1996-01-01"), q3(3, "1996-09-01")];
        let mut reference: Option<Vec<Vec<Row>>> = None;
        for s in strategies {
            let mut engine = Engine::new(catalog(), EngineConfig::with_strategy(s));
            let answers: Vec<Vec<Row>> = queries
                .iter()
                .map(|q| sorted(engine.execute(q).unwrap().rows))
                .collect();
            match &reference {
                None => reference = Some(answers),
                Some(r) => {
                    for (i, (a, b)) in r.iter().zip(&answers).enumerate() {
                        assert_eq!(a.len(), b.len(), "strategy {s:?} query {i} row count");
                        for (x, y) in a.iter().zip(b) {
                            assert_eq!(x.get(0), y.get(0), "strategy {s:?} group keys");
                            let fx = x.get(1).as_float().unwrap();
                            let fy = y.get(1).as_float().unwrap();
                            assert!(
                                (fx - fy).abs() < 1e-6 * fy.abs().max(1.0),
                                "strategy {s:?} aggregates: {fx} vs {fy}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn hashstash_reuses_across_session() {
        let mut engine = Engine::new(catalog(), EngineConfig::default());
        engine.execute(&q3(1, "1996-06-01")).unwrap();
        let second = engine.execute(&q3(2, "1996-01-01")).unwrap();
        assert!(
            second.decisions.iter().any(|(_, c)| c.is_some()),
            "second query reuses: {:?}",
            second.decisions
        );
        assert!(engine.cache_stats().reuses > 0);
    }

    #[test]
    fn materialized_baseline_materializes_and_reuses() {
        let mut engine =
            Engine::new(catalog(), EngineConfig::with_strategy(EngineStrategy::Materialized));
        let first = engine.execute(&q3(1, "1996-06-01")).unwrap();
        assert!(first.metrics.materialized_rows > 0, "pays materialization");
        assert!(engine.temp_stats().publishes > 0);
        // Identical query reuses temp tables (exact).
        let second = engine.execute(&q3(2, "1996-06-01")).unwrap();
        assert!(engine.temp_stats().reuses > 0);
        assert_eq!(
            sorted(first.rows.clone()).len(),
            sorted(second.rows).len()
        );
        // No hash tables were cached.
        assert_eq!(engine.cache_stats().publishes, 0);
    }

    #[test]
    fn batch_modes_agree() {
        let queries: Vec<QuerySpec> = (0..4)
            .map(|i| {
                QueryBuilder::new(i)
                    .join("customer", "customer.c_custkey", "orders", "orders.o_custkey")
                    .filter(
                        "customer.c_age",
                        Interval::closed(Value::Int(20 + i as i64 * 5), Value::Int(50 + i as i64 * 5)),
                    )
                    .group_by("customer.c_age")
                    .agg(AggExpr::new(AggFunc::Count, "orders.o_orderkey"))
                    .build()
                    .unwrap()
            })
            .collect();
        let mut reference: Option<Vec<Vec<Row>>> = None;
        for mode in [
            BatchMode::SingleNoReuse,
            BatchMode::SingleWithReuse,
            BatchMode::SharedWithReuse,
        ] {
            let mut engine = Engine::new(catalog(), EngineConfig::default());
            let results = engine.execute_batch(&queries, mode).unwrap();
            assert_eq!(results.len(), queries.len());
            let answers: Vec<Vec<Row>> = results.into_iter().map(|r| sorted(r.rows)).collect();
            match &reference {
                None => reference = Some(answers),
                Some(r) => {
                    for (i, (a, b)) in r.iter().zip(&answers).enumerate() {
                        assert_eq!(a, b, "mode {mode:?} query {i}");
                    }
                }
            }
        }
    }

    #[test]
    fn decision_string_renders() {
        let mut engine = Engine::new(catalog(), EngineConfig::default());
        engine.execute(&q3(1, "1996-06-01")).unwrap();
        let r = engine.execute(&q3(2, "1996-06-01")).unwrap();
        let s = Engine::decision_string(&r, &["orders", "customer", "agg"]);
        assert_eq!(s.len(), 3);
        assert!(s.contains('S') || s.contains('X'), "some reuse shows: {s}");
    }

    #[test]
    fn gc_budget_limits_footprint() {
        let mut cfg = EngineConfig::default();
        cfg.gc.budget_bytes = Some(64 * 1024);
        let mut engine = Engine::new(catalog(), cfg);
        for i in 0..6 {
            let ship = format!("199{}-0{}-01", 3 + i % 5, 1 + i % 9);
            engine.execute(&q3(i as u32, &ship)).unwrap();
        }
        assert!(engine.cache_stats().bytes <= 64 * 1024);
        assert!(engine.cache_stats().evictions > 0);
    }
}
