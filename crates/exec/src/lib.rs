//! Physical operators and the single-threaded executor.
//!
//! The paper's prototype compiles queries to C++ and runs single-threaded
//! "in order to show the pure effects of reuse" (§6). This crate is the
//! equivalent substrate: a recursive, single-threaded interpreter over
//! physical plans whose pipeline breakers materialize
//! [`hashstash_hashtable::ExtendibleHashTable`]s and exchange them with the
//! Hash Table Manager.
//!
//! * [`plan`] — the physical plan tree: scans (with region predicates and
//!   index support), filter/project, hash join and hash aggregate with
//!   optional [`plan::ReuseSpec`] / publish directives.
//! * [`exec`] — the interpreter plus [`exec::ExecMetrics`] (tuples scanned,
//!   hash-table inserts/probes/updates, bytes materialized) used to validate
//!   cost models.
//! * [`temp`] — the temp-table cache of the materialization-based reuse
//!   baseline (Nagel-style: exact + subsuming reuse of *operator outputs*,
//!   paid for by extra materialization work during execution).
//! * [`shared`] — reuse-aware shared plans: shared scans, SRHJ and SRHA with
//!   query-id tagging and re-tagging (paper §4).

pub mod exec;
pub mod plan;
pub mod shared;
pub mod temp;

pub use exec::{acquire_plan_checkouts, execute, ExecContext, ExecMetrics};
pub use plan::{OutputAgg, PhysicalPlan, ReuseSpec, ScanSpec};
pub use shared::{SharedPlanSpec, SharedReuse};
pub use temp::{TempTableCache, TempTableStats};
