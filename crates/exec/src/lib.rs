//! Physical operators and the morsel-parallel executor.
//!
//! The paper's prototype compiles queries to C++ and runs single-threaded
//! "in order to show the pure effects of reuse" (§6). This crate is the
//! equivalent substrate: a recursive interpreter over physical plans whose
//! pipeline breakers materialize
//! [`hashstash_hashtable::ExtendibleHashTable`]s and exchange them with the
//! Hash Table Manager. Unlike the prototype, the hot operator loops (scan
//! filtering, join probing, reuse post-filtering) fan out over row-range
//! morsels, and fresh hash-table *builds* fan out over bucket/key
//! partitions — see [`parallel`] — with output (and the built tables
//! themselves) deterministically equal to the serial interpreter.
//!
//! * [`plan`] — the physical plan tree: scans (with region predicates and
//!   index support), filter/project, hash join and hash aggregate with
//!   optional [`plan::ReuseSpec`] / publish directives.
//! * [`exec`] — the interpreter plus [`exec::ExecMetrics`] (tuples scanned,
//!   hash-table inserts/probes/updates, bytes materialized) used to validate
//!   cost models.
//! * [`parallel`] — the morsel scheduler: phases over an atomic claim
//!   space, per-participant output buffers concatenated in morsel-index
//!   order.
//! * [`pool`] — the persistent [`pool::WorkerPool`] those phases run on:
//!   spawned once per `Database` (or lazily process-wide), shared across
//!   phases, queries, and sessions, joined on drop.
//! * [`temp`] — the temp-table cache of the materialization-based reuse
//!   baseline (Nagel-style: exact + subsuming reuse of *operator outputs*,
//!   paid for by extra materialization work during execution).
//! * [`vector`] — selection-vector kernels for the columnar hot paths:
//!   vectorized scans, filters, probe key extraction and aggregate folds
//!   that run over `Column` slices and materialize rows only at pipeline
//!   edges, bit-identical to the row interpreter (`HS_VECTORIZE=0`).
//! * [`shared`] — reuse-aware shared plans: shared scans, SRHJ and SRHA with
//!   query-id tagging and re-tagging (paper §4).

pub mod exec;
pub mod parallel;
pub mod plan;
pub mod pool;
pub mod shared;
pub mod temp;
pub mod vector;

pub use exec::{acquire_plan_checkouts, execute, ExecContext, ExecMetrics};
pub use parallel::{
    default_parallelism, effective_parallelism, engine_default_parallelism, min_parallel_morsels,
    Scheduler, MIN_PARALLEL_BUILD_ROWS, MORSEL_ROWS, PHASE_DISPATCH_NS,
};
pub use plan::{OutputAgg, PhysicalPlan, ReuseSpec, ScanSpec};
pub use pool::WorkerPool;
pub use shared::{SharedPlanSpec, SharedReuse};
pub use temp::{TempTableCache, TempTableStats};
pub use vector::{default_vectorize, ColumnarBatch, KeyKernel};
