//! Morsel-driven intra-query parallelism.
//!
//! The interpreter stays a plain recursive tree-walk; the hot loops inside
//! individual operators — base-table scan filtering, hash-join probing, the
//! post-filter pass over a reused table — are split into fixed-size
//! row-range *morsels* dispatched to a small fixed pool of scoped worker
//! threads (no work stealing: workers claim the next morsel index from a
//! shared atomic counter, which balances skew just as well for uniform
//! row-range work).
//!
//! # Determinism
//!
//! Each worker writes into a private output buffer per morsel; the
//! scheduler returns the per-morsel buffers **in morsel-index order**, and
//! rows within one morsel are processed in row order. Concatenating the
//! buffers therefore yields exactly the sequence the serial loop would have
//! produced: parallel execution is bit-identical to `parallelism = 1`, for
//! any worker count and any scheduling interleaving. Tests pin this
//! (`tests/parallel_determinism.rs`).
//!
//! # Granularity
//!
//! Inputs smaller than one morsel ([`MORSEL_ROWS`]) never cross a thread
//! boundary — tiny operators keep their serial fast path and zero spawn
//! overhead, so unit tests and low-selectivity deltas are unaffected by the
//! engine-level parallelism default.
//!
//! # Builds
//!
//! Hash-table *builds* cannot use the per-morsel output-buffer trick:
//! insertion order defines collision-chain order, which probe output order
//! (and the cached table's layout) depends on. Fresh builds instead fan out
//! **by bucket**: [`build_multimap_partitioned`] has workers compute the
//! chains of disjoint bucket ranges from the row-order key sequence and
//! stitches them serially, and [`build_grouped_partitioned`] partitions
//! aggregate folding by key and replays the structural history — both
//! bit-identical to the serial build at any worker count (pinned by
//! `tests/build_equivalence.rs` and `tests/parallel_determinism.rs`).

use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use hashstash_hashtable::{bucket_ranges, partition_chains, ExtendibleHashTable};

/// Rows per morsel. Large enough that per-morsel dispatch (one atomic
/// fetch-add plus a buffer push) is noise; small enough that a handful of
/// morsels balance across workers even on skewed filters.
pub const MORSEL_ROWS: usize = 1024;

/// Minimum morsel count before a phase fans out. Workers are scoped
/// threads spawned per parallel phase (the offline container rules out a
/// rayon-style global pool), so a spawn+join round must be amortized over
/// several morsels of real work; below this, inline execution wins. The
/// cost model mirrors this threshold and prices the spawn
/// ([`CostParams::parallel_spawn_ns`]).
///
/// [`CostParams::parallel_spawn_ns`]: ../../hashstash_opt/cost/struct.CostParams.html
pub const MIN_PARALLEL_MORSELS: usize = 4;

/// Worker count taken from the `PARALLELISM` environment variable, falling
/// back to `1` (the serial interpreter). [`ExecContext::new`] uses this so
/// a whole test suite can be re-run under N-way execution by exporting
/// `PARALLELISM=N` (the CI matrix does exactly that).
///
/// [`ExecContext::new`]: crate::ExecContext::new
pub fn default_parallelism() -> usize {
    // Cached: this runs once per ExecContext, i.e. on the per-query hot
    // path, and the variable cannot meaningfully change mid-process.
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        std::env::var("PARALLELISM")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(1)
    })
}

/// Worker count for an engine: the `PARALLELISM` environment variable if
/// set, otherwise every core the OS reports.
pub fn engine_default_parallelism() -> usize {
    std::env::var("PARALLELISM")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Number of morsels `total` rows split into.
pub fn morsel_count(total: usize) -> usize {
    total.div_ceil(MORSEL_ROWS)
}

#[inline]
fn morsel_range(index: usize, total: usize) -> Range<usize> {
    let start = index * MORSEL_ROWS;
    start..(start + MORSEL_ROWS).min(total)
}

/// Run `f` once per morsel of `0..total` on up to `parallelism` worker
/// threads and return the per-morsel outputs **in morsel-index order**.
///
/// `f` receives the row range of its morsel and must be pure with respect
/// to shared state (it gets `&` captures only). With `parallelism <= 1`,
/// or when the input is smaller than [`MIN_PARALLEL_MORSELS`] morsels
/// (too little work to amortize the per-phase spawn+join), `f` runs once
/// over the whole range inline on the caller's thread — the serial
/// interpreter path, byte for byte and allocation for allocation.
///
/// A panic inside a worker is propagated to the caller with its original
/// payload after the scope joins (no detached threads, no poisoned state).
pub fn run_morsels<T, F>(parallelism: usize, total: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let morsels = morsel_count(total);
    if morsels == 0 {
        return Vec::new();
    }
    if parallelism <= 1 || morsels < MIN_PARALLEL_MORSELS {
        // One undivided morsel: the pre-morsel serial loop, with no
        // per-chunk allocations (rows within a morsel are processed in row
        // order, so the output is the same either way).
        return vec![f(0..total)];
    }
    let workers = parallelism.min(morsels);
    let next = AtomicUsize::new(0);
    let parts: Vec<Vec<(usize, T)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= morsels {
                            break;
                        }
                        local.push((i, f(morsel_range(i, total))));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(local) => local,
                // Re-raise with the original payload so the real panic
                // message and location survive to the test/CI output.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut all: Vec<(usize, T)> = parts.into_iter().flatten().collect();
    debug_assert_eq!(all.len(), morsels);
    all.sort_unstable_by_key(|(i, _)| *i);
    all.into_iter().map(|(_, t)| t).collect()
}

/// Minimum build-side row count before a hash-table build fans out. A
/// partitioned build pays one spawn+join round plus a serial stitch pass;
/// below this the plain insert loop wins. Mirrors the morsel fan-out
/// threshold (`MORSEL_ROWS * MIN_PARALLEL_MORSELS`), and the cost model
/// prices the same cutoff ([`CostModel::parallel_build`]).
///
/// [`CostModel::parallel_build`]: ../../hashstash_opt/cost/struct.CostModel.html#method.parallel_build
pub const MIN_PARALLEL_BUILD_ROWS: usize = MORSEL_ROWS * MIN_PARALLEL_MORSELS;

/// Build a multimap hash table from parallel `keys`/`values` columns in row
/// order, **bit-identically** to the serial `reserve(n)` + [`insert`] loop,
/// fanning the chain computation out over `workers` bucket-range
/// partitions. (Columns rather than pairs: call sites compute the keys in a
/// morsel-parallel pass and would otherwise zip and immediately un-zip.)
///
/// The directory is pre-sized first, which fixes every key's bucket; each
/// worker owns a contiguous bucket range and derives the collision chains
/// its buckets would have after a serial build (same newest-first order,
/// same distinct-key bookkeeping). A single serial stitch pass then installs
/// chains and values — arena order is row order either way, so the result is
/// byte-identical to the serial build at any worker count, including the
/// lazy-split depth state and the resize counter. With `workers <= 1` this
/// *is* the serial loop.
///
/// `table` must be empty (fresh build). Mutating-reuse delta inserts keep
/// the plain serial loop: they extend a table with existing history.
///
/// [`insert`]: ExtendibleHashTable::insert
pub fn build_multimap_partitioned<V: Send>(
    workers: usize,
    table: &mut ExtendibleHashTable<V>,
    keys: Vec<u64>,
    values: Vec<V>,
) {
    assert_eq!(keys.len(), values.len(), "one key per value");
    table.reserve(keys.len());
    if workers <= 1 || keys.len() < 2 {
        for (key, value) in keys.into_iter().zip(values) {
            table.insert(key, value);
        }
        return;
    }
    let dir_len = table.bucket_count();
    let ranges = bucket_ranges(dir_len, workers);
    let keys_ref = &keys;
    let parts = std::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| s.spawn(move || partition_chains(keys_ref, dir_len, range)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(part) => part,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect::<Vec<_>>()
    });
    table.fill_from_partitions(&keys, values, parts);
}

/// One group discovered by [`build_grouped_partitioned`], tagged with the
/// row that created it.
#[derive(Debug)]
pub struct MergedGroup<P> {
    /// Index of the first input row that hashed-and-matched this group —
    /// the row whose serial `upsert` would have inserted it.
    pub first_row: usize,
    /// The group's 64-bit hash key.
    pub key: u64,
    /// The fully folded payload (all of the group's rows applied in global
    /// row order).
    pub payload: P,
}

/// Result of a partitioned grouped build: groups in first-occurrence order
/// plus the insert/update counts the serial fold would have reported.
#[derive(Debug)]
pub struct GroupedBuild<P> {
    /// Discovered groups, ascending by [`MergedGroup::first_row`] — exactly
    /// the arena order a serial `upsert` loop produces.
    pub groups: Vec<MergedGroup<P>>,
    /// Rows that created a group (`c_insert` events).
    pub inserts: u64,
    /// Rows folded into an existing group (`c_update` events).
    pub updates: u64,
}

/// Deterministic key → worker assignment for grouped builds. Any map works
/// as long as equal keys agree (a group never spans workers); mixing the
/// key decorrelates it from the table's bucket-index low bits.
#[inline]
fn group_owner(key: u64, workers: usize) -> usize {
    ((key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) % workers
}

/// Fold rows into groups in parallel, partitioned **by key**, such that the
/// outcome is independent of the worker count:
///
/// * group identity (`matches`) and per-group fold order are key-local
///   facts: each worker scans the full row sequence in row order and folds
///   only the rows whose key it owns, so every group's `update` calls happen
///   in global row order — floating-point accumulation included;
/// * the merged group list is ordered by first-occurrence row, which is the
///   arena order of a serial `upsert` loop.
///
/// The caller replays the structural history into a real table (one
/// [`touch`] per row, one [`insert`] per group-creating row — see
/// [`ExtendibleHashTable::touch`]) to obtain a table bit-identical to the
/// serial build. With `workers <= 1` the single partition still uses this
/// code path; callers that want the serial fast path keep their own loop.
///
/// [`touch`]: ExtendibleHashTable::touch
/// [`insert`]: ExtendibleHashTable::insert
pub fn build_grouped_partitioned<P, M, I, U>(
    workers: usize,
    keys: &[u64],
    matches: M,
    init: I,
    update: U,
) -> GroupedBuild<P>
where
    P: Send,
    M: Fn(usize, &P) -> bool + Sync,
    I: Fn(usize) -> P + Sync,
    U: Fn(usize, &mut P) + Sync,
{
    let workers = workers.max(1);
    let fold_partition = |w: usize| {
        let mut groups: Vec<MergedGroup<P>> = Vec::new();
        // key → positions in `groups` (collisions on the 64-bit key are
        // disambiguated by `matches`, like the serial chain walk).
        let mut index: HashMap<u64, Vec<u32>> = HashMap::new();
        let mut inserts = 0u64;
        let mut updates = 0u64;
        for (i, &key) in keys.iter().enumerate() {
            if workers > 1 && group_owner(key, workers) != w {
                continue;
            }
            let slot = index.entry(key).or_default();
            let found = slot
                .iter()
                .copied()
                .find(|&g| matches(i, &groups[g as usize].payload));
            match found {
                Some(g) => {
                    update(i, &mut groups[g as usize].payload);
                    updates += 1;
                }
                None => {
                    slot.push(groups.len() as u32);
                    groups.push(MergedGroup {
                        first_row: i,
                        key,
                        payload: init(i),
                    });
                    inserts += 1;
                }
            }
        }
        (groups, inserts, updates)
    };
    let parts: Vec<(Vec<MergedGroup<P>>, u64, u64)> = if workers <= 1 {
        vec![fold_partition(0)]
    } else {
        let fold_ref = &fold_partition;
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers).map(|w| s.spawn(move || fold_ref(w))).collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(part) => part,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        })
    };
    let mut inserts = 0;
    let mut updates = 0;
    let mut groups = Vec::with_capacity(parts.iter().map(|(g, _, _)| g.len()).sum());
    for (g, i, u) in parts {
        groups.extend(g);
        inserts += i;
        updates += u;
    }
    // first_row is unique (one creating row per group), so this is a total
    // order — the serial arena order, independent of the partitioning.
    groups.sort_unstable_by_key(|g| g.first_row);
    GroupedBuild {
        groups,
        inserts,
        updates,
    }
}

/// [`run_morsels`] for the common case of producing rows: flattens the
/// per-morsel buffers (still in morsel order) into one output vector.
pub fn collect_morsels<T, F>(parallelism: usize, total: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> Vec<T> + Sync,
{
    let mut chunks = run_morsels(parallelism, total, f);
    if chunks.len() <= 1 {
        return chunks.pop().unwrap_or_default();
    }
    let n = chunks.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(n);
    for mut c in chunks {
        out.append(&mut c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_runs_nothing() {
        let calls = AtomicUsize::new(0);
        let out: Vec<Vec<u32>> = run_morsels(4, 0, |_| {
            calls.fetch_add(1, Ordering::Relaxed);
            Vec::new()
        });
        assert!(out.is_empty());
        assert_eq!(calls.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn small_input_stays_on_caller_thread() {
        let caller = std::thread::current().id();
        let out = run_morsels(8, MORSEL_ROWS, |r| {
            assert_eq!(std::thread::current().id(), caller);
            r.len()
        });
        assert_eq!(out, vec![MORSEL_ROWS]);
    }

    #[test]
    fn morsel_order_is_deterministic_for_any_worker_count() {
        let total = MORSEL_ROWS * 7 + 123;
        let serial: Vec<usize> = collect_morsels(1, total, |r| r.collect());
        assert_eq!(serial, (0..total).collect::<Vec<_>>());
        for workers in [2, 3, 4, 8, 64] {
            let parallel: Vec<usize> = collect_morsels(workers, total, |r| r.collect());
            assert_eq!(parallel, serial, "{workers} workers");
        }
    }

    #[test]
    fn ranges_tile_the_input_exactly() {
        let total = MORSEL_ROWS * 3 + 1;
        let ranges = run_morsels(4, total, |r| r);
        assert_eq!(ranges.len(), morsel_count(total));
        let mut expect_start = 0;
        for r in &ranges {
            assert_eq!(r.start, expect_start);
            expect_start = r.end;
        }
        assert_eq!(expect_start, total);
    }

    #[test]
    fn partitioned_multimap_build_matches_serial_layout() {
        let n = MORSEL_ROWS * 5 + 77;
        let keys: Vec<u64> = (0..n).map(|i| (i as u64).wrapping_mul(31) % 997).collect();
        let values = || (0..n as u64).collect::<Vec<_>>();
        let mut serial = ExtendibleHashTable::new(16);
        build_multimap_partitioned(1, &mut serial, keys.clone(), values());
        for workers in [2, 3, 4, 8] {
            let mut par = ExtendibleHashTable::new(16);
            build_multimap_partitioned(workers, &mut par, keys.clone(), values());
            assert!(par.layout_eq(&serial), "{workers} workers");
        }
    }

    #[test]
    fn grouped_build_is_worker_count_invariant_bitwise() {
        // The payload is a running f64 sum: any change in per-group fold
        // order shows up as a bit difference.
        let keys: Vec<u64> = (0..5000u64).map(|i| (i * i) % 13).collect();
        let run = |workers| {
            build_grouped_partitioned(
                workers,
                &keys,
                |_i, _p: &f64| true,
                |i| (i as f64) * 0.1,
                |i, p| *p += (i as f64) * 0.1,
            )
        };
        let one = run(1);
        let distinct = {
            let mut k: Vec<u64> = keys.clone();
            k.sort_unstable();
            k.dedup();
            k.len()
        };
        assert_eq!(one.groups.len(), distinct);
        assert_eq!(one.inserts as usize, distinct);
        assert_eq!(one.updates as usize, keys.len() - distinct);
        for workers in [2, 4, 8] {
            let got = run(workers);
            assert_eq!((got.inserts, got.updates), (one.inserts, one.updates));
            assert_eq!(got.groups.len(), one.groups.len(), "{workers} workers");
            for (a, b) in got.groups.iter().zip(&one.groups) {
                assert_eq!((a.first_row, a.key), (b.first_row, b.key));
                assert_eq!(
                    a.payload.to_bits(),
                    b.payload.to_bits(),
                    "float fold order must be serial ({workers} workers)"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates_with_original_payload() {
        run_morsels(2, MORSEL_ROWS * 4, |r| {
            if r.start >= MORSEL_ROWS {
                panic!("boom");
            }
            r.len()
        });
    }

    #[test]
    fn sub_threshold_inputs_run_inline_as_one_chunk() {
        let caller = std::thread::current().id();
        let total = MORSEL_ROWS * (MIN_PARALLEL_MORSELS - 1);
        let out = run_morsels(8, total, |r| {
            assert_eq!(std::thread::current().id(), caller);
            r
        });
        assert_eq!(out, vec![0..total], "one undivided serial chunk");
    }
}
