//! Morsel-driven intra-query parallelism.
//!
//! The interpreter stays a plain recursive tree-walk; the hot loops inside
//! individual operators — base-table scan filtering, hash-join probing, the
//! post-filter pass over a reused table — are split into fixed-size
//! row-range *morsels* dispatched to a small fixed pool of scoped worker
//! threads (no work stealing: workers claim the next morsel index from a
//! shared atomic counter, which balances skew just as well for uniform
//! row-range work).
//!
//! # Determinism
//!
//! Each worker writes into a private output buffer per morsel; the
//! scheduler returns the per-morsel buffers **in morsel-index order**, and
//! rows within one morsel are processed in row order. Concatenating the
//! buffers therefore yields exactly the sequence the serial loop would have
//! produced: parallel execution is bit-identical to `parallelism = 1`, for
//! any worker count and any scheduling interleaving. Tests pin this
//! (`tests/parallel_determinism.rs`).
//!
//! # Granularity
//!
//! Inputs smaller than one morsel ([`MORSEL_ROWS`]) never cross a thread
//! boundary — tiny operators keep their serial fast path and zero spawn
//! overhead, so unit tests and low-selectivity deltas are unaffected by the
//! engine-level parallelism default.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Rows per morsel. Large enough that per-morsel dispatch (one atomic
/// fetch-add plus a buffer push) is noise; small enough that a handful of
/// morsels balance across workers even on skewed filters.
pub const MORSEL_ROWS: usize = 1024;

/// Minimum morsel count before a phase fans out. Workers are scoped
/// threads spawned per parallel phase (the offline container rules out a
/// rayon-style global pool), so a spawn+join round must be amortized over
/// several morsels of real work; below this, inline execution wins. The
/// cost model mirrors this threshold and prices the spawn
/// ([`CostParams::parallel_spawn_ns`]).
///
/// [`CostParams::parallel_spawn_ns`]: ../../hashstash_opt/cost/struct.CostParams.html
pub const MIN_PARALLEL_MORSELS: usize = 4;

/// Worker count taken from the `PARALLELISM` environment variable, falling
/// back to `1` (the serial interpreter). [`ExecContext::new`] uses this so
/// a whole test suite can be re-run under N-way execution by exporting
/// `PARALLELISM=N` (the CI matrix does exactly that).
///
/// [`ExecContext::new`]: crate::ExecContext::new
pub fn default_parallelism() -> usize {
    // Cached: this runs once per ExecContext, i.e. on the per-query hot
    // path, and the variable cannot meaningfully change mid-process.
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        std::env::var("PARALLELISM")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(1)
    })
}

/// Worker count for an engine: the `PARALLELISM` environment variable if
/// set, otherwise every core the OS reports.
pub fn engine_default_parallelism() -> usize {
    std::env::var("PARALLELISM")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Number of morsels `total` rows split into.
pub fn morsel_count(total: usize) -> usize {
    total.div_ceil(MORSEL_ROWS)
}

#[inline]
fn morsel_range(index: usize, total: usize) -> Range<usize> {
    let start = index * MORSEL_ROWS;
    start..(start + MORSEL_ROWS).min(total)
}

/// Run `f` once per morsel of `0..total` on up to `parallelism` worker
/// threads and return the per-morsel outputs **in morsel-index order**.
///
/// `f` receives the row range of its morsel and must be pure with respect
/// to shared state (it gets `&` captures only). With `parallelism <= 1`,
/// or when the input is smaller than [`MIN_PARALLEL_MORSELS`] morsels
/// (too little work to amortize the per-phase spawn+join), `f` runs once
/// over the whole range inline on the caller's thread — the serial
/// interpreter path, byte for byte and allocation for allocation.
///
/// A panic inside a worker is propagated to the caller with its original
/// payload after the scope joins (no detached threads, no poisoned state).
pub fn run_morsels<T, F>(parallelism: usize, total: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let morsels = morsel_count(total);
    if morsels == 0 {
        return Vec::new();
    }
    if parallelism <= 1 || morsels < MIN_PARALLEL_MORSELS {
        // One undivided morsel: the pre-morsel serial loop, with no
        // per-chunk allocations (rows within a morsel are processed in row
        // order, so the output is the same either way).
        return vec![f(0..total)];
    }
    let workers = parallelism.min(morsels);
    let next = AtomicUsize::new(0);
    let parts: Vec<Vec<(usize, T)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= morsels {
                            break;
                        }
                        local.push((i, f(morsel_range(i, total))));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(local) => local,
                // Re-raise with the original payload so the real panic
                // message and location survive to the test/CI output.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut all: Vec<(usize, T)> = parts.into_iter().flatten().collect();
    debug_assert_eq!(all.len(), morsels);
    all.sort_unstable_by_key(|(i, _)| *i);
    all.into_iter().map(|(_, t)| t).collect()
}

/// [`run_morsels`] for the common case of producing rows: flattens the
/// per-morsel buffers (still in morsel order) into one output vector.
pub fn collect_morsels<T, F>(parallelism: usize, total: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> Vec<T> + Sync,
{
    let mut chunks = run_morsels(parallelism, total, f);
    if chunks.len() <= 1 {
        return chunks.pop().unwrap_or_default();
    }
    let n = chunks.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(n);
    for mut c in chunks {
        out.append(&mut c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_runs_nothing() {
        let calls = AtomicUsize::new(0);
        let out: Vec<Vec<u32>> = run_morsels(4, 0, |_| {
            calls.fetch_add(1, Ordering::Relaxed);
            Vec::new()
        });
        assert!(out.is_empty());
        assert_eq!(calls.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn small_input_stays_on_caller_thread() {
        let caller = std::thread::current().id();
        let out = run_morsels(8, MORSEL_ROWS, |r| {
            assert_eq!(std::thread::current().id(), caller);
            r.len()
        });
        assert_eq!(out, vec![MORSEL_ROWS]);
    }

    #[test]
    fn morsel_order_is_deterministic_for_any_worker_count() {
        let total = MORSEL_ROWS * 7 + 123;
        let serial: Vec<usize> = collect_morsels(1, total, |r| r.collect());
        assert_eq!(serial, (0..total).collect::<Vec<_>>());
        for workers in [2, 3, 4, 8, 64] {
            let parallel: Vec<usize> = collect_morsels(workers, total, |r| r.collect());
            assert_eq!(parallel, serial, "{workers} workers");
        }
    }

    #[test]
    fn ranges_tile_the_input_exactly() {
        let total = MORSEL_ROWS * 3 + 1;
        let ranges = run_morsels(4, total, |r| r);
        assert_eq!(ranges.len(), morsel_count(total));
        let mut expect_start = 0;
        for r in &ranges {
            assert_eq!(r.start, expect_start);
            expect_start = r.end;
        }
        assert_eq!(expect_start, total);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates_with_original_payload() {
        run_morsels(2, MORSEL_ROWS * 4, |r| {
            if r.start >= MORSEL_ROWS {
                panic!("boom");
            }
            r.len()
        });
    }

    #[test]
    fn sub_threshold_inputs_run_inline_as_one_chunk() {
        let caller = std::thread::current().id();
        let total = MORSEL_ROWS * (MIN_PARALLEL_MORSELS - 1);
        let out = run_morsels(8, total, |r| {
            assert_eq!(std::thread::current().id(), caller);
            r
        });
        assert_eq!(out, vec![0..total], "one undivided serial chunk");
    }
}
