//! Morsel-driven intra-query parallelism.
//!
//! The interpreter stays a plain recursive tree-walk; the hot loops inside
//! individual operators — base-table scan filtering, hash-join probing, the
//! post-filter pass over a reused table — are split into fixed-size
//! row-range *morsels* claimed by the participants of a phase submitted to
//! a persistent [`WorkerPool`] (see [`crate::pool`] for the submission
//! protocol). There is no per-phase thread spawning: workers live as long
//! as their pool, and a phase dispatch is one queue push plus a condvar
//! wakeup.
//!
//! # Determinism
//!
//! Each participant writes into a private output buffer per morsel; the
//! scheduler returns the per-morsel buffers **in morsel-index order**, and
//! rows within one morsel are processed in row order. Concatenating the
//! buffers therefore yields exactly the sequence the serial loop would have
//! produced: parallel execution is bit-identical to `parallelism = 1`, for
//! any worker count, any pool size, and any scheduling interleaving. Tests
//! pin this (`tests/parallel_determinism.rs`).
//!
//! # Granularity
//!
//! Inputs smaller than [`min_parallel_morsels`] morsels never cross a
//! thread boundary — tiny operators keep their serial fast path and zero
//! dispatch overhead, so unit tests and low-selectivity deltas are
//! unaffected by the engine-level parallelism default. The threshold is
//! *derived* from the measured per-phase dispatch cost
//! ([`PHASE_DISPATCH_NS`]), which the cost model also prices
//! (`CostParams::parallel_dispatch_ns`). In the other direction the
//! fan-out width is clamped to the machine's core count
//! ([`effective_parallelism`], floor two): CPU-bound morsels gain nothing
//! from oversubscription, and every output is participant-count-invariant
//! so the clamp is invisible to results.
//!
//! # Locality
//!
//! The claim space is split into one contiguous index segment per
//! participant. Each participant starts claiming from its *preferred*
//! segment — the segment that thread last touched if it has one, else a
//! stable function of its worker id — and only probes neighbouring
//! segments once its own drains. On today's 1-core container this is pure
//! scaffolding; on real hardware it keeps a worker walking the column
//! ranges it last pulled into cache, and gives a NUMA-aware scheduler the
//! hook it needs (segment → socket). Because the output is reassembled in
//! index order, preference is invisible to results.
//!
//! # Builds
//!
//! Hash-table *builds* cannot use the per-morsel output-buffer trick:
//! insertion order defines collision-chain order, which probe output order
//! (and the cached table's layout) depends on. Fresh builds instead fan out
//! **by bucket**: [`build_multimap_partitioned`] has workers compute the
//! chains of disjoint bucket ranges from the row-order key sequence and
//! stitches them serially, and [`build_grouped_partitioned`] partitions
//! aggregate folding by key and replays the structural history — both
//! bit-identical to the serial build at any worker count (pinned by
//! `tests/build_equivalence.rs` and `tests/parallel_determinism.rs`).

use std::cell::Cell;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

use hashstash_hashtable::{bucket_ranges, partition_chains, ExtendibleHashTable};

use crate::pool::{WorkerPool, CALLER_SLOT};

/// Rows per morsel. Large enough that per-morsel dispatch (one atomic
/// fetch-add plus a buffer push) is noise; small enough that a handful of
/// morsels balance across workers even on skewed filters.
pub const MORSEL_ROWS: usize = 1024;

/// Measured cost of submitting one phase to a warm [`WorkerPool`] (queue
/// push + condvar wakeup + quiesce wait), in nanoseconds. `exp8_parallel`
/// records the live number per run (`dispatch_warm_ns`); this constant is
/// the calibrated ceiling the inline threshold and the cost model
/// (`CostParams::parallel_dispatch_ns`) both derive from. The retired
/// spawn-per-phase baseline cost ~25 µs per phase — an order of magnitude
/// more.
pub const PHASE_DISPATCH_NS: u64 = 2_500;

/// Minimum morsel count before a phase fans out, derived from the dispatch
/// cost: fanning out must buy at least ~20× [`PHASE_DISPATCH_NS`] of real
/// work (at a conservative ~2 ns/row for the cheapest morsel loops) to be
/// worth coordinating, and never engages below two morsels. The cost model
/// mirrors this exact threshold so plan pricing and runtime behaviour
/// agree.
pub fn min_parallel_morsels() -> usize {
    const AMORTIZE: u64 = 20;
    const CHEAPEST_NS_PER_ROW: u64 = 2;
    let rows = (PHASE_DISPATCH_NS * AMORTIZE / CHEAPEST_NS_PER_ROW) as usize;
    rows.div_ceil(MORSEL_ROWS).max(2)
}

/// Worker count taken from the `PARALLELISM` environment variable, falling
/// back to `1` (the serial interpreter). [`ExecContext::new`] uses this so
/// a whole test suite can be re-run under N-way execution by exporting
/// `PARALLELISM=N` (the CI matrix does exactly that).
///
/// [`ExecContext::new`]: crate::ExecContext::new
pub fn default_parallelism() -> usize {
    // Cached: this runs once per ExecContext, i.e. on the per-query hot
    // path, and the variable cannot meaningfully change mid-process.
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        std::env::var("PARALLELISM")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(1)
    })
}

/// Worker count for an engine: the `PARALLELISM` environment variable if
/// set, otherwise every core the OS reports.
pub fn engine_default_parallelism() -> usize {
    std::env::var("PARALLELISM")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Most participants a phase can productively use on this machine: every
/// core the OS reports, with a floor of two. CPU-bound morsel work gains
/// nothing from more runnable threads than cores, and the partitioned
/// builds pay a full (cheap) key scan *per partition* — so on a small
/// host an oversubscribed fan-out buys only context-switch churn and
/// duplicated scans. The floor keeps the pooled and partitioned code
/// paths live (and covered by the test battery) even on a single-core
/// container; results are unaffected either way because every output is
/// participant-count-invariant by construction.
pub fn effective_parallelism(requested: usize) -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    let limit = *CACHED.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .max(2)
    });
    requested.min(limit)
}

/// Where a phase runs: how many participants, and on which pool.
///
/// `From<usize>` keeps the historical call shape working — a bare worker
/// count schedules onto the process-wide [`WorkerPool::ambient`] pool —
/// while engine execution passes `ExecContext::sched()`, which carries the
/// `Database`-owned pool so concurrent sessions share workers.
#[derive(Clone, Copy)]
pub struct Scheduler<'p> {
    /// Total participants per phase: the submitting thread plus up to
    /// `parallelism - 1` pool workers. `<= 1` is the serial interpreter.
    pub parallelism: usize,
    /// Pool to borrow workers from; `None` resolves to the ambient pool.
    pub pool: Option<&'p WorkerPool>,
}

impl From<usize> for Scheduler<'static> {
    fn from(parallelism: usize) -> Scheduler<'static> {
        Scheduler {
            parallelism,
            pool: None,
        }
    }
}

impl<'p> Scheduler<'p> {
    /// Participants a phase actually fans out to: the requested
    /// parallelism clamped by [`effective_parallelism`]. The *serial or
    /// not* decision keys off the raw `parallelism` (so a `parallelism =
    /// 1` scheduler is byte-identically the serial interpreter); the
    /// fan-out width keys off this.
    fn effective(&self) -> usize {
        effective_parallelism(self.parallelism)
    }

    fn pool(&self) -> &'p WorkerPool {
        match self.pool {
            Some(pool) => pool,
            None => WorkerPool::ambient(),
        }
    }
}

thread_local! {
    /// Index segment this thread last claimed from, for locality-preferring
    /// claims across phases (`usize::MAX` = none yet). Thread-local rather
    /// than pool state so the submitting session thread participates too.
    static LAST_SEGMENT: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// The claim space of one phase: indices `0..count` split into one
/// contiguous segment per expected participant. Participants drain their
/// preferred segment first, then steal from neighbours round-robin — every
/// index is claimed exactly once regardless of who shows up.
struct ClaimSpace {
    /// Next unclaimed index per segment (monotonic; may overshoot its end).
    cursors: Vec<AtomicUsize>,
    /// Exclusive end of each segment.
    ends: Vec<usize>,
}

impl ClaimSpace {
    fn new(count: usize, segments: usize) -> ClaimSpace {
        let segments = segments.max(1).min(count.max(1));
        let base = count / segments;
        let extra = count % segments;
        let mut cursors = Vec::with_capacity(segments);
        let mut ends = Vec::with_capacity(segments);
        let mut start = 0;
        for s in 0..segments {
            let len = base + usize::from(s < extra);
            cursors.push(AtomicUsize::new(start));
            start += len;
            ends.push(start);
        }
        ClaimSpace { cursors, ends }
    }

    fn segments(&self) -> usize {
        self.ends.len()
    }

    /// Claim the next index, preferring segment `preferred`; returns the
    /// index and the segment it came from.
    fn claim(&self, preferred: usize) -> Option<(usize, usize)> {
        let k = self.segments();
        for probe in 0..k {
            let s = (preferred + probe) % k;
            let i = self.cursors[s].fetch_add(1, Ordering::Relaxed);
            if i < self.ends[s] {
                return Some((i, s));
            }
        }
        None
    }
}

/// Segment a participant starts claiming from: the segment its thread last
/// touched if still valid, else a stable spread by worker id (the caller
/// takes segment 0 — it starts first, so it gets the front of the input).
fn preferred_segment(slot: usize, segments: usize) -> usize {
    let last = LAST_SEGMENT.with(Cell::get);
    if last < segments {
        last
    } else if slot == CALLER_SLOT {
        0
    } else {
        slot % segments
    }
}

/// Run `f(i)` for every `i in 0..count` as one pool phase and return the
/// outputs **in index order** — the shared primitive under [`run_morsels`]
/// and the partitioned builds. Serial (`parallelism <= 1` or a single
/// index) runs inline with zero scheduling machinery.
fn run_indexed<T, F>(sched: Scheduler<'_>, count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if sched.parallelism <= 1 || count <= 1 {
        return (0..count).map(f).collect();
    }
    let participants = sched.effective().min(count);
    let claims = ClaimSpace::new(count, participants);
    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(count));
    sched.pool().run_phase(participants - 1, &|slot| {
        let mut seg = preferred_segment(slot, claims.segments());
        let mut local = Vec::new();
        while let Some((i, s)) = claims.claim(seg) {
            seg = s;
            local.push((i, f(i)));
        }
        LAST_SEGMENT.with(|c| c.set(seg));
        if !local.is_empty() {
            results
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .extend(local);
        }
    });
    let mut all = results.into_inner().unwrap_or_else(PoisonError::into_inner);
    debug_assert_eq!(all.len(), count);
    all.sort_unstable_by_key(|(i, _)| *i);
    all.into_iter().map(|(_, t)| t).collect()
}

/// Number of morsels `total` rows split into.
pub fn morsel_count(total: usize) -> usize {
    total.div_ceil(MORSEL_ROWS)
}

#[inline]
fn morsel_range(index: usize, total: usize) -> Range<usize> {
    let start = index * MORSEL_ROWS;
    start..(start + MORSEL_ROWS).min(total)
}

/// Run `f` once per morsel of `0..total` across the phase's participants
/// and return the per-morsel outputs **in morsel-index order**.
///
/// `f` receives the row range of its morsel and must be pure with respect
/// to shared state (it gets `&` captures only). With `parallelism <= 1`,
/// or when the input is smaller than [`min_parallel_morsels`] morsels (too
/// little work to amortize even a warm-pool dispatch), `f` runs once over
/// the whole range inline on the caller's thread — the serial interpreter
/// path, byte for byte and allocation for allocation.
///
/// A panic inside any participant is propagated to the caller with its
/// original payload after the phase quiesces (no detached threads, no
/// poisoned pool — see `crate::pool`).
pub fn run_morsels<'p, S, T, F>(sched: S, total: usize, f: F) -> Vec<T>
where
    S: Into<Scheduler<'p>>,
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let sched = sched.into();
    let morsels = morsel_count(total);
    if morsels == 0 {
        return Vec::new();
    }
    if sched.parallelism <= 1 || morsels < min_parallel_morsels() {
        // One undivided morsel: the pre-morsel serial loop, with no
        // per-chunk allocations (rows within a morsel are processed in row
        // order, so the output is the same either way).
        return vec![f(0..total)];
    }
    run_indexed(sched, morsels, |i| f(morsel_range(i, total)))
}

/// Minimum build-side row count before a hash-table build fans out. A
/// partitioned build pays one phase dispatch plus a serial stitch pass
/// whose cost scales with the row count, so its amortization point sits
/// well below the morsel threshold: four morsels of rows is where the
/// partitioned chain computation starts beating the plain insert loop.
/// The cost model prices the same cutoff
/// ([`CostModel::parallel_build`]).
///
/// [`CostModel::parallel_build`]: ../../hashstash_opt/cost/struct.CostModel.html#method.parallel_build
pub const MIN_PARALLEL_BUILD_ROWS: usize = MORSEL_ROWS * 4;

/// Build a multimap hash table from parallel `keys`/`values` columns in row
/// order, **bit-identically** to the serial `reserve(n)` + [`insert`] loop,
/// fanning the chain computation out over per-worker bucket-range
/// partitions. (Columns rather than pairs: call sites compute the keys in a
/// morsel-parallel pass and would otherwise zip and immediately un-zip.)
///
/// The directory is pre-sized first, which fixes every key's bucket; each
/// partition owns a contiguous bucket range and derives the collision
/// chains its buckets would have after a serial build (same newest-first
/// order, same distinct-key bookkeeping). A single serial stitch pass then
/// installs chains and values — arena order is row order either way, so the
/// result is byte-identical to the serial build at any worker count,
/// including the lazy-split depth state and the resize counter. With
/// `parallelism <= 1` this *is* the serial loop.
///
/// `table` must be empty (fresh build). Mutating-reuse delta inserts keep
/// the plain serial loop: they extend a table with existing history.
///
/// [`insert`]: ExtendibleHashTable::insert
pub fn build_multimap_partitioned<'p, S, V>(
    sched: S,
    table: &mut ExtendibleHashTable<V>,
    keys: Vec<u64>,
    values: Vec<V>,
) where
    S: Into<Scheduler<'p>>,
    V: Send,
{
    let sched = sched.into();
    assert_eq!(keys.len(), values.len(), "one key per value");
    table.reserve(keys.len());
    if sched.parallelism <= 1 || keys.len() < 2 {
        for (key, value) in keys.into_iter().zip(values) {
            table.insert(key, value);
        }
        return;
    }
    let dir_len = table.bucket_count();
    // Every partition scans the full key column, so the partition count is
    // clamped to the machine — the chains are partition-count-invariant.
    let ranges = bucket_ranges(dir_len, sched.effective());
    let keys_ref = &keys;
    let ranges_ref = &ranges;
    let parts = run_indexed(sched, ranges.len(), |i| {
        partition_chains(keys_ref, dir_len, ranges_ref[i].clone())
    });
    table.fill_from_partitions(&keys, values, parts);
}

/// One group discovered by [`build_grouped_partitioned`], tagged with the
/// row that created it.
#[derive(Debug)]
pub struct MergedGroup<P> {
    /// Index of the first input row that hashed-and-matched this group —
    /// the row whose serial `upsert` would have inserted it.
    pub first_row: usize,
    /// The group's 64-bit hash key.
    pub key: u64,
    /// The fully folded payload (all of the group's rows applied in global
    /// row order).
    pub payload: P,
}

/// Result of a partitioned grouped build: groups in first-occurrence order
/// plus the insert/update counts the serial fold would have reported.
#[derive(Debug)]
pub struct GroupedBuild<P> {
    /// Discovered groups, ascending by [`MergedGroup::first_row`] — exactly
    /// the arena order a serial `upsert` loop produces.
    pub groups: Vec<MergedGroup<P>>,
    /// Rows that created a group (`c_insert` events).
    pub inserts: u64,
    /// Rows folded into an existing group (`c_update` events).
    pub updates: u64,
}

/// Deterministic key → worker assignment for grouped builds. Any map works
/// as long as equal keys agree (a group never spans workers); mixing the
/// key decorrelates it from the table's bucket-index low bits.
#[inline]
fn group_owner(key: u64, workers: usize) -> usize {
    ((key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) % workers
}

/// `HashMap` hasher for keys that already *are* 64-bit hashes (the grouped
/// build folds `Row::key64` outputs): re-mixing them through SipHash costs
/// more per row than the fold's real work. Finalizes with one
/// multiply-shift so low-bit-patterned keys still spread across HashMap
/// buckets.
#[derive(Clone, Copy, Default)]
struct PreHashed(u64);

impl std::hash::Hasher for PreHashed {
    fn finish(&self) -> u64 {
        self.0.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    fn write(&mut self, bytes: &[u8]) {
        // Total fallback for non-u64 writes (none today): FNV-1a.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, key: u64) {
        self.0 = key;
    }
}

type PreHashedMap<V> = HashMap<u64, V, std::hash::BuildHasherDefault<PreHashed>>;

/// Fold rows into groups in parallel, partitioned **by key**, such that the
/// outcome is independent of the worker count:
///
/// * group identity (`matches`) and per-group fold order are key-local
///   facts: each partition scans the full row sequence in row order and
///   folds only the rows whose key it owns, so every group's `update` calls
///   happen in global row order — floating-point accumulation included;
/// * the merged group list is ordered by first-occurrence row, which is the
///   arena order of a serial `upsert` loop.
///
/// The caller replays the structural history into a real table (one
/// [`touch`] per row, one [`insert`] per group-creating row — see
/// [`ExtendibleHashTable::touch`]) to obtain a table bit-identical to the
/// serial build. With `parallelism <= 1` the single partition still uses
/// this code path; callers that want the serial fast path keep their own
/// loop.
///
/// [`touch`]: ExtendibleHashTable::touch
/// [`insert`]: ExtendibleHashTable::insert
pub fn build_grouped_partitioned<'p, S, P, M, I, U>(
    sched: S,
    keys: &[u64],
    matches: M,
    init: I,
    update: U,
) -> GroupedBuild<P>
where
    S: Into<Scheduler<'p>>,
    P: Send,
    M: Fn(usize, &P) -> bool + Sync,
    I: Fn(usize) -> P + Sync,
    U: Fn(usize, &mut P) + Sync,
{
    let sched = sched.into();
    // Clamped like the multimap build: every partition scans (and
    // owner-filters) the full key column, and the merged result is
    // partition-count-invariant.
    let workers = sched.effective().max(1);
    let fold_partition = |w: usize| {
        let mut groups: Vec<MergedGroup<P>> = Vec::new();
        // key → most recent group with that key; earlier same-key groups
        // (64-bit collisions disambiguated by `matches`, like the serial
        // chain walk) are linked through `prev`. At most one group matches,
        // so walk order is irrelevant — and chaining through a side vector
        // avoids a heap allocation per distinct key.
        const NO_PREV: u32 = u32::MAX;
        let mut index: PreHashedMap<u32> = PreHashedMap::default();
        let mut prev: Vec<u32> = Vec::new();
        let mut inserts = 0u64;
        let mut updates = 0u64;
        for (i, &key) in keys.iter().enumerate() {
            if workers > 1 && group_owner(key, workers) != w {
                continue;
            }
            let mut found = None;
            let slot = index.entry(key);
            if let std::collections::hash_map::Entry::Occupied(ref e) = slot {
                let mut g = *e.get();
                loop {
                    if matches(i, &groups[g as usize].payload) {
                        found = Some(g);
                        break;
                    }
                    g = prev[g as usize];
                    if g == NO_PREV {
                        break;
                    }
                }
            }
            match found {
                Some(g) => {
                    update(i, &mut groups[g as usize].payload);
                    updates += 1;
                }
                None => {
                    let next = groups.len() as u32;
                    match slot {
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            prev.push(*e.get());
                            *e.get_mut() = next;
                        }
                        std::collections::hash_map::Entry::Vacant(v) => {
                            prev.push(NO_PREV);
                            v.insert(next);
                        }
                    }
                    groups.push(MergedGroup {
                        first_row: i,
                        key,
                        payload: init(i),
                    });
                    inserts += 1;
                }
            }
        }
        (groups, inserts, updates)
    };
    let parts: Vec<(Vec<MergedGroup<P>>, u64, u64)> = if workers <= 1 {
        vec![fold_partition(0)]
    } else {
        run_indexed(sched, workers, fold_partition)
    };
    let mut inserts = 0;
    let mut updates = 0;
    let mut groups = Vec::with_capacity(parts.iter().map(|(g, _, _)| g.len()).sum());
    for (g, i, u) in parts {
        groups.extend(g);
        inserts += i;
        updates += u;
    }
    // first_row is unique (one creating row per group), so this is a total
    // order — the serial arena order, independent of the partitioning. Each
    // partition scanned in row order, so `groups` is a concatenation of
    // `workers` already-sorted runs: the stable sort's natural-run merge
    // makes this an O(n log workers) merge, not a full sort.
    groups.sort_by_key(|g| g.first_row);
    GroupedBuild {
        groups,
        inserts,
        updates,
    }
}

/// [`run_morsels`] for the common case of producing rows: flattens the
/// per-morsel buffers (still in morsel order) into one output vector.
pub fn collect_morsels<'p, S, T, F>(sched: S, total: usize, f: F) -> Vec<T>
where
    S: Into<Scheduler<'p>>,
    T: Send,
    F: Fn(Range<usize>) -> Vec<T> + Sync,
{
    let mut chunks = run_morsels(sched, total, f);
    if chunks.len() <= 1 {
        return chunks.pop().unwrap_or_default();
    }
    let n = chunks.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(n);
    for mut c in chunks {
        out.append(&mut c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smallest row count that engages the pool (at least
    /// `min_parallel_morsels()` morsels), plus a ragged tail.
    fn engaged_total(tail: usize) -> usize {
        MORSEL_ROWS * (min_parallel_morsels() + 2) + tail
    }

    #[test]
    fn threshold_derives_from_dispatch_cost() {
        // 2 500 ns dispatch × 20 amortization ÷ 2 ns/row = 25 600 rows.
        assert_eq!(min_parallel_morsels(), 25);
        assert!(min_parallel_morsels() >= 2);
    }

    #[test]
    fn empty_input_runs_nothing() {
        let calls = AtomicUsize::new(0);
        let out: Vec<Vec<u32>> = run_morsels(4, 0, |_| {
            calls.fetch_add(1, Ordering::Relaxed);
            Vec::new()
        });
        assert!(out.is_empty());
        assert_eq!(calls.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn small_input_stays_on_caller_thread() {
        let caller = std::thread::current().id();
        let out = run_morsels(8, MORSEL_ROWS, |r| {
            assert_eq!(std::thread::current().id(), caller);
            r.len()
        });
        assert_eq!(out, vec![MORSEL_ROWS]);
    }

    #[test]
    fn morsel_order_is_deterministic_for_any_worker_count() {
        let total = engaged_total(123);
        let serial: Vec<usize> = collect_morsels(1, total, |r| r.collect());
        assert_eq!(serial, (0..total).collect::<Vec<_>>());
        for workers in [2, 3, 4, 8, 64] {
            let parallel: Vec<usize> = collect_morsels(workers, total, |r| r.collect());
            assert_eq!(parallel, serial, "{workers} workers");
        }
    }

    #[test]
    fn explicit_pool_matches_ambient_pool_output() {
        let pool = WorkerPool::new(3, false);
        let total = engaged_total(7);
        let sched = Scheduler {
            parallelism: 4,
            pool: Some(&pool),
        };
        let on_private: Vec<usize> = collect_morsels(sched, total, |r| r.collect());
        let on_ambient: Vec<usize> = collect_morsels(4, total, |r| r.collect());
        assert_eq!(on_private, on_ambient);
        assert!(pool.jobs_dispatched() >= 1, "the private pool was used");
        pool.assert_quiesced();
    }

    #[test]
    fn ranges_tile_the_input_exactly() {
        let total = engaged_total(1);
        let ranges = run_morsels(4, total, |r| r);
        assert_eq!(ranges.len(), morsel_count(total));
        let mut expect_start = 0;
        for r in &ranges {
            assert_eq!(r.start, expect_start);
            expect_start = r.end;
        }
        assert_eq!(expect_start, total);
    }

    #[test]
    fn partitioned_multimap_build_matches_serial_layout() {
        let n = MORSEL_ROWS * 5 + 77;
        let keys: Vec<u64> = (0..n).map(|i| (i as u64).wrapping_mul(31) % 997).collect();
        let values = || (0..n as u64).collect::<Vec<_>>();
        let mut serial = ExtendibleHashTable::new(16);
        build_multimap_partitioned(1, &mut serial, keys.clone(), values());
        for workers in [2, 3, 4, 8] {
            let mut par = ExtendibleHashTable::new(16);
            build_multimap_partitioned(workers, &mut par, keys.clone(), values());
            assert!(par.layout_eq(&serial), "{workers} workers");
        }
    }

    #[test]
    fn grouped_build_is_worker_count_invariant_bitwise() {
        // The payload is a running f64 sum: any change in per-group fold
        // order shows up as a bit difference.
        let keys: Vec<u64> = (0..5000u64).map(|i| (i * i) % 13).collect();
        let run = |workers: usize| {
            build_grouped_partitioned(
                workers,
                &keys,
                |_i, _p: &f64| true,
                |i| (i as f64) * 0.1,
                |i, p| *p += (i as f64) * 0.1,
            )
        };
        let one = run(1);
        let distinct = {
            let mut k: Vec<u64> = keys.clone();
            k.sort_unstable();
            k.dedup();
            k.len()
        };
        assert_eq!(one.groups.len(), distinct);
        assert_eq!(one.inserts as usize, distinct);
        assert_eq!(one.updates as usize, keys.len() - distinct);
        for workers in [2, 4, 8] {
            let got = run(workers);
            assert_eq!((got.inserts, got.updates), (one.inserts, one.updates));
            assert_eq!(got.groups.len(), one.groups.len(), "{workers} workers");
            for (a, b) in got.groups.iter().zip(&one.groups) {
                assert_eq!((a.first_row, a.key), (b.first_row, b.key));
                assert_eq!(
                    a.payload.to_bits(),
                    b.payload.to_bits(),
                    "float fold order must be serial ({workers} workers)"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates_with_original_payload() {
        run_morsels(2, engaged_total(0), |r| {
            if r.start >= MORSEL_ROWS {
                panic!("boom");
            }
            r.len()
        });
    }

    #[test]
    fn sub_threshold_inputs_run_inline_as_one_chunk() {
        let caller = std::thread::current().id();
        let total = MORSEL_ROWS * (min_parallel_morsels() - 1);
        let out = run_morsels(8, total, |r| {
            assert_eq!(std::thread::current().id(), caller);
            r
        });
        assert_eq!(out, vec![0..total], "one undivided serial chunk");
    }
}
