//! Temp-table cache for the materialization-based reuse baseline.
//!
//! The paper's baseline (§6.1, following Nagel et al. ICDE'13) materializes
//! the *outputs* of selected operators into temporary in-memory tables and
//! reuses them for later queries, supporting only exact- and subsuming-reuse.
//! The crucial differences to HashStash:
//!
//! 1. materialization costs extra work during the original query (copying
//!    every tuple out of the pipeline), and
//! 2. a reused temp table is a plain relation — a join consuming it must
//!    still *rebuild* its hash table from the temp rows.
//!
//! Both costs fall out naturally here: [`crate::plan::PhysicalPlan::Materialize`]
//! copies rows into this cache, and a reusing plan scans the temp table into
//! an ordinary hash-join build.
//!
//! Concurrency: unlike the sharded Hash Table Manager, this cache keeps a
//! plain `&mut self` API and lives behind a `Mutex` owned by the engine
//! ([`crate::ExecContext`] locks it only for the duration of one
//! publish/read, never across operators). A `TempScan` whose table was
//! evicted by a concurrent session surfaces a `CacheError`, which the
//! session handles by re-planning.

use std::collections::HashMap;

use hashstash_types::{HsError, Result, Row, Schema};

use hashstash_plan::HtFingerprint;

/// Identifier of a materialized temporary table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TempId(pub u64);

impl std::fmt::Display for TempId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TT{}", self.0)
    }
}

/// Statistics over the temp-table cache (drives Figure 7b's baseline rows).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TempTableStats {
    /// Temp tables ever materialized.
    pub publishes: u64,
    /// Publish calls deduplicated onto an existing identical-lineage table.
    pub publish_dedups: u64,
    /// Reuses served.
    pub reuses: u64,
    /// Evictions under the memory budget.
    pub evictions: u64,
    /// Current footprint in bytes.
    pub bytes: usize,
    /// Current table count.
    pub entries: usize,
}

impl TempTableStats {
    /// Average reuses per materialized element (paper's hit ratio).
    pub fn hit_ratio(&self) -> f64 {
        if self.publishes == 0 {
            0.0
        } else {
            self.reuses as f64 / self.publishes as f64
        }
    }
}

#[derive(Debug)]
struct TempEntry {
    fingerprint: HtFingerprint,
    schema: Schema,
    rows: Vec<Row>,
    bytes: usize,
    last_used: u64,
}

/// An LRU-bounded cache of materialized intermediate results.
#[derive(Debug)]
pub struct TempTableCache {
    entries: HashMap<TempId, TempEntry>,
    budget_bytes: Option<usize>,
    next_id: u64,
    clock: u64,
    stats: TempTableStats,
}

/// Approximate in-memory size of one row (arrays of scalars).
fn row_bytes(row: &Row) -> usize {
    row.values()
        .iter()
        .map(|v| match v {
            hashstash_types::Value::Str(s) => 16 + s.len(),
            _ => 8,
        })
        .sum::<usize>()
        + 24
}

impl TempTableCache {
    /// Cache with a memory budget.
    pub fn new(budget_bytes: Option<usize>) -> Self {
        TempTableCache {
            entries: HashMap::new(),
            budget_bytes,
            next_id: 1,
            clock: 0,
            stats: TempTableStats::default(),
        }
    }

    /// Unlimited cache.
    pub fn unbounded() -> Self {
        TempTableCache::new(None)
    }

    /// Materialize rows under a fingerprint. Returns the temp-table id.
    ///
    /// Re-publishing an identical lineage (e.g. a re-planned retry
    /// re-materializing an operator output that already survived an aborted
    /// attempt) is deduplicated: the existing table is kept, its LRU stamp
    /// refreshed, and its id returned without inflating the footprint or
    /// the publish counter.
    pub fn publish(
        &mut self,
        fingerprint: HtFingerprint,
        schema: Schema,
        rows: Vec<Row>,
    ) -> TempId {
        self.clock += 1;
        let duplicate = self
            .entries
            .iter()
            .find(|(_, e)| e.fingerprint.same_lineage(&fingerprint))
            .map(|(&id, _)| id);
        if let Some(id) = duplicate {
            let e = self.entries.get_mut(&id).expect("found above");
            e.last_used = self.clock;
            self.stats.publish_dedups += 1;
            return id;
        }
        let id = TempId(self.next_id);
        self.next_id += 1;
        let bytes = rows.iter().map(row_bytes).sum();
        self.entries.insert(
            id,
            TempEntry {
                fingerprint,
                schema,
                rows,
                bytes,
                last_used: self.clock,
            },
        );
        self.stats.publishes += 1;
        self.refresh_footprint();
        self.enforce_budget();
        id
    }

    /// All cached fingerprints (candidate matching happens in the engine's
    /// baseline strategy — exact and subsuming only).
    pub fn fingerprints(&self) -> Vec<(TempId, HtFingerprint)> {
        self.entries
            .iter()
            .map(|(&id, e)| (id, e.fingerprint.clone()))
            .collect()
    }

    /// Schema of a temp table.
    pub fn schema(&self, id: TempId) -> Result<Schema> {
        self.entries
            .get(&id)
            .map(|e| e.schema.clone())
            .ok_or_else(|| HsError::CacheError(format!("{id} not cached")))
    }

    /// Read rows (clones — a temp table is re-read into the pipeline, the
    /// point of the baseline's extra cost). Bumps LRU and reuse statistics.
    pub fn read(&mut self, id: TempId) -> Result<(Schema, Vec<Row>)> {
        self.clock += 1;
        let e = self
            .entries
            .get_mut(&id)
            .ok_or_else(|| HsError::CacheError(format!("{id} not cached")))?;
        e.last_used = self.clock;
        self.stats.reuses += 1;
        Ok((e.schema.clone(), e.rows.clone()))
    }

    /// LRU eviction until under budget.
    pub fn enforce_budget(&mut self) -> usize {
        let Some(budget) = self.budget_bytes else {
            return 0;
        };
        let mut evicted = 0;
        while self.stats.bytes > budget && !self.entries.is_empty() {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&id, _)| id);
            let Some(id) = victim else { break };
            self.entries.remove(&id);
            self.stats.evictions += 1;
            evicted += 1;
            self.refresh_footprint();
        }
        evicted
    }

    fn refresh_footprint(&mut self) {
        self.stats.bytes = self.entries.values().map(|e| e.bytes).sum();
        self.stats.entries = self.entries.len();
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> TempTableStats {
        self.stats
    }

    /// Number of cached tables.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hashstash_plan::{HtKind, Region};
    use hashstash_types::{DataType, Field, Value};

    fn fp() -> HtFingerprint {
        fp_over(0)
    }

    /// Distinct lineages per `lo` (publishing the *same* lineage twice is
    /// deduplicated — see `identical_lineage_publish_dedups`).
    fn fp_over(lo: i64) -> HtFingerprint {
        HtFingerprint {
            kind: HtKind::JoinBuild,
            tables: std::iter::once(std::sync::Arc::from("t")).collect(),
            edges: vec![],
            region: Region::from_box(hashstash_plan::PredBox::all().with(
                "t.k",
                hashstash_plan::Interval::at_least(hashstash_types::Value::Int(lo)),
            )),
            key_attrs: vec![std::sync::Arc::from("t.k")],
            payload_attrs: vec![std::sync::Arc::from("t.k")],
            aggregates: vec![],
            tagged: false,
        }
    }

    fn rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| Row::new(vec![Value::Int(i as i64)]))
            .collect()
    }

    fn schema() -> Schema {
        Schema::new(vec![Field::new("t.k", DataType::Int)])
    }

    #[test]
    fn publish_and_read() {
        let mut c = TempTableCache::unbounded();
        let id = c.publish(fp(), schema(), rows(10));
        let (s, r) = c.read(id).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(r.len(), 10);
        assert_eq!(c.stats().reuses, 1);
        assert!((c.stats().hit_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn missing_table_errors() {
        let mut c = TempTableCache::unbounded();
        assert!(c.read(TempId(99)).is_err());
        assert!(c.schema(TempId(99)).is_err());
    }

    #[test]
    fn lru_eviction() {
        let bytes10 = rows(10).iter().map(row_bytes).sum::<usize>();
        let mut c = TempTableCache::new(Some(bytes10 * 2 + 1));
        let a = c.publish(fp_over(0), schema(), rows(10));
        let b = c.publish(fp_over(1), schema(), rows(10));
        c.read(a).unwrap(); // freshen a
        let _d = c.publish(fp_over(2), schema(), rows(10));
        assert_eq!(c.stats().evictions, 1);
        assert!(c.read(a).is_ok());
        assert!(c.read(b).is_err(), "LRU victim gone");
    }

    #[test]
    fn fingerprints_enumerate() {
        let mut c = TempTableCache::unbounded();
        c.publish(fp_over(0), schema(), rows(1));
        c.publish(fp_over(1), schema(), rows(2));
        assert_eq!(c.fingerprints().len(), 2);
    }

    #[test]
    fn identical_lineage_publish_dedups() {
        let mut c = TempTableCache::unbounded();
        let a = c.publish(fp(), schema(), rows(10));
        let b = c.publish(fp(), schema(), rows(10));
        assert_eq!(a, b, "identical lineage maps to the existing table");
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().publishes, 1, "dedup does not inflate publishes");
        assert_eq!(c.stats().publish_dedups, 1);
        // A different lineage still gets its own entry.
        let d = c.publish(fp_over(7), schema(), rows(10));
        assert_ne!(a, d);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn dedup_refreshes_lru_stamp() {
        let bytes10 = rows(10).iter().map(row_bytes).sum::<usize>();
        let mut c = TempTableCache::new(Some(bytes10 * 2 + 1));
        let a = c.publish(fp_over(0), schema(), rows(10));
        let b = c.publish(fp_over(1), schema(), rows(10));
        // Re-publishing `a`'s lineage freshens it, so `b` is the LRU victim.
        assert_eq!(c.publish(fp_over(0), schema(), rows(10)), a);
        c.publish(fp_over(2), schema(), rows(10));
        assert!(c.read(a).is_ok(), "deduped republish counts as a touch");
        assert!(c.read(b).is_err());
    }
}
