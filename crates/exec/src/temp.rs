//! Temp-table cache for the materialization-based reuse baseline — a typed
//! facade over the generic [`hashstash_cache::ReuseStore`].
//!
//! The paper's baseline (§6.1, following Nagel et al. ICDE'13) materializes
//! the *outputs* of selected operators into temporary in-memory tables and
//! reuses them for later queries, supporting only exact- and subsuming-reuse.
//! The crucial differences to HashStash:
//!
//! 1. materialization costs extra work during the original query (copying
//!    every tuple out of the pipeline), and
//! 2. a reused temp table is a plain relation — a join consuming it must
//!    still *rebuild* its hash table from the temp rows.
//!
//! Both costs fall out naturally here: [`crate::plan::PhysicalPlan::Materialize`]
//! copies rows into this cache, and a reusing plan scans the temp table into
//! an ordinary hash-join build.
//!
//! Concurrency: the facade inherits the store's model wholesale — sharded by
//! fingerprint shape, every method `&self`, reads served as cheap `Arc`
//! snapshots (no per-reuse copy of the rows, and no engine-level mutex). A
//! `TempScan` whose table was evicted by a concurrent session surfaces a
//! `CacheError`, which the session handles by re-planning.
//!
//! The store may share its [`ReuseBudget`] with the Hash Table Manager
//! ([`TempTableCache::with_budget`]): then one byte budget governs both
//! payload kinds and one eviction loop ranks them together.

use std::sync::Arc;

use hashstash_types::{Result, Row, Schema};

use hashstash_cache::{
    CacheStats, GcConfig, MaterializedRows, ReuseBudget, ReuseStore, SnapshotEntry, StoreId,
    TenantId, DEFAULT_SHARDS,
};
use hashstash_plan::HtFingerprint;

/// Identifier of a materialized temporary table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TempId(pub u64);

impl std::fmt::Display for TempId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TT{}", self.0)
    }
}

impl StoreId for TempId {
    fn from_raw(raw: u64) -> Self {
        TempId(raw)
    }
    fn raw(self) -> u64 {
        self.0
    }
}

/// Statistics over the temp-table cache (drives Figure 7b's baseline rows).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TempTableStats {
    /// Temp tables ever materialized.
    pub publishes: u64,
    /// Publish calls deduplicated onto an existing identical-lineage table.
    pub publish_dedups: u64,
    /// Reuses served.
    pub reuses: u64,
    /// Evictions under the memory budget.
    pub evictions: u64,
    /// Current footprint in bytes.
    pub bytes: usize,
    /// Current table count.
    pub entries: usize,
}

impl TempTableStats {
    /// Average reuses per materialized element (paper's hit ratio).
    pub fn hit_ratio(&self) -> f64 {
        if self.publishes == 0 {
            0.0
        } else {
            self.reuses as f64 / self.publishes as f64
        }
    }

    fn of(s: CacheStats) -> Self {
        TempTableStats {
            publishes: s.publishes,
            publish_dedups: s.publish_dedups,
            reuses: s.reuses,
            evictions: s.evictions,
            bytes: s.bytes,
            entries: s.entries,
        }
    }
}

/// A sharded, budget-bounded cache of materialized intermediate results.
/// All methods take `&self`.
#[derive(Debug)]
pub struct TempTableCache {
    store: ReuseStore<TempId, MaterializedRows>,
}

impl TempTableCache {
    /// Cache with a private memory budget.
    pub fn new(budget_bytes: Option<usize>) -> Self {
        TempTableCache::with_budget(
            ReuseBudget::new(GcConfig {
                budget_bytes,
                ..GcConfig::default()
            }),
            DEFAULT_SHARDS,
        )
    }

    /// Unlimited cache.
    pub fn unbounded() -> Self {
        TempTableCache::new(None)
    }

    /// Cache over an existing — possibly shared — budget. The engine hands
    /// the same budget to the Hash Table Manager, so hash tables and temp
    /// tables compete in one victim search under one byte limit.
    pub fn with_budget(budget: Arc<ReuseBudget>, shards: usize) -> Self {
        TempTableCache {
            store: ReuseStore::new(budget, shards),
        }
    }

    /// Materialize rows under a fingerprint. Returns the temp-table id.
    ///
    /// Re-publishing an identical lineage (e.g. a re-planned retry
    /// re-materializing an operator output that already survived an aborted
    /// attempt) is deduplicated: the existing table is kept, its LRU stamp
    /// refreshed, and its id returned without inflating the footprint or
    /// the publish counter.
    pub fn publish(&self, fingerprint: HtFingerprint, schema: Schema, rows: Vec<Row>) -> TempId {
        self.store
            .publish(fingerprint, schema, MaterializedRows::new(rows))
    }

    /// [`TempTableCache::publish`] on behalf of a tenant: the table is
    /// owned by `tenant` for per-tenant budget floors and statistics — see
    /// [`hashstash_cache::ReuseStore::publish_as`].
    pub fn publish_as(
        &self,
        tenant: TenantId,
        fingerprint: HtFingerprint,
        schema: Schema,
        rows: Vec<Row>,
    ) -> TempId {
        self.store
            .publish_as(tenant, fingerprint, schema, MaterializedRows::new(rows))
    }

    /// All cached fingerprints (candidate matching happens in the engine's
    /// baseline strategy — exact and subsuming only).
    pub fn fingerprints(&self) -> Vec<(TempId, HtFingerprint)> {
        self.store.fingerprints()
    }

    /// Schema of a temp table.
    pub fn schema(&self, id: TempId) -> Result<Schema> {
        self.store.schema(id)
    }

    /// Read a temp table: an `Arc` snapshot of the materialized rows — no
    /// copy of the table, however large. (Feeding the rows back into a
    /// pipeline still costs the re-read the baseline is *supposed* to pay;
    /// what this avoids is the extra full-table clone the cache itself used
    /// to make on every reuse.) Bumps LRU and reuse statistics.
    pub fn read(&self, id: TempId) -> Result<(Schema, Arc<MaterializedRows>)> {
        let co = self.store.checkout(id)?;
        let schema = co.schema.clone();
        let rows = co.snapshot();
        co.checkin()?;
        Ok((schema, rows))
    }

    /// Stats-neutral snapshot of every available temp table for
    /// persistence — see
    /// [`hashstash_cache::ReuseStore::snapshot_entries`]. Unlike
    /// [`TempTableCache::read`] this does not bump LRU or reuse counters.
    pub fn snapshot_entries(&self) -> Vec<SnapshotEntry<TempId, MaterializedRows>> {
        self.store.snapshot_entries()
    }

    /// Evict until under budget (shared victim search when the budget is
    /// shared). Returns the number of evictions.
    pub fn enforce_budget(&self) -> usize {
        self.store.enforce_budget()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> TempTableStats {
        TempTableStats::of(self.store.stats())
    }

    /// Per-tenant raw statistics slices — see
    /// [`hashstash_cache::ReuseStore::tenant_stats`].
    pub fn tenant_stats(&self) -> Vec<(TenantId, CacheStats)> {
        self.store.tenant_stats()
    }

    /// One tenant's raw statistics slice (zeroed when the tenant has no
    /// history in this cache).
    pub fn tenant_stats_for(&self, tenant: TenantId) -> CacheStats {
        self.store.tenant_stats_for(tenant)
    }

    /// Stamp every cached table with one fresh clock tick (warm-restart
    /// rehydration) — see [`hashstash_cache::ReuseStore::freshen_all`].
    pub fn freshen_all(&self) {
        self.store.freshen_all()
    }

    /// The budget governing this cache.
    pub fn budget(&self) -> &Arc<ReuseBudget> {
        self.store.budget()
    }

    /// Recount footprint and entries directly from the shards (testing).
    pub fn audit(&self) -> (usize, usize) {
        self.store.audit()
    }

    /// Pin-leak detector forward (`analysis` feature): panics unless every
    /// checkout guard has been returned and every entry is unpinned. See
    /// `ReuseStore::assert_quiesced`.
    #[cfg(feature = "analysis")]
    pub fn assert_quiesced(&self) {
        self.store.assert_quiesced()
    }

    /// Number of checkout guards currently outstanding (`analysis` feature).
    #[cfg(feature = "analysis")]
    pub fn outstanding_pins(&self) -> i64 {
        self.store.outstanding_pins()
    }

    /// Number of cached tables.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hashstash_cache::payload::row_bytes;
    use hashstash_plan::{HtKind, Region};
    use hashstash_types::{DataType, Field, Value};

    fn fp() -> HtFingerprint {
        fp_over(0)
    }

    /// Distinct lineages per `lo` (publishing the *same* lineage twice is
    /// deduplicated — see `identical_lineage_publish_dedups`).
    fn fp_over(lo: i64) -> HtFingerprint {
        HtFingerprint {
            kind: HtKind::JoinBuild,
            tables: std::iter::once(std::sync::Arc::from("t")).collect(),
            edges: vec![],
            region: Region::from_box(hashstash_plan::PredBox::all().with(
                "t.k",
                hashstash_plan::Interval::at_least(hashstash_types::Value::Int(lo)),
            )),
            key_attrs: vec![std::sync::Arc::from("t.k")],
            payload_attrs: vec![std::sync::Arc::from("t.k")],
            aggregates: vec![],
            tagged: false,
        }
    }

    fn rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| Row::new(vec![Value::Int(i as i64)]))
            .collect()
    }

    fn schema() -> Schema {
        Schema::new(vec![Field::new("t.k", DataType::Int)])
    }

    #[test]
    fn publish_and_read() {
        let c = TempTableCache::unbounded();
        let id = c.publish(fp(), schema(), rows(10));
        let (s, r) = c.read(id).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(r.len(), 10);
        assert_eq!(c.stats().reuses, 1);
        assert!((c.stats().hit_ratio() - 1.0).abs() < 1e-9);
    }

    /// The satellite fix: a read hands back a *snapshot* of the cached
    /// allocation, not a fresh copy — and the snapshot stays valid (and
    /// cheap) even if the table is evicted while the reader holds it.
    #[test]
    fn read_returns_shared_snapshot_not_a_copy() {
        let c = TempTableCache::unbounded();
        let id = c.publish(fp(), schema(), rows(100));
        let (_, first) = c.read(id).unwrap();
        let (_, second) = c.read(id).unwrap();
        assert!(
            Arc::ptr_eq(&first, &second),
            "both reads share the cached allocation"
        );
        // Snapshot outlives eviction of the entry.
        drop(c);
        assert_eq!(first.len(), 100);
    }

    #[test]
    fn missing_table_errors() {
        let c = TempTableCache::unbounded();
        assert!(c.read(TempId(99)).is_err());
        assert!(c.schema(TempId(99)).is_err());
    }

    #[test]
    fn lru_eviction() {
        let bytes10 = rows(10).iter().map(row_bytes).sum::<usize>();
        let c = TempTableCache::new(Some(bytes10 * 2 + 1));
        let a = c.publish(fp_over(0), schema(), rows(10));
        let b = c.publish(fp_over(1), schema(), rows(10));
        c.read(a).unwrap(); // freshen a
        let _d = c.publish(fp_over(2), schema(), rows(10));
        assert_eq!(c.stats().evictions, 1);
        assert!(c.read(a).is_ok());
        assert!(c.read(b).is_err(), "LRU victim gone");
    }

    #[test]
    fn fingerprints_enumerate() {
        let c = TempTableCache::unbounded();
        c.publish(fp_over(0), schema(), rows(1));
        c.publish(fp_over(1), schema(), rows(2));
        assert_eq!(c.fingerprints().len(), 2);
    }

    #[test]
    fn identical_lineage_publish_dedups() {
        let c = TempTableCache::unbounded();
        let a = c.publish(fp(), schema(), rows(10));
        let b = c.publish(fp(), schema(), rows(10));
        assert_eq!(a, b, "identical lineage maps to the existing table");
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().publishes, 1, "dedup does not inflate publishes");
        assert_eq!(c.stats().publish_dedups, 1);
        // A different lineage still gets its own entry.
        let d = c.publish(fp_over(7), schema(), rows(10));
        assert_ne!(a, d);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn dedup_refreshes_lru_stamp() {
        let bytes10 = rows(10).iter().map(row_bytes).sum::<usize>();
        let c = TempTableCache::new(Some(bytes10 * 2 + 1));
        let a = c.publish(fp_over(0), schema(), rows(10));
        let b = c.publish(fp_over(1), schema(), rows(10));
        // Re-publishing `a`'s lineage freshens it, so `b` is the LRU victim.
        assert_eq!(c.publish(fp_over(0), schema(), rows(10)), a);
        c.publish(fp_over(2), schema(), rows(10));
        assert!(c.read(a).is_ok(), "deduped republish counts as a touch");
        assert!(c.read(b).is_err());
    }
}
