//! Reuse-aware shared plans (paper §4).
//!
//! A shared plan executes a *batch* of queries with the same join graph in
//! one pass using the Data-Query model: every tuple carries a [`QidSet`] tag
//! naming the queries it qualifies for. Scans evaluate all queries'
//! predicates at once; shared hash joins (SRHJ) AND-combine tags during
//! probing; shared hash aggregates (SRHA) group *raw tuples* first and run
//! each query's aggregation over its tagged subset — which is why an
//! SRHA-built table can later serve a different aggregate function.
//!
//! Reuse inside shared plans:
//! * an SRHJ may reuse a cached **tagged** join table after *re-tagging* all
//!   stored tuples with the current batch's predicates (stale tags from a
//!   previous batch would corrupt results — paper §4.1);
//! * an SRHA may reuse a cached shared-group table the same way; missing
//!   tuples (partial/overlapping reuse) are produced by re-running the join
//!   pipeline restricted to the delta region.
//!
//! Re-tagging mutates the table, so shared reuse always takes an
//! *exclusive* checkout and copies-on-write; the retagged (and
//! delta-extended) version is checked in as soon as it is complete, and the
//! rest of the batch keeps probing a cheap `Arc` snapshot of it — the
//! cached entry is writer-locked only while tags are being rewritten.
//!
//! The executor here implements a *probe pipeline*: one driver table streams
//! through a chain of single-table build sides — the shape of the paper's
//! Figure 5 (per-table selections feeding shared joins).

use std::sync::Arc;

use hashstash_types::{HsError, QidSet, QueryId, Result, Row, Schema, Value};

use hashstash_cache::{AggPayload, StoredHt, TaggedRow};
use hashstash_hashtable::ExtendibleHashTable;
use hashstash_plan::{AggExpr, HtFingerprint, QuerySpec, Region, ReuseCase};

use crate::exec::ExecContext;
use crate::plan::lookup_attr_type;

/// Reuse directive for a shared operator.
#[derive(Debug, Clone)]
pub struct SharedReuse {
    /// Cached (tagged) hash table to check out.
    pub id: hashstash_types::HtId,
    /// Classification of cached region vs. the batch's union region.
    pub case: ReuseCase,
    /// Delta region (batch union minus cached region), empty unless
    /// partial/overlapping.
    pub delta_region: Region,
    /// Union region of the requesting batch (for lineage widening).
    pub request_region: Region,
    /// Region of the cached table at batch-planning time; re-validated at
    /// checkout (a concurrent widening makes `delta_region` stale and the
    /// batch re-plans).
    pub cached_region: Region,
}

/// One shared join step: build a tagged hash table over a single base table
/// and probe it with the accumulated pipeline rows.
#[derive(Debug, Clone)]
pub struct SharedJoinStep {
    /// Build-side base table.
    pub table: Arc<str>,
    /// Join key attribute on the accumulated (probe) side.
    pub probe_attr: Arc<str>,
    /// Join key attribute on the build table.
    pub build_key: Arc<str>,
    /// Payload attributes to store (qualified, from `table`).
    pub payload: Vec<Arc<str>>,
    /// Reuse directive for this step's hash table.
    pub reuse: Option<SharedReuse>,
    /// Publish fingerprint for a freshly built table.
    pub publish: Option<HtFingerprint>,
}

/// Output required by one query of the batch.
#[derive(Debug, Clone)]
pub enum SharedOutput {
    /// SPJ: project the tagged pipeline rows.
    Projection(Vec<Arc<str>>),
    /// SPJA: aggregate the query's tagged subset of a shared grouping table.
    Aggregate {
        /// Index into [`SharedPlanSpec::group_specs`].
        group_spec: usize,
        /// This query's aggregate expressions.
        aggs: Vec<AggExpr>,
    },
}

/// One shared grouping phase (queries with identical group-by share it).
#[derive(Debug, Clone)]
pub struct SharedGroupSpec {
    /// Group-by attributes.
    pub group_by: Vec<Arc<str>>,
    /// Attributes stored per grouped tuple (must cover group-by, every
    /// sharing query's aggregate inputs and predicate attributes for
    /// re-tagging).
    pub stored_attrs: Vec<Arc<str>>,
    /// Reuse directive for the shared-group table.
    pub reuse: Option<SharedReuse>,
    /// Publish fingerprint for a fresh table.
    pub publish: Option<HtFingerprint>,
}

/// A complete shared plan for a batch of queries with one join graph.
#[derive(Debug, Clone)]
pub struct SharedPlanSpec {
    /// The batch; slot `i` is query `queries[i]`.
    pub queries: Vec<QuerySpec>,
    /// Driver (probe pipeline) table.
    pub driver: Arc<str>,
    /// Attributes scanned from the driver.
    pub driver_attrs: Vec<Arc<str>>,
    /// Join steps in probe order.
    pub steps: Vec<SharedJoinStep>,
    /// Shared grouping phases.
    pub group_specs: Vec<SharedGroupSpec>,
    /// Per-query outputs, aligned with `queries`.
    pub outputs: Vec<SharedOutput>,
}

/// Result of one query in the batch.
#[derive(Debug, Clone)]
pub struct SharedQueryResult {
    pub query: QueryId,
    pub schema: Schema,
    pub rows: Vec<Row>,
}

/// A tagged table a shared plan works on: freshly built this batch, or an
/// immutable snapshot of a reused cached table (already retagged, checked
/// in, and released back to the manager).
enum SharedTable {
    Fresh(ExtendibleHashTable<TaggedRow>),
    Snapshot(std::sync::Arc<StoredHt>),
}

impl SharedTable {
    fn tagged(&self) -> &ExtendibleHashTable<TaggedRow> {
        match self {
            SharedTable::Fresh(t) => t,
            SharedTable::Snapshot(s) => match &**s {
                StoredHt::Join(t) | StoredHt::SharedGroup(t) => t,
                StoredHt::Agg(_) => unreachable!("shared plans never snapshot aggregate tables"),
            },
        }
    }
}

/// Evaluate which queries of the batch a row qualifies for.
fn tag_row(queries: &[QuerySpec], schema: &Schema, row: &Row) -> QidSet {
    let lookup =
        |attr: &str| -> Option<Value> { schema.index_of(attr).ok().map(|i| row.get(i).clone()) };
    let mut tag = QidSet::EMPTY;
    for (slot, q) in queries.iter().enumerate() {
        if q.predicates.matches(lookup) {
            tag.insert(slot);
        }
    }
    tag
}

/// Execute a shared plan, returning per-query results.
pub fn execute_shared(
    spec: &SharedPlanSpec,
    ctx: &mut ExecContext<'_>,
) -> Result<Vec<SharedQueryResult>> {
    // ------------------------------------------------------------------
    // 1. Build (or reuse + re-tag) the tagged hash table of every join step.
    // ------------------------------------------------------------------
    let mut step_tables: Vec<(SharedTable, Schema, usize)> = Vec::new();
    for step in &spec.steps {
        let (ht, schema) = build_shared_join_table(spec, step, ctx)?;
        let key_idx = schema.index_of(&step.build_key)?;
        step_tables.push((ht, schema, key_idx));
    }

    // ------------------------------------------------------------------
    // 2. Decide which pipeline region each consumer needs.
    // ------------------------------------------------------------------
    // Union of every query's predicate box — the shared scan region.
    let full_region = spec
        .queries
        .iter()
        .fold(Region::empty(), |acc, q| acc.union(&q.region()));
    // Grouping phases: reused tables only need their delta.
    let group_needs: Vec<Option<Region>> = spec
        .group_specs
        .iter()
        .map(|g| match &g.reuse {
            Some(r) if !r.case.needs_delta() => None, // fully covered
            Some(r) => Some(r.delta_region.clone()),
            None => Some(full_region.clone()),
        })
        .collect();
    // SPJ outputs always need the full pipeline.
    let spj_needs_full = spec
        .outputs
        .iter()
        .any(|o| matches!(o, SharedOutput::Projection(_)));
    let mut pipeline_region = if spj_needs_full {
        full_region.clone()
    } else {
        Region::empty()
    };
    for need in group_needs.iter().flatten() {
        pipeline_region = pipeline_region.union(need);
    }

    // ------------------------------------------------------------------
    // 3. Stream the driver through the probe pipeline (if anything needs it).
    // ------------------------------------------------------------------
    let driver_region = project_region_to_table(&pipeline_region, &spec.driver);
    let scan = crate::plan::ScanSpec {
        table: spec.driver.clone(),
        region: driver_region,
        projection: spec.driver_attrs.clone(),
    };
    let mut pipeline_rows: Vec<(Row, QidSet)> = Vec::new();
    let mut pipeline_schema = {
        let table = ctx.catalog.get(&spec.driver)?;
        let q = table.qualified_schema();
        if spec.driver_attrs.is_empty() {
            q
        } else {
            let names: Vec<&str> = spec.driver_attrs.iter().map(|a| a.as_ref()).collect();
            q.project(&names)?
        }
    };
    if !pipeline_region.is_empty() {
        let (schema, rows) = crate::exec::execute(&crate::plan::PhysicalPlan::Scan(scan), ctx)?;
        pipeline_schema = schema;
        for row in rows {
            pipeline_rows.push((row, QidSet::EMPTY));
        }
        // Probe through every step, narrowing tags by the build side's tags.
        // Probing is read-only: reused tables are immutable snapshots, so
        // no cache lock is held here — each step fans out over row-range
        // morsels (concatenated in morsel order, so the pipeline is
        // bit-identical to the serial interpreter).
        for (step, (ht, build_schema, build_key_idx)) in spec.steps.iter().zip(step_tables.iter()) {
            let probe_idx = pipeline_schema.index_of(&step.probe_attr)?;
            ctx.metrics.ht_probes += pipeline_rows.len() as u64;
            let input = &pipeline_rows;
            let next =
                crate::parallel::collect_morsels(ctx.sched(), pipeline_rows.len(), |range| {
                    let mut buf = Vec::new();
                    for (row, _) in &input[range] {
                        let key = row.key64(&[probe_idx]);
                        let pval = row.get(probe_idx);
                        for tagged in ht.tagged().probe_readonly(key) {
                            if tagged.row.get(*build_key_idx) != pval {
                                continue;
                            }
                            buf.push((row.concat(&tagged.row), tagged.tag));
                        }
                    }
                    buf
                });
            pipeline_schema = pipeline_schema.concat(build_schema);
            pipeline_rows = next;
        }
        // Final tags: per-query predicate evaluation over the full row,
        // intersected with the tags accumulated from build sides. The
        // per-row evaluation is independent, so it fans out as well.
        let schema_ref = &pipeline_schema;
        let rows_ref = &pipeline_rows;
        let tags: Vec<QidSet> =
            crate::parallel::collect_morsels(ctx.sched(), pipeline_rows.len(), |range| {
                rows_ref[range]
                    .iter()
                    .map(|(row, _)| tag_row(&spec.queries, schema_ref, row))
                    .collect()
            });
        for ((_, tag), full) in pipeline_rows.iter_mut().zip(tags) {
            *tag = full;
        }
        pipeline_rows.retain(|(_, tag)| !tag.is_empty());
    }

    // ------------------------------------------------------------------
    // 4. Run grouping phases (reuse/retag + delta folding).
    // ------------------------------------------------------------------
    let mut group_tables: Vec<(SharedTable, Schema)> = Vec::new();
    for (gi, gspec) in spec.group_specs.iter().enumerate() {
        let (ht, schema) = run_grouping_phase(
            spec,
            gspec,
            &group_needs[gi],
            &pipeline_schema,
            &pipeline_rows,
            ctx,
        )?;
        group_tables.push((ht, schema));
    }

    // ------------------------------------------------------------------
    // 5. Per-query aggregation / projection.
    // ------------------------------------------------------------------
    let mut results = Vec::with_capacity(spec.queries.len());
    for (slot, (q, output)) in spec.queries.iter().zip(&spec.outputs).enumerate() {
        match output {
            SharedOutput::Projection(attrs) => {
                let idx: Vec<usize> = attrs
                    .iter()
                    .map(|a| pipeline_schema.index_of(a))
                    .collect::<Result<Vec<_>>>()?;
                let names: Vec<&str> = attrs.iter().map(|a| a.as_ref()).collect();
                let schema = pipeline_schema.project(&names)?;
                let rows: Vec<Row> = pipeline_rows
                    .iter()
                    .filter(|(_, tag)| tag.contains(slot))
                    .map(|(row, _)| row.project(&idx))
                    .collect();
                results.push(SharedQueryResult {
                    query: q.id,
                    schema,
                    rows,
                });
            }
            SharedOutput::Aggregate { group_spec, aggs } => {
                let (gtable, gschema) = &group_tables[*group_spec];
                let gspec = &spec.group_specs[*group_spec];
                let result =
                    aggregate_for_query(q, slot, gspec, gtable.tagged(), gschema, aggs, ctx)?;
                results.push(result);
            }
        }
    }

    // ------------------------------------------------------------------
    // 6. Publish freshly built tables (reused ones were checked in the
    //    moment their retag/delta mutation completed).
    // ------------------------------------------------------------------
    for (step, (ht, schema, _)) in spec.steps.iter().zip(step_tables) {
        finish_table(step.publish.as_ref(), ht, schema, false, ctx);
    }
    for (gspec, (ht, schema)) in spec.group_specs.iter().zip(group_tables) {
        finish_table(gspec.publish.as_ref(), ht, schema, true, ctx);
    }

    Ok(results)
}

/// Build (or reuse) the tagged hash table for one join step.
fn build_shared_join_table(
    spec: &SharedPlanSpec,
    step: &SharedJoinStep,
    ctx: &mut ExecContext<'_>,
) -> Result<(SharedTable, Schema)> {
    let table = ctx.catalog.get(&step.table)?;
    let qualified = table.qualified_schema();
    let names: Vec<&str> = step.payload.iter().map(|a| a.as_ref()).collect();
    let schema = qualified.project(&names)?;

    match &step.reuse {
        Some(reuse) => {
            // Re-tagging mutates the table: exclusive checkout, COW. The
            // checkout re-validates the lineage the batch was planned
            // against; a concurrent widening surfaces as `CacheError` and
            // the batch re-plans.
            let mut co = ctx
                .htm
                .checkout_mut_expecting(reuse.id, &reuse.cached_region)?;
            ctx.metrics.reused_tables += 1;
            if !matches!(co.table(), StoredHt::Join(_)) {
                return Err(HsError::ExecError(format!(
                    "{} is not a join hash table",
                    reuse.id
                )));
            }
            let co_schema = co.schema.clone();
            // Re-tag every stored tuple with the current batch's predicates
            // (paper §4.1: stale tags would corrupt results).
            {
                let StoredHt::Join(ht) = co.table_mut()? else {
                    unreachable!("kind verified above")
                };
                let queries = &spec.queries;
                let mut retag_updates = 0u64;
                ht.for_each_mut(|_, tagged| {
                    tagged.tag = tag_row(queries, &co_schema, &tagged.row);
                    retag_updates += 1;
                });
                ctx.metrics.ht_updates += retag_updates;
            }
            // Add missing tuples for partial/overlapping reuse *before*
            // check-in, so the cached version really covers the widened
            // region it claims.
            if reuse.case.needs_delta() && !reuse.delta_region.is_empty() {
                let delta = project_region_to_table(&reuse.delta_region, &step.table);
                let scan = crate::plan::ScanSpec {
                    table: step.table.clone(),
                    region: delta,
                    projection: step.payload.clone(),
                };
                let (dschema, rows) =
                    crate::exec::execute(&crate::plan::PhysicalPlan::Scan(scan), ctx)?;
                let key_idx = dschema.index_of(&step.build_key)?;
                ctx.metrics.ht_inserts += rows.len() as u64;
                let StoredHt::Join(ht) = co.table_mut()? else {
                    unreachable!("kind verified above")
                };
                ht.reserve(rows.len());
                for row in rows {
                    let tag = tag_row(&spec.queries, &dschema, &row);
                    let key = row.key64(&[key_idx]);
                    ht.insert(key, TaggedRow::tagged(row, tag));
                }
            }
            // Check the retagged version in immediately (releasing the
            // writer lock) and keep probing a cheap snapshot of it.
            let snapshot = if reuse.case.needs_delta() {
                co.checkin_widened(&reuse.request_region)?
            } else {
                let snapshot = co.snapshot();
                co.checkin()?;
                snapshot
            };
            Ok((SharedTable::Snapshot(snapshot), co_schema))
        }
        None => {
            // Fresh build: scan the table's union region across queries.
            let union_region = spec.queries.iter().fold(Region::empty(), |acc, q| {
                acc.union(&Region::from_box(q.predicates.project_table(&step.table)))
            });
            let scan = crate::plan::ScanSpec {
                table: step.table.clone(),
                region: union_region,
                projection: step.payload.clone(),
            };
            let (dschema, rows) =
                crate::exec::execute(&crate::plan::PhysicalPlan::Scan(scan), ctx)?;
            let key_idx = dschema.index_of(&step.build_key)?;
            let mut ht: ExtendibleHashTable<TaggedRow> =
                ExtendibleHashTable::with_capacity(schema.tuple_width(), rows.len());
            ctx.metrics.ht_inserts += rows.len() as u64;
            ctx.metrics.built_tables += 1;
            if ctx.parallelism > 1 && rows.len() >= crate::parallel::MIN_PARALLEL_BUILD_ROWS {
                // Tagging (evaluating every query's predicates per row)
                // dominates this build; it fans out over morsels and the
                // chain construction over bucket partitions, stitched
                // bit-identically to the serial loop below — so a tagged
                // table published from a parallel build re-tags and reuses
                // exactly like a serially built one.
                let rows_ref = &rows;
                let queries = &spec.queries;
                let meta: Vec<(u64, QidSet)> =
                    crate::parallel::collect_morsels(ctx.sched(), rows.len(), |range| {
                        rows_ref[range]
                            .iter()
                            .map(|row| (row.key64(&[key_idx]), tag_row(queries, &dschema, row)))
                            .collect()
                    });
                let (keys, tags): (Vec<u64>, Vec<QidSet>) = meta.into_iter().unzip();
                let values: Vec<TaggedRow> = tags
                    .into_iter()
                    .zip(rows)
                    .map(|(tag, row)| TaggedRow::tagged(row, tag))
                    .collect();
                crate::parallel::build_multimap_partitioned(ctx.sched(), &mut ht, keys, values);
            } else {
                for row in rows {
                    let tag = tag_row(&spec.queries, &dschema, &row);
                    let key = row.key64(&[key_idx]);
                    ht.insert(key, TaggedRow::tagged(row, tag));
                }
            }
            Ok((SharedTable::Fresh(ht), dschema))
        }
    }
}

/// Run one shared grouping phase: reuse + retag + delta folding, check-in,
/// then return the table for the per-query aggregation passes.
fn run_grouping_phase(
    spec: &SharedPlanSpec,
    gspec: &SharedGroupSpec,
    need: &Option<Region>,
    pipeline_schema: &Schema,
    pipeline_rows: &[(Row, QidSet)],
    ctx: &mut ExecContext<'_>,
) -> Result<(SharedTable, Schema)> {
    match &gspec.reuse {
        Some(reuse) => {
            // Re-tagging mutates the table: exclusive checkout, COW. The
            // checkout re-validates the lineage the batch was planned
            // against; a concurrent widening surfaces as `CacheError` and
            // the batch re-plans.
            let mut co = ctx
                .htm
                .checkout_mut_expecting(reuse.id, &reuse.cached_region)?;
            ctx.metrics.reused_tables += 1;
            if !matches!(co.table(), StoredHt::SharedGroup(_)) {
                return Err(HsError::ExecError(format!(
                    "{} is not a shared-group hash table",
                    reuse.id
                )));
            }
            let co_schema = co.schema.clone();
            {
                let StoredHt::SharedGroup(ht) = co.table_mut()? else {
                    unreachable!("kind verified above")
                };
                let queries = &spec.queries;
                let mut retag_updates = 0u64;
                ht.for_each_mut(|_, tagged| {
                    tagged.tag = tag_row(queries, &co_schema, &tagged.row);
                    retag_updates += 1;
                });
                ctx.metrics.ht_updates += retag_updates;
                // Fold the delta rows *before* check-in, so the cached
                // version really contains the region its widened lineage
                // claims.
                if let Some(need_region) = need {
                    fold_pipeline_rows(
                        ht,
                        gspec,
                        need_region,
                        pipeline_schema,
                        pipeline_rows,
                        &mut ctx.metrics,
                    )?;
                }
            }
            // Publish the retagged + extended version immediately
            // (releasing the writer lock) and keep an immutable snapshot
            // for the per-query aggregation passes.
            let snapshot = if reuse.case.needs_delta() {
                co.checkin_widened(&reuse.request_region)?
            } else {
                let snapshot = co.snapshot();
                co.checkin()?;
                snapshot
            };
            Ok((SharedTable::Snapshot(snapshot), co_schema))
        }
        None => {
            let mut fields = Vec::new();
            for a in &gspec.stored_attrs {
                fields.push(hashstash_types::Field::new(
                    a.to_string(),
                    lookup_attr_type(ctx.catalog, a)?,
                ));
            }
            let schema = Schema::new(fields);
            let mut ht = ExtendibleHashTable::new(schema.tuple_width());
            if let Some(need_region) = need {
                fold_pipeline_rows(
                    &mut ht,
                    gspec,
                    need_region,
                    pipeline_schema,
                    pipeline_rows,
                    &mut ctx.metrics,
                )?;
            }
            Ok((SharedTable::Fresh(ht), schema))
        }
    }
}

/// Fold the pipeline rows a grouping phase still needs into its table
/// (everything for a fresh table, only the delta region for reuse).
fn fold_pipeline_rows(
    ht: &mut ExtendibleHashTable<TaggedRow>,
    gspec: &SharedGroupSpec,
    need_region: &Region,
    pipeline_schema: &Schema,
    pipeline_rows: &[(Row, QidSet)],
    metrics: &mut crate::exec::ExecMetrics,
) -> Result<()> {
    let stored_idx: Vec<usize> = gspec
        .stored_attrs
        .iter()
        .map(|a| pipeline_schema.index_of(a))
        .collect::<Result<Vec<_>>>()?;
    // Map group attrs to positions inside the stored projection.
    let gkey_idx: Vec<usize> = gspec
        .group_by
        .iter()
        .map(|g| {
            gspec
                .stored_attrs
                .iter()
                .position(|a| a == g)
                .ok_or_else(|| {
                    HsError::ExecError(format!("group attr {g} missing from stored projection"))
                })
        })
        .collect::<Result<Vec<_>>>()?;
    for (row, tag) in pipeline_rows {
        if tag.is_empty() {
            continue;
        }
        // Only fold rows inside the region this grouping phase needs
        // (a reused table already covers the rest).
        if !region_matches_row(need_region, pipeline_schema, row) {
            continue;
        }
        let stored = row.project(&stored_idx);
        let key = stored.key64(&gkey_idx);
        ht.insert(key, TaggedRow::tagged(stored, *tag));
        metrics.ht_inserts += 1;
    }
    Ok(())
}

/// Aggregation phase for one query over a shared grouping table.
fn aggregate_for_query(
    q: &QuerySpec,
    slot: usize,
    gspec: &SharedGroupSpec,
    gtable: &ExtendibleHashTable<TaggedRow>,
    gschema: &Schema,
    aggs: &[AggExpr],
    ctx: &mut ExecContext<'_>,
) -> Result<SharedQueryResult> {
    let group_idx: Vec<usize> = q
        .group_by
        .iter()
        .map(|g| gschema.index_of(g))
        .collect::<Result<Vec<_>>>()?;
    let agg_idx: Vec<usize> = aggs
        .iter()
        .map(|a| gschema.index_of(&a.attr))
        .collect::<Result<Vec<_>>>()?;
    let mut result: ExtendibleHashTable<AggPayload> = ExtendibleHashTable::new(64);
    for (_, tagged) in gtable.iter() {
        if !tagged.tag.contains(slot) {
            continue;
        }
        let row = &tagged.row;
        let group_row = row.project(&group_idx);
        let key = group_row.key64(&(0..group_idx.len()).collect::<Vec<_>>());
        let created = result.upsert_where(
            key,
            |p: &AggPayload| p.group == group_row,
            || {
                let mut p = AggPayload::new(group_row.clone(), aggs);
                for (accum, &ai) in p.accums.iter_mut().zip(&agg_idx) {
                    accum.update(row.get(ai));
                }
                p
            },
            |p| {
                for (accum, &ai) in p.accums.iter_mut().zip(&agg_idx) {
                    accum.update(row.get(ai));
                }
            },
        );
        if created {
            ctx.metrics.ht_inserts += 1;
        } else {
            ctx.metrics.ht_updates += 1;
        }
    }
    let _ = gspec;
    // Output schema: group attrs + aggregates.
    let mut fields = Vec::new();
    for g in &q.group_by {
        fields.push(hashstash_types::Field::new(
            g.to_string(),
            gschema.field(g)?.dtype,
        ));
    }
    for (i, a) in aggs.iter().enumerate() {
        let dtype = match a.func {
            hashstash_plan::AggFunc::Count => hashstash_types::DataType::Int,
            hashstash_plan::AggFunc::Min | hashstash_plan::AggFunc::Max => {
                gschema.field(&a.attr)?.dtype
            }
            _ => hashstash_types::DataType::Float,
        };
        fields.push(hashstash_types::Field::new(format!("agg_{i}"), dtype));
    }
    let schema = Schema::new(fields);
    let rows: Vec<Row> = result
        .iter()
        .map(|(_, p)| {
            let mut values: Vec<Value> = p.group.values().to_vec();
            for a in &p.accums {
                values.push(a.finalize());
            }
            Row::new(values)
        })
        .collect();
    Ok(SharedQueryResult {
        query: q.id,
        schema,
        rows,
    })
}

/// Publish a freshly built tagged table (reused ones were checked in
/// immediately after their retag/delta mutation completed).
fn finish_table(
    publish: Option<&HtFingerprint>,
    table: SharedTable,
    schema: Schema,
    shared_group: bool,
    ctx: &mut ExecContext<'_>,
) {
    if let (SharedTable::Fresh(ht), Some(fp)) = (table, publish) {
        let stored = if shared_group {
            StoredHt::SharedGroup(ht)
        } else {
            StoredHt::Join(ht)
        };
        ctx.htm.publish_as(ctx.tenant, fp.clone(), schema, stored);
    }
}

/// Restrict a region to the attributes of one table (projection — a
/// conservative superset of the true region for scanning purposes).
fn project_region_to_table(region: &Region, table: &str) -> Region {
    let mut out = Region::empty();
    for b in region.boxes() {
        out = out.union(&Region::from_box(b.project_table(table)));
    }
    out
}

/// Evaluate a region against a row bound to a schema.
fn region_matches_row(region: &Region, schema: &Schema, row: &Row) -> bool {
    region.matches(|attr| schema.index_of(attr).ok().map(|i| row.get(i).clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temp::TempTableCache;
    use hashstash_cache::HtManager;
    use hashstash_plan::{AggFunc, Interval, QueryBuilder};
    use hashstash_storage::tpch::{generate, TpchConfig};
    use hashstash_storage::Catalog;

    fn setup() -> (Catalog, HtManager, TempTableCache) {
        (
            generate(TpchConfig::new(0.002, 11)),
            HtManager::unbounded(),
            TempTableCache::unbounded(),
        )
    }

    fn mk_query(id: u32, age_lo: i64, age_hi: i64) -> QuerySpec {
        QueryBuilder::new(id)
            .join(
                "customer",
                "customer.c_custkey",
                "orders",
                "orders.o_custkey",
            )
            .filter(
                "customer.c_age",
                Interval::closed(Value::Int(age_lo), Value::Int(age_hi)),
            )
            .group_by("customer.c_age")
            .agg(AggExpr::new(AggFunc::Count, "orders.o_orderkey"))
            .build()
            .unwrap()
    }

    fn mk_spec(queries: Vec<QuerySpec>) -> SharedPlanSpec {
        let outputs = queries
            .iter()
            .map(|q| SharedOutput::Aggregate {
                group_spec: 0,
                aggs: q.aggregates.clone(),
            })
            .collect();
        SharedPlanSpec {
            queries,
            driver: "orders".into(),
            driver_attrs: vec!["orders.o_orderkey".into(), "orders.o_custkey".into()],
            steps: vec![SharedJoinStep {
                table: "customer".into(),
                probe_attr: "orders.o_custkey".into(),
                build_key: "customer.c_custkey".into(),
                payload: vec!["customer.c_custkey".into(), "customer.c_age".into()],
                reuse: None,
                publish: None,
            }],
            group_specs: vec![SharedGroupSpec {
                group_by: vec!["customer.c_age".into()],
                stored_attrs: vec!["customer.c_age".into(), "orders.o_orderkey".into()],
                reuse: None,
                publish: None,
            }],
            outputs,
        }
    }

    /// Reference: run one query through the single-query executor.
    fn reference(q: &QuerySpec, cat: &Catalog) -> Vec<Row> {
        let htm = HtManager::unbounded();
        let temps = TempTableCache::unbounded();
        let plan = crate::plan::PhysicalPlan::HashAggregate {
            input: Some(Box::new(crate::plan::PhysicalPlan::HashJoin {
                probe: Box::new(crate::plan::PhysicalPlan::Scan(
                    crate::plan::ScanSpec::full("orders")
                        .project(&["orders.o_orderkey", "orders.o_custkey"]),
                )),
                build: Some(Box::new(crate::plan::PhysicalPlan::Scan(
                    crate::plan::ScanSpec::filtered(
                        "customer",
                        q.predicates.project_table("customer"),
                    )
                    .project(&["customer.c_custkey", "customer.c_age"]),
                ))),
                probe_key: "orders.o_custkey".into(),
                build_key: "customer.c_custkey".into(),
                reuse: None,
                publish: None,
            })),
            group_by: vec!["customer.c_age".into()],
            aggs: q.aggregates.clone(),
            output_aggs: vec![crate::plan::OutputAgg::Direct(0)],
            reuse: None,
            publish: None,
            post_group_by: None,
        };
        let mut ctx = ExecContext::new(cat, &htm, &temps);
        let (_, mut rows) = crate::exec::execute(&plan, &mut ctx).unwrap();
        rows.sort();
        rows
    }

    #[test]
    fn shared_plan_matches_individual_execution() {
        let (cat, htm, temps) = setup();
        let queries = vec![
            mk_query(1, 20, 40),
            mk_query(2, 30, 60),
            mk_query(3, 50, 80),
        ];
        let spec = mk_spec(queries.clone());
        let mut ctx = ExecContext::new(&cat, &htm, &temps);
        let results = execute_shared(&spec, &mut ctx).unwrap();
        assert_eq!(results.len(), 3);
        for (q, res) in queries.iter().zip(&results) {
            let mut got = res.rows.clone();
            got.sort();
            let want = reference(q, &cat);
            assert_eq!(got, want, "query {} differs", q.id);
        }
    }

    #[test]
    fn shared_plan_publishes_tagged_tables() {
        let (cat, htm, temps) = setup();
        let queries = vec![mk_query(1, 20, 40), mk_query(2, 30, 60)];
        let mut spec = mk_spec(queries.clone());
        let fp = HtFingerprint {
            kind: hashstash_plan::HtKind::JoinBuild,
            tables: std::iter::once(Arc::from("customer")).collect(),
            edges: vec![],
            region: Region::from_box(hashstash_plan::PredBox::all().with(
                "customer.c_age",
                Interval::closed(Value::Int(20), Value::Int(60)),
            )),
            key_attrs: vec![Arc::from("customer.c_custkey")],
            payload_attrs: vec![Arc::from("customer.c_custkey"), Arc::from("customer.c_age")],
            aggregates: vec![],
            tagged: true,
        };
        spec.steps[0].publish = Some(fp.clone());
        let mut ctx = ExecContext::new(&cat, &htm, &temps);
        execute_shared(&spec, &mut ctx).unwrap();
        let cands = htm.candidates(&fp);
        assert_eq!(cands.len(), 1);
        assert!(cands[0].fingerprint.tagged);
    }

    #[test]
    fn shared_join_reuse_with_retag_matches_fresh_run() {
        let (cat, htm, temps) = setup();
        // Batch 1 publishes a tagged customer table over ages [20, 60].
        let batch1 = vec![mk_query(1, 20, 40), mk_query(2, 30, 60)];
        let mut spec1 = mk_spec(batch1);
        let fp = HtFingerprint {
            kind: hashstash_plan::HtKind::JoinBuild,
            tables: std::iter::once(Arc::from("customer")).collect(),
            edges: vec![],
            region: Region::from_box(hashstash_plan::PredBox::all().with(
                "customer.c_age",
                Interval::closed(Value::Int(20), Value::Int(60)),
            )),
            key_attrs: vec![Arc::from("customer.c_custkey")],
            payload_attrs: vec![Arc::from("customer.c_custkey"), Arc::from("customer.c_age")],
            aggregates: vec![],
            tagged: true,
        };
        spec1.steps[0].publish = Some(fp.clone());
        let mut ctx = ExecContext::new(&cat, &htm, &temps);
        execute_shared(&spec1, &mut ctx).unwrap();
        let cands = htm.candidates(&fp);
        let cand_id = cands[0].id;

        // Batch 2 (subset ages) reuses the tagged table with re-tagging.
        let batch2 = vec![mk_query(10, 25, 35), mk_query(11, 40, 55)];
        let mut spec2 = mk_spec(batch2.clone());
        let request = Region::from_box(hashstash_plan::PredBox::all().with(
            "customer.c_age",
            Interval::closed(Value::Int(25), Value::Int(55)),
        ));
        spec2.steps[0].reuse = Some(SharedReuse {
            id: cand_id,
            case: ReuseCase::Subsuming,
            delta_region: Region::empty(),
            request_region: request,
            cached_region: fp.region.clone(),
        });
        let mut ctx2 = ExecContext::new(&cat, &htm, &temps);
        let results = execute_shared(&spec2, &mut ctx2).unwrap();
        assert!(ctx2.metrics.ht_updates > 0, "re-tagging happened");
        for (q, res) in batch2.iter().zip(&results) {
            let mut got = res.rows.clone();
            got.sort();
            assert_eq!(got, reference(q, &cat), "query {} differs", q.id);
        }
    }

    #[test]
    fn spj_projection_output() {
        let (cat, htm, temps) = setup();
        let q = QueryBuilder::new(5)
            .join(
                "customer",
                "customer.c_custkey",
                "orders",
                "orders.o_custkey",
            )
            .filter(
                "customer.c_age",
                Interval::closed(Value::Int(30), Value::Int(35)),
            )
            .project(&["orders.o_orderkey", "customer.c_age"])
            .build()
            .unwrap();
        let spec = SharedPlanSpec {
            queries: vec![q.clone()],
            driver: "orders".into(),
            driver_attrs: vec!["orders.o_orderkey".into(), "orders.o_custkey".into()],
            steps: vec![SharedJoinStep {
                table: "customer".into(),
                probe_attr: "orders.o_custkey".into(),
                build_key: "customer.c_custkey".into(),
                payload: vec!["customer.c_custkey".into(), "customer.c_age".into()],
                reuse: None,
                publish: None,
            }],
            group_specs: vec![],
            outputs: vec![SharedOutput::Projection(vec![
                "orders.o_orderkey".into(),
                "customer.c_age".into(),
            ])],
        };
        let mut ctx = ExecContext::new(&cat, &htm, &temps);
        let results = execute_shared(&spec, &mut ctx).unwrap();
        assert_eq!(results.len(), 1);
        assert!(!results[0].rows.is_empty());
        for r in &results[0].rows {
            let age = r.get(1).as_int().unwrap();
            assert!((30..=35).contains(&age));
        }
    }
}
