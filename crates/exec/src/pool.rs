//! The persistent worker pool behind every morsel-parallel phase.
//!
//! Before this module existed, every parallel phase spawned and joined a
//! fresh set of scoped threads — pure overhead paid dozens of times per
//! query (`BENCH_parallel.json` recorded *sub-1.0* speedups). A
//! [`WorkerPool`] instead spawns its workers **once** and parks them on a
//! condvar-backed injector queue; a phase submission is one queue push plus
//! a wakeup, and the pool is shared across phases, queries, and concurrent
//! sessions (which also unlocks inter-query parallelism: sessions no longer
//! spin up private workers).
//!
//! # Submission protocol
//!
//! A phase calls [`WorkerPool::run_phase`] with a *participant closure*
//! `task: Fn(slot)`. The closure wraps a claim loop over shared atomic
//! cursors (see `parallel::ClaimSpace`): every participant — pool workers
//! *and the submitting caller* — claims morsel indices until none remain,
//! then returns. `run_phase`:
//!
//! 1. enqueues the job and wakes up to `cap` parked workers,
//! 2. runs `task` on the calling thread (the caller is always the first
//!    participant, so the inline fast path needs no handoff),
//! 3. removes the job from the queue and blocks until every pool worker
//!    that joined the job has left it.
//!
//! Ordering is reconstructed by the caller (outputs are tagged with their
//! morsel index and sorted), so which thread runs which morsel — and how
//! many workers actually wake in time to participate — cannot affect the
//! result: output stays bit-identical at any worker count.
//!
//! # Why the borrowed closure is sound
//!
//! Pool workers are `'static` threads, but `task` borrows the submitting
//! caller's stack frame. The job stores a lifetime-erased raw pointer to
//! the closure ([`RawTask`]); the protocol makes that sound:
//!
//! * a worker may reach the pointer only by taking the job from the queue,
//!   and it increments the job's `active` count **under the queue lock**
//!   before first dereferencing it;
//! * before returning (even on panic — step 3 runs in a drop guard), the
//!   caller removes the job from the queue and then waits under the same
//!   lock until `active == 0`.
//!
//! So no worker can adopt the job after the caller's removal, and the
//! caller cannot return while any worker still holds the pointer: the
//! closure strictly outlives every dereference.
//!
//! # Panic containment
//!
//! Each participant's claim loop runs under `catch_unwind`. A panicking
//! morsel poisons only its own phase: the first payload is parked in the
//! job, the surviving participants drain the remaining morsels, and the
//! caller re-raises the payload after the job quiesces — the queue, the
//! workers, and other sessions' jobs are untouched.
//!
//! # Placement scaffolding
//!
//! Worker ids are stable for the pool's lifetime (assigned at spawn, never
//! reused), each participant's claim loop prefers the index segment that
//! thread last touched (locality hint now, NUMA-ready later), and
//! [`WorkerPool::new`] takes a core-pinning knob that best-effort pins
//! worker `i` to core `i % cores` via a raw `sched_setaffinity` syscall
//! (the offline container bans new dependencies, so no `libc`).

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;

/// The slot id [`WorkerPool::run_phase`] passes to the submitting caller's
/// own participation (pool workers get their stable worker id instead).
pub const CALLER_SLOT: usize = usize::MAX;

/// Most workers the shared fallback pool ([`WorkerPool::ambient`]) will
/// grow to. Contexts without an engine-owned pool (unit tests, benches,
/// direct `ExecContext` users) share it; capping keeps a stray
/// `parallelism=64` test from pinning 63 threads for the process lifetime.
const AMBIENT_MAX_WORKERS: usize = 16;

/// A phase's participant closure, lifetime-erased. See the module docs for
/// the protocol that keeps the pointer valid while workers hold it.
struct RawTask(*const (dyn Fn(usize) + Sync + 'static));

// SAFETY: the pointee is `Sync` (so `&`-calls from several threads are
// fine) and the submission protocol guarantees it outlives every
// dereference; the raw pointer itself is Plain Old Data.
unsafe impl Send for RawTask {}
unsafe impl Sync for RawTask {}

/// One submitted phase, shared between the queue, the participating
/// workers, and the submitting caller.
struct JobCore {
    task: RawTask,
    /// Most pool workers allowed to join (the caller participates on top).
    cap: usize,
    /// Pool workers that ever joined (enforces `cap`).
    joined: AtomicUsize,
    /// Pool workers currently inside `task`. Incremented/decremented under
    /// the queue lock — the caller's quiesce wait reads it there.
    active: AtomicUsize,
    /// A participant returned normally, i.e. found the claim space empty;
    /// the job no longer attracts workers.
    exhausted: AtomicBool,
    /// First panic payload raised by a pool worker's participation.
    // lock-order: 13 (pool job panic payload; leaf)
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

/// Queue state behind the pool mutex.
struct QueueState {
    /// Submitted jobs still accepting workers, oldest first.
    jobs: Vec<Arc<JobCore>>,
    /// Workers parked on `work_cv`.
    idle: usize,
    /// Set once by `Drop`; workers exit when no eligible job remains.
    shutdown: bool,
}

struct PoolShared {
    // lock-order: 12 (worker-pool job queue)
    queue: Mutex<QueueState>,
    /// Workers park here; submissions and shutdown notify it.
    work_cv: Condvar,
    /// Callers waiting for their job to quiesce park here.
    done_cv: Condvar,
    /// Workers spawned so far (mirrors `handles.len()`; lock-free read on
    /// the submit path).
    spawned: AtomicUsize,
    /// Workers that successfully pinned themselves to a core.
    pinned: AtomicUsize,
    /// Phases ever submitted (includes inline `cap == 0` runs).
    dispatched: AtomicU64,
}

impl PoolShared {
    fn lock_queue(&self) -> MutexGuard<'_, QueueState> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A long-lived pool of morsel workers. `Database` owns one sized
/// `parallelism - 1` (the submitting session thread is the remaining
/// participant); contexts without an engine share [`WorkerPool::ambient`].
/// Dropping the pool shuts the workers down and **joins** them — no
/// detached threads outlive the owner.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    // lock-order: 14 (pool worker join handles; leaf)
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Upper bound on workers (`new` spawns them eagerly; `ambient` grows
    /// on demand up to this).
    max_workers: usize,
    /// Builder knob: pin worker `i` to core `i % cores` at spawn.
    pin_workers: bool,
}

impl WorkerPool {
    /// A pool with exactly `workers` eagerly spawned workers (ids
    /// `0..workers`, stable for the pool's lifetime). With
    /// `pin_workers`, each worker best-effort pins itself to core
    /// `id % cores` at spawn — placement scaffolding for NUMA-aware
    /// scheduling; see [`WorkerPool::pinned_workers`] for how many pins
    /// actually took.
    pub fn new(workers: usize, pin_workers: bool) -> WorkerPool {
        clamp_malloc_arenas_for_single_core();
        let pool = WorkerPool::with_limit(workers, pin_workers);
        pool.ensure_workers(workers);
        pool
    }

    fn with_limit(max_workers: usize, pin_workers: bool) -> WorkerPool {
        WorkerPool {
            shared: Arc::new(PoolShared {
                queue: Mutex::new(QueueState {
                    jobs: Vec::new(),
                    idle: 0,
                    shutdown: false,
                }),
                work_cv: Condvar::new(),
                done_cv: Condvar::new(),
                spawned: AtomicUsize::new(0),
                pinned: AtomicUsize::new(0),
                dispatched: AtomicU64::new(0),
            }),
            handles: Mutex::new(Vec::new()),
            max_workers,
            pin_workers,
        }
    }

    /// The process-wide fallback pool for schedulers that were not handed
    /// an engine-owned pool (unit tests, benches, direct `ExecContext`
    /// construction). Grows on demand up to [`AMBIENT_MAX_WORKERS`] and
    /// lives for the process — it is never dropped, so its workers are the
    /// one intentional exception to the joined-on-drop rule.
    pub fn ambient() -> &'static WorkerPool {
        static AMBIENT: OnceLock<WorkerPool> = OnceLock::new();
        AMBIENT.get_or_init(|| WorkerPool::with_limit(AMBIENT_MAX_WORKERS, false))
    }

    /// Workers spawned so far (equals the constructor count for
    /// [`WorkerPool::new`] pools; grows on demand for the ambient pool).
    pub fn worker_count(&self) -> usize {
        self.shared.spawned.load(Ordering::Acquire)
    }

    /// Upper bound on workers this pool will ever spawn.
    pub fn max_workers(&self) -> usize {
        self.max_workers
    }

    /// Whether the core-pinning knob is on.
    pub fn pins_workers(&self) -> bool {
        self.pin_workers
    }

    /// Workers whose `sched_setaffinity` pin succeeded (0 unless the
    /// pinning knob is on; best-effort — a sandbox may reject the syscall).
    pub fn pinned_workers(&self) -> usize {
        self.shared.pinned.load(Ordering::Relaxed)
    }

    /// Phases ever submitted to this pool (inline `parallelism <= 1` runs
    /// bypass the pool and are not counted; `cap == 0` submissions are).
    pub fn jobs_dispatched(&self) -> u64 {
        self.shared.dispatched.load(Ordering::Relaxed)
    }

    /// Assert the pool has no queued or in-flight jobs — every submitted
    /// phase has quiesced. The `analysis`-feature quiesce checks call this
    /// alongside the cache pin-leak detectors; it holds whenever no
    /// `run_phase` call is live, because submission removes the job and
    /// waits out its participants before returning.
    pub fn assert_quiesced(&self) {
        let q = self.shared.lock_queue();
        assert!(
            q.jobs.is_empty(),
            "worker pool not quiesced: {} job(s) still queued",
            q.jobs.len()
        );
    }

    /// Spawn workers up to `min(wanted, max_workers)`. Worker ids are
    /// assigned monotonically and never reused. A failed OS spawn degrades
    /// to a smaller pool instead of failing the phase.
    fn ensure_workers(&self, wanted: usize) {
        let wanted = wanted.min(self.max_workers);
        if self.shared.spawned.load(Ordering::Acquire) >= wanted {
            return;
        }
        // Also covers the ambient pool, which grows here on demand
        // without passing through `WorkerPool::new`.
        clamp_malloc_arenas_for_single_core();
        let mut handles = self.handles.lock().unwrap_or_else(PoisonError::into_inner);
        while handles.len() < wanted {
            let id = handles.len();
            let shared = Arc::clone(&self.shared);
            let pin_to = self.pin_workers.then(|| {
                let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
                id % cores
            });
            let builder = std::thread::Builder::new().name(format!("hs-worker-{id}"));
            match builder.spawn(move || worker_main(shared, id, pin_to)) {
                Ok(h) => handles.push(h),
                Err(_) => break, // thread exhaustion: run with fewer workers
            }
        }
        self.shared.spawned.store(handles.len(), Ordering::Release);
    }

    /// Run one phase: enqueue `task` for up to `pool_workers_wanted` pool
    /// workers, participate on the calling thread, and return once every
    /// participant has left the closure. Panics from any participant are
    /// re-raised here with their original payload (caller's own first)
    /// after the job quiesces.
    pub(crate) fn run_phase(&self, pool_workers_wanted: usize, task: &(dyn Fn(usize) + Sync)) {
        self.shared.dispatched.fetch_add(1, Ordering::Relaxed);
        let cap = pool_workers_wanted.min(self.max_workers);
        if cap == 0 {
            // No pool workers configured (serial engine): the phase is the
            // caller's claim loop alone.
            task(CALLER_SLOT);
            return;
        }
        self.ensure_workers(cap);
        let raw: *const (dyn Fn(usize) + Sync) = task;
        // SAFETY: lifetime erasure only — the vtable and data pointer are
        // unchanged. The submission protocol (module docs) guarantees the
        // closure outlives every dereference: the drop guard below removes
        // the job and waits for `active == 0` before this frame can die.
        let raw = unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync),
                *const (dyn Fn(usize) + Sync + 'static),
            >(raw)
        };
        let job = Arc::new(JobCore {
            task: RawTask(raw),
            cap,
            joined: AtomicUsize::new(0),
            active: AtomicUsize::new(0),
            exhausted: AtomicBool::new(false),
            panic: Mutex::new(None),
        });
        {
            let mut q = self.shared.lock_queue();
            q.jobs.push(Arc::clone(&job));
            // Wake at most `cap` parked workers; busy workers pick the job
            // up from the queue when they finish their current one.
            for _ in 0..cap.min(q.idle) {
                self.shared.work_cv.notify_one();
            }
        }
        let guard = PhaseGuard {
            shared: &self.shared,
            job: &job,
        };
        // The caller is a participant too — the phase makes progress even
        // if every worker is busy with other sessions' jobs.
        let caller_outcome = catch_unwind(AssertUnwindSafe(|| task(CALLER_SLOT)));
        // Retire the job and wait out straggler workers (also runs on the
        // unwind path if the catch above ever stops covering it).
        drop(guard);
        let worker_panic = job
            .panic
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Err(payload) = caller_outcome {
            resume_unwind(payload);
        }
        if let Some(payload) = worker_panic {
            resume_unwind(payload);
        }
    }
}

/// Removes the job from the queue and waits until no worker is inside it —
/// the step that makes the borrowed-closure protocol sound, so it runs in
/// a `Drop` impl and survives caller panics.
struct PhaseGuard<'a> {
    shared: &'a PoolShared,
    job: &'a Arc<JobCore>,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        let mut q = self.shared.lock_queue();
        q.jobs.retain(|j| !Arc::ptr_eq(j, self.job));
        // `active` only changes under the queue lock, so this cannot miss
        // a decrement-then-notify.
        while self.job.active.load(Ordering::Relaxed) > 0 {
            q = self
                .shared
                .done_cv
                .wait(q)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

fn worker_main(shared: Arc<PoolShared>, id: usize, pin_to: Option<usize>) {
    if let Some(cpu) = pin_to {
        if pin_current_thread(cpu) {
            shared.pinned.fetch_add(1, Ordering::Relaxed);
        }
    }
    let mut q = shared.lock_queue();
    loop {
        let job = q
            .jobs
            .iter()
            .find(|j| {
                !j.exhausted.load(Ordering::Relaxed) && j.joined.load(Ordering::Relaxed) < j.cap
            })
            .cloned();
        match job {
            Some(job) => {
                job.joined.fetch_add(1, Ordering::Relaxed);
                // Under the queue lock: the submitter's removal + quiesce
                // check runs under the same lock, so it either sees this
                // increment or has already made the job unreachable.
                job.active.fetch_add(1, Ordering::Relaxed);
                drop(q);
                // SAFETY: `active > 0` pins the closure (module docs) —
                // the submitting frame cannot return until we decrement.
                let task = unsafe { &*job.task.0 };
                let outcome = catch_unwind(AssertUnwindSafe(|| task(id)));
                q = shared.lock_queue();
                match outcome {
                    Ok(()) => {
                        // A normal return means the claim space is drained;
                        // stop attracting workers and retire the entry (the
                        // submitter's guard also removes it — whichever
                        // runs first wins).
                        job.exhausted.store(true, Ordering::Relaxed);
                        q.jobs.retain(|j| !Arc::ptr_eq(j, &job));
                    }
                    Err(payload) => {
                        // Park the first payload for the submitter; other
                        // participants keep draining the phase.
                        let mut slot = job.panic.lock().unwrap_or_else(PoisonError::into_inner);
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                    }
                }
                job.active.fetch_sub(1, Ordering::Relaxed);
                shared.done_cv.notify_all();
            }
            None => {
                if q.shutdown {
                    return;
                }
                q.idle += 1;
                q = shared
                    .work_cv
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
                q.idle -= 1;
            }
        }
    }
}

impl Drop for WorkerPool {
    /// Shut down and **join** every worker: after drop returns, no pool
    /// thread survives. Jobs still queued (impossible through the public
    /// API — submission outlives its job) would be drained first, since
    /// workers prefer work over the shutdown flag.
    fn drop(&mut self) {
        {
            let mut q = self.shared.lock_queue();
            q.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        let mut handles = self.handles.lock().unwrap_or_else(PoisonError::into_inner);
        for h in handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Best-effort: pin the calling thread to `cpu`. Raw `sched_setaffinity`
/// syscall — the offline container has no `libc` crate, and the pinning
/// knob must not grow a dependency. Returns whether the kernel accepted
/// the mask (a seccomp sandbox may reject it; callers treat `false` as
/// "run unpinned").
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
fn pin_current_thread(cpu: usize) -> bool {
    // A fixed 1024-bit mask, matching glibc's default cpu_set_t width.
    let mut mask = [0u64; 16];
    mask[(cpu / 64) % mask.len()] |= 1u64 << (cpu % 64);
    #[cfg(target_arch = "x86_64")]
    const SYS_SCHED_SETAFFINITY: usize = 203;
    #[cfg(target_arch = "aarch64")]
    const SYS_SCHED_SETAFFINITY: usize = 122;
    let ret: isize;
    // SAFETY: sched_setaffinity(0, len, mask) reads `len` bytes from
    // `mask` and affects only the calling thread's scheduling; no memory
    // is written and no Rust invariant is involved.
    unsafe {
        #[cfg(target_arch = "x86_64")]
        std::arch::asm!(
            "syscall",
            inlateout("rax") SYS_SCHED_SETAFFINITY => ret,
            in("rdi") 0usize,
            in("rsi") std::mem::size_of_val(&mask),
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack, readonly),
        );
        #[cfg(target_arch = "aarch64")]
        std::arch::asm!(
            "svc 0",
            in("x8") SYS_SCHED_SETAFFINITY,
            inlateout("x0") 0usize => ret,
            in("x1") std::mem::size_of_val(&mask),
            in("x2") mask.as_ptr(),
            options(nostack, readonly),
        );
    }
    ret == 0
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
fn pin_current_thread(_cpu: usize) -> bool {
    false
}

/// On a **single-core** host, clamp glibc to one malloc arena
/// (best-effort, GNU libc only; a no-op everywhere else).
///
/// glibc gives each thread its own malloc arena on first contention, so
/// pool workers allocate phase output (rows, morsel buffers) from worker
/// arenas that the submitting thread later frees into — and past the tiny
/// per-thread cache, every such free takes the foreign arena's lock. On
/// the Fig. 9 mix that cross-arena tax measured ~15% of total wall-clock
/// on a 1-core container, dwarfing the scheduler's own overhead. With one
/// core, extra arenas can never pay for themselves — two threads never
/// run concurrently, so arena-level contention the extra arenas would
/// relieve cannot occur — which makes one arena strictly better there.
/// Multi-core hosts keep glibc's default, where per-thread arenas do
/// relieve real contention.
///
/// Runs once per process, before the first worker spawns, so worker
/// threads never trigger creation of an arena past the clamp.
#[cfg(all(target_os = "linux", target_env = "gnu"))]
fn clamp_malloc_arenas_for_single_core() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let single_core = std::thread::available_parallelism().is_ok_and(|n| n.get() == 1);
        if !single_core {
            return;
        }
        const M_ARENA_MAX: i32 = -8;
        extern "C" {
            fn mallopt(param: i32, value: i32) -> i32;
        }
        // SAFETY: `mallopt` is a thread-safe glibc tuning call with no
        // pointer arguments; failure only leaves the default arena limit.
        unsafe { mallopt(M_ARENA_MAX, 1) };
    });
}

#[cfg(not(all(target_os = "linux", target_env = "gnu")))]
fn clamp_malloc_arenas_for_single_core() {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    /// Count every participant call and which indices ran.
    fn counting_task<'a>(
        next: &'a AtomicUsize,
        count: usize,
        hits: &'a AtomicU32,
    ) -> impl Fn(usize) + Sync + 'a {
        move |_slot| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= count {
                return;
            }
            hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn phase_runs_every_index_exactly_once() {
        let pool = WorkerPool::new(3, false);
        for _ in 0..50 {
            let next = AtomicUsize::new(0);
            let hits = AtomicU32::new(0);
            pool.run_phase(3, &counting_task(&next, 100, &hits));
            assert_eq!(hits.load(Ordering::Relaxed), 100);
        }
        pool.assert_quiesced();
        assert_eq!(pool.worker_count(), 3);
    }

    #[test]
    fn zero_worker_pool_runs_inline() {
        let pool = WorkerPool::new(0, false);
        let next = AtomicUsize::new(0);
        let hits = AtomicU32::new(0);
        pool.run_phase(4, &counting_task(&next, 10, &hits));
        assert_eq!(hits.load(Ordering::Relaxed), 10);
        assert_eq!(pool.worker_count(), 0);
    }

    #[test]
    fn panicking_phase_poisons_only_itself() {
        let pool = WorkerPool::new(2, false);
        let boom = catch_unwind(AssertUnwindSafe(|| {
            let next = AtomicUsize::new(0);
            pool.run_phase(2, &|_slot| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= 8 {
                    return;
                }
                if i == 3 {
                    panic!("boom");
                }
            });
        }));
        let payload = boom.expect_err("panic must propagate to the submitter");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"boom"));
        // The pool survives: the queue is clean and the workers serve the
        // next phase.
        pool.assert_quiesced();
        let next = AtomicUsize::new(0);
        let hits = AtomicU32::new(0);
        pool.run_phase(2, &counting_task(&next, 64, &hits));
        assert_eq!(hits.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn drop_joins_all_workers() {
        // Deterministic from the pool's side: Drop joins the handles, so
        // returning at all proves no worker outlives the pool.
        let pool = WorkerPool::new(4, false);
        let next = AtomicUsize::new(0);
        let hits = AtomicU32::new(0);
        pool.run_phase(4, &counting_task(&next, 32, &hits));
        drop(pool);
    }

    #[test]
    fn pinning_knob_records_intent_and_still_computes() {
        let pool = WorkerPool::new(2, true);
        assert!(pool.pins_workers());
        // Best-effort: the sandbox may refuse the syscall, but pinned
        // workers can never exceed spawned workers…
        assert!(pool.pinned_workers() <= pool.worker_count());
        // …and pinned or not, phases still drain.
        let next = AtomicUsize::new(0);
        let hits = AtomicU32::new(0);
        pool.run_phase(2, &counting_task(&next, 100, &hits));
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn concurrent_submitters_share_one_pool() {
        let pool = WorkerPool::new(3, false);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..25 {
                        let next = AtomicUsize::new(0);
                        let hits = AtomicU32::new(0);
                        pool.run_phase(3, &counting_task(&next, 64, &hits));
                        assert_eq!(hits.load(Ordering::Relaxed), 64);
                    }
                });
            }
        });
        pool.assert_quiesced();
        assert_eq!(pool.worker_count(), 3, "no per-phase spawning");
    }
}
