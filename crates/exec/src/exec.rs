//! The morsel-parallel plan interpreter.
//!
//! Each query runs on its own thread against a shared [`HtManager`]: the
//! interpreter holds no cache lock during execution. Reused tables are
//! [`CheckedOut`] RAII guards — read-only reuse probes a shared `Arc`
//! snapshot, mutating reuse copies-on-write and publishes at check-in, and
//! any error path (or panic) releases the guard instead of stranding the
//! cached table.
//!
//! Within one query, the hot loops — base-table scan filtering, hash-join
//! probing, and the post-filter pass over reused tables — are split into
//! row-range morsels and fanned out over [`ExecContext::parallelism`]
//! workers (see [`crate::parallel`]). Output is concatenated in morsel
//! order, so results are bit-identical to the serial interpreter
//! (`parallelism = 1`). Fresh *builds* fan out too, but partitioned by
//! bucket / key rather than by morsel: insertion order defines the
//! collision-chain order that probe output (and the cached table's layout)
//! depends on, so workers compute disjoint partitions of the serial chain
//! structure and a serial stitch reproduces it exactly — parallel-built
//! tables are bit-identical to serially built ones, and publish into the
//! reuse cache with identical fingerprints and footprints. Mutating-reuse
//! delta inserts stay serial (they extend existing chain history); the cost
//! model prices both regimes.

use std::collections::HashMap;
use std::ops::Bound;
use std::sync::Arc;

use hashstash_types::{f64_order_key, DataType, HsError, HtId, Result, Row, Schema, Value};

use hashstash_cache::{AggPayload, CheckedOut, HtManager, StoredHt, TaggedRow, TenantId};
use hashstash_hashtable::ExtendibleHashTable;
use hashstash_plan::PredBox;
use hashstash_storage::{Catalog, Column, RangeKernel, Table};

use crate::parallel::{
    build_grouped_partitioned, build_multimap_partitioned, collect_morsels, default_parallelism,
    morsel_count, Scheduler, MIN_PARALLEL_BUILD_ROWS,
};
use crate::plan::{OutputAgg, PhysicalPlan, ReuseSpec, ScanSpec};
use crate::pool::WorkerPool;
use crate::temp::TempTableCache;
use crate::vector::{self, ColumnarBatch, KeyKernel};

/// Operation counters collected during execution. These are the observables
/// the paper's cost models predict (tuples inserted / probed / updated,
/// paper §3.2), so tests can validate estimator accuracy directly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecMetrics {
    /// Base-table tuples visited by scans (full or delta).
    pub rows_scanned: u64,
    /// Tuples located through a secondary index instead of a full scan.
    pub index_rows: u64,
    /// Hash-table inserts (join build + aggregate first-of-group).
    pub ht_inserts: u64,
    /// Hash-table probe lookups.
    pub ht_probes: u64,
    /// Aggregate in-place updates.
    pub ht_updates: u64,
    /// Rows emitted by the plan root.
    pub rows_output: u64,
    /// Rows copied into temp tables (materialization-based baseline).
    pub materialized_rows: u64,
    /// Cached hash tables reused.
    pub reused_tables: u64,
    /// Hash tables built from scratch.
    pub built_tables: u64,
    /// Selection-vector batches processed by the columnar paths (one per
    /// morsel of a vectorized scan, filter, probe, or aggregate fold).
    /// Always a pure function of the input sizes — never of the worker
    /// count — so parallel runs stay metric-identical to serial ones.
    pub batches_processed: u64,
    /// Rows removed by vectorized selection (scan kernels + columnar
    /// filter refinement); the row interpreter counts nothing here.
    pub rows_filtered_vectorized: u64,
}

impl ExecMetrics {
    /// Merge counters from another execution.
    pub fn absorb(&mut self, other: &ExecMetrics) {
        self.rows_scanned += other.rows_scanned;
        self.index_rows += other.index_rows;
        self.ht_inserts += other.ht_inserts;
        self.ht_probes += other.ht_probes;
        self.ht_updates += other.ht_updates;
        self.rows_output += other.rows_output;
        self.materialized_rows += other.materialized_rows;
        self.reused_tables += other.reused_tables;
        self.built_tables += other.built_tables;
        self.batches_processed += other.batches_processed;
        self.rows_filtered_vectorized += other.rows_filtered_vectorized;
    }

    /// The counters with the same meaning under both execution regimes:
    /// everything except the two vectorization-only counters (which are
    /// definitionally zero on the row interpreter). Differential tests
    /// compare `semantic()` across `HS_VECTORIZE` settings; within one
    /// regime the full struct is still worker-count-invariant.
    pub fn semantic(&self) -> ExecMetrics {
        ExecMetrics {
            batches_processed: 0,
            rows_filtered_vectorized: 0,
            ..*self
        }
    }
}

/// Execution context threading the catalog, the Hash Table Manager, the
/// temp-table cache (materialization baseline) and metrics through the tree.
///
/// Both caches are sharded facades over the same generic reuse store, so
/// both are shared by plain reference — no mutex anywhere on the executor's
/// path.
pub struct ExecContext<'a> {
    pub catalog: &'a Catalog,
    pub htm: &'a HtManager,
    pub temps: &'a TempTableCache,
    pub metrics: ExecMetrics,
    /// Worker threads for morsel-parallel operator loops. `1` is the serial
    /// interpreter; any value produces bit-identical output (morsel-order
    /// concatenation), so this is purely a throughput knob.
    pub parallelism: usize,
    /// Whether scans, filters, probes and aggregate folds run over columnar
    /// selection vectors ([`crate::vector`]) instead of materialized rows.
    /// Output, metrics (`semantic()`), and published tables are identical
    /// either way; the row interpreter stays available as the differential
    /// oracle (`HS_VECTORIZE=0`).
    pub vectorize: bool,
    /// The persistent worker pool parallel phases borrow workers from.
    /// Engines pass their `Database`-owned pool (shared across sessions);
    /// `None` falls back to the process-wide ambient pool.
    pool: Option<&'a WorkerPool>,
    /// The tenant this execution publishes on behalf of: every hash table
    /// or temp table materialized by the plan is owned by this tenant in
    /// the reuse caches ([`TenantId::DEFAULT`] for single-tenant
    /// embedders).
    pub tenant: TenantId,
    /// Checkout guards acquired by the session *before* execution started
    /// (so a table the optimizer picked cannot be evicted in between).
    /// Operators consume them by id; reuse specs without a pre-acquired
    /// guard fall back to checking out directly.
    checkouts: HashMap<HtId, CheckedOut<'a>>,
}

impl<'a> ExecContext<'a> {
    /// Fresh context. Parallelism defaults to the `PARALLELISM` environment
    /// variable (or `1` — the serial interpreter) so an entire test suite
    /// can be re-run N-way; engines override it explicitly via
    /// [`ExecContext::with_parallelism`].
    pub fn new(catalog: &'a Catalog, htm: &'a HtManager, temps: &'a TempTableCache) -> Self {
        ExecContext {
            catalog,
            htm,
            temps,
            metrics: ExecMetrics::default(),
            parallelism: default_parallelism(),
            vectorize: crate::vector::default_vectorize(),
            pool: None,
            tenant: TenantId::DEFAULT,
            checkouts: HashMap::new(),
        }
    }

    /// Set the morsel-parallel worker count (`1` = serial).
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism.max(1);
        self
    }

    /// Enable or disable the columnar selection-vector paths (`true` by
    /// default, subject to `HS_VECTORIZE`).
    pub fn with_vectorize(mut self, vectorize: bool) -> Self {
        self.vectorize = vectorize;
        self
    }

    /// Run parallel phases on `pool` instead of the ambient fallback.
    /// Engines pass their `Database`-owned pool so every session of the
    /// database shares one set of workers.
    pub fn with_pool(mut self, pool: &'a WorkerPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Attribute everything this execution publishes to `tenant`.
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// The scheduler parallel phases run under: this context's worker
    /// count, on its pool.
    pub fn sched(&self) -> Scheduler<'a> {
        Scheduler {
            parallelism: self.parallelism,
            pool: self.pool,
        }
    }

    /// Hand the context a checkout guard acquired ahead of execution.
    pub fn adopt_checkout(&mut self, co: CheckedOut<'a>) {
        self.checkouts.insert(co.id, co);
    }

    /// Acquire the guard for a reuse directive: a pre-acquired guard if the
    /// session pinned one of the matching mode, otherwise a direct
    /// (validated) checkout.
    fn checkout_for(&mut self, spec: &ReuseSpec) -> Result<CheckedOut<'a>> {
        if let Some(co) = self.checkouts.remove(&spec.id) {
            if co.is_exclusive() == spec.case.needs_delta() {
                return Ok(co);
            }
            // Wrong mode: keep the pre-acquired guard for a later operator
            // and fall through to a direct checkout.
            self.checkouts.insert(spec.id, co);
        }
        checkout_spec(self.htm, spec)
    }
}

/// Acquire checkout guards for every reuse directive in a plan, in plan
/// order. Sessions call this between optimization and execution: it is the
/// only moment a chosen candidate can turn out to be gone (evicted or
/// write-locked by a concurrent session), reported as a `CacheError` the
/// caller handles by re-planning.
pub fn acquire_plan_checkouts<'a>(
    plan: &PhysicalPlan,
    htm: &'a HtManager,
) -> Result<Vec<CheckedOut<'a>>> {
    let specs = plan.reuse_specs();
    // The same table may legitimately serve two *read-only* operators (one
    // guard suffices; operators past the first fall back to a direct shared
    // checkout). A duplicate involving mutation cannot work — the first
    // operator's check-in widens the lineage out from under the second's
    // plan — so fail fast here (→ re-plan) instead of mid-execution.
    for (i, a) in specs.iter().enumerate() {
        for b in &specs[..i] {
            if a.id == b.id && (a.case.needs_delta() || b.case.needs_delta()) {
                return Err(HsError::CacheError(format!(
                    "{} reused twice in one plan with mutation",
                    a.id
                )));
            }
        }
    }
    let mut out = Vec::new();
    for spec in specs {
        if out.iter().any(|co: &CheckedOut<'_>| co.id == spec.id) {
            continue;
        }
        out.push(checkout_spec(htm, spec)?);
    }
    Ok(out)
}

/// Check out the table a reuse directive names — shared for read-only
/// cases, exclusive when the case mutates — and validate its lineage
/// against what the optimizer planned. A concurrent session may have
/// widened the table's region (partial reuse) in the window since planning:
///
/// * a **mutating** reuse cannot survive that — its delta scan was computed
///   against the planned region — so the widening surfaces as a
///   `CacheError` and the session re-plans;
/// * a **read-only** (exact/subsuming) reuse still has everything it needs
///   as long as the widened region covers the request. The checkout is
///   accepted and the executor compensates with a recovery post-filter
///   ([`widened_recovery_filter`]) instead of throwing the plan away.
fn checkout_spec<'m>(htm: &'m HtManager, spec: &ReuseSpec) -> Result<CheckedOut<'m>> {
    if spec.case.needs_delta() {
        htm.checkout_mut_expecting(spec.id, &spec.cached_region)
    } else {
        htm.checkout_covering(spec.id, &spec.request_region)
    }
}

/// Recovery post-filter for a read-only reuse whose cached table was
/// widened between planning and checkout: the planned exact (or subsuming)
/// classification is re-classified **in place** as a subsuming match
/// against the widened lineage, by filtering stored tuples down to the
/// request region. Sound because box membership is fully determined by the
/// box's constrained attributes: a tuple passing every request constraint
/// lies in the request region, which the planned (narrower) lineage already
/// covered — so no widening-delta tuple can slip through, and completeness
/// follows from the covering check at checkout.
///
/// Returns `None` when the lineage is unchanged (the common case). Fails
/// with a `CacheError` — handled by the session as an ordinary re-plan —
/// when the request region is not a single box or constrains an attribute
/// the stored payload lacks (then no in-place filter can compensate).
fn widened_recovery_filter(spec: &ReuseSpec, co: &CheckedOut<'_>) -> Result<Option<PredBox>> {
    if co.fingerprint.region.set_eq(&spec.cached_region) {
        return Ok(None);
    }
    let boxes = spec.request_region.boxes();
    let [request_box] = boxes else {
        return Err(HsError::CacheError(format!(
            "{} widened since planning and the request region is not a single box",
            spec.id
        )));
    };
    for (attr, _) in request_box.constrained() {
        if co.schema.index_of(attr).is_err() {
            return Err(HsError::CacheError(format!(
                "{} widened since planning and payload lacks {attr} for recovery",
                spec.id
            )));
        }
    }
    Ok(Some(request_box.clone()))
}

/// Execute a plan, returning its output schema and rows.
pub fn execute(plan: &PhysicalPlan, ctx: &mut ExecContext<'_>) -> Result<(Schema, Vec<Row>)> {
    let (schema, rows) = run(plan, ctx)?;
    ctx.metrics.rows_output += rows.len() as u64;
    Ok((schema, rows))
}

fn run(plan: &PhysicalPlan, ctx: &mut ExecContext<'_>) -> Result<(Schema, Vec<Row>)> {
    match plan {
        PhysicalPlan::Scan(_) | PhysicalPlan::Filter { .. } => {
            let (schema, pipe) = run_batch(plan, ctx)?;
            let rows = materialize_pipe(pipe, ctx);
            Ok((schema, rows))
        }
        PhysicalPlan::Materialize { input, fingerprint } => {
            let (schema, rows) = run(input, ctx)?;
            // The baseline's materialization cost: one extra copy of every
            // tuple out of the pipeline into a temp table.
            ctx.metrics.materialized_rows += rows.len() as u64;
            ctx.temps.publish_as(
                ctx.tenant,
                fingerprint.clone(),
                schema.clone(),
                rows.clone(),
            );
            Ok((schema, rows))
        }
        PhysicalPlan::TempScan {
            id,
            schema: _,
            post_filter,
        } => {
            // `read` hands back an `Arc` snapshot of the cached rows — no
            // per-reuse copy of the whole table. Only the rows that survive
            // the post-filter are cloned into the pipeline (the unfiltered
            // exact-reuse path still pays the re-read the baseline is
            // priced for).
            let (schema, rows) = ctx.temps.read(*id)?;
            ctx.metrics.rows_scanned += rows.len() as u64;
            let rows = match post_filter {
                Some(pf) => {
                    let evaluator = BoxEval::bind(pf, &schema)?;
                    rows.iter().filter(|r| evaluator.eval(r)).cloned().collect()
                }
                None => rows.rows().to_vec(),
            };
            Ok((schema, rows))
        }
        PhysicalPlan::Union { inputs } => {
            let mut schema = None;
            let mut rows = Vec::new();
            for i in inputs {
                let (s, mut r) = run(i, ctx)?;
                if let Some(prev) = &schema {
                    if prev != &s {
                        return Err(HsError::ExecError("union schema mismatch".into()));
                    }
                } else {
                    schema = Some(s);
                }
                rows.append(&mut r);
            }
            let schema = schema.ok_or_else(|| HsError::ExecError("empty union".into()))?;
            Ok((schema, rows))
        }
        PhysicalPlan::Project { input, attrs } => {
            let (schema, rows) = run(input, ctx)?;
            let mut indices = Vec::with_capacity(attrs.len());
            for a in attrs {
                indices.push(schema.index_of(a)?);
            }
            let names: Vec<&str> = attrs.iter().map(|a| a.as_ref()).collect();
            let out_schema = schema.project(&names)?;
            let rows = rows.into_iter().map(|r| r.project(&indices)).collect();
            Ok((out_schema, rows))
        }
        PhysicalPlan::HashJoin {
            probe,
            build,
            probe_key,
            build_key,
            reuse,
            publish,
        } => run_hash_join(ctx, probe, build, probe_key, build_key, reuse, publish),
        PhysicalPlan::HashAggregate {
            input,
            group_by,
            aggs,
            output_aggs,
            reuse,
            publish,
            post_group_by,
        } => run_hash_agg(
            ctx,
            input,
            group_by,
            aggs,
            output_aggs,
            reuse,
            publish,
            post_group_by,
        ),
    }
}

/// A predicate box bound to row indices for fast per-row evaluation.
struct BoxEval {
    checks: Vec<(usize, hashstash_plan::Interval)>,
}

impl BoxEval {
    fn bind(pred: &PredBox, schema: &Schema) -> Result<Self> {
        let mut checks = Vec::new();
        for (attr, iv) in pred.constrained() {
            checks.push((schema.index_of(attr)?, iv.clone()));
        }
        Ok(BoxEval { checks })
    }

    fn eval(&self, row: &Row) -> bool {
        self.checks
            .iter()
            .all(|(idx, iv)| iv.contains_value(row.get(*idx)))
    }
}

// ---------------------------------------------------------------------------
// Columnar batches
// ---------------------------------------------------------------------------

/// Data flowing up from a sub-plan: materialized rows, or — on the
/// vectorized scan → filter spine — a columnar selection-vector batch that
/// consumers (probe, aggregate fold) read in place and edges materialize.
enum Pipe {
    Rows(Vec<Row>),
    Columnar(ColumnarBatch),
}

impl Pipe {
    /// Number of tuples the pipe carries.
    fn len(&self) -> usize {
        match self {
            Pipe::Rows(rows) => rows.len(),
            Pipe::Columnar(batch) => batch.sel.len(),
        }
    }
}

/// Run a sub-plan keeping its output columnar where the operator chain
/// allows: scans without an index access path whose constraints all lower
/// to [`RangeKernel`]s, and filters over such scans. Every other operator
/// (and every lowering failure) produces materialized rows exactly as the
/// row interpreter does.
fn run_batch(plan: &PhysicalPlan, ctx: &mut ExecContext<'_>) -> Result<(Schema, Pipe)> {
    match plan {
        PhysicalPlan::Scan(spec) => run_scan_batch(spec, ctx),
        PhysicalPlan::Filter { input, predicate } => {
            let (schema, pipe) = run_batch(input, ctx)?;
            let mut batch = match pipe {
                Pipe::Columnar(batch) => batch,
                Pipe::Rows(rows) => {
                    let evaluator = BoxEval::bind(predicate, &schema)?;
                    let rows = rows.into_iter().filter(|r| evaluator.eval(r)).collect();
                    return Ok((schema, Pipe::Rows(rows)));
                }
            };
            // Lower every constraint onto the batch's base columns; any
            // failure materializes and evaluates the whole predicate
            // row-at-a-time, exactly like the row interpreter.
            let mut lowered: Vec<(usize, RangeKernel)> = Vec::new();
            let mut lowerable = true;
            for (attr, iv) in predicate.constrained() {
                let col = batch.proj[schema.index_of(attr)?];
                match lower_check(iv, batch.table.column(col)) {
                    Some(kernel) => lowered.push((col, kernel)),
                    None => {
                        lowerable = false;
                        break;
                    }
                }
            }
            if !lowerable {
                let rows = materialize_pipe(Pipe::Columnar(batch), ctx);
                let evaluator = BoxEval::bind(predicate, &schema)?;
                let rows = rows.into_iter().filter(|r| evaluator.eval(r)).collect();
                return Ok((schema, Pipe::Rows(rows)));
            }
            for (col, kernel) in &lowered {
                ctx.metrics.batches_processed += morsel_count(batch.sel.len()) as u64;
                ctx.metrics.rows_filtered_vectorized += vector::refine_selection(
                    ctx.sched(),
                    &batch.table,
                    *col,
                    kernel,
                    &mut batch.sel,
                );
            }
            Ok((schema, Pipe::Columnar(batch)))
        }
        other => {
            let (schema, rows) = run(other, ctx)?;
            Ok((schema, Pipe::Rows(rows)))
        }
    }
}

/// Materialize a pipe into rows — the pipeline edge. Columnar batches turn
/// into projected rows morsel-parallel, in selection order, which is the
/// row interpreter's output order by construction.
fn materialize_pipe(pipe: Pipe, ctx: &mut ExecContext<'_>) -> Vec<Row> {
    match pipe {
        Pipe::Rows(rows) => rows,
        Pipe::Columnar(batch) => {
            let table = &batch.table;
            let proj = &batch.proj;
            let sel = &batch.sel;
            collect_morsels(ctx.sched(), sel.len(), |range| {
                sel[range]
                    .iter()
                    .map(|&rid| table.row_projected(rid as usize, proj))
                    .collect()
            })
        }
    }
}

// ---------------------------------------------------------------------------
// Scans
// ---------------------------------------------------------------------------

fn run_scan_batch(spec: &ScanSpec, ctx: &mut ExecContext<'_>) -> Result<(Schema, Pipe)> {
    let table = ctx.catalog.get(&spec.table)?;
    let qualified = table.qualified_schema();
    let proj_indices: Vec<usize> = if spec.projection.is_empty() {
        (0..qualified.len()).collect()
    } else {
        spec.projection
            .iter()
            .map(|a| qualified.index_of(a))
            .collect::<Result<Vec<_>>>()?
    };
    let out_schema = if spec.projection.is_empty() {
        qualified.clone()
    } else {
        let names: Vec<&str> = spec.projection.iter().map(|a| a.as_ref()).collect();
        qualified.project(&names)?
    };

    if spec.region.is_empty() {
        return Ok((out_schema, Pipe::Rows(Vec::new())));
    }
    let lowered = if ctx.vectorize {
        lower_region(&table, &qualified, spec)?
    } else {
        None
    };
    match lowered {
        Some(per_box) => {
            let mut sel: Vec<u32> = Vec::new();
            let n = table.row_count();
            for checks in &per_box {
                ctx.metrics.rows_scanned += n as u64;
                let mut box_sel = vector::select_rows(ctx.sched(), &table, checks, n);
                ctx.metrics.batches_processed += morsel_count(n) as u64;
                ctx.metrics.rows_filtered_vectorized += (n - box_sel.len()) as u64;
                sel.append(&mut box_sel);
            }
            Ok((
                out_schema,
                Pipe::Columnar(ColumnarBatch {
                    table,
                    proj: proj_indices,
                    sel,
                }),
            ))
        }
        None => {
            let mut rows = Vec::new();
            for pbox in spec.region.boxes() {
                scan_box(&table, &qualified, pbox, &proj_indices, ctx, &mut rows)?;
            }
            Ok((out_schema, Pipe::Rows(rows)))
        }
    }
}

/// One lowered check list per region box: `(column position, kernel)`.
type LoweredBoxes = Vec<Vec<(usize, RangeKernel)>>;

/// Lower every box of a scan's region onto per-column [`RangeKernel`]s.
/// Returns `None` — the whole scan keeps the row interpreter — when any box
/// would take the (metric-visible) index access path or carries a
/// constraint that cannot lower (cross-type bounds), so access-path choice
/// and metrics never depend on the vectorization setting.
fn lower_region(
    table: &Table,
    qualified: &Schema,
    spec: &ScanSpec,
) -> Result<Option<LoweredBoxes>> {
    let mut per_box = Vec::new();
    for pbox in spec.region.boxes() {
        let mut checks: Vec<(usize, hashstash_plan::Interval)> = Vec::new();
        for (attr, iv) in pbox.constrained() {
            checks.push((qualified.index_of(attr)?, iv.clone()));
        }
        if checks
            .iter()
            .any(|(col, iv)| table.has_index(*col) && !iv.is_all() && bounded_for_index(iv))
        {
            return Ok(None);
        }
        let mut lowered = Vec::with_capacity(checks.len());
        for (col, iv) in &checks {
            match lower_check(iv, table.column(*col)) {
                Some(kernel) => lowered.push((*col, kernel)),
                None => return Ok(None),
            }
        }
        per_box.push(lowered);
    }
    Ok(Some(per_box))
}

/// Lower one interval constraint onto a typed column as a [`RangeKernel`],
/// or `None` when a bound's type does not match the column (the row
/// interpreter's cross-type comparison semantics are preserved by falling
/// back). Discrete columns turn exclusive bounds into inclusive neighbours
/// (an overflowing neighbour means the interval is empty: `lo > hi`
/// matches nothing); floats compare through the order-preserving
/// [`f64_order_key`] mapping, so every float interval becomes an inclusive
/// `u64` range; dictionary strings evaluate the interval once per distinct
/// entry and reduce the predicate to a code-mask lookup.
fn lower_check(iv: &hashstash_plan::Interval, col: &Column) -> Option<RangeKernel> {
    const EMPTY: RangeKernel = RangeKernel::Int { lo: 1, hi: 0 };
    match col.data_type() {
        DataType::Int => {
            let lo = match iv.lo() {
                Bound::Unbounded => i64::MIN,
                Bound::Included(Value::Int(v)) => *v,
                Bound::Excluded(Value::Int(v)) => match v.checked_add(1) {
                    Some(x) => x,
                    None => return Some(EMPTY),
                },
                _ => return None,
            };
            let hi = match iv.hi() {
                Bound::Unbounded => i64::MAX,
                Bound::Included(Value::Int(v)) => *v,
                Bound::Excluded(Value::Int(v)) => match v.checked_sub(1) {
                    Some(x) => x,
                    None => return Some(EMPTY),
                },
                _ => return None,
            };
            Some(RangeKernel::Int { lo, hi })
        }
        DataType::Date => {
            let lo = match iv.lo() {
                Bound::Unbounded => i32::MIN,
                Bound::Included(Value::Date(v)) => *v,
                Bound::Excluded(Value::Date(v)) => match v.checked_add(1) {
                    Some(x) => x,
                    None => return Some(EMPTY),
                },
                _ => return None,
            };
            let hi = match iv.hi() {
                Bound::Unbounded => i32::MAX,
                Bound::Included(Value::Date(v)) => *v,
                Bound::Excluded(Value::Date(v)) => match v.checked_sub(1) {
                    Some(x) => x,
                    None => return Some(EMPTY),
                },
                _ => return None,
            };
            Some(RangeKernel::Date { lo, hi })
        }
        DataType::Float => {
            // `f64_order_key` is a monotone injection of the engine's F64
            // total order into u64, so exclusive bounds shift by one key
            // step. Canonical values never map to 0 or u64::MAX (the
            // extremes are -inf and canonical NaN), so the shifts cannot
            // wrap; the saturating guard is belt and braces.
            let lo = match iv.lo() {
                Bound::Unbounded => 0,
                Bound::Included(Value::Float(f)) => f64_order_key(f.0),
                Bound::Excluded(Value::Float(f)) => f64_order_key(f.0).saturating_add(1),
                _ => return None,
            };
            let hi = match iv.hi() {
                Bound::Unbounded => u64::MAX,
                Bound::Included(Value::Float(f)) => f64_order_key(f.0),
                Bound::Excluded(Value::Float(f)) => match f64_order_key(f.0).checked_sub(1) {
                    Some(x) => x,
                    None => return Some(EMPTY),
                },
                _ => return None,
            };
            Some(RangeKernel::Float { lo, hi })
        }
        DataType::Str => {
            let (dict, _) = col.dict_parts()?;
            // One boxed-comparison per *distinct* string, reusing the exact
            // interval semantics (including cross-type bounds) verbatim.
            let ok = dict
                .iter()
                .map(|s| iv.contains_value(&Value::Str(s.clone())))
                .collect();
            Some(RangeKernel::Dict { ok })
        }
    }
}

/// Scan one box of the region, using a secondary index when available. The
/// residual filter + projection loop is morsel-parallel over row ids (or
/// index hits); morsel-order concatenation keeps the output identical to a
/// serial scan.
fn scan_box(
    table: &Table,
    qualified: &Schema,
    pbox: &PredBox,
    proj: &[usize],
    ctx: &mut ExecContext<'_>,
    out: &mut Vec<Row>,
) -> Result<()> {
    // Bind all constraints to column indices.
    let mut checks: Vec<(usize, hashstash_plan::Interval)> = Vec::new();
    for (attr, iv) in pbox.constrained() {
        checks.push((qualified.index_of(attr)?, iv.clone()));
    }
    // Prefer an indexed, bounded attribute as the access path.
    let indexed = checks
        .iter()
        .position(|(col, iv)| table.has_index(*col) && !iv.is_all() && bounded_for_index(iv));
    match indexed {
        Some(pos) => {
            let (col, iv) = checks[pos].clone();
            let name = &table.schema().field_at(col).name;
            let index = table
                .index_on(name)
                .ok_or_else(|| HsError::ExecError(format!("index on {name} vanished")))?;
            let ids = index.range(as_lo_bound(iv.lo()), as_hi_bound(iv.hi()));
            ctx.metrics.index_rows += ids.len() as u64;
            ctx.metrics.rows_scanned += ids.len() as u64;
            let checks = &checks;
            let mut rows =
                collect_morsels(ctx.sched(), ids.len(), |range| {
                    let mut buf = Vec::new();
                    for &rid in &ids[range] {
                        let rid = rid as usize;
                        if checks.iter().enumerate().all(|(i, (c, v))| {
                            i == pos || v.contains_value(&table.column(*c).get(rid))
                        }) {
                            buf.push(table.row_projected(rid, proj));
                        }
                    }
                    buf
                });
            out.append(&mut rows);
        }
        None => {
            let n = table.row_count();
            ctx.metrics.rows_scanned += n as u64;
            let checks = &checks;
            let mut rows = collect_morsels(ctx.sched(), n, |range| {
                let mut buf = Vec::new();
                for rid in range {
                    if checks
                        .iter()
                        .all(|(c, v)| v.contains_value(&table.column(*c).get(rid)))
                    {
                        buf.push(table.row_projected(rid, proj));
                    }
                }
                buf
            });
            out.append(&mut rows);
        }
    }
    Ok(())
}

fn bounded_for_index(iv: &hashstash_plan::Interval) -> bool {
    !matches!((iv.lo(), iv.hi()), (Bound::Unbounded, Bound::Unbounded))
}

fn as_lo_bound(b: &Bound<Value>) -> Bound<&Value> {
    match b {
        Bound::Unbounded => Bound::Unbounded,
        Bound::Included(v) => Bound::Included(v),
        Bound::Excluded(v) => Bound::Excluded(v),
    }
}

fn as_hi_bound(b: &Bound<Value>) -> Bound<&Value> {
    as_lo_bound(b)
}

// ---------------------------------------------------------------------------
// Hash join
// ---------------------------------------------------------------------------

/// The build side of a hash join: either a freshly built local table or an
/// RAII guard over a reused cached table (shared snapshot for read-only
/// reuse, copy-on-write for delta insertion).
enum JoinBuild<'m> {
    Fresh(ExtendibleHashTable<TaggedRow>),
    Reused(CheckedOut<'m>),
    /// A mutating reuse that has already been checked back in: the writer
    /// pin is released and the probe phase reads this immutable snapshot.
    Snapshot(Arc<StoredHt>),
}

impl JoinBuild<'_> {
    fn probe_table(&self) -> &ExtendibleHashTable<TaggedRow> {
        let stored = match self {
            JoinBuild::Fresh(t) => return t,
            JoinBuild::Reused(co) => co.table(),
            JoinBuild::Snapshot(s) => s,
        };
        match stored {
            StoredHt::Join(t) => t,
            _ => unreachable!("kind verified at checkout"),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_hash_join(
    ctx: &mut ExecContext<'_>,
    probe: &PhysicalPlan,
    build: &Option<Box<PhysicalPlan>>,
    probe_key: &Arc<str>,
    build_key: &Arc<str>,
    reuse: &Option<crate::plan::ReuseSpec>,
    publish: &Option<hashstash_plan::HtFingerprint>,
) -> Result<(Schema, Vec<Row>)> {
    // --- Build phase -------------------------------------------------------
    let mut recovery_filter: Option<PredBox> = None;
    let (build_schema, mut source) = match reuse {
        Some(spec) => {
            let co = ctx.checkout_for(spec)?;
            ctx.metrics.reused_tables += 1;
            if !matches!(co.table(), StoredHt::Join(_)) {
                return Err(HsError::ExecError(format!(
                    "{} is not a join hash table",
                    spec.id
                )));
            }
            if !spec.case.needs_delta() {
                recovery_filter = widened_recovery_filter(spec, &co)?;
            }
            (co.schema.clone(), JoinBuild::Reused(co))
        }
        None => {
            let build_plan = build.as_ref().ok_or_else(|| {
                HsError::ExecError("hash join without build plan or reuse".into())
            })?;
            let schema = build_plan.schema(ctx.catalog)?;
            let ht = ExtendibleHashTable::new(schema.tuple_width());
            (schema, JoinBuild::Fresh(ht))
        }
    };
    let build_key_idx = build_schema.index_of(build_key)?;

    // Insert rows from the build sub-plan: all of them for a fresh table,
    // only the delta for partial/overlapping reuse (copy-on-write on the
    // checked-out handle).
    if let Some(build_plan) = build {
        if reuse.is_none() || reuse.as_ref().is_some_and(|r| r.case.needs_delta()) {
            let (bs, rows) = run(build_plan, ctx)?;
            if bs != build_schema {
                return Err(HsError::ExecError(format!(
                    "build schema mismatch: expected {build_schema:?}, got {bs:?}"
                )));
            }
            ctx.metrics.ht_inserts += rows.len() as u64;
            let target = match &mut source {
                JoinBuild::Fresh(t) => t,
                JoinBuild::Reused(co) => match co.table_mut()? {
                    StoredHt::Join(t) => t,
                    _ => unreachable!("kind verified at checkout"),
                },
                JoinBuild::Snapshot(_) => unreachable!("mutation precedes check-in"),
            };
            if reuse.is_none() && ctx.parallelism > 1 && rows.len() >= MIN_PARALLEL_BUILD_ROWS {
                // Partitioned parallel build of the fresh table: key
                // extraction fans out over morsels, chain construction over
                // bucket ranges; the stitched table is bit-identical to the
                // serial loop below (same chains, layout, and stats), so
                // probe output, fingerprints, and publish dedup are
                // unaffected by the worker count.
                let rows_ref = &rows;
                let keys: Vec<u64> = collect_morsels(ctx.sched(), rows.len(), |range| {
                    rows_ref[range]
                        .iter()
                        .map(|row| row.key64(&[build_key_idx]))
                        .collect()
                });
                let values: Vec<TaggedRow> = rows.into_iter().map(TaggedRow::untagged).collect();
                build_multimap_partitioned(ctx.sched(), target, keys, values);
            } else {
                // Serial build — also the only path for mutating-reuse
                // deltas, which extend a table with existing chain history.
                target.reserve(rows.len());
                for row in rows {
                    let key = row.key64(&[build_key_idx]);
                    target.insert(key, TaggedRow::untagged(row));
                }
            }
            if reuse.is_none() {
                ctx.metrics.built_tables += 1;
            }
        }
    } else if reuse.is_none() {
        return Err(HsError::ExecError(
            "hash join with neither build plan nor reuse".into(),
        ));
    }

    // A mutating reuse is complete once the delta is inserted: publish the
    // new version (widened lineage) immediately so the writer pin is not
    // held across the probe phase, and keep probing a cheap snapshot.
    if let Some(spec) = reuse {
        if spec.case.needs_delta() {
            source = match source {
                JoinBuild::Reused(co) => {
                    JoinBuild::Snapshot(co.checkin_widened(&spec.request_region)?)
                }
                other => other,
            };
        }
    }

    // --- Probe phase (read-only: no lock, shared with other sessions) ------
    let (probe_schema, probe_pipe) = run_batch(probe, ctx)?;
    let probe_key_idx = probe_schema.index_of(probe_key)?;
    // Planned post-filter (subsuming/overlapping reuse) plus the recovery
    // filter compensating for a concurrently widened cached table.
    let mut post_filters: Vec<BoxEval> = Vec::new();
    if let Some(pf) = reuse.as_ref().and_then(|r| r.post_filter.as_ref()) {
        post_filters.push(BoxEval::bind(pf, &build_schema)?);
    }
    if let Some(rf) = &recovery_filter {
        post_filters.push(BoxEval::bind(rf, &build_schema)?);
    }
    ctx.metrics.ht_probes += probe_pipe.len() as u64;
    let ht = source.probe_table();
    let post_filters = &post_filters;
    let out = match &probe_pipe {
        Pipe::Rows(probe_rows) => {
            let probe_rows_ref = &probe_rows;
            collect_morsels(ctx.sched(), probe_rows.len(), |range| {
                let mut buf = Vec::new();
                for prow in &probe_rows_ref[range] {
                    let key = prow.key64(&[probe_key_idx]);
                    let pval = prow.get(probe_key_idx);
                    for tagged in ht.probe_readonly(key) {
                        // Verify the actual key (hash keys may collide).
                        if tagged.row.get(build_key_idx) != pval {
                            continue;
                        }
                        if !post_filters.iter().all(|pf| pf.eval(&tagged.row)) {
                            continue;
                        }
                        buf.push(prow.concat(&tagged.row));
                    }
                }
                buf
            })
        }
        Pipe::Columnar(batch) => {
            // Vectorized probe: keys come straight off the key column
            // through a monomorphized kernel; the probe row materializes
            // lazily, once, only when it has at least one match.
            ctx.metrics.batches_processed += morsel_count(batch.sel.len()) as u64;
            let table = &batch.table;
            let proj = &batch.proj;
            let sel = &batch.sel;
            let key_col = table.column(proj[probe_key_idx]);
            let kernel = vector::key_kernel(key_col);
            let kernel = &kernel;
            collect_morsels(ctx.sched(), sel.len(), |range| {
                let mut buf = Vec::new();
                for &rid in &sel[range] {
                    let rid = rid as usize;
                    let key = kernel.key64(rid);
                    let mut prow: Option<Row> = None;
                    for tagged in ht.probe_readonly(key) {
                        // Verify the actual key (hash keys may collide);
                        // `cmp_row` mismatching types is never equal, same
                        // as the boxed comparison above.
                        if key_col.cmp_row(rid, tagged.row.get(build_key_idx))
                            != Some(std::cmp::Ordering::Equal)
                        {
                            continue;
                        }
                        if !post_filters.iter().all(|pf| pf.eval(&tagged.row)) {
                            continue;
                        }
                        let prow = prow.get_or_insert_with(|| table.row_projected(rid, proj));
                        buf.push(prow.concat(&tagged.row));
                    }
                }
                buf
            })
        }
    };

    // --- Hand the table back to the manager --------------------------------
    match source {
        // Read-only reuse: dropping the guard releases the shared pin.
        // Mutating reuse was already checked in before the probe.
        JoinBuild::Reused(_) | JoinBuild::Snapshot(_) => {}
        JoinBuild::Fresh(ht) => {
            if let Some(fp) = publish {
                ctx.htm.publish_as(
                    ctx.tenant,
                    fp.clone(),
                    build_schema.clone(),
                    StoredHt::Join(ht),
                );
            }
        }
    }

    Ok((probe_schema.concat(&build_schema), out))
}

// ---------------------------------------------------------------------------
// Hash aggregate
// ---------------------------------------------------------------------------

/// The state of a hash aggregate: fresh local table or reused guard.
enum AggSource<'m> {
    Fresh(ExtendibleHashTable<AggPayload>),
    Reused(CheckedOut<'m>),
    /// A mutating reuse that has already been checked back in: the writer
    /// pin is released and the output phase reads this immutable snapshot.
    Snapshot(Arc<StoredHt>),
}

impl AggSource<'_> {
    fn read_table(&self) -> &ExtendibleHashTable<AggPayload> {
        let stored = match self {
            AggSource::Fresh(t) => return t,
            AggSource::Reused(co) => co.table(),
            AggSource::Snapshot(s) => s,
        };
        match stored {
            StoredHt::Agg(t) => t,
            _ => unreachable!("kind verified at checkout"),
        }
    }

    fn write_table(&mut self) -> Result<&mut ExtendibleHashTable<AggPayload>> {
        match self {
            AggSource::Fresh(t) => Ok(t),
            AggSource::Reused(co) => match co.table_mut()? {
                StoredHt::Agg(t) => Ok(t),
                _ => unreachable!("kind verified at checkout"),
            },
            AggSource::Snapshot(_) => unreachable!("mutation precedes check-in"),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_hash_agg(
    ctx: &mut ExecContext<'_>,
    input: &Option<Box<PhysicalPlan>>,
    group_by: &[Arc<str>],
    aggs: &[hashstash_plan::AggExpr],
    output_aggs: &[OutputAgg],
    reuse: &Option<crate::plan::ReuseSpec>,
    publish: &Option<hashstash_plan::HtFingerprint>,
    post_group_by: &Option<Vec<Arc<str>>>,
) -> Result<(Schema, Vec<Row>)> {
    // --- Acquire the hash table --------------------------------------------
    let mut recovery_filter: Option<PredBox> = None;
    let (group_schema, mut source) = match reuse {
        Some(spec) => {
            let co = ctx.checkout_for(spec)?;
            ctx.metrics.reused_tables += 1;
            if !matches!(co.table(), StoredHt::Agg(_)) {
                return Err(HsError::ExecError(format!(
                    "{} is not an aggregate hash table",
                    spec.id
                )));
            }
            if !spec.case.needs_delta() {
                recovery_filter = widened_recovery_filter(spec, &co)?;
            }
            (co.schema.clone(), AggSource::Reused(co))
        }
        None => {
            let width: usize = {
                // Group attrs + one 8-byte accumulator per aggregate.
                let mut w = aggs.len() * 8;
                for g in group_by {
                    w += crate::plan::lookup_attr_type(ctx.catalog, g)?.payload_width();
                }
                w
            };
            let mut fields = Vec::new();
            for g in group_by {
                fields.push(hashstash_types::Field::new(
                    g.to_string(),
                    crate::plan::lookup_attr_type(ctx.catalog, g)?,
                ));
            }
            (
                Schema::new(fields),
                AggSource::Fresh(ExtendibleHashTable::new(width)),
            )
        }
    };

    // --- Fold input rows (all of them, or the reuse delta) -----------------
    if let Some(input_plan) = input {
        if reuse.is_none() || reuse.as_ref().is_some_and(|r| r.case.needs_delta()) {
            let (in_schema, pipe) = run_batch(input_plan, ctx)?;
            let group_idx: Vec<usize> = group_by
                .iter()
                .map(|g| in_schema.index_of(g))
                .collect::<Result<Vec<_>>>()?;
            let agg_idx: Vec<usize> = aggs
                .iter()
                .map(|a| in_schema.index_of(&a.attr))
                .collect::<Result<Vec<_>>>()?;
            if reuse.is_none() {
                ctx.metrics.built_tables += 1;
            }
            let parallel_build =
                reuse.is_none() && ctx.parallelism > 1 && pipe.len() >= MIN_PARALLEL_BUILD_ROWS;
            let (inserts, updates) = match pipe {
                Pipe::Columnar(batch) => fold_batch(
                    ctx,
                    &mut source,
                    &batch,
                    &group_idx,
                    &agg_idx,
                    aggs,
                    parallel_build,
                )?,
                Pipe::Rows(rows) => fold_rows(
                    ctx,
                    &mut source,
                    rows,
                    &group_idx,
                    &agg_idx,
                    aggs,
                    parallel_build,
                )?,
            };
            ctx.metrics.ht_inserts += inserts;
            ctx.metrics.ht_updates += updates;
        }
    }

    // A mutating reuse is complete once the delta is folded: publish the
    // new version (widened lineage) immediately so the writer pin is not
    // held across output production, and keep reading a cheap snapshot.
    if let Some(spec) = reuse {
        if spec.case.needs_delta() {
            source = match source {
                AggSource::Reused(co) => {
                    AggSource::Snapshot(co.checkin_widened(&spec.request_region)?)
                }
                other => other,
            };
        }
    }

    produce_agg_output(
        ctx,
        source,
        &recovery_filter,
        group_schema,
        group_by,
        aggs,
        output_aggs,
        reuse,
        publish,
        post_group_by,
    )
}

/// Fold materialized input rows into the aggregate table — the row
/// interpreter's fold, parallel (partitioned) or serial.
fn fold_rows(
    ctx: &mut ExecContext<'_>,
    source: &mut AggSource<'_>,
    rows: Vec<Row>,
    group_idx: &[usize],
    agg_idx: &[usize],
    aggs: &[hashstash_plan::AggExpr],
    parallel_build: bool,
) -> Result<(u64, u64)> {
    let ht = source.write_table()?;
    let mut inserts = 0u64;
    let mut updates = 0u64;
    if parallel_build {
        // Partitioned parallel aggregate build: hashing/projection
        // fans out over morsels, folding over key partitions (each
        // group's accumulators are updated in global row order, so
        // even floating-point sums are bitwise serial), then the
        // structural history is replayed serially — one `touch`
        // (lazy-split freshen) per row, one `insert` per
        // group-creating row — which is exactly what the serial
        // `upsert_where` loop below does to the table.
        let rows_ref = &rows;
        let group_idx_ref = group_idx;
        // Keys only — the group row is projected lazily, once per
        // *group* (in `init`), not once per input row: materializing
        // a projected `Row` per row costs two heap allocations each
        // and dominates the whole build for low-cardinality groups.
        let keys: Vec<u64> = collect_morsels(ctx.sched(), rows.len(), |range| {
            rows_ref[range]
                .iter()
                .map(|row| row.key64(group_idx_ref))
                .collect()
        });
        let fold = |i: usize, p: &mut AggPayload| {
            for (accum, &ai) in p.accums.iter_mut().zip(agg_idx) {
                accum.update(rows_ref[i].get(ai));
            }
        };
        let gb = build_grouped_partitioned(
            ctx.sched(),
            &keys,
            // Allocation-free equivalent of `p.group == row.project(..)`.
            |i: usize, p: &AggPayload| {
                p.group.len() == group_idx_ref.len()
                    && group_idx_ref
                        .iter()
                        .enumerate()
                        .all(|(c, &gi)| *p.group.get(c) == *rows_ref[i].get(gi))
            },
            |i: usize| {
                let mut p = AggPayload::new(rows_ref[i].project(group_idx_ref), aggs);
                fold(i, &mut p);
                p
            },
            |i: usize, p: &mut AggPayload| fold(i, p),
        );
        inserts = gb.inserts;
        updates = gb.updates;
        let mut merged = gb.groups.into_iter().peekable();
        for (i, &key) in keys.iter().enumerate() {
            if let Some(g) = merged.next_if(|g| g.first_row == i) {
                ht.touch(g.key);
                ht.insert(g.key, g.payload);
            } else {
                ht.touch(key);
            }
        }
        debug_assert!(merged.peek().is_none(), "all groups replayed");
    } else {
        for row in rows {
            let key = row.key64(group_idx);
            let group_row = row.project(group_idx);
            let created = ht.upsert_where(
                key,
                |p: &AggPayload| p.group == group_row,
                || {
                    // First tuple of a missing group: pay the insert
                    // and fold the row into the fresh accumulators.
                    let mut p = AggPayload::new(group_row.clone(), aggs);
                    for (accum, &ai) in p.accums.iter_mut().zip(agg_idx) {
                        accum.update(row.get(ai));
                    }
                    p
                },
                |p| {
                    for (accum, &ai) in p.accums.iter_mut().zip(agg_idx) {
                        accum.update(row.get(ai));
                    }
                },
            );
            if created {
                inserts += 1;
            } else {
                updates += 1;
            }
        }
    }
    Ok((inserts, updates))
}

/// Fold a columnar batch into the aggregate table without materializing
/// input rows: keys come off the group columns through monomorphized
/// kernels, group membership tests compare column cells against stored
/// group rows in place, and only the first tuple of each *group* projects a
/// row (the hash-table payload — a pipeline edge). Insert/update order
/// follows the selection vector, which is the row interpreter's input
/// order, so the resulting table (including accumulator fold order and
/// chain layout) is bit-identical to the row fold.
fn fold_batch(
    ctx: &mut ExecContext<'_>,
    source: &mut AggSource<'_>,
    batch: &ColumnarBatch,
    group_idx: &[usize],
    agg_idx: &[usize],
    aggs: &[hashstash_plan::AggExpr],
    parallel_build: bool,
) -> Result<(u64, u64)> {
    ctx.metrics.batches_processed += morsel_count(batch.sel.len()) as u64;
    let table = &batch.table;
    let sel = &batch.sel;
    // Input-schema positions → base-table column positions.
    let group_cols: Vec<usize> = group_idx.iter().map(|&i| batch.proj[i]).collect();
    let agg_cols: Vec<usize> = agg_idx.iter().map(|&i| batch.proj[i]).collect();
    let kernels: Vec<KeyKernel<'_>> = group_cols
        .iter()
        .map(|&c| vector::key_kernel(table.column(c)))
        .collect();
    let matches = |rid: usize, p: &AggPayload| {
        p.group.len() == group_cols.len()
            && group_cols.iter().enumerate().all(|(c, &gc)| {
                table.column(gc).cmp_row(rid, p.group.get(c)) == Some(std::cmp::Ordering::Equal)
            })
    };
    let fold = |rid: usize, p: &mut AggPayload| {
        for (accum, &ac) in p.accums.iter_mut().zip(&agg_cols) {
            accum.update(&table.column(ac).get(rid));
        }
    };
    let init = |rid: usize| {
        let mut p = AggPayload::new(table.row_projected(rid, &group_cols), aggs);
        fold(rid, &mut p);
        p
    };
    let ht = source.write_table()?;
    let mut inserts = 0u64;
    let mut updates = 0u64;
    if parallel_build {
        // Same partitioned build as the row fold, driven by selection
        // indices instead of materialized rows.
        let kernels = &kernels;
        let keys: Vec<u64> = collect_morsels(ctx.sched(), sel.len(), |range| {
            sel[range]
                .iter()
                .map(|&rid| vector::group_key64(kernels, rid as usize))
                .collect()
        });
        let gb = build_grouped_partitioned(
            ctx.sched(),
            &keys,
            |i: usize, p: &AggPayload| matches(sel[i] as usize, p),
            |i: usize| init(sel[i] as usize),
            |i: usize, p: &mut AggPayload| fold(sel[i] as usize, p),
        );
        inserts = gb.inserts;
        updates = gb.updates;
        let mut merged = gb.groups.into_iter().peekable();
        for (i, &key) in keys.iter().enumerate() {
            if let Some(g) = merged.next_if(|g| g.first_row == i) {
                ht.touch(g.key);
                ht.insert(g.key, g.payload);
            } else {
                ht.touch(key);
            }
        }
        debug_assert!(merged.peek().is_none(), "all groups replayed");
    } else {
        for &rid in sel {
            let rid = rid as usize;
            let key = vector::group_key64(&kernels, rid);
            let created = ht.upsert_where(
                key,
                |p: &AggPayload| matches(rid, p),
                || init(rid),
                |p| fold(rid, p),
            );
            if created {
                inserts += 1;
            } else {
                updates += 1;
            }
        }
    }
    Ok((inserts, updates))
}

/// The output phase of a hash aggregate: post-filter + finalize the stored
/// groups (optionally re-grouping on a subset of the group-by attributes),
/// assemble the output schema, and hand the table back to the manager.
#[allow(clippy::too_many_arguments)]
fn produce_agg_output(
    ctx: &mut ExecContext<'_>,
    source: AggSource<'_>,
    recovery_filter: &Option<PredBox>,
    group_schema: Schema,
    group_by: &[Arc<str>],
    aggs: &[hashstash_plan::AggExpr],
    output_aggs: &[OutputAgg],
    reuse: &Option<crate::plan::ReuseSpec>,
    publish: &Option<hashstash_plan::HtFingerprint>,
    post_group_by: &Option<Vec<Arc<str>>>,
) -> Result<(Schema, Vec<Row>)> {
    // --- Produce output ----------------------------------------------------
    // Planned post-filter (subsuming reuse) plus the recovery filter for a
    // concurrently widened cached table; both apply to group keys.
    let mut post_filters: Vec<BoxEval> = Vec::new();
    if let Some(pf) = reuse.as_ref().and_then(|r| r.post_filter.as_ref()) {
        post_filters.push(BoxEval::bind(pf, &group_schema)?);
    }
    if let Some(rf) = &recovery_filter {
        post_filters.push(BoxEval::bind(rf, &group_schema)?);
    }

    let mut out_rows = Vec::new();
    let ht = source.read_table();
    match post_group_by {
        None => {
            // The post-filter + finalize pass over the stored groups — the
            // entire output phase of exact/subsuming reuse — runs
            // morsel-parallel over the arena.
            let post_filters = &post_filters;
            out_rows = collect_morsels(ctx.sched(), ht.len(), |range| {
                let mut buf = Vec::new();
                for (_, payload) in ht.iter_range(range) {
                    if !post_filters.iter().all(|pf| pf.eval(&payload.group)) {
                        continue;
                    }
                    buf.push(finalize_row(&payload.group, &payload.accums, output_aggs));
                }
                buf
            });
        }
        Some(subset) => {
            // Post-aggregation: re-group the cached table on a subset of its
            // group-by attributes, merging accumulator states. Serial: the
            // merge order into one accumulator table is order-sensitive.
            let subset_idx: Vec<usize> = subset
                .iter()
                .map(|g| group_schema.index_of(g))
                .collect::<Result<Vec<_>>>()?;
            let mut regrouped: ExtendibleHashTable<AggPayload> =
                ExtendibleHashTable::new(ht.tuple_width());
            for (_, payload) in ht.iter() {
                if !post_filters.iter().all(|pf| pf.eval(&payload.group)) {
                    continue;
                }
                let gkey_row = payload.group.project(&subset_idx);
                let key = gkey_row.key64(&(0..subset_idx.len()).collect::<Vec<_>>());
                let created = regrouped.upsert_where(
                    key,
                    |p: &AggPayload| p.group == gkey_row,
                    || AggPayload {
                        group: gkey_row.clone(),
                        accums: payload.accums.clone(),
                    },
                    |p| {
                        for (a, b) in p.accums.iter_mut().zip(&payload.accums) {
                            a.merge(b);
                        }
                    },
                );
                if created {
                    ctx.metrics.ht_inserts += 1;
                } else {
                    ctx.metrics.ht_updates += 1;
                }
            }
            for (_, payload) in regrouped.iter() {
                out_rows.push(finalize_row(&payload.group, &payload.accums, output_aggs));
            }
        }
    }

    // --- Output schema ------------------------------------------------------
    let out_group_attrs: &[Arc<str>] = post_group_by.as_deref().unwrap_or(group_by);
    let mut fields = Vec::new();
    for g in out_group_attrs {
        fields.push(hashstash_types::Field::new(
            g.to_string(),
            group_schema.field(g)?.dtype,
        ));
    }
    for (i, oa) in output_aggs.iter().enumerate() {
        let dtype = match oa {
            OutputAgg::Direct(idx) => match aggs.get(*idx).map(|a| a.func) {
                Some(hashstash_plan::AggFunc::Count) => hashstash_types::DataType::Int,
                Some(hashstash_plan::AggFunc::Min) | Some(hashstash_plan::AggFunc::Max) => aggs
                    .get(*idx)
                    .and_then(|a| crate::plan::lookup_attr_type(ctx.catalog, &a.attr).ok())
                    .unwrap_or(hashstash_types::DataType::Float),
                _ => hashstash_types::DataType::Float,
            },
            OutputAgg::AvgOf { .. } => hashstash_types::DataType::Float,
        };
        fields.push(hashstash_types::Field::new(format!("agg_{i}"), dtype));
    }
    let out_schema = Schema::new(fields);

    // --- Hand the table back -------------------------------------------------
    match source {
        // Read-only reuse: the guard drop releases the shared pin.
        // Mutating reuse was already checked in before output production.
        AggSource::Reused(_) | AggSource::Snapshot(_) => {}
        AggSource::Fresh(ht) => {
            if let Some(fp) = publish {
                ctx.htm
                    .publish_as(ctx.tenant, fp.clone(), group_schema, StoredHt::Agg(ht));
            }
        }
    }

    Ok((out_schema, out_rows))
}

/// Assemble an output row from group values and accumulator states.
fn finalize_row(
    group: &Row,
    accums: &[hashstash_cache::AggAccum],
    output_aggs: &[OutputAgg],
) -> Row {
    let mut values: Vec<Value> = group.values().to_vec();
    for oa in output_aggs {
        match oa {
            OutputAgg::Direct(i) => values.push(accums[*i].finalize()),
            OutputAgg::AvgOf { sum_idx, count_idx } => {
                let sum = accums[*sum_idx].finalize().to_f64().unwrap_or(0.0);
                let count = accums[*count_idx].finalize().to_f64().unwrap_or(0.0);
                values.push(if count == 0.0 {
                    Value::float(0.0)
                } else {
                    Value::float(sum / count)
                });
            }
        }
    }
    Row::new(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ReuseSpec;
    use hashstash_cache::GcConfig;
    use hashstash_plan::{AggExpr, AggFunc, HtFingerprint, HtKind, Interval, Region, ReuseCase};
    use hashstash_storage::tpch::{generate, TpchConfig};

    fn setup() -> (Catalog, HtManager, TempTableCache) {
        (
            generate(TpchConfig::new(0.002, 5)),
            HtManager::new(GcConfig::default()),
            TempTableCache::unbounded(),
        )
    }

    fn scan_all(table: &str) -> PhysicalPlan {
        PhysicalPlan::Scan(ScanSpec::full(table))
    }

    #[test]
    fn scan_with_filter_matches_manual_count() {
        let (cat, htm, temps) = setup();
        let pred = PredBox::all().with(
            "customer.c_age",
            Interval::closed(Value::Int(30), Value::Int(40)),
        );
        let plan = PhysicalPlan::Scan(ScanSpec::filtered("customer", pred));
        let mut ctx = ExecContext::new(&cat, &htm, &temps);
        let (schema, rows) = execute(&plan, &mut ctx).unwrap();
        let age_idx = schema.index_of("customer.c_age").unwrap();
        assert!(!rows.is_empty());
        for r in &rows {
            let age = r.get(age_idx).as_int().unwrap();
            assert!((30..=40).contains(&age));
        }
        // Index was used (c_age is indexed).
        assert!(ctx.metrics.index_rows > 0);

        // Compare against a brute-force count.
        let table = cat.get("customer").unwrap();
        let col = table.column_by_name("c_age").unwrap();
        let expected = (0..table.row_count())
            .filter(|&i| (30..=40).contains(&col.get(i).as_int().unwrap()))
            .count();
        assert_eq!(rows.len(), expected);
    }

    #[test]
    fn join_produces_correct_pairs() {
        let (cat, htm, temps) = setup();
        let plan = PhysicalPlan::HashJoin {
            probe: Box::new(scan_all("orders")),
            build: Some(Box::new(scan_all("customer"))),
            probe_key: "orders.o_custkey".into(),
            build_key: "customer.c_custkey".into(),
            reuse: None,
            publish: None,
        };
        let mut ctx = ExecContext::new(&cat, &htm, &temps);
        let (schema, rows) = execute(&plan, &mut ctx).unwrap();
        // Every order joins exactly one customer.
        let orders = cat.get("orders").unwrap().row_count();
        assert_eq!(rows.len(), orders);
        let ok = schema.index_of("orders.o_custkey").unwrap();
        let ck = schema.index_of("customer.c_custkey").unwrap();
        for r in &rows {
            assert_eq!(r.get(ok), r.get(ck));
        }
        assert_eq!(ctx.metrics.built_tables, 1);
        assert_eq!(ctx.metrics.reused_tables, 0);
    }

    #[test]
    fn aggregate_sums_match_manual() {
        let (cat, htm, temps) = setup();
        let aggs = vec![
            AggExpr::new(AggFunc::Sum, "customer.c_acctbal"),
            AggExpr::new(AggFunc::Count, "customer.c_custkey"),
        ];
        let plan = PhysicalPlan::HashAggregate {
            input: Some(Box::new(scan_all("customer"))),
            group_by: vec!["customer.c_age".into()],
            aggs: aggs.clone(),
            output_aggs: vec![OutputAgg::Direct(0), OutputAgg::Direct(1)],
            reuse: None,
            publish: None,
            post_group_by: None,
        };
        let mut ctx = ExecContext::new(&cat, &htm, &temps);
        let (schema, rows) = execute(&plan, &mut ctx).unwrap();
        assert_eq!(schema.len(), 3);
        // Totals across groups must equal table totals.
        let table = cat.get("customer").unwrap();
        let bal = table.column_by_name("c_acctbal").unwrap();
        let total: f64 = (0..table.row_count())
            .map(|i| bal.get(i).as_float().unwrap())
            .sum();
        let sum_groups: f64 = rows.iter().map(|r| r.get(1).as_float().unwrap()).sum();
        assert!((total - sum_groups).abs() < 1e-6 * total.abs().max(1.0));
        let count_groups: i64 = rows.iter().map(|r| r.get(2).as_int().unwrap()).sum();
        assert_eq!(count_groups as usize, table.row_count());
    }

    #[test]
    fn avg_reconstruction_from_sum_count() {
        let (cat, htm, temps) = setup();
        let aggs = vec![
            AggExpr::new(AggFunc::Sum, "customer.c_acctbal"),
            AggExpr::new(AggFunc::Count, "customer.c_acctbal"),
        ];
        let plan = PhysicalPlan::HashAggregate {
            input: Some(Box::new(scan_all("customer"))),
            group_by: vec![],
            aggs,
            output_aggs: vec![OutputAgg::AvgOf {
                sum_idx: 0,
                count_idx: 1,
            }],
            reuse: None,
            publish: None,
            post_group_by: None,
        };
        let mut ctx = ExecContext::new(&cat, &htm, &temps);
        let (_, rows) = execute(&plan, &mut ctx).unwrap();
        assert_eq!(rows.len(), 1);
        let table = cat.get("customer").unwrap();
        let bal = table.column_by_name("c_acctbal").unwrap();
        let expect: f64 = (0..table.row_count())
            .map(|i| bal.get(i).as_float().unwrap())
            .sum::<f64>()
            / table.row_count() as f64;
        let got = rows[0].get(0).as_float().unwrap();
        assert!((got - expect).abs() < 1e-9 * expect.abs().max(1.0));
    }

    #[test]
    fn join_publish_then_exact_reuse() {
        let (cat, htm, temps) = setup();
        let fp = HtFingerprint {
            kind: HtKind::JoinBuild,
            tables: std::iter::once(Arc::from("customer")).collect(),
            edges: vec![],
            region: Region::all(),
            key_attrs: vec![Arc::from("customer.c_custkey")],
            payload_attrs: vec![Arc::from("customer.c_custkey"), Arc::from("customer.c_age")],
            aggregates: vec![],
            tagged: false,
        };
        let build = PhysicalPlan::Scan(
            ScanSpec::full("customer").project(&["customer.c_custkey", "customer.c_age"]),
        );
        let first = PhysicalPlan::HashJoin {
            probe: Box::new(scan_all("orders")),
            build: Some(Box::new(build)),
            probe_key: "orders.o_custkey".into(),
            build_key: "customer.c_custkey".into(),
            reuse: None,
            publish: Some(fp.clone()),
        };
        let mut ctx = ExecContext::new(&cat, &htm, &temps);
        let (_, rows1) = execute(&first, &mut ctx).unwrap();
        let inserts_first = ctx.metrics.ht_inserts;
        assert!(inserts_first > 0);

        // Find the published table and reuse it exactly.
        let cands = htm.candidates(&fp);
        assert_eq!(cands.len(), 1);
        let cand = &cands[0];
        let second = PhysicalPlan::HashJoin {
            probe: Box::new(scan_all("orders")),
            build: None,
            probe_key: "orders.o_custkey".into(),
            build_key: "customer.c_custkey".into(),
            reuse: Some(ReuseSpec {
                id: cand.id,
                case: ReuseCase::Exact,
                post_filter: None,
                request_region: Region::all(),
                cached_region: cand.fingerprint.region.clone(),
                schema: cand.schema.clone(),
            }),
            publish: None,
        };
        let mut ctx2 = ExecContext::new(&cat, &htm, &temps);
        let (_, rows2) = execute(&second, &mut ctx2).unwrap();
        assert_eq!(rows1.len(), rows2.len());
        assert_eq!(ctx2.metrics.ht_inserts, 0, "exact reuse inserts nothing");
        assert_eq!(ctx2.metrics.reused_tables, 1);
        assert!(htm.is_available(cand.id), "checked back in");
    }

    #[test]
    fn subsuming_reuse_post_filters() {
        let (cat, htm, temps) = setup();
        // Build a cached table over customers age >= 20 (wide).
        let wide_pred = PredBox::all().with("customer.c_age", Interval::at_least(Value::Int(20)));
        let fp = HtFingerprint {
            kind: HtKind::JoinBuild,
            tables: std::iter::once(Arc::from("customer")).collect(),
            edges: vec![],
            region: Region::from_box(wide_pred.clone()),
            key_attrs: vec![Arc::from("customer.c_custkey")],
            payload_attrs: vec![Arc::from("customer.c_custkey"), Arc::from("customer.c_age")],
            aggregates: vec![],
            tagged: false,
        };
        let first = PhysicalPlan::HashJoin {
            probe: Box::new(scan_all("orders")),
            build: Some(Box::new(PhysicalPlan::Scan(
                ScanSpec::filtered("customer", wide_pred)
                    .project(&["customer.c_custkey", "customer.c_age"]),
            ))),
            probe_key: "orders.o_custkey".into(),
            build_key: "customer.c_custkey".into(),
            reuse: None,
            publish: Some(fp.clone()),
        };
        let mut ctx = ExecContext::new(&cat, &htm, &temps);
        execute(&first, &mut ctx).unwrap();

        // Now ask for age >= 30 (narrow) via subsuming reuse.
        let narrow = PredBox::all().with("customer.c_age", Interval::at_least(Value::Int(30)));
        let cands = htm.candidates(&fp);
        let cand = &cands[0];
        let second = PhysicalPlan::HashJoin {
            probe: Box::new(scan_all("orders")),
            build: None,
            probe_key: "orders.o_custkey".into(),
            build_key: "customer.c_custkey".into(),
            reuse: Some(ReuseSpec {
                id: cand.id,
                case: ReuseCase::Subsuming,
                post_filter: Some(narrow.clone()),
                request_region: Region::from_box(narrow.clone()),
                cached_region: cand.fingerprint.region.clone(),
                schema: cand.schema.clone(),
            }),
            publish: None,
        };
        let mut ctx2 = ExecContext::new(&cat, &htm, &temps);
        let (schema, rows) = execute(&second, &mut ctx2).unwrap();
        let age_idx = schema.index_of("customer.c_age").unwrap();
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(r.get(age_idx).as_int().unwrap() >= 30, "post-filtered");
        }

        // Reference: fresh join with the narrow predicate.
        let reference = PhysicalPlan::HashJoin {
            probe: Box::new(scan_all("orders")),
            build: Some(Box::new(PhysicalPlan::Scan(
                ScanSpec::filtered("customer", narrow)
                    .project(&["customer.c_custkey", "customer.c_age"]),
            ))),
            probe_key: "orders.o_custkey".into(),
            build_key: "customer.c_custkey".into(),
            reuse: None,
            publish: None,
        };
        let mut ctx3 = ExecContext::new(&cat, &htm, &temps);
        let (_, ref_rows) = execute(&reference, &mut ctx3).unwrap();
        assert_eq!(rows.len(), ref_rows.len());
    }

    #[test]
    fn partial_reuse_adds_missing_tuples() {
        let (cat, htm, temps) = setup();
        // Cache customers with age in [40, 60].
        let cached_pred = PredBox::all().with(
            "customer.c_age",
            Interval::closed(Value::Int(40), Value::Int(60)),
        );
        let fp = HtFingerprint {
            kind: HtKind::JoinBuild,
            tables: std::iter::once(Arc::from("customer")).collect(),
            edges: vec![],
            region: Region::from_box(cached_pred.clone()),
            key_attrs: vec![Arc::from("customer.c_custkey")],
            payload_attrs: vec![Arc::from("customer.c_custkey"), Arc::from("customer.c_age")],
            aggregates: vec![],
            tagged: false,
        };
        let first = PhysicalPlan::HashJoin {
            probe: Box::new(scan_all("orders")),
            build: Some(Box::new(PhysicalPlan::Scan(
                ScanSpec::filtered("customer", cached_pred)
                    .project(&["customer.c_custkey", "customer.c_age"]),
            ))),
            probe_key: "orders.o_custkey".into(),
            build_key: "customer.c_custkey".into(),
            reuse: None,
            publish: Some(fp.clone()),
        };
        let mut ctx = ExecContext::new(&cat, &htm, &temps);
        execute(&first, &mut ctx).unwrap();

        // Request age in [30, 60]: delta is [30, 39].
        let request = PredBox::all().with(
            "customer.c_age",
            Interval::closed(Value::Int(30), Value::Int(60)),
        );
        let request_region = Region::from_box(request.clone());
        let delta_region = request_region.difference(&fp.region);
        let cands = htm.candidates(&fp);
        let cand = &cands[0];
        let delta_scan = PhysicalPlan::Scan(ScanSpec {
            table: "customer".into(),
            region: delta_region,
            projection: vec!["customer.c_custkey".into(), "customer.c_age".into()],
        });
        let second = PhysicalPlan::HashJoin {
            probe: Box::new(scan_all("orders")),
            build: Some(Box::new(delta_scan)),
            probe_key: "orders.o_custkey".into(),
            build_key: "customer.c_custkey".into(),
            reuse: Some(ReuseSpec {
                id: cand.id,
                case: ReuseCase::Partial,
                post_filter: None,
                request_region: request_region.clone(),
                cached_region: cand.fingerprint.region.clone(),
                schema: cand.schema.clone(),
            }),
            publish: None,
        };
        let mut ctx2 = ExecContext::new(&cat, &htm, &temps);
        let (schema, rows) = execute(&second, &mut ctx2).unwrap();
        assert!(ctx2.metrics.ht_inserts > 0, "delta rows inserted");
        let age_idx = schema.index_of("customer.c_age").unwrap();
        for r in &rows {
            let a = r.get(age_idx).as_int().unwrap();
            assert!((30..=60).contains(&a));
        }

        // Reference run.
        let reference = PhysicalPlan::HashJoin {
            probe: Box::new(scan_all("orders")),
            build: Some(Box::new(PhysicalPlan::Scan(
                ScanSpec::filtered("customer", request)
                    .project(&["customer.c_custkey", "customer.c_age"]),
            ))),
            probe_key: "orders.o_custkey".into(),
            build_key: "customer.c_custkey".into(),
            reuse: None,
            publish: None,
        };
        let mut ctx3 = ExecContext::new(&cat, &htm, &temps);
        let (_, ref_rows) = execute(&reference, &mut ctx3).unwrap();
        assert_eq!(rows.len(), ref_rows.len());

        // The cached table's lineage was widened at check-in.
        let cands_after = htm.candidates(&fp);
        assert!(cands_after[0]
            .fingerprint
            .region
            .set_eq(&request_region.union(&fp.region)));
    }

    #[test]
    fn post_group_by_reaggregates() {
        let (cat, htm, temps) = setup();
        // Group by (age, nation) then post-group to age only.
        let aggs = vec![AggExpr::new(AggFunc::Sum, "customer.c_acctbal")];
        let plan = PhysicalPlan::HashAggregate {
            input: Some(Box::new(scan_all("customer"))),
            group_by: vec!["customer.c_age".into(), "customer.c_nationkey".into()],
            aggs: aggs.clone(),
            output_aggs: vec![OutputAgg::Direct(0)],
            reuse: None,
            publish: None,
            post_group_by: Some(vec!["customer.c_age".into()]),
        };
        let mut ctx = ExecContext::new(&cat, &htm, &temps);
        let (schema, rows) = execute(&plan, &mut ctx).unwrap();
        assert_eq!(schema.len(), 2);

        // Reference: direct group-by age.
        let reference = PhysicalPlan::HashAggregate {
            input: Some(Box::new(scan_all("customer"))),
            group_by: vec!["customer.c_age".into()],
            aggs,
            output_aggs: vec![OutputAgg::Direct(0)],
            reuse: None,
            publish: None,
            post_group_by: None,
        };
        let mut ctx2 = ExecContext::new(&cat, &htm, &temps);
        let (_, mut ref_rows) = execute(&reference, &mut ctx2).unwrap();
        let mut got = rows.clone();
        got.sort();
        ref_rows.sort();
        assert_eq!(got.len(), ref_rows.len());
        for (a, b) in got.iter().zip(&ref_rows) {
            assert_eq!(a.get(0), b.get(0));
            let fa = a.get(1).as_float().unwrap();
            let fb = b.get(1).as_float().unwrap();
            assert!((fa - fb).abs() < 1e-6 * fb.abs().max(1.0));
        }
    }

    /// A planned exact match whose cached table was widened by a concurrent
    /// partial reuse between planning and checkout is re-classified in
    /// place as a subsuming match (post-filter to the request region)
    /// instead of failing the checkout and forcing a full re-plan.
    #[test]
    fn widened_exact_reuse_recovers_in_place() {
        let (cat, htm, temps) = setup();
        // Cache customers with age in [40, 60].
        let cached_pred = PredBox::all().with(
            "customer.c_age",
            Interval::closed(Value::Int(40), Value::Int(60)),
        );
        let fp = HtFingerprint {
            kind: HtKind::JoinBuild,
            tables: std::iter::once(Arc::from("customer")).collect(),
            edges: vec![],
            region: Region::from_box(cached_pred.clone()),
            key_attrs: vec![Arc::from("customer.c_custkey")],
            payload_attrs: vec![Arc::from("customer.c_custkey"), Arc::from("customer.c_age")],
            aggregates: vec![],
            tagged: false,
        };
        let first = PhysicalPlan::HashJoin {
            probe: Box::new(scan_all("orders")),
            build: Some(Box::new(PhysicalPlan::Scan(
                ScanSpec::filtered("customer", cached_pred.clone())
                    .project(&["customer.c_custkey", "customer.c_age"]),
            ))),
            probe_key: "orders.o_custkey".into(),
            build_key: "customer.c_custkey".into(),
            reuse: None,
            publish: Some(fp.clone()),
        };
        let mut ctx = ExecContext::new(&cat, &htm, &temps);
        execute(&first, &mut ctx).unwrap();
        let cand = &htm.candidates(&fp)[0];

        // The plan as of *now*: exact reuse of the [40, 60] table.
        let stale = PhysicalPlan::HashJoin {
            probe: Box::new(scan_all("orders")),
            build: None,
            probe_key: "orders.o_custkey".into(),
            build_key: "customer.c_custkey".into(),
            reuse: Some(ReuseSpec {
                id: cand.id,
                case: ReuseCase::Exact,
                post_filter: None,
                request_region: fp.region.clone(),
                cached_region: fp.region.clone(),
                schema: cand.schema.clone(),
            }),
            publish: None,
        };

        // Concurrent session: partial reuse widens the table to [30, 60]
        // by inserting the [30, 39] delta.
        let widened = Region::from_box(PredBox::all().with(
            "customer.c_age",
            Interval::closed(Value::Int(30), Value::Int(60)),
        ));
        {
            let mut w = htm.checkout_mut(cand.id).unwrap();
            let table = cat.get("customer").unwrap();
            let key = table.schema().index_of("c_custkey").unwrap();
            let age = table.schema().index_of("c_age").unwrap();
            let StoredHt::Join(ht) = w.table_mut().unwrap() else {
                panic!("join table")
            };
            for rid in 0..table.row_count() {
                let a = table.column(age).get(rid).as_int().unwrap();
                if (30..40).contains(&a) {
                    let row = table.row_projected(rid, &[key, age]);
                    ht.insert(row.key64(&[0]), TaggedRow::untagged(row));
                }
            }
            w.checkin_widened(&widened).unwrap();
        }

        // Executing the stale plan succeeds — no CacheError, no re-plan —
        // and still answers for [40, 60] only.
        let mut ctx2 = ExecContext::new(&cat, &htm, &temps);
        let (_, rows) = execute(&stale, &mut ctx2).unwrap();
        assert_eq!(ctx2.metrics.reused_tables, 1);

        let reference = PhysicalPlan::HashJoin {
            probe: Box::new(scan_all("orders")),
            build: Some(Box::new(PhysicalPlan::Scan(
                ScanSpec::filtered("customer", cached_pred)
                    .project(&["customer.c_custkey", "customer.c_age"]),
            ))),
            probe_key: "orders.o_custkey".into(),
            build_key: "customer.c_custkey".into(),
            reuse: None,
            publish: None,
        };
        let mut ctx3 = ExecContext::new(&cat, &htm, &temps);
        let (_, mut expect) = execute(&reference, &mut ctx3).unwrap();
        let mut got = rows;
        got.sort();
        expect.sort();
        assert_eq!(got, expect, "recovery post-filter restores the request");
    }

    /// When the widened table cannot compensate (payload lacks a request
    /// attribute), the checkout surfaces a `CacheError` so the session
    /// re-plans — never a wrong answer.
    #[test]
    fn widened_reuse_without_filter_attrs_replans() {
        let (cat, htm, temps) = setup();
        let pred = PredBox::all().with(
            "customer.c_age",
            Interval::closed(Value::Int(40), Value::Int(60)),
        );
        let fp = HtFingerprint {
            kind: HtKind::JoinBuild,
            tables: std::iter::once(Arc::from("customer")).collect(),
            edges: vec![],
            region: Region::from_box(pred.clone()),
            key_attrs: vec![Arc::from("customer.c_custkey")],
            // Payload does NOT store c_age: no recovery filter possible.
            payload_attrs: vec![Arc::from("customer.c_custkey")],
            aggregates: vec![],
            tagged: false,
        };
        let first = PhysicalPlan::HashJoin {
            probe: Box::new(scan_all("orders")),
            build: Some(Box::new(PhysicalPlan::Scan(
                ScanSpec::filtered("customer", pred).project(&["customer.c_custkey"]),
            ))),
            probe_key: "orders.o_custkey".into(),
            build_key: "customer.c_custkey".into(),
            reuse: None,
            publish: Some(fp.clone()),
        };
        let mut ctx = ExecContext::new(&cat, &htm, &temps);
        execute(&first, &mut ctx).unwrap();
        let cand = &htm.candidates(&fp)[0];
        let stale = PhysicalPlan::HashJoin {
            probe: Box::new(scan_all("orders")),
            build: None,
            probe_key: "orders.o_custkey".into(),
            build_key: "customer.c_custkey".into(),
            reuse: Some(ReuseSpec {
                id: cand.id,
                case: ReuseCase::Exact,
                post_filter: None,
                request_region: fp.region.clone(),
                cached_region: fp.region.clone(),
                schema: cand.schema.clone(),
            }),
            publish: None,
        };
        let widened = Region::from_box(PredBox::all().with(
            "customer.c_age",
            Interval::closed(Value::Int(30), Value::Int(60)),
        ));
        let w = htm.checkout_mut(cand.id).unwrap();
        w.checkin_widened(&widened).unwrap();
        let mut ctx2 = ExecContext::new(&cat, &htm, &temps);
        assert!(matches!(
            execute(&stale, &mut ctx2),
            Err(HsError::CacheError(_))
        ));
    }

    /// Parallel execution is bit-identical (unsorted, row for row) to the
    /// serial interpreter, counters included.
    #[test]
    fn parallel_execution_is_bit_identical() {
        let (cat, htm, temps) = setup();
        let pred = PredBox::all().with(
            "customer.c_age",
            Interval::closed(Value::Int(25), Value::Int(55)),
        );
        let plan = PhysicalPlan::HashJoin {
            probe: Box::new(scan_all("orders")),
            build: Some(Box::new(PhysicalPlan::Scan(ScanSpec::filtered(
                "customer", pred,
            )))),
            probe_key: "orders.o_custkey".into(),
            build_key: "customer.c_custkey".into(),
            reuse: None,
            publish: None,
        };
        let mut serial = ExecContext::new(&cat, &htm, &temps).with_parallelism(1);
        let (_, want) = execute(&plan, &mut serial).unwrap();
        for workers in [2, 4, 8] {
            let mut par = ExecContext::new(&cat, &htm, &temps).with_parallelism(workers);
            let (_, got) = execute(&plan, &mut par).unwrap();
            assert_eq!(got, want, "{workers} workers");
            assert_eq!(par.metrics, serial.metrics, "{workers} workers");
        }
    }

    #[test]
    fn empty_region_scan_returns_nothing() {
        let (cat, htm, temps) = setup();
        let plan = PhysicalPlan::Scan(ScanSpec {
            table: "customer".into(),
            region: Region::empty(),
            projection: vec![],
        });
        let mut ctx = ExecContext::new(&cat, &htm, &temps);
        let (_, rows) = execute(&plan, &mut ctx).unwrap();
        assert!(rows.is_empty());
        assert_eq!(ctx.metrics.rows_scanned, 0);
    }
}
