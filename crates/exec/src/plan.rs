//! Physical plan trees.
//!
//! The reuse-aware optimizer produces these; the executor interprets them.
//! A plan node's output schema is computed structurally against the catalog
//! (qualified attribute names throughout).

use std::sync::Arc;

use hashstash_types::{HsError, HtId, Result, Schema};

use hashstash_plan::{AggExpr, HtFingerprint, PredBox, Region, ReuseCase};
use hashstash_storage::Catalog;

/// A base-table scan restricted to a predicate region.
///
/// `region` may be [`Region::all`] (full scan), a single box (ordinary
/// selection) or a union of boxes (the delta scan `r ∧ ¬c` of partial and
/// overlapping reuse). The executor uses a sorted secondary index when one
/// exists on a constrained attribute.
#[derive(Debug, Clone)]
pub struct ScanSpec {
    /// Base table name.
    pub table: Arc<str>,
    /// Predicate region over this table's (qualified) attributes.
    pub region: Region,
    /// Output attributes (qualified). Empty means "all columns".
    pub projection: Vec<Arc<str>>,
}

impl ScanSpec {
    /// Scan everything.
    pub fn full(table: &str) -> Self {
        ScanSpec {
            table: table.into(),
            region: Region::all(),
            projection: Vec::new(),
        }
    }

    /// Scan with a single-box predicate.
    pub fn filtered(table: &str, pred: PredBox) -> Self {
        ScanSpec {
            table: table.into(),
            region: Region::from_box(pred),
            projection: Vec::new(),
        }
    }

    /// Restrict the output columns.
    pub fn project(mut self, attrs: &[&str]) -> Self {
        self.projection = attrs.iter().map(|a| Arc::from(*a)).collect();
        self
    }
}

/// How a join/aggregate node reuses a cached hash table.
#[derive(Debug, Clone)]
pub struct ReuseSpec {
    /// The cached table to check out.
    pub id: HtId,
    /// Reuse case decided by the matcher.
    pub case: ReuseCase,
    /// Post-filter applied to reused tuples (subsuming/overlapping): the
    /// requesting predicates restricted to attributes stored in the payload.
    pub post_filter: Option<PredBox>,
    /// Region of the *requesting* operator; used at check-in to widen the
    /// cached table's lineage after missing tuples were added.
    pub request_region: Region,
    /// Region of the *cached* table at planning time. The executor
    /// re-validates it at checkout: if a concurrent session widened the
    /// table's lineage in between, the classification (and delta/post
    /// filter) computed here is stale and the query must re-plan.
    pub cached_region: Region,
    /// Payload schema of the cached table (known to the optimizer from the
    /// candidate's statistics), so plan schemas are computable even when the
    /// build sub-plan is eliminated.
    pub schema: Schema,
}

/// How an aggregate output column is produced from stored accumulators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutputAgg {
    /// Finalize the accumulator at this index.
    Direct(usize),
    /// `AVG` reconstructed from rewritten `SUM`/`COUNT` accumulators
    /// (benefit-oriented optimization, paper §3.4).
    AvgOf { sum_idx: usize, count_idx: usize },
}

/// A node of the physical plan tree.
#[derive(Debug, Clone)]
pub enum PhysicalPlan {
    /// Leaf scan.
    Scan(ScanSpec),
    /// Row-level filter (used for residual predicates).
    Filter {
        input: Box<PhysicalPlan>,
        predicate: PredBox,
    },
    /// Column projection.
    Project {
        input: Box<PhysicalPlan>,
        attrs: Vec<Arc<str>>,
    },
    /// Concatenation of disjoint inputs with identical schemas. Used to
    /// evaluate multi-box delta regions: each disjoint box becomes one
    /// input, so no deduplication is needed.
    Union { inputs: Vec<PhysicalPlan> },
    /// Hash join. Output schema = probe schema ++ build schema.
    HashJoin {
        /// Probe side (pipelined through).
        probe: Box<PhysicalPlan>,
        /// Build side. `None` only when an exact/subsuming reuse removes the
        /// entire build sub-plan; with partial/overlapping reuse this is the
        /// *delta* sub-plan producing the missing tuples.
        build: Option<Box<PhysicalPlan>>,
        /// Qualified join key attribute resolved against the probe schema.
        probe_key: Arc<str>,
        /// Qualified join key attribute resolved against the build schema.
        build_key: Arc<str>,
        /// Reuse directive, if a cached table serves this join.
        reuse: Option<ReuseSpec>,
        /// Publish the build-side table after execution (HashStash caches
        /// every pipeline-breaker table; baselines pass `None`).
        publish: Option<HtFingerprint>,
    },
    /// Materialize the input into the temp-table cache and pass it through
    /// (materialization-based baseline: the paper's "Mat." strategy pays
    /// this copy during the original query).
    Materialize {
        input: Box<PhysicalPlan>,
        fingerprint: HtFingerprint,
    },
    /// Scan a previously materialized temp table, optionally post-filtering
    /// (subsuming reuse — the only non-exact case the baseline supports).
    TempScan {
        id: crate::temp::TempId,
        schema: Schema,
        post_filter: Option<PredBox>,
    },
    /// Hash aggregate (SPJA root).
    HashAggregate {
        /// Input rows. `None` only for exact reuse of the aggregate table.
        input: Option<Box<PhysicalPlan>>,
        /// Group-by attributes of the *stored* hash table.
        group_by: Vec<Arc<str>>,
        /// Aggregates of the *stored* hash table (post AVG rewrite).
        aggs: Vec<AggExpr>,
        /// Map from stored accumulators to the query's requested outputs.
        output_aggs: Vec<OutputAgg>,
        /// Reuse directive.
        reuse: Option<ReuseSpec>,
        /// Publish directive.
        publish: Option<HtFingerprint>,
        /// Re-group on a subset of `group_by` before output (exact reuse
        /// with removed group-by attributes, paper Figure 2 / Q3).
        post_group_by: Option<Vec<Arc<str>>>,
    },
}

impl PhysicalPlan {
    /// Output schema of the node.
    pub fn schema(&self, catalog: &Catalog) -> Result<Schema> {
        match self {
            PhysicalPlan::Scan(s) => {
                let table = catalog.get(&s.table)?;
                let qualified = table.qualified_schema();
                if s.projection.is_empty() {
                    Ok(qualified)
                } else {
                    let names: Vec<&str> = s.projection.iter().map(|a| a.as_ref()).collect();
                    qualified.project(&names)
                }
            }
            PhysicalPlan::Filter { input, .. } => input.schema(catalog),
            PhysicalPlan::Materialize { input, .. } => input.schema(catalog),
            PhysicalPlan::Union { inputs } => inputs
                .first()
                .ok_or_else(|| HsError::PlanError("empty union".into()))?
                .schema(catalog),
            PhysicalPlan::TempScan { schema, .. } => Ok(schema.clone()),
            PhysicalPlan::Project { input, attrs } => {
                let in_schema = input.schema(catalog)?;
                let names: Vec<&str> = attrs.iter().map(|a| a.as_ref()).collect();
                in_schema.project(&names)
            }
            PhysicalPlan::HashJoin {
                probe,
                build,
                reuse,
                publish,
                ..
            } => {
                let probe_schema = probe.schema(catalog)?;
                let build_schema = self.join_build_schema(catalog, build, reuse, publish)?;
                Ok(probe_schema.concat(&build_schema))
            }
            PhysicalPlan::HashAggregate {
                group_by,
                output_aggs,
                post_group_by,
                input,
                reuse,
                ..
            } => {
                // Group columns keep their input types; aggregates are FLOAT
                // except COUNT (INT). We need the types of group attributes:
                // derive from the input schema when present, else from the
                // catalog (reuse-only node).
                let group_attrs = post_group_by.as_ref().unwrap_or(group_by);
                let mut fields = Vec::new();
                for g in group_attrs {
                    let dtype = match input {
                        Some(i) => i.schema(catalog)?.field(g)?.dtype,
                        None => lookup_attr_type(catalog, g)?,
                    };
                    fields.push(hashstash_types::Field::new(g.to_string(), dtype));
                }
                let _ = reuse;
                for (i, oa) in output_aggs.iter().enumerate() {
                    let dtype = match oa {
                        OutputAgg::Direct(idx) => {
                            match self.stored_agg_func(*idx) {
                                Some(hashstash_plan::AggFunc::Count) => {
                                    hashstash_types::DataType::Int
                                }
                                Some(hashstash_plan::AggFunc::Min)
                                | Some(hashstash_plan::AggFunc::Max) => {
                                    // Min/Max preserve input type; fall back
                                    // to FLOAT (numeric aggregates only in
                                    // our workloads… except dates). Use the
                                    // attr's type when resolvable.
                                    self.stored_agg_attr(*idx)
                                        .and_then(|a| lookup_attr_type(catalog, &a).ok())
                                        .unwrap_or(hashstash_types::DataType::Float)
                                }
                                _ => hashstash_types::DataType::Float,
                            }
                        }
                        OutputAgg::AvgOf { .. } => hashstash_types::DataType::Float,
                    };
                    fields.push(hashstash_types::Field::new(format!("agg_{i}"), dtype));
                }
                Ok(Schema::new(fields))
            }
        }
    }

    fn stored_agg_func(&self, idx: usize) -> Option<hashstash_plan::AggFunc> {
        match self {
            PhysicalPlan::HashAggregate { aggs, .. } => aggs.get(idx).map(|a| a.func),
            _ => None,
        }
    }

    fn stored_agg_attr(&self, idx: usize) -> Option<Arc<str>> {
        match self {
            PhysicalPlan::HashAggregate { aggs, .. } => aggs.get(idx).map(|a| a.attr.clone()),
            _ => None,
        }
    }

    /// Schema of a join's build-side payload rows.
    ///
    /// With a build sub-plan this is its output schema. With build removed
    /// (exact/subsuming reuse) it is the cached table's schema, which the
    /// executor learns at checkout — for schema *computation* we require the
    /// publish/reuse fingerprints to carry the payload attributes, and
    /// resolve their types from the catalog.
    fn join_build_schema(
        &self,
        catalog: &Catalog,
        build: &Option<Box<PhysicalPlan>>,
        reuse: &Option<ReuseSpec>,
        publish: &Option<HtFingerprint>,
    ) -> Result<Schema> {
        if let Some(b) = build {
            return b.schema(catalog);
        }
        if let Some(r) = reuse {
            return Ok(r.schema.clone());
        }
        // No build and no reuse: only legal when a publish fingerprint names
        // the payload attributes (not produced by the current optimizer, but
        // kept total for hand-written plans).
        match publish {
            Some(fp) => {
                let mut fields = Vec::new();
                for a in &fp.payload_attrs {
                    fields.push(hashstash_types::Field::new(
                        a.to_string(),
                        lookup_attr_type(catalog, a)?,
                    ));
                }
                Ok(Schema::new(fields))
            }
            None => Err(HsError::PlanError(
                "join with eliminated build side needs a reuse spec or publish fingerprint".into(),
            )),
        }
    }

    /// Count plan nodes (used by optimizer statistics and tests).
    pub fn node_count(&self) -> usize {
        match self {
            PhysicalPlan::Scan(_) | PhysicalPlan::TempScan { .. } => 1,
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::Materialize { input, .. } => 1 + input.node_count(),
            PhysicalPlan::Union { inputs } => {
                1 + inputs.iter().map(PhysicalPlan::node_count).sum::<usize>()
            }
            PhysicalPlan::HashJoin { probe, build, .. } => {
                1 + probe.node_count() + build.as_ref().map_or(0, |b| b.node_count())
            }
            PhysicalPlan::HashAggregate { input, .. } => {
                1 + input.as_ref().map_or(0, |i| i.node_count())
            }
        }
    }

    /// Collect the reuse decisions in the tree (for experiment reporting:
    /// the paper's `N`/`S`/`X` decision strings, Table 8b).
    pub fn reuse_decisions(&self) -> Vec<(String, Option<ReuseCase>)> {
        let mut out = Vec::new();
        self.collect_decisions(&mut out);
        out
    }

    /// Collect every reuse directive in the tree, in execution order. The
    /// session uses this to check out (pin) all chosen tables right after
    /// optimization, before execution starts.
    pub fn reuse_specs(&self) -> Vec<&ReuseSpec> {
        let mut out = Vec::new();
        self.collect_reuse_specs(&mut out);
        out
    }

    fn collect_reuse_specs<'p>(&'p self, out: &mut Vec<&'p ReuseSpec>) {
        match self {
            PhysicalPlan::Scan(_) | PhysicalPlan::TempScan { .. } => {}
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::Materialize { input, .. } => input.collect_reuse_specs(out),
            PhysicalPlan::Union { inputs } => {
                for i in inputs {
                    i.collect_reuse_specs(out);
                }
            }
            PhysicalPlan::HashJoin {
                probe,
                build,
                reuse,
                ..
            } => {
                probe.collect_reuse_specs(out);
                if let Some(b) = build {
                    b.collect_reuse_specs(out);
                }
                if let Some(r) = reuse {
                    out.push(r);
                }
            }
            PhysicalPlan::HashAggregate { input, reuse, .. } => {
                if let Some(i) = input {
                    i.collect_reuse_specs(out);
                }
                if let Some(r) = reuse {
                    out.push(r);
                }
            }
        }
    }

    fn collect_decisions(&self, out: &mut Vec<(String, Option<ReuseCase>)>) {
        match self {
            PhysicalPlan::Scan(_) | PhysicalPlan::TempScan { .. } => {}
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::Materialize { input, .. } => input.collect_decisions(out),
            PhysicalPlan::Union { inputs } => {
                for i in inputs {
                    i.collect_decisions(out);
                }
            }
            PhysicalPlan::HashJoin {
                probe,
                build,
                reuse,
                build_key,
                ..
            } => {
                probe.collect_decisions(out);
                if let Some(b) = build {
                    b.collect_decisions(out);
                }
                out.push((format!("join[{build_key}]"), reuse.as_ref().map(|r| r.case)));
            }
            PhysicalPlan::HashAggregate { input, reuse, .. } => {
                if let Some(i) = input {
                    i.collect_decisions(out);
                }
                out.push(("agg".to_string(), reuse.as_ref().map(|r| r.case)));
            }
        }
    }
}

/// Resolve a qualified attribute's type from the catalog.
pub fn lookup_attr_type(catalog: &Catalog, attr: &str) -> Result<hashstash_types::DataType> {
    let (table, column) = attr
        .split_once('.')
        .ok_or_else(|| HsError::UnknownColumn(attr.to_string()))?;
    let t = catalog.get(table)?;
    Ok(t.schema().field(column)?.dtype)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hashstash_storage::tpch::{generate, TpchConfig};

    fn catalog() -> Catalog {
        generate(TpchConfig::new(0.001, 3))
    }

    #[test]
    fn scan_schema_projection() {
        let cat = catalog();
        let scan = PhysicalPlan::Scan(
            ScanSpec::full("customer").project(&["customer.c_custkey", "customer.c_age"]),
        );
        let s = scan.schema(&cat).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.field_at(1).name, "customer.c_age");
    }

    #[test]
    fn join_schema_concatenates() {
        let cat = catalog();
        let plan = PhysicalPlan::HashJoin {
            probe: Box::new(PhysicalPlan::Scan(
                ScanSpec::full("orders").project(&["orders.o_orderkey", "orders.o_custkey"]),
            )),
            build: Some(Box::new(PhysicalPlan::Scan(
                ScanSpec::full("customer").project(&["customer.c_custkey"]),
            ))),
            probe_key: "orders.o_custkey".into(),
            build_key: "customer.c_custkey".into(),
            reuse: None,
            publish: None,
        };
        let s = plan.schema(&cat).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.field_at(0).name, "orders.o_orderkey");
        assert_eq!(s.field_at(2).name, "customer.c_custkey");
    }

    #[test]
    fn lookup_attr_type_works() {
        let cat = catalog();
        assert_eq!(
            lookup_attr_type(&cat, "lineitem.l_shipdate").unwrap(),
            hashstash_types::DataType::Date
        );
        assert!(lookup_attr_type(&cat, "nope").is_err());
        assert!(lookup_attr_type(&cat, "lineitem.nope").is_err());
    }

    #[test]
    fn node_count_counts() {
        let plan = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::Scan(ScanSpec::full("customer"))),
            predicate: PredBox::all(),
        };
        assert_eq!(plan.node_count(), 2);
    }
}
