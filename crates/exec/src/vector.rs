//! Selection-vector kernels for the columnar hot paths.
//!
//! The scan / probe / aggregate inner loops of [`crate::exec`] can run
//! directly over [`Column`] slices: a scan produces a *selection vector* of
//! surviving row ids per morsel instead of materialized rows, filters refine
//! that vector in place, and the probe / aggregate key extraction reads the
//! key column through a monomorphized [`KeyKernel`] — no per-row scalar
//! boxing anywhere in the loop. Rows are materialized only at pipeline
//! edges (operator outputs, hash-table payloads).
//!
//! Everything here is deliberately scalar-free: this module never touches
//! the boxed scalar type, only typed slices and the `key64_*` primitives of
//! `hashstash_types` (the in-tree `no-value-in-kernels` tidy lint keeps it
//! that way). Predicate lowering — which *does* inspect boxed bounds — lives
//! in `exec.rs` and hands kernels down ([`hashstash_storage::RangeKernel`]).
//!
//! Determinism: selection vectors are built with [`collect_morsels`], so
//! row-id order (and therefore every downstream row order, accumulator fold
//! order, and published hash-table layout) is identical to the serial
//! row-at-a-time interpreter at any worker count. `HS_VECTORIZE=0` disables
//! the columnar paths entirely, keeping the row interpreter available as a
//! differential oracle.

use std::ops::Range;
use std::sync::{Arc, OnceLock};

use hashstash_storage::{Column, RangeKernel, Table};
use hashstash_types::{key64_combine, key64_date, key64_float, key64_int, key64_str, KEY64_SEED};

use crate::parallel::{collect_morsels, Scheduler};

/// Whether columnar execution is enabled by default: the `HS_VECTORIZE`
/// environment variable, with `0` selecting the row-at-a-time oracle and
/// anything else (including unset) selecting the vectorized paths.
pub fn default_vectorize() -> bool {
    static VECTORIZE: OnceLock<bool> = OnceLock::new();
    *VECTORIZE.get_or_init(|| std::env::var("HS_VECTORIZE").map_or(true, |v| v != "0"))
}

/// A batch flowing between columnar operators: a base table plus the
/// projection the consumer sees and the row ids that survived filtering so
/// far. This is the *only* intermediate representation on the vectorized
/// scan → filter → probe/aggregate spine; rows are materialized from it at
/// pipeline edges via `Table::row_projected`.
#[derive(Debug, Clone)]
pub struct ColumnarBatch {
    /// The base table the row ids index into.
    pub table: Arc<Table>,
    /// Output column positions (into `table`), in output-schema order.
    pub proj: Vec<usize>,
    /// Surviving row ids, in ascending scan order per region box.
    pub sel: Vec<u32>,
}

/// A monomorphized key-extraction kernel over one column: `key64(rid)`
/// reproduces exactly what the row interpreter's per-row key extraction
/// computes, without materializing the scalar. Dictionary columns hash each
/// distinct string once up front and look keys up by code.
pub enum KeyKernel<'a> {
    Int(&'a [i64]),
    Float(&'a [f64]),
    Date(&'a [i32]),
    Dict {
        codes: &'a [u32],
        key_by_code: Vec<u64>,
    },
}

impl KeyKernel<'_> {
    /// The 64-bit hash key of row `rid`, identical to the row-at-a-time
    /// `key64` of the same cell.
    #[inline]
    pub fn key64(&self, rid: usize) -> u64 {
        match self {
            KeyKernel::Int(v) => key64_int(v[rid]),
            KeyKernel::Float(v) => key64_float(v[rid]),
            KeyKernel::Date(v) => key64_date(v[rid]),
            KeyKernel::Dict { codes, key_by_code } => key_by_code[codes[rid] as usize],
        }
    }
}

/// Build the key kernel for a column.
pub fn key_kernel(col: &Column) -> KeyKernel<'_> {
    if let Some(v) = col.as_int() {
        return KeyKernel::Int(v);
    }
    if let Some(v) = col.as_float() {
        return KeyKernel::Float(v);
    }
    if let Some(v) = col.as_date() {
        return KeyKernel::Date(v);
    }
    // tidy:allow(no-panic-paths): the four accessors above cover every Column variant
    let (dict, codes) = col.dict_parts().expect("column variants are exhaustive");
    KeyKernel::Dict {
        codes,
        key_by_code: dict.iter().map(|s| key64_str(s)).collect(),
    }
}

/// Composite group key over several kernels, mirroring the row
/// interpreter's multi-column combiner: no columns hash to the constant
/// empty key, one column is its own key, several mix with the FNV-style
/// combiner in column order.
#[inline]
pub fn group_key64(kernels: &[KeyKernel<'_>], rid: usize) -> u64 {
    match kernels {
        [] => 0,
        [k] => k.key64(rid),
        many => {
            let mut h = KEY64_SEED;
            for k in many {
                h = key64_combine(h, k.key64(rid));
            }
            h
        }
    }
}

/// Run the lowered checks over `rows` rows of `table` and return the
/// selection vector of survivors, morsel-parallel with morsel-order
/// concatenation (so the vector is in ascending row-id order, matching the
/// serial filter loop). The first check scans its column range directly;
/// the remaining checks refine the morsel's vector in place.
///
/// Panics (debug) if a kernel's type does not match its column — lowering
/// in `exec.rs` checks types before constructing kernels.
pub fn select_rows(
    sched: Scheduler<'_>,
    table: &Table,
    checks: &[(usize, RangeKernel)],
    rows: usize,
) -> Vec<u32> {
    collect_morsels(sched, rows, |range: Range<usize>| {
        let mut sel = Vec::new();
        match checks.split_first() {
            None => sel.extend(range.map(|i| i as u32)),
            Some(((col, kernel), rest)) => {
                let matched = table.column(*col).select_range(range, kernel, &mut sel);
                debug_assert!(matched, "kernel type checked at lowering");
                for (col, kernel) in rest {
                    let matched = table.column(*col).refine_range(kernel, &mut sel);
                    debug_assert!(matched, "kernel type checked at lowering");
                }
            }
        }
        sel
    })
}

/// Refine an existing selection vector with one more lowered check,
/// morsel-parallel over the vector itself. Returns the number of row ids
/// filtered out.
pub fn refine_selection(
    sched: Scheduler<'_>,
    table: &Table,
    col: usize,
    kernel: &RangeKernel,
    sel: &mut Vec<u32>,
) -> u64 {
    let before = sel.len();
    let sel_ref: &[u32] = sel;
    let refined = collect_morsels(sched, sel_ref.len(), |range: Range<usize>| {
        let mut chunk = sel_ref[range].to_vec();
        let matched = table.column(col).refine_range(kernel, &mut chunk);
        debug_assert!(matched, "kernel type checked at lowering");
        chunk
    });
    *sel = refined;
    (before - sel.len()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use hashstash_storage::{ColumnBuilder, TableBuilder};
    use hashstash_types::{DataType, Row};

    fn sample_table() -> Table {
        let mut b = TableBuilder::new(
            "t",
            vec![
                ("a", DataType::Int),
                ("f", DataType::Float),
                ("d", DataType::Date),
                ("s", DataType::Str),
            ],
        );
        for i in 0..10i64 {
            b.push_row(vec![
                hashstash_types::Value::Int(i),
                hashstash_types::Value::float(i as f64 * 0.5),
                hashstash_types::Value::Date(i as i32),
                hashstash_types::Value::str(if i % 2 == 0 { "even" } else { "odd" }),
            ]);
        }
        b.finish()
    }

    #[test]
    fn key_kernels_match_row_keys() {
        let t = sample_table();
        for col in 0..4 {
            let kernel = key_kernel(t.column(col));
            for rid in 0..t.row_count() {
                assert_eq!(
                    kernel.key64(rid),
                    t.row(rid).key64(&[col]),
                    "col {col} rid {rid}"
                );
            }
        }
    }

    #[test]
    fn group_keys_match_row_keys() {
        let t = sample_table();
        let kernels: Vec<KeyKernel<'_>> = [0usize, 3]
            .iter()
            .map(|&c| key_kernel(t.column(c)))
            .collect();
        for rid in 0..t.row_count() {
            assert_eq!(group_key64(&kernels, rid), t.row(rid).key64(&[0, 3]));
        }
        assert_eq!(group_key64(&[], 5), Row::new(vec![]).key64(&[]));
    }

    #[test]
    fn select_rows_matches_serial_filter() {
        let t = sample_table();
        let checks = vec![
            (0usize, RangeKernel::Int { lo: 2, hi: 8 }),
            (
                3usize,
                RangeKernel::Dict {
                    ok: vec![true, false], // only the first dict entry ("even")
                },
            ),
        ];
        let sel = select_rows(Scheduler::from(1usize), &t, &checks, t.row_count());
        assert_eq!(sel, vec![2, 4, 6, 8]);
        // No checks: everything survives in order.
        let all = select_rows(Scheduler::from(1usize), &t, &[], t.row_count());
        assert_eq!(all, (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn refine_selection_counts_filtered_rows() {
        let t = sample_table();
        let mut sel: Vec<u32> = (0..10).collect();
        let dropped = refine_selection(
            Scheduler::from(1usize),
            &t,
            0,
            &RangeKernel::Int { lo: 5, hi: 7 },
            &mut sel,
        );
        assert_eq!(sel, vec![5, 6, 7]);
        assert_eq!(dropped, 7);
    }

    #[test]
    fn empty_column_builder_note() {
        // Keep a reference to ColumnBuilder so the storage dev-dependency
        // surface used above stays exercised from this crate too.
        let c = ColumnBuilder::with_capacity(DataType::Int, 4).finish();
        assert_eq!(c.len(), 0);
    }
}
