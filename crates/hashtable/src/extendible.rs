//! Extendible hashing with lazily split, index-linked collision chains.
//!
//! # Layout
//!
//! ```text
//! directory: [head: u32; 2^g]     (g = global depth)
//! depth:     [u8; 2^g]            (per-bucket local depth, <= g)
//! arena:     Vec<Entry<V>>        (contiguous; u32 next-links)
//! ```
//!
//! A key hashes to bucket `key & (2^g - 1)`. When the average chain length
//! exceeds a threshold the directory doubles — an O(directory) operation that
//! copies *no entries*. Every bucket remembers the depth `d` at which its
//! chain was last rebuilt; a whole *family* of directory slots that share the
//! same low `d` bits keeps its entries chained at the family root. The first
//! access that touches a stale bucket redistributes the family's chain across
//! all members at the current depth (`freshen`). This matches the paper's
//! description: "instead of re-hashing all entries, only the bucket array
//! needs to get resized and entries can be assigned to the new buckets
//! lazily."

const NIL: u32 = u32::MAX;

/// Average chain length that triggers a directory doubling.
const MAX_AVG_CHAIN: usize = 2;

/// One arena slot: a key, the chain link and the payload.
#[derive(Debug, Clone)]
struct Entry<V> {
    key: u64,
    next: u32,
    value: V,
}

/// Statistics the Hash Table Manager stores per cached table (paper §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HtStats {
    /// Total number of entries (tuples) in the table.
    pub entries: usize,
    /// Number of distinct keys.
    pub distinct_keys: usize,
    /// Logical tuple width in bytes (the paper's `tWidth`).
    pub tuple_width: usize,
    /// Logical memory footprint in bytes (the paper's `htSize`).
    pub bytes: usize,
    /// Number of directory doublings performed so far.
    pub resizes: usize,
}

/// An extendible, multi-map hash table keyed by `u64`.
///
/// * Join build sides insert duplicates ([`insert`](Self::insert)) and scan
///   matches with [`probe`](Self::probe).
/// * Aggregations keep one entry per key via [`upsert`](Self::upsert).
/// * Shared/reuse-aware operators post-process entries in place with
///   [`for_each_mut`](Self::for_each_mut) / [`retain`](Self::retain).
///
/// The `u64` key is a *hash key*: callers that need exact key semantics embed
/// the full key in `V` and verify on probe (the engine's operators do this
/// for string keys; integer/date keys are injective into `u64`).
#[derive(Debug, Clone)]
pub struct ExtendibleHashTable<V> {
    directory: Vec<u32>,
    depth: Vec<u8>,
    arena: Vec<Entry<V>>,
    global_depth: u8,
    distinct_keys: usize,
    /// Logical width of one tuple in bytes; used for `htSize` statistics fed
    /// to the cost model (actual `V` layout may differ).
    tuple_width: usize,
    resizes: usize,
}

impl<V> ExtendibleHashTable<V> {
    /// Create a table with an initial directory of two buckets.
    ///
    /// `tuple_width` is the *logical* width in bytes of one stored tuple. It
    /// parameterizes the cost model (`tWidth`); it does not change storage.
    pub fn new(tuple_width: usize) -> Self {
        Self::with_capacity(tuple_width, 0)
    }

    /// Create a table pre-sized for `capacity` entries, so that no resize
    /// happens until the capacity is exceeded. Mirrors the `c_resize`
    /// component of the paper's cost model: the reuse-aware operators resize
    /// once up front instead of incrementally.
    pub fn with_capacity(tuple_width: usize, capacity: usize) -> Self {
        let buckets = (capacity / MAX_AVG_CHAIN + 1).next_power_of_two().max(2);
        let global_depth = buckets.trailing_zeros() as u8;
        ExtendibleHashTable {
            directory: vec![NIL; buckets],
            depth: vec![global_depth; buckets],
            arena: Vec::with_capacity(capacity),
            global_depth,
            distinct_keys: 0,
            tuple_width,
            resizes: 0,
        }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// Whether the table holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }

    /// Number of distinct keys currently stored.
    #[inline]
    pub fn distinct_keys(&self) -> usize {
        self.distinct_keys
    }

    /// Number of directory slots (2^global_depth).
    #[inline]
    pub fn bucket_count(&self) -> usize {
        self.directory.len()
    }

    /// Logical tuple width in bytes (the cost model's `tWidth`).
    #[inline]
    pub fn tuple_width(&self) -> usize {
        self.tuple_width
    }

    /// Logical memory footprint in bytes (the cost model's `htSize`):
    /// directory slots plus per-entry header and logical payload.
    pub fn logical_bytes(&self) -> usize {
        self.directory.len() * 5 + self.arena.len() * (12 + self.tuple_width)
    }

    /// Actual heap footprint in bytes of the directory and arena.
    pub fn heap_bytes(&self) -> usize {
        self.directory.capacity() * std::mem::size_of::<u32>()
            + self.depth.capacity()
            + self.arena.capacity() * std::mem::size_of::<Entry<V>>()
    }

    /// Snapshot of the statistics the Hash Table Manager keeps.
    pub fn stats(&self) -> HtStats {
        HtStats {
            entries: self.len(),
            distinct_keys: self.distinct_keys,
            tuple_width: self.tuple_width,
            bytes: self.logical_bytes(),
            resizes: self.resizes,
        }
    }

    #[inline]
    fn mask(depth: u8) -> u64 {
        (1u64 << depth) - 1
    }

    #[inline]
    fn bucket_of(&self, key: u64) -> usize {
        (key & Self::mask(self.global_depth)) as usize
    }

    /// Bring bucket `i`'s chain up to the current global depth by splitting
    /// its family root. Amortized O(1) per entry per doubling.
    fn freshen(&mut self, i: usize) {
        let d = self.depth[i];
        if d == self.global_depth {
            return;
        }
        let root = i & Self::mask(d) as usize;
        // Detach the family chain from the root.
        let mut node = self.directory[root];
        self.directory[root] = NIL;
        // Mark the whole family fresh. Family members are root + k*2^d.
        let family = 1usize << (self.global_depth - d);
        for k in 0..family {
            let member = root + (k << d);
            self.depth[member] = self.global_depth;
            debug_assert!(member == root || self.directory[member] == NIL);
        }
        // Redistribute the chain by the low `global_depth` bits of each key.
        while node != NIL {
            let next = self.arena[node as usize].next;
            let target = self.bucket_of(self.arena[node as usize].key);
            self.arena[node as usize].next = self.directory[target];
            self.directory[target] = node;
            node = next;
        }
    }

    /// Double the directory. Entries are *not* moved — new slots inherit the
    /// family depth of their lower half and are split lazily on first touch.
    fn grow_directory(&mut self) {
        let old = self.directory.len();
        assert!(old.checked_mul(2).is_some(), "directory overflow");
        self.directory.resize(old * 2, NIL);
        self.depth.extend_from_within(0..old);
        self.global_depth += 1;
        self.resizes += 1;
    }

    #[inline]
    fn maybe_grow(&mut self) {
        if self.arena.len() >= self.directory.len() * MAX_AVG_CHAIN {
            self.grow_directory();
        }
    }

    /// Insert a `(key, value)` pair, allowing duplicate keys (multi-map).
    ///
    /// Returns `true` if the key was not present before (used to maintain the
    /// distinct-key statistic).
    pub fn insert(&mut self, key: u64, value: V) -> bool {
        self.maybe_grow();
        let b = self.bucket_of(key);
        self.freshen(b);
        // Walk the chain once to learn whether the key is new.
        let mut node = self.directory[b];
        let mut new_key = true;
        while node != NIL {
            let e = &self.arena[node as usize];
            if e.key == key {
                new_key = false;
                break;
            }
            node = e.next;
        }
        let idx = self.arena.len() as u32;
        self.arena.push(Entry {
            key,
            next: self.directory[b],
            value,
        });
        self.directory[b] = idx;
        if new_key {
            self.distinct_keys += 1;
        }
        new_key
    }

    /// Iterate over the values stored under `key`.
    pub fn probe(&mut self, key: u64) -> ProbeIter<'_, V> {
        let b = self.bucket_of(key);
        self.freshen(b);
        ProbeIter {
            arena: &self.arena,
            node: self.directory[b],
            key,
        }
    }

    /// Probe without freshening (read-only). Falls back to scanning the
    /// family root chain when the bucket is stale, so it never misses.
    pub fn probe_readonly(&self, key: u64) -> ProbeIter<'_, V> {
        let i = self.bucket_of(key);
        let d = self.depth[i];
        let root = i & Self::mask(d) as usize;
        ProbeIter {
            arena: &self.arena,
            node: self.directory[root],
            key,
        }
    }

    /// Mutable access to the first entry with `key`, if any.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        let b = self.bucket_of(key);
        self.freshen(b);
        let mut node = self.directory[b];
        while node != NIL {
            let e = &self.arena[node as usize];
            if e.key == key {
                return Some(&mut self.arena[node as usize].value);
            }
            node = e.next;
        }
        None
    }

    /// Aggregate-style access: update the entry under `key`, inserting it
    /// first via `init` if missing. Returns `true` if a new entry was
    /// created (the paper's `c_insert` path) and `false` if an existing one
    /// was updated (`c_update` path).
    pub fn upsert<I, U>(&mut self, key: u64, init: I, update: U) -> bool
    where
        I: FnOnce() -> V,
        U: FnOnce(&mut V),
    {
        if let Some(v) = self.get_mut(key) {
            update(v);
            false
        } else {
            self.insert(key, init());
            true
        }
    }

    /// Like [`upsert`](Self::upsert) but verifies candidate entries with
    /// `matches` before updating, so callers whose 64-bit keys are *hashes*
    /// of wider keys (e.g. string group keys) stay correct under collisions.
    pub fn upsert_where<M, I, U>(&mut self, key: u64, matches: M, init: I, update: U) -> bool
    where
        M: Fn(&V) -> bool,
        I: FnOnce() -> V,
        U: FnOnce(&mut V),
    {
        let b = self.bucket_of(key);
        self.freshen(b);
        let mut node = self.directory[b];
        while node != NIL {
            let e = &self.arena[node as usize];
            if e.key == key && matches(&e.value) {
                update(&mut self.arena[node as usize].value);
                return false;
            }
            node = e.next;
        }
        self.insert(key, init());
        true
    }

    /// Iterate over all `(key, value)` pairs in arena order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.arena.iter().map(|e| (e.key, &e.value))
    }

    /// Iterate over the `(key, value)` pairs stored in arena slots `range`,
    /// in arena order — the row-range access path of morsel-parallel
    /// consumers: workers each take a disjoint range, and concatenating the
    /// ranges in order reproduces [`iter`](Self::iter) exactly.
    pub fn iter_range(&self, range: std::ops::Range<usize>) -> impl Iterator<Item = (u64, &V)> {
        self.arena[range].iter().map(|e| (e.key, &e.value))
    }

    /// Mutate every value in place (shared-plan re-tagging, paper §4.1).
    pub fn for_each_mut(&mut self, mut f: impl FnMut(u64, &mut V)) {
        for e in &mut self.arena {
            f(e.key, &mut e.value);
        }
    }

    /// Keep only entries whose `(key, value)` satisfies the predicate.
    ///
    /// Rebuilds the arena and all chains; used by the fine-grained GC mode
    /// and by tests. O(n).
    pub fn retain(&mut self, mut pred: impl FnMut(u64, &V) -> bool) {
        let old = std::mem::take(&mut self.arena);
        for h in self.directory.iter_mut() {
            *h = NIL;
        }
        for d in self.depth.iter_mut() {
            *d = self.global_depth;
        }
        self.distinct_keys = 0;
        for e in old {
            if pred(e.key, &e.value) {
                // Re-insert without growth checks: directory is already
                // large enough.
                let b = self.bucket_of(e.key);
                let mut node = self.directory[b];
                let mut new_key = true;
                while node != NIL {
                    if self.arena[node as usize].key == e.key {
                        new_key = false;
                        break;
                    }
                    node = self.arena[node as usize].next;
                }
                let idx = self.arena.len() as u32;
                self.arena.push(Entry {
                    key: e.key,
                    next: self.directory[b],
                    value: e.value,
                });
                self.directory[b] = idx;
                if new_key {
                    self.distinct_keys += 1;
                }
            }
        }
    }

    /// Pre-size the directory so `additional` more entries fit without a
    /// doubling. This is the explicit `c_resize` step of the reuse-aware
    /// operators: pay the directory growth once, up front.
    pub fn reserve(&mut self, additional: usize) {
        let needed = self.arena.len() + additional;
        self.arena.reserve(additional);
        while self.directory.len() * MAX_AVG_CHAIN < needed {
            self.grow_directory();
        }
    }

    /// The structural half of a lookup: bring `key`'s bucket up to the
    /// current global depth, without reading or writing any entry.
    ///
    /// [`upsert`](Self::upsert)-style operations freshen the key's bucket on
    /// *every* row, hit or miss — so a stale bucket's lazy split (and the
    /// chain redistribution it performs) happens at a deterministic point in
    /// the input sequence. The partitioned parallel build replays exactly
    /// that freshen history: `touch` for every input row, plus
    /// [`insert`](Self::insert) for the rows that created a group. Skipping
    /// the touches would leave different lazy-split state (and therefore
    /// different chain order after later splits) than the serial build.
    #[inline]
    pub fn touch(&mut self, key: u64) {
        let b = self.bucket_of(key);
        self.freshen(b);
    }

    /// Install the chains computed by a partitioned build
    /// ([`partition_chains`](crate::partitioned::partition_chains)) and the
    /// corresponding key/value columns into this **empty** table, producing
    /// the same table a serial `reserve(n)` + row-order
    /// [`insert`](Self::insert) loop would have produced.
    ///
    /// Requirements (checked): the table is empty and already sized so that
    /// no directory growth happens during `pairs.len()` inserts (call
    /// [`reserve`](Self::reserve) first), the partitions tile the directory
    /// contiguously, and every row is owned by exactly one partition.
    ///
    /// The serial build freshens the bucket of every inserted row; on an
    /// empty table a freshen moves no entries, it only performs the
    /// lazy-split depth bookkeeping. Replaying it per populated bucket (the
    /// set of buckets a serial build would have freshened) reproduces that
    /// bookkeeping exactly, order-independently.
    pub fn fill_from_partitions(
        &mut self,
        keys: &[u64],
        values: Vec<V>,
        parts: Vec<crate::partitioned::ChainPartition>,
    ) {
        use crate::partitioned::PART_NIL;
        assert_eq!(keys.len(), values.len(), "one key per value");
        assert!(
            self.arena.is_empty(),
            "fill_from_partitions: table not empty"
        );
        assert!(
            self.directory.len() * MAX_AVG_CHAIN >= keys.len(),
            "fill_from_partitions: reserve() the table for {} rows first",
            keys.len()
        );
        let mut next_tile = 0usize;
        let owned: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(
            owned,
            keys.len(),
            "every row owned by exactly one partition"
        );
        // Per-row next links in arena terms (arena index == row index).
        let mut next_global = vec![NIL; keys.len()];
        for part in &parts {
            assert_eq!(part.buckets.start, next_tile, "partitions must tile");
            next_tile = part.buckets.end;
            for (pos, &row) in part.rows.iter().enumerate() {
                let link = part.links[pos];
                next_global[row as usize] = if link == PART_NIL {
                    NIL
                } else {
                    part.rows[link as usize]
                };
            }
            for (off, &head) in part.heads.iter().enumerate() {
                if head == PART_NIL {
                    continue;
                }
                let bucket = part.buckets.start + off;
                // Replay the serial build's insert-time freshen (empty-table
                // bookkeeping only — chains are installed below).
                self.freshen(bucket);
                self.directory[bucket] = part.rows[head as usize];
            }
            self.distinct_keys += part.distinct;
        }
        assert_eq!(
            next_tile,
            self.directory.len(),
            "partitions must cover the directory"
        );
        for (i, (&key, value)) in keys.iter().zip(values).enumerate() {
            self.arena.push(Entry {
                key,
                next: next_global[i],
                value,
            });
        }
    }

    /// Borrowed byte-exact structural view for persistence.
    ///
    /// Together with [`from_layout`](Self::from_layout) this round-trips a
    /// table *including* its physical layout: a serialized-then-restored
    /// table is [`layout_eq`](Self::layout_eq) to the original, so probes
    /// answer in the same order and the footprint statistics match.
    pub fn layout(&self) -> HtLayout<'_> {
        HtLayout {
            tuple_width: self.tuple_width,
            global_depth: self.global_depth,
            resizes: self.resizes,
            distinct_keys: self.distinct_keys,
            directory: &self.directory,
            depth: &self.depth,
        }
    }

    /// Arena entries in physical order as `(key, next_link, value)`. The
    /// next-link is the arena index of the next chain node (or `u32::MAX`
    /// for end-of-chain) — opaque to callers, but required to restore the
    /// exact chain structure via [`from_layout`](Self::from_layout).
    pub fn arena_entries(&self) -> impl Iterator<Item = (u64, u32, &V)> {
        self.arena.iter().map(|e| (e.key, e.next, &e.value))
    }

    /// Rebuild a table from a previously exported layout.
    ///
    /// Returns `None` if the parts are structurally inconsistent (directory
    /// and depth length must equal `2^global_depth`, local depths must not
    /// exceed the global depth, and every chain link must stay inside the
    /// arena) — a corrupt or torn persisted image must never produce a
    /// table that panics on probe.
    #[allow(clippy::too_many_arguments)]
    pub fn from_layout(
        tuple_width: usize,
        global_depth: u8,
        resizes: usize,
        distinct_keys: usize,
        directory: Vec<u32>,
        depth: Vec<u8>,
        arena: Vec<(u64, u32, V)>,
    ) -> Option<Self> {
        if global_depth as u32 >= u32::BITS {
            return None;
        }
        let buckets = 1usize << global_depth;
        if directory.len() != buckets || depth.len() != buckets {
            return None;
        }
        let n = arena.len();
        let in_range = |link: u32| link == NIL || (link as usize) < n;
        if !directory.iter().all(|&h| in_range(h)) {
            return None;
        }
        if !depth.iter().all(|&d| d <= global_depth) {
            return None;
        }
        if !arena.iter().all(|&(_, next, _)| in_range(next)) {
            return None;
        }
        if distinct_keys > n {
            return None;
        }
        Some(ExtendibleHashTable {
            directory,
            depth,
            arena: arena
                .into_iter()
                .map(|(key, next, value)| Entry { key, next, value })
                .collect(),
            global_depth,
            distinct_keys,
            tuple_width,
            resizes,
        })
    }

    /// Structural equality down to the physical layout: directory heads,
    /// per-bucket lazy-split depths, arena order, chain links, and all
    /// statistics. Two tables that are `layout_eq` answer every probe in the
    /// same order, report the same footprint, and serialize identically —
    /// the equivalence the parallel-build determinism tests pin.
    pub fn layout_eq(&self, other: &Self) -> bool
    where
        V: PartialEq,
    {
        self.global_depth == other.global_depth
            && self.distinct_keys == other.distinct_keys
            && self.tuple_width == other.tuple_width
            && self.resizes == other.resizes
            && self.directory == other.directory
            && self.depth == other.depth
            && self.arena.len() == other.arena.len()
            && self
                .arena
                .iter()
                .zip(&other.arena)
                .all(|(a, b)| a.key == b.key && a.next == b.next && a.value == b.value)
    }
}

/// Borrowed structural view of an [`ExtendibleHashTable`] for persistence
/// (see [`ExtendibleHashTable::layout`]). Arena entries are exported
/// separately via [`ExtendibleHashTable::arena_entries`] so callers can
/// stream values through their own codec.
#[derive(Debug, Clone, Copy)]
pub struct HtLayout<'a> {
    /// Logical tuple width in bytes.
    pub tuple_width: usize,
    /// Directory depth (`2^global_depth` slots).
    pub global_depth: u8,
    /// Directory doublings performed so far.
    pub resizes: usize,
    /// Distinct keys currently stored.
    pub distinct_keys: usize,
    /// Directory: bucket heads as arena indices (`u32::MAX` = empty).
    pub directory: &'a [u32],
    /// Per-bucket lazy-split local depths.
    pub depth: &'a [u8],
}

/// Iterator over values matching a probe key.
pub struct ProbeIter<'a, V> {
    arena: &'a [Entry<V>],
    node: u32,
    key: u64,
}

impl<'a, V> Iterator for ProbeIter<'a, V> {
    type Item = &'a V;

    fn next(&mut self) -> Option<Self::Item> {
        while self.node != NIL {
            let e = &self.arena[self.node as usize];
            self.node = e.next;
            if e.key == self.key {
                return Some(&e.value);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_probe_roundtrip() {
        let mut ht = ExtendibleHashTable::new(8);
        for i in 0..1000u64 {
            ht.insert(i, i * 10);
        }
        assert_eq!(ht.len(), 1000);
        assert_eq!(ht.distinct_keys(), 1000);
        for i in 0..1000u64 {
            let hits: Vec<_> = ht.probe(i).copied().collect();
            assert_eq!(hits, vec![i * 10]);
        }
        assert!(ht.probe(5000).next().is_none());
    }

    #[test]
    fn multimap_duplicates() {
        let mut ht = ExtendibleHashTable::new(8);
        assert!(ht.insert(42, 1));
        assert!(!ht.insert(42, 2));
        assert!(!ht.insert(42, 3));
        assert_eq!(ht.len(), 3);
        assert_eq!(ht.distinct_keys(), 1);
        let mut hits: Vec<_> = ht.probe(42).copied().collect();
        hits.sort_unstable();
        assert_eq!(hits, vec![1, 2, 3]);
    }

    #[test]
    fn directory_doubles_without_losing_entries() {
        let mut ht = ExtendibleHashTable::new(8);
        let before = ht.bucket_count();
        for i in 0..10_000u64 {
            // adversarial key pattern: many shared low bits
            ht.insert(i.wrapping_mul(0x9e37_79b9_7f4a_7c15), i);
        }
        assert!(ht.bucket_count() > before);
        assert!(ht.stats().resizes > 0);
        let mut count = 0;
        for i in 0..10_000u64 {
            let k = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            count += ht.probe(k).count();
        }
        assert_eq!(count, 10_000);
    }

    #[test]
    fn lazy_split_probe_readonly_never_misses() {
        let mut ht = ExtendibleHashTable::new(8);
        for i in 0..64u64 {
            ht.insert(i, i);
        }
        // Force several doublings without touching most buckets afterwards.
        ht.reserve(4096);
        for i in 0..64u64 {
            let hits: Vec<_> = ht.probe_readonly(i).copied().collect();
            assert_eq!(hits, vec![i], "stale bucket must still be reachable");
        }
    }

    #[test]
    fn upsert_insert_then_update() {
        let mut ht = ExtendibleHashTable::new(16);
        let created = ht.upsert(7, || 100i64, |v| *v += 1);
        assert!(created);
        let created = ht.upsert(7, || 100i64, |v| *v += 1);
        assert!(!created);
        assert_eq!(ht.probe(7).copied().collect::<Vec<_>>(), vec![101]);
        assert_eq!(ht.distinct_keys(), 1);
    }

    #[test]
    fn upsert_where_distinguishes_colliding_values() {
        // Two logical keys that share the same 64-bit hash key.
        let mut ht: ExtendibleHashTable<(&'static str, i64)> = ExtendibleHashTable::new(16);
        ht.upsert_where(7, |v| v.0 == "a", || ("a", 1), |v| v.1 += 1);
        ht.upsert_where(7, |v| v.0 == "b", || ("b", 10), |v| v.1 += 1);
        ht.upsert_where(7, |v| v.0 == "a", || ("a", 1), |v| v.1 += 1);
        let mut vals: Vec<_> = ht.probe(7).copied().collect();
        vals.sort();
        assert_eq!(vals, vec![("a", 2), ("b", 10)]);
    }

    #[test]
    fn get_mut_finds_first_match() {
        let mut ht = ExtendibleHashTable::new(8);
        ht.insert(1, 10);
        assert_eq!(ht.get_mut(1), Some(&mut 10));
        assert_eq!(ht.get_mut(2), None);
        *ht.get_mut(1).unwrap() = 99;
        assert_eq!(ht.probe(1).copied().collect::<Vec<_>>(), vec![99]);
    }

    #[test]
    fn iter_range_tiles_iter_exactly() {
        let mut ht = ExtendibleHashTable::new(8);
        for i in 0..1000u64 {
            ht.insert(i, i * 3);
        }
        let serial: Vec<(u64, u64)> = ht.iter().map(|(k, v)| (k, *v)).collect();
        let mut tiled = Vec::new();
        for start in (0..ht.len()).step_by(128) {
            let end = (start + 128).min(ht.len());
            tiled.extend(ht.iter_range(start..end).map(|(k, v)| (k, *v)));
        }
        assert_eq!(tiled, serial);
        assert_eq!(ht.iter_range(0..0).count(), 0);
    }

    #[test]
    fn for_each_mut_touches_everything() {
        let mut ht = ExtendibleHashTable::new(8);
        for i in 0..100u64 {
            ht.insert(i, 0u64);
        }
        ht.for_each_mut(|k, v| *v = k + 1);
        for i in 0..100u64 {
            assert_eq!(ht.probe(i).copied().collect::<Vec<_>>(), vec![i + 1]);
        }
    }

    #[test]
    fn retain_filters_and_rebuilds() {
        let mut ht = ExtendibleHashTable::new(8);
        for i in 0..100u64 {
            ht.insert(i, i);
        }
        ht.retain(|k, _| k % 2 == 0);
        assert_eq!(ht.len(), 50);
        assert_eq!(ht.distinct_keys(), 50);
        assert!(ht.probe(1).next().is_none());
        assert_eq!(ht.probe(2).copied().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn with_capacity_avoids_resizes() {
        let mut ht = ExtendibleHashTable::with_capacity(8, 10_000);
        for i in 0..10_000u64 {
            ht.insert(i, i);
        }
        assert_eq!(ht.stats().resizes, 0);
    }

    #[test]
    fn reserve_is_explicit_resize() {
        let mut ht = ExtendibleHashTable::new(8);
        for i in 0..100u64 {
            ht.insert(i, i);
        }
        let resizes_before = ht.stats().resizes;
        ht.reserve(100_000);
        let resizes_after = ht.stats().resizes;
        assert!(resizes_after > resizes_before);
        for i in 0..100u64 {
            ht.insert(i + 1000, i);
        }
        assert_eq!(ht.stats().resizes, resizes_after, "no growth after reserve");
    }

    #[test]
    fn logical_bytes_tracks_width_and_entries() {
        let mut narrow = ExtendibleHashTable::new(8);
        let mut wide = ExtendibleHashTable::new(256);
        for i in 0..100u64 {
            narrow.insert(i, ());
            wide.insert(i, ());
        }
        assert!(wide.logical_bytes() > narrow.logical_bytes());
        assert_eq!(
            wide.logical_bytes() - narrow.logical_bytes(),
            100 * (256 - 8)
        );
    }

    #[test]
    fn empty_table_behaviour() {
        let mut ht: ExtendibleHashTable<u64> = ExtendibleHashTable::new(8);
        assert!(ht.is_empty());
        assert_eq!(ht.probe(0).count(), 0);
        assert_eq!(ht.iter().count(), 0);
        assert_eq!(ht.distinct_keys(), 0);
    }

    #[test]
    fn stats_snapshot() {
        let mut ht = ExtendibleHashTable::new(32);
        ht.insert(1, 0u8);
        ht.insert(1, 0u8);
        ht.insert(2, 0u8);
        let s = ht.stats();
        assert_eq!(s.entries, 3);
        assert_eq!(s.distinct_keys, 2);
        assert_eq!(s.tuple_width, 32);
        assert_eq!(s.bytes, ht.logical_bytes());
    }

    #[test]
    fn layout_roundtrip_is_layout_eq() {
        let mut ht = ExtendibleHashTable::new(16);
        for i in 0..100u64 {
            ht.insert(i % 37, i as u32);
        }
        let l = ht.layout();
        let rebuilt = ExtendibleHashTable::from_layout(
            l.tuple_width,
            l.global_depth,
            l.resizes,
            l.distinct_keys,
            l.directory.to_vec(),
            l.depth.to_vec(),
            ht.arena_entries().map(|(k, n, v)| (k, n, *v)).collect(),
        )
        .expect("exported layout is consistent");
        assert!(ht.layout_eq(&rebuilt));
        assert_eq!(
            rebuilt.probe_readonly(5).copied().collect::<Vec<_>>(),
            ht.probe_readonly(5).copied().collect::<Vec<_>>()
        );
    }

    #[test]
    fn from_layout_rejects_corrupt_parts() {
        // Directory length must be 2^global_depth.
        assert!(ExtendibleHashTable::<u32>::from_layout(
            8,
            2,
            0,
            0,
            vec![NIL; 3],
            vec![2; 3],
            Vec::new()
        )
        .is_none());
        // Chain links must stay inside the arena.
        assert!(ExtendibleHashTable::<u32>::from_layout(
            8,
            1,
            0,
            1,
            vec![7, NIL],
            vec![1, 1],
            vec![(0, NIL, 1u32)]
        )
        .is_none());
        // Local depths must not exceed the global depth.
        assert!(ExtendibleHashTable::<u32>::from_layout(
            8,
            1,
            0,
            0,
            vec![NIL, NIL],
            vec![1, 2],
            Vec::new()
        )
        .is_none());
    }
}
