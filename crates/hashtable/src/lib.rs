//! The internal hash table HashStash caches and reuses.
//!
//! Main-memory hash joins and hash aggregations materialize a hash table as a
//! side effect of execution (they are pipeline breakers). HashStash's central
//! idea is to *keep* those tables and reuse them for later queries. This
//! crate implements the table itself:
//!
//! * [`ExtendibleHashTable`] — extendible hashing with linked-list collision
//!   chains (paper §3.2.1). Resizing doubles only the bucket directory;
//!   chains are redistributed *lazily* the next time a stale bucket is
//!   touched, so a resize never rehashes the whole table at once.
//! * [`partitioned`] — bucket-partitioned build primitives: per-partition
//!   chain computation plus a serial stitch that reproduces the serial
//!   build's layout byte for byte, so executors can parallelize the build
//!   phase without changing collision-chain (and therefore probe output)
//!   order.
//! * [`calibration`] — the micro-benchmark harness behind the paper's
//!   Figure 3: per-tuple insert / probe / update costs as a function of hash
//!   table size (1KB…1GB) and tuple width (8B…256B), plus an interpolating
//!   [`calibration::CostGrid`] the reuse-aware cost models consume.
//!
//! Entries live in a contiguous arena with `u32` next-links (no per-node
//! allocation), so chain traversal is an index chase within one allocation —
//! the cache-friendliness the paper's C++ prototype relies on.

pub mod calibration;
pub mod extendible;
pub mod partitioned;

pub use calibration::{CalibrationPoint, Calibrator, CostGrid};
pub use extendible::{ExtendibleHashTable, HtLayout, HtStats};
pub use partitioned::{bucket_ranges, partition_chains, ChainPartition};
