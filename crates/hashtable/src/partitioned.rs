//! Partition-aware build primitives for deterministic parallel builds.
//!
//! A serial build inserts `(key, value)` pairs in row order; collision-chain
//! order (newest entry at the chain head) and arena order (one entry per row,
//! in row order) follow from that. To parallelize the build *without changing
//! either*, the work is partitioned **by bucket**, not by row:
//!
//! 1. the caller pre-sizes the directory ([`ExtendibleHashTable::reserve`]),
//!    fixing the bucket of every key up front;
//! 2. each worker takes a contiguous range of buckets and scans the full key
//!    sequence in row order, recording — for its buckets only — the chain
//!    links every insert would have created ([`partition_chains`]);
//! 3. a single serial pass stitches the per-partition chains and the values
//!    into the table
//!    ([`ExtendibleHashTable::fill_from_partitions`](crate::ExtendibleHashTable::fill_from_partitions)).
//!
//! Because every bucket is owned by exactly one partition and each partition
//! observes rows in row order, the assembled chains are *identical* to the
//! serial build's — same arena order, same next-links, same directory heads,
//! same lazy-split bookkeeping — for any partition count. The test battery
//! (`tests/build_equivalence.rs`) pins this byte for byte.

use std::ops::Range;

/// Sentinel for "no entry" in partition chain links (mirrors the table's
/// internal NIL).
pub(crate) const PART_NIL: u32 = u32::MAX;

/// Chains computed by one bucket-range partition of a build.
///
/// Positions in `links` index into `rows`; `heads` holds, per bucket of the
/// partition's range, the position of the chain head (the *latest* row
/// hashed to that bucket) or `NIL`.
#[derive(Debug)]
pub struct ChainPartition {
    /// The contiguous bucket range this partition owns.
    pub(crate) buckets: Range<usize>,
    /// Per bucket in `buckets`: position into `rows` of the chain head.
    pub(crate) heads: Vec<u32>,
    /// Global row indices owned by this partition, in ascending row order.
    pub(crate) rows: Vec<u32>,
    /// Chain link per `rows` slot: position (into `rows`) of the previous
    /// row in the same bucket, or `PART_NIL`.
    pub(crate) links: Vec<u32>,
    /// Keys in this partition that were new on first insertion (the
    /// serial build's distinct-key bookkeeping, computed bucket-locally).
    pub(crate) distinct: usize,
}

impl ChainPartition {
    /// Number of rows owned by this partition.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the partition owns no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Compute the collision chains a serial build of `keys` would create inside
/// the buckets of `range`, for a directory of `dir_len` slots (a power of
/// two). Pure and thread-safe: workers run one call per disjoint range.
///
/// The distinct-key count is exact because a key's bucket is fixed by
/// `dir_len` — all rows sharing a key land in the same partition.
pub fn partition_chains(keys: &[u64], dir_len: usize, range: Range<usize>) -> ChainPartition {
    assert!(dir_len.is_power_of_two(), "directory length {dir_len}");
    assert!(range.end <= dir_len);
    let mask = (dir_len - 1) as u64;
    let mut heads = vec![PART_NIL; range.len()];
    let mut rows: Vec<u32> = Vec::new();
    let mut links: Vec<u32> = Vec::new();
    let mut distinct = 0usize;
    for (i, &key) in keys.iter().enumerate() {
        let b = (key & mask) as usize;
        if b < range.start || b >= range.end {
            continue;
        }
        let head = heads[b - range.start];
        // Walk the chain exactly as the serial insert does to learn whether
        // the key is new (maintains the distinct-key statistic).
        let mut node = head;
        let mut new_key = true;
        while node != PART_NIL {
            if keys[rows[node as usize] as usize] == key {
                new_key = false;
                break;
            }
            node = links[node as usize];
        }
        if new_key {
            distinct += 1;
        }
        let pos = rows.len() as u32;
        rows.push(i as u32);
        links.push(head);
        heads[b - range.start] = pos;
    }
    ChainPartition {
        buckets: range,
        heads,
        rows,
        links,
        distinct,
    }
}

/// Split `0..dir_len` into at most `parts` contiguous, non-empty ranges.
pub fn bucket_ranges(dir_len: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1).min(dir_len.max(1));
    let base = dir_len / parts;
    let extra = dir_len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        if len == 0 {
            continue;
        }
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, dir_len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_ranges_tile_exactly() {
        for dir_len in [2usize, 4, 8, 1024, 4096] {
            for parts in [1usize, 2, 3, 7, 8, 64] {
                let ranges = bucket_ranges(dir_len, parts);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    assert!(!r.is_empty());
                    next = r.end;
                }
                assert_eq!(next, dir_len);
                assert!(ranges.len() <= parts);
            }
        }
    }

    #[test]
    fn partition_chains_union_counts_all_rows() {
        let keys: Vec<u64> = (0..1000u64).map(|i| i % 37).collect();
        let dir_len = 1024;
        let mut total = 0;
        let mut distinct = 0;
        for r in bucket_ranges(dir_len, 4) {
            let p = partition_chains(&keys, dir_len, r);
            total += p.len();
            distinct += p.distinct;
        }
        assert_eq!(total, keys.len());
        assert_eq!(distinct, 37);
    }

    #[test]
    fn partition_chains_is_partition_count_invariant() {
        let keys: Vec<u64> = (0..500u64).map(|i| i.wrapping_mul(0x9e37)).collect();
        let dir_len = 256;
        // Heads and links per bucket must not depend on how buckets are
        // grouped into partitions: resolve chains to global row sequences.
        let resolve = |parts: usize| -> Vec<Vec<u32>> {
            let mut chains = vec![Vec::new(); dir_len];
            for r in bucket_ranges(dir_len, parts) {
                let p = partition_chains(&keys, dir_len, r.clone());
                for b in r.clone() {
                    let mut node = p.heads[b - r.start];
                    while node != PART_NIL {
                        chains[b].push(p.rows[node as usize]);
                        node = p.links[node as usize];
                    }
                }
            }
            chains
        };
        let one = resolve(1);
        for parts in [2, 3, 8] {
            assert_eq!(resolve(parts), one, "{parts} partitions");
        }
    }
}
