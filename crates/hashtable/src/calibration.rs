//! Micro-benchmark calibration of per-tuple hash-table costs (paper Fig. 3).
//!
//! The reuse-aware cost models need three hardware-dependent functions:
//!
//! * `ci(htSize, tWidth)` — cost of a single **insert**,
//! * `cl(htSize, tWidth)` — cost of a single **lookup** (probe),
//! * `cu(htSize, tWidth)` — cost of a single **update** (aggregate),
//!
//! all in nanoseconds, over hash-table sizes spanning the cache hierarchy
//! (1KB … 1GB in the paper; configurable here) and tuple widths 8B … 256B.
//! The paper determines them "by a set of micro benchmarks which calibrate
//! the cost model" (§3.2.1); [`Calibrator`] is that harness.
//!
//! [`CostGrid`] stores the measured points and interpolates log-linearly in
//! size and linearly in width. A deterministic [`CostGrid::synthetic`] models
//! an Intel-like hierarchy (L1 32KB / L2 256KB / L3 25MB) so unit tests and
//! the optimizer's own tests do not depend on wall-clock measurements.

use std::time::Instant;

use crate::extendible::ExtendibleHashTable;

/// Default size grid in bytes: 1KB, 32KB, 1MB, 32MB (the paper adds 1GB;
/// the experiment binaries extend the grid when a larger sweep is requested).
pub const DEFAULT_SIZES: [usize; 4] = [1 << 10, 32 << 10, 1 << 20, 32 << 20];

/// Tuple widths measured by the paper: 8, 16, 64, 128, 256 bytes.
pub const DEFAULT_WIDTHS: [usize; 5] = [8, 16, 64, 128, 256];

/// One measured point of the calibration surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationPoint {
    /// Logical hash-table size in bytes when the measurement was taken.
    pub ht_bytes: usize,
    /// Tuple width in bytes.
    pub tuple_width: usize,
    /// Cost of one insert, nanoseconds.
    pub insert_ns: f64,
    /// Cost of one lookup, nanoseconds.
    pub lookup_ns: f64,
    /// Cost of one update, nanoseconds.
    pub update_ns: f64,
}

/// A calibrated cost surface: `ci/cl/cu` as functions of `(htSize, tWidth)`.
#[derive(Debug, Clone)]
pub struct CostGrid {
    sizes: Vec<usize>,
    widths: Vec<usize>,
    /// `points[w][s]` — indexed by width index then size index.
    points: Vec<Vec<CalibrationPoint>>,
}

/// Which of the three per-tuple operations to look up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HtOp {
    Insert,
    Lookup,
    Update,
}

impl CostGrid {
    /// Build a grid from measured points. `points[w][s]` must align with
    /// `widths[w]` and `sizes[s]`; both axes must be strictly increasing.
    pub fn new(sizes: Vec<usize>, widths: Vec<usize>, points: Vec<Vec<CalibrationPoint>>) -> Self {
        assert!(!sizes.is_empty() && !widths.is_empty());
        assert!(sizes.windows(2).all(|w| w[0] < w[1]), "sizes must increase");
        assert!(
            widths.windows(2).all(|w| w[0] < w[1]),
            "widths must increase"
        );
        assert_eq!(points.len(), widths.len());
        for row in &points {
            assert_eq!(row.len(), sizes.len());
        }
        CostGrid {
            sizes,
            widths,
            points,
        }
    }

    /// A deterministic, hardware-independent surface modelling a three-level
    /// cache hierarchy. Latency rises at each cache boundary; cost grows
    /// with tuple width once a tuple exceeds one (insert) or two (lookup,
    /// thanks to adjacent-line prefetch) cache lines — the behaviour the
    /// paper observes in Figures 3a–3c.
    pub fn synthetic() -> Self {
        const L1: f64 = 32.0 * 1024.0;
        const L2: f64 = 256.0 * 1024.0;
        const L3: f64 = 25.0 * 1024.0 * 1024.0;
        let sizes: Vec<usize> = vec![1 << 10, 32 << 10, 1 << 20, 32 << 20, 1 << 30];
        let widths: Vec<usize> = DEFAULT_WIDTHS.to_vec();
        // Piecewise latency model: ns cost of touching one line when the
        // working set has the given size.
        let line_cost = |bytes: f64| -> f64 {
            if bytes <= L1 {
                4.0
            } else if bytes <= L2 {
                12.0
            } else if bytes <= L3 {
                40.0
            } else {
                95.0
            }
        };
        let points = widths
            .iter()
            .map(|&w| {
                sizes
                    .iter()
                    .map(|&s| {
                        let base = line_cost(s as f64);
                        // Lines touched per op: header + payload lines.
                        let payload_lines = (w as f64 / 64.0).ceil().max(1.0);
                        // Inserts write the payload: cost grows beyond 1 line.
                        let insert = base * (1.0 + 0.6 * (payload_lines - 1.0)) + 18.0;
                        // Lookups benefit from adjacent-line prefetch: width
                        // matters only beyond 128B (2 lines).
                        let lookup_lines = (w as f64 / 128.0).ceil().max(1.0);
                        let lookup = base * (1.0 + 0.5 * (lookup_lines - 1.0)) + 10.0;
                        // Updates read-modify-write a single aggregate slot.
                        let update = base * (1.0 + 0.4 * (payload_lines - 1.0)) + 12.0;
                        CalibrationPoint {
                            ht_bytes: s,
                            tuple_width: w,
                            insert_ns: insert,
                            lookup_ns: lookup,
                            update_ns: update,
                        }
                    })
                    .collect()
            })
            .collect();
        CostGrid::new(sizes, widths, points)
    }

    /// Interpolated per-tuple cost in nanoseconds for the given operation at
    /// an arbitrary `(ht_bytes, tuple_width)` point. Interpolation is linear
    /// in `log2(size)` and linear in width; queries outside the grid clamp
    /// to the border.
    pub fn cost_ns(&self, op: HtOp, ht_bytes: usize, tuple_width: usize) -> f64 {
        let pick = |p: &CalibrationPoint| match op {
            HtOp::Insert => p.insert_ns,
            HtOp::Lookup => p.lookup_ns,
            HtOp::Update => p.update_ns,
        };
        // Locate bracketing width rows.
        let (w0, w1, wt) = Self::bracket(&self.widths, tuple_width.max(1));
        // Locate bracketing size columns (log scale).
        let (s0, s1, st_raw) = Self::bracket(&self.sizes, ht_bytes.max(1));
        let st = if s0 == s1 {
            0.0
        } else {
            let lo = (self.sizes[s0] as f64).log2();
            let hi = (self.sizes[s1] as f64).log2();
            (((ht_bytes.max(1) as f64).log2() - lo) / (hi - lo)).clamp(0.0, 1.0)
        };
        let _ = st_raw;
        let at = |wi: usize, si: usize| pick(&self.points[wi][si]);
        let lerp = |a: f64, b: f64, t: f64| a + (b - a) * t;
        let low_w = lerp(at(w0, s0), at(w0, s1), st);
        let high_w = lerp(at(w1, s0), at(w1, s1), st);
        lerp(low_w, high_w, wt)
    }

    /// Find indices `(i, j, t)` so that `axis[i] <= x <= axis[j]` with
    /// interpolation parameter `t` (linear in the raw axis values); clamps
    /// out-of-range queries.
    fn bracket(axis: &[usize], x: usize) -> (usize, usize, f64) {
        if x <= axis[0] {
            return (0, 0, 0.0);
        }
        if x >= *axis.last().expect("non-empty axis") {
            let last = axis.len() - 1;
            return (last, last, 0.0);
        }
        let j = axis.partition_point(|&a| a < x);
        let i = j - 1;
        let t = (x - axis[i]) as f64 / (axis[j] - axis[i]) as f64;
        (i, j, t)
    }

    /// The size axis.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// The width axis.
    pub fn widths(&self) -> &[usize] {
        &self.widths
    }

    /// All measured points, row-major by width.
    pub fn points(&self) -> &[Vec<CalibrationPoint>] {
        &self.points
    }
}

/// Runs the Figure-3 micro-benchmarks against [`ExtendibleHashTable`].
///
/// For every `(size, width)` cell the calibrator fills a table with
/// fixed-width payloads until its logical size reaches the target, then
/// measures batched inserts, lookups and updates.
#[derive(Debug, Clone)]
pub struct Calibrator {
    /// Target logical table sizes in bytes.
    pub sizes: Vec<usize>,
    /// Tuple widths to measure.
    pub widths: Vec<usize>,
    /// Number of measured operations per cell (higher = less noise).
    pub ops_per_cell: usize,
}

impl Default for Calibrator {
    fn default() -> Self {
        Calibrator {
            sizes: DEFAULT_SIZES.to_vec(),
            widths: DEFAULT_WIDTHS.to_vec(),
            ops_per_cell: 100_000,
        }
    }
}

/// A pseudo-random sequence of 64-bit keys (splitmix64) used to defeat
/// hardware prefetching in measurements.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Calibrator {
    /// Measure one cell with payload width `W` (const generic so the payload
    /// is stored inline in the arena, making width a real cache parameter).
    fn measure_cell<const W: usize>(&self, target_bytes: usize) -> CalibrationPoint {
        let entry_overhead = 12; // key (8) + next link (4)
        let n = (target_bytes / (W + entry_overhead)).max(16);
        let mut ht: ExtendibleHashTable<[u8; W]> = ExtendibleHashTable::with_capacity(W, n);
        let mut seed = 0x5eed_0000_dead_beefu64;
        let payload = [0xabu8; W];
        let mut keys = Vec::with_capacity(n);
        for _ in 0..n {
            let k = splitmix64(&mut seed);
            ht.insert(k, payload);
            keys.push(k);
        }
        let ops = self.ops_per_cell.min(n.max(1024));

        // Inserts: measure fresh keys into a clone so the table size stays at
        // the target (inserting into the original would grow it past the
        // cell's size class).
        let mut insert_ht = ht.clone();
        insert_ht.reserve(ops);
        let mut insert_keys = Vec::with_capacity(ops);
        for _ in 0..ops {
            insert_keys.push(splitmix64(&mut seed));
        }
        let t0 = Instant::now();
        for &k in &insert_keys {
            insert_ht.insert(k, payload);
        }
        let insert_ns = t0.elapsed().as_nanos() as f64 / ops as f64;

        // Lookups: random existing keys.
        let mut acc = 0u64;
        let t0 = Instant::now();
        for i in 0..ops {
            let k = keys[(splitmix64(&mut seed) as usize) % keys.len()];
            if let Some(v) = ht.probe(k).next() {
                acc = acc.wrapping_add(v[0] as u64 + i as u64);
            }
        }
        let lookup_ns = t0.elapsed().as_nanos() as f64 / ops as f64;
        std::hint::black_box(acc);

        // Updates: read-modify-write the first payload byte.
        let t0 = Instant::now();
        for _ in 0..ops {
            let k = keys[(splitmix64(&mut seed) as usize) % keys.len()];
            if let Some(v) = ht.get_mut(k) {
                v[0] = v[0].wrapping_add(1);
            }
        }
        let update_ns = t0.elapsed().as_nanos() as f64 / ops as f64;

        CalibrationPoint {
            ht_bytes: ht.logical_bytes(),
            tuple_width: W,
            insert_ns,
            lookup_ns,
            update_ns,
        }
    }

    fn measure_width(&self, width: usize, target_bytes: usize) -> CalibrationPoint {
        match width {
            8 => self.measure_cell::<8>(target_bytes),
            16 => self.measure_cell::<16>(target_bytes),
            32 => self.measure_cell::<32>(target_bytes),
            64 => self.measure_cell::<64>(target_bytes),
            128 => self.measure_cell::<128>(target_bytes),
            256 => self.measure_cell::<256>(target_bytes),
            other => panic!("unsupported calibration width: {other} (use 8/16/32/64/128/256)"),
        }
    }

    /// Run the full sweep and return the measured grid.
    pub fn run(&self) -> CostGrid {
        let points = self
            .widths
            .iter()
            .map(|&w| {
                self.sizes
                    .iter()
                    .map(|&s| {
                        let mut p = self.measure_width(w, s);
                        // Grid wants the *target* size on the axis even if the
                        // realized logical size differs slightly.
                        p.ht_bytes = s;
                        p
                    })
                    .collect()
            })
            .collect();
        CostGrid::new(self.sizes.clone(), self.widths.clone(), points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_grid_monotone_in_size() {
        let g = CostGrid::synthetic();
        for &w in g.widths() {
            let small = g.cost_ns(HtOp::Lookup, 1 << 10, w);
            let large = g.cost_ns(HtOp::Lookup, 1 << 30, w);
            assert!(
                large > small,
                "lookup cost must grow with table size (w={w}): {small} vs {large}"
            );
        }
    }

    #[test]
    fn synthetic_grid_insert_width_effect_beyond_cache_line() {
        let g = CostGrid::synthetic();
        // Paper Fig 3a: insert cost flat up to 64B, grows at 128B/256B.
        let c64 = g.cost_ns(HtOp::Insert, 1 << 20, 64);
        let c128 = g.cost_ns(HtOp::Insert, 1 << 20, 128);
        let c256 = g.cost_ns(HtOp::Insert, 1 << 20, 256);
        assert!(c128 > c64);
        assert!(c256 > c128);
        let c8 = g.cost_ns(HtOp::Insert, 1 << 20, 8);
        assert!(
            (c64 - c8).abs() < 1e-9,
            "widths within one line cost the same"
        );
    }

    #[test]
    fn synthetic_grid_lookup_prefetch_effect() {
        let g = CostGrid::synthetic();
        // Paper Fig 3b: lookup cost flat up to 128B thanks to prefetching.
        let c64 = g.cost_ns(HtOp::Lookup, 1 << 20, 64);
        let c128 = g.cost_ns(HtOp::Lookup, 1 << 20, 128);
        let c256 = g.cost_ns(HtOp::Lookup, 1 << 20, 256);
        assert!((c128 - c64).abs() < 1e-9);
        assert!(c256 > c128);
    }

    #[test]
    fn interpolation_between_grid_points() {
        let g = CostGrid::synthetic();
        let lo = g.cost_ns(HtOp::Insert, 1 << 10, 8);
        let mid = g.cost_ns(HtOp::Insert, 12 << 10, 8);
        let hi = g.cost_ns(HtOp::Insert, 32 << 10, 8);
        assert!(lo <= mid && mid <= hi, "{lo} <= {mid} <= {hi}");
    }

    #[test]
    fn clamping_outside_grid() {
        let g = CostGrid::synthetic();
        assert_eq!(
            g.cost_ns(HtOp::Update, 1, 8),
            g.cost_ns(HtOp::Update, 1 << 10, 8)
        );
        assert_eq!(
            g.cost_ns(HtOp::Update, usize::MAX / 2, 8),
            g.cost_ns(HtOp::Update, 1 << 30, 8)
        );
        assert_eq!(
            g.cost_ns(HtOp::Update, 1 << 20, 1024),
            g.cost_ns(HtOp::Update, 1 << 20, 256)
        );
    }

    #[test]
    fn calibrator_smoke_tiny() {
        // A minuscule calibration run: just verifies the machinery produces
        // positive, finite numbers with the right shape.
        let cal = Calibrator {
            sizes: vec![1 << 10, 16 << 10],
            widths: vec![8, 64],
            ops_per_cell: 2_000,
        };
        let grid = cal.run();
        assert_eq!(grid.sizes().len(), 2);
        assert_eq!(grid.widths().len(), 2);
        for row in grid.points() {
            for p in row {
                assert!(p.insert_ns.is_finite() && p.insert_ns > 0.0);
                assert!(p.lookup_ns.is_finite() && p.lookup_ns > 0.0);
                assert!(p.update_ns.is_finite() && p.update_ns > 0.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "unsupported calibration width")]
    fn calibrator_rejects_odd_width() {
        let cal = Calibrator {
            sizes: vec![1 << 10],
            widths: vec![13],
            ops_per_cell: 10,
        };
        let _ = cal.run();
    }

    #[test]
    fn grid_constructor_validates_axes() {
        let p = CalibrationPoint {
            ht_bytes: 1024,
            tuple_width: 8,
            insert_ns: 1.0,
            lookup_ns: 1.0,
            update_ns: 1.0,
        };
        let g = CostGrid::new(vec![1024], vec![8], vec![vec![p]]);
        assert_eq!(g.cost_ns(HtOp::Insert, 999, 999), 1.0);
    }
}
