//! Criterion version of Figure 9a: a reuse-aware hash join executed fresh
//! (never-share) versus with an exact-reuse cached table, at two scales.
//! The exact-reuse path must win by roughly the build-side cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hashstash_cache::{GcConfig, HtManager, StoredHt, TaggedRow};
use hashstash_exec::plan::{PhysicalPlan, ReuseSpec, ScanSpec};
use hashstash_exec::{execute, ExecContext, TempTableCache};
use hashstash_hashtable::ExtendibleHashTable;
use hashstash_plan::{HtFingerprint, HtKind, Region, ReuseCase};
use hashstash_storage::{Catalog, TableBuilder};
use hashstash_types::{DataType, Field, Row, Schema, Value};
use std::sync::Arc;

fn synth(n: i64) -> Catalog {
    let mut cat = Catalog::new();
    let mut b = TableBuilder::new("dim", vec![("d_key", DataType::Int)]);
    for i in 0..n {
        b.push_row(vec![Value::Int(i)]);
    }
    cat.register(b.finish());
    let mut f = TableBuilder::new("fact", vec![("f_key", DataType::Int)]);
    for i in 0..n * 4 {
        f.push_row(vec![Value::Int(i % n)]);
    }
    cat.register(f.finish());
    cat
}

fn fingerprint() -> HtFingerprint {
    HtFingerprint {
        kind: HtKind::JoinBuild,
        tables: std::iter::once(Arc::from("dim")).collect(),
        edges: vec![],
        region: Region::all(),
        key_attrs: vec![Arc::from("dim.d_key")],
        payload_attrs: vec![Arc::from("dim.d_key")],
        aggregates: vec![],
        tagged: false,
    }
}

fn fresh_plan() -> PhysicalPlan {
    PhysicalPlan::HashJoin {
        probe: Box::new(PhysicalPlan::Scan(ScanSpec::full("fact"))),
        build: Some(Box::new(PhysicalPlan::Scan(ScanSpec::full("dim")))),
        probe_key: "fact.f_key".into(),
        build_key: "dim.d_key".into(),
        reuse: None,
        publish: None,
    }
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9/join");
    for &n in &[10_000i64, 50_000] {
        let cat = synth(n);
        group.bench_with_input(BenchmarkId::new("never_share", n), &n, |b, _| {
            let plan = fresh_plan();
            b.iter(|| {
                let htm = HtManager::new(GcConfig::default());
                let temps = TempTableCache::unbounded();
                let mut ctx = ExecContext::new(&cat, &htm, &temps);
                execute(&plan, &mut ctx).unwrap().1.len()
            });
        });
        group.bench_with_input(BenchmarkId::new("exact_reuse", n), &n, |b, _| {
            // Pre-build the cached table once.
            let mut ht = ExtendibleHashTable::with_capacity(8, n as usize);
            for i in 0..n {
                ht.insert(i as u64, TaggedRow::untagged(Row::new(vec![Value::Int(i)])));
            }
            let schema = Schema::new(vec![Field::new("dim.d_key", DataType::Int)]);
            b.iter_batched(
                || {
                    let htm = HtManager::new(GcConfig::default());
                    let id = htm.publish(fingerprint(), schema.clone(), StoredHt::Join(ht.clone()));
                    (htm, id)
                },
                |(htm, id)| {
                    let plan = PhysicalPlan::HashJoin {
                        probe: Box::new(PhysicalPlan::Scan(ScanSpec::full("fact"))),
                        build: None,
                        probe_key: "fact.f_key".into(),
                        build_key: "dim.d_key".into(),
                        reuse: Some(ReuseSpec {
                            id,
                            case: ReuseCase::Exact,
                            post_filter: None,
                            request_region: Region::all(),
                            cached_region: Region::all(),
                            schema: schema.clone(),
                        }),
                        publish: None,
                    };
                    let temps = TempTableCache::unbounded();
                    let mut ctx = ExecContext::new(&cat, &htm, &temps);
                    execute(&plan, &mut ctx).unwrap().1.len()
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group! {
    name = fig9;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(fig9);
