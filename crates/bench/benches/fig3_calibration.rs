//! Criterion version of the paper's Figure 3 micro-benchmarks: per-tuple
//! insert / probe / update costs across hash-table sizes and tuple widths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hashstash_hashtable::ExtendibleHashTable;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn filled<const W: usize>(target_bytes: usize) -> (ExtendibleHashTable<[u8; W]>, Vec<u64>) {
    let n = (target_bytes / (W + 12)).max(16);
    let mut ht = ExtendibleHashTable::with_capacity(W, n);
    let mut seed = 0xdead_beefu64;
    let mut keys = Vec::with_capacity(n);
    for _ in 0..n {
        let k = splitmix(&mut seed);
        ht.insert(k, [0u8; W]);
        keys.push(k);
    }
    (ht, keys)
}

fn bench_width<const W: usize>(c: &mut Criterion) {
    let sizes = [32 << 10, 1 << 20, 16 << 20];
    let mut group = c.benchmark_group(format!("fig3/width_{W}B"));
    for &size in &sizes {
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("insert", size), &size, |b, &s| {
            let (ht, _) = filled::<W>(s);
            let mut seed = 0x1111u64;
            b.iter_batched(
                || ht.clone(),
                |mut t| {
                    t.insert(splitmix(&mut seed), [0u8; W]);
                    t
                },
                criterion::BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("probe", size), &size, |b, &s| {
            let (mut ht, keys) = filled::<W>(s);
            let mut seed = 0x2222u64;
            b.iter(|| {
                let k = keys[(splitmix(&mut seed) as usize) % keys.len()];
                ht.probe(k).next().map(|v| v[0])
            });
        });
        group.bench_with_input(BenchmarkId::new("update", size), &size, |b, &s| {
            let (mut ht, keys) = filled::<W>(s);
            let mut seed = 0x3333u64;
            b.iter(|| {
                let k = keys[(splitmix(&mut seed) as usize) % keys.len()];
                if let Some(v) = ht.get_mut(k) {
                    v[0] = v[0].wrapping_add(1);
                }
            });
        });
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_width::<8>(c);
    bench_width::<64>(c);
    bench_width::<256>(c);
}

criterion_group! {
    name = fig3;
    config = Criterion::default().sample_size(20);
    targets = benches
}
criterion_main!(fig3);
