//! Planning overhead of the reuse-aware optimizer: Algorithm 1 over 3-way
//! and 5-way join graphs with a populated cache. The paper's claim that
//! reuse "comes for free" requires the optimizer itself to stay cheap.

use criterion::{criterion_group, criterion_main, Criterion};
use hashstash::Database;
use hashstash_storage::tpch::{generate, TpchConfig};
use hashstash_workload::session::exp2_session;
use hashstash_workload::trace::{generate_trace, ReusePotential, TraceConfig};

fn benches(c: &mut Criterion) {
    let catalog = generate(TpchConfig::new(0.01, 42));
    // Populate the cache with a short high-reuse prefix.
    let db = Database::open(catalog);
    let mut session = db.session();
    let trace = generate_trace(TraceConfig::paper(ReusePotential::High, 42));
    for tq in trace.iter().take(8) {
        session.execute(&tq.query).unwrap();
    }
    let three_way = trace[9].query.clone();
    let five_way = exp2_session()[0].query.clone();
    session.execute(&five_way).unwrap();

    c.bench_function("optimizer/3way_with_candidates", |b| {
        b.iter(|| session.plan_only(&three_way).unwrap().est_cost_ns)
    });
    c.bench_function("optimizer/5way_with_candidates", |b| {
        b.iter(|| session.plan_only(&five_way).unwrap().est_cost_ns)
    });
}

criterion_group! {
    name = optimizer;
    config = Criterion::default().sample_size(20);
    targets = benches
}
criterion_main!(optimizer);
