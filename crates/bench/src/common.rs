//! Helpers shared by the experiment binaries.

use std::sync::Arc;
use std::time::{Duration, Instant};

use hashstash::{Database, EngineStrategy};
use hashstash_storage::tpch::{generate, TpchConfig};
use hashstash_storage::Catalog;
use hashstash_workload::trace::TraceQuery;

/// Scale factor used by the experiments (override: `HASHSTASH_SF`).
pub fn scale_factor() -> f64 {
    std::env::var("HASHSTASH_SF")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.05)
}

/// Data seed (override: `HASHSTASH_SEED`).
pub fn seed() -> u64 {
    std::env::var("HASHSTASH_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}

/// Generate the experiment database.
pub fn catalog() -> Catalog {
    generate(TpchConfig::new(scale_factor(), seed()))
}

/// Run a whole trace under one strategy through a single session; returns
/// (total wall time, database).
pub fn run_trace(
    catalog: Catalog,
    strategy: EngineStrategy,
    trace: &[TraceQuery],
) -> (Duration, Arc<Database>) {
    let db = Database::builder(catalog).strategy(strategy).build();
    let mut session = db.session();
    let t0 = Instant::now();
    for tq in trace {
        session
            .execute(&tq.query)
            .unwrap_or_else(|e| panic!("query {} failed: {e}", tq.query.id));
    }
    (t0.elapsed(), db)
}

/// Pretty milliseconds.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Pretty megabytes.
pub fn mb(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

/// Print a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}
